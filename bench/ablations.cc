/**
 * @file
 * Ablations beyond the paper (DESIGN.md §6):
 *   1. history length sweep for the tagless gshare cache;
 *   2. equal-budget comparison: tagless vs tagged vs cascaded vs
 *      oracle, with storage cost printed;
 *   3. the C++ virtual-dispatch workload (the paper's future work);
 *   4. seed sensitivity of the headline result (mean ± stddev over
 *      independently generated workloads);
 *   5. interference in the tagless structure (the paper's §5
 *      motivation for adding tags);
 *   6. the direction predictor's influence (gshare vs McFarling
 *      tournament baseline machine).
 *
 * Every grid runs on the parallel experiment engine; traces are
 * shared across sections through the trace cache.
 */

#include "bench_util.hh"
#include "harness/multi_seed.hh"
#include "harness/sweep_kernel.hh"

using namespace tpred;

namespace
{

/**
 * Fused (workload x config) accuracy grid: one runSweep() per
 * (workload x history-group) job, results scattered back into grid
 * order.  Cell values are bit-identical to per-config runAccuracy().
 */
std::vector<double>
sweepGrid(const ParallelRunner &runner,
          const std::vector<SharedTrace> &traces,
          const std::vector<IndirectConfig> &configs)
{
    const auto groups = groupByHistory(configs);
    const auto parts = runner.map<std::vector<double>>(
        traces.size() * groups.size(), [&](size_t j) {
            const SharedTrace &trace = traces[j / groups.size()];
            const auto &group = groups[j % groups.size()];
            std::vector<IndirectConfig> batch;
            batch.reserve(group.size());
            for (size_t c : group)
                batch.push_back(configs[c]);
            std::vector<double> rates;
            rates.reserve(group.size());
            for (const FrontendStats &s : runSweep(trace, batch))
                rates.push_back(s.indirectJumps.missRate());
            return rates;
        });
    std::vector<double> cells(traces.size() * configs.size());
    for (size_t w = 0; w < traces.size(); ++w)
        for (size_t g = 0; g < groups.size(); ++g)
            for (size_t k = 0; k < groups[g].size(); ++k)
                cells[w * configs.size() + groups[g][k]] =
                    parts[w * groups.size() + g][k];
    return cells;
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultAccuracyOps).ops;
    bench::heading("Ablations (indirect-jump misprediction rate)", ops);

    const ParallelRunner runner;
    const std::vector<std::string> headline = bench::headlinePair();
    const std::vector<SharedTrace> headline_traces =
        bench::recordAll(headline, ops);

    // --- 1. History length sweep --------------------------------
    {
        const std::vector<unsigned> lengths = {4, 6, 9, 12, 16};
        // Entry count fixed at 512; longer histories fold through
        // the XOR index.
        std::vector<IndirectConfig> configs;
        for (unsigned length : lengths)
            configs.push_back(taglessGshare(patternHistory(length)));
        const auto cells = sweepGrid(runner, headline_traces, configs);
        Table table;
        table.setHeader({"Benchmark", "h=4", "h=6", "h=9", "h=12",
                         "h=16"});
        for (size_t w = 0; w < headline.size(); ++w) {
            std::vector<std::string> row = {headline[w]};
            for (size_t k = 0; k < lengths.size(); ++k)
                row.push_back(formatPercent(
                    cells[w * lengths.size() + k], 1));
            table.addRow(row);
        }
        std::printf("[history length, tagless gshare 512]\n%s\n",
                    table.render().c_str());
    }

    // --- 2. Structures at comparable budget -----------------------
    {
        const std::vector<std::pair<std::string, IndirectConfig>>
            structures = {
                {"tagless-512", taglessGshare()},
                {"tagged-256x4w", taggedConfig(
                                      TaggedIndexScheme::HistoryXor, 4)},
                {"cascaded", cascadedConfig()},
                {"oracle", oracleConfig()},
            };
        Table table;
        std::vector<std::string> header = {"Benchmark"};
        for (const auto &[label, config] : structures) {
            auto stack = buildStack(config);
            const uint64_t cost =
                stack.predictor ? stack.predictor->costBits() : 0;
            header.push_back(label + " (" + std::to_string(cost / 8) +
                             " B)");
        }
        table.setHeader(header);

        const auto &names = spec95Names();
        const std::vector<SharedTrace> traces =
            bench::recordAll(names, ops);
        std::vector<IndirectConfig> configs;
        for (const auto &[label, config] : structures)
            configs.push_back(config);
        const auto cells = sweepGrid(runner, traces, configs);
        for (size_t w = 0; w < names.size(); ++w) {
            std::vector<std::string> row = {names[w]};
            for (size_t k = 0; k < structures.size(); ++k)
                row.push_back(formatPercent(
                    cells[w * structures.size() + k], 1));
            table.addRow(row);
        }
        std::printf("[structures at comparable budget]\n%s\n",
                    table.render().c_str());
    }

    // --- 3. C++ virtual dispatch (paper §5 future work) ----------
    {
        const SharedTrace trace = cachedTrace("cpp-virtual", ops);
        const std::vector<std::pair<std::string, IndirectConfig>>
            configs = {
                {"BTB", baselineConfig()},
                {"tagless-512", taglessGshare()},
                {"tagged-256x8w-h16",
                 taggedConfig(TaggedIndexScheme::HistoryXor, 8,
                              patternHistory(16))},
                {"cascaded", cascadedConfig()},
            };
        std::vector<IndirectConfig> batch;
        for (const auto &[label, config] : configs)
            batch.push_back(config);
        const auto cells =
            sweepGrid(runner, std::vector<SharedTrace>{trace}, batch);
        Table table;
        table.setHeader({"Predictor", "Mispred. rate"});
        for (size_t k = 0; k < configs.size(); ++k)
            table.addRow({configs[k].first,
                          formatPercent(cells[k], 1)});
        std::printf("[cpp-virtual workload]\n%s\n",
                    table.render().c_str());
    }

    // --- 4. Seed sensitivity --------------------------------------
    {
        Table table;
        table.setHeader({"Benchmark", "BTB (5 seeds)",
                         "tagless (5 seeds)"});
        const size_t seed_ops = std::min<size_t>(ops, 400000);
        for (const auto &name : headline) {
            // sweepSeeds shards its seeds across the runner itself.
            auto btb = sweepSeeds(name, seed_ops, 5,
                                  indirectMissMetric(baselineConfig()));
            auto tc = sweepSeeds(name, seed_ops, 5,
                                 indirectMissMetric(taglessGshare()));
            table.addRow({name, btb.renderPercent(),
                          tc.renderPercent()});
        }
        std::printf("[seed sensitivity]\n%s\n",
                    table.render().c_str());
    }

    // --- 5. Tagless interference ----------------------------------
    {
        const std::vector<TaglessIndexScheme> schemes = {
            TaglessIndexScheme::GAg, TaglessIndexScheme::Gshare};
        const auto cells = runner.map<double>(
            headline.size() * schemes.size(), [&](size_t j) {
                TaglessConfig config;
                config.scheme = schemes[j % schemes.size()];
                config.entryBits = 9;
                config.historyBits = 9;
                TaglessTargetCache cache(config);
                HistoryTracker tracker(patternHistory(9));
                FrontendPredictor fe{FrontendConfig{}, &cache,
                                     &tracker};
                headline_traces[j / schemes.size()].forEachOp(
                    [&fe](const MicroOp &op) {
                        fe.onInstruction(op);
                    });
                return cache.stats().interferenceRate();
            });
        Table table;
        table.setHeader({"Benchmark", "GAg(9) interference",
                         "gshare interference"});
        for (size_t w = 0; w < headline.size(); ++w) {
            table.addRow({headline[w],
                          formatPercent(cells[w * 2], 1),
                          formatPercent(cells[w * 2 + 1], 1)});
        }
        std::printf("[tagless cross-branch interference: fraction of "
                    "probes reading another branch's entry]\n%s\n",
                    table.render().c_str());
    }

    // --- 6. Direction predictor baseline --------------------------
    {
        FrontendConfig tourney;
        tourney.direction = DirectionScheme::Tournament;
        // The two columns differ in FrontendConfig, so each runs as
        // its own batch-of-one sweep (still hits the cached stream).
        const std::vector<IndirectConfig> batch = {taglessGshare()};
        const auto stats = runner.map<FrontendStats>(
            headline.size() * 2, [&](size_t j) {
                const SharedTrace &trace = headline_traces[j / 2];
                return j % 2 == 0
                           ? runSweep(trace, batch).front()
                           : runSweep(trace, batch, tourney).front();
            });
        Table table;
        table.setHeader({"Benchmark", "gshare dir miss",
                         "tournament dir miss", "ind miss (gshare fe)",
                         "ind miss (tournament fe)"});
        for (size_t w = 0; w < headline.size(); ++w) {
            const FrontendStats &g = stats[w * 2];
            const FrontendStats &t = stats[w * 2 + 1];
            table.addRow({headline[w],
                          formatPercent(g.condDirection.missRate(), 1),
                          formatPercent(t.condDirection.missRate(), 1),
                          formatPercent(g.indirectJumps.missRate(), 1),
                          formatPercent(t.indirectJumps.missRate(),
                                        1)});
        }
        std::printf("[direction scheme: the target cache result is "
                    "robust to the conditional predictor]\n%s\n",
                    table.render().c_str());
    }
    return 0;
}
