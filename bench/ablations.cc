/**
 * @file
 * Ablations beyond the paper (DESIGN.md §6):
 *   1. history length sweep for the tagless gshare cache;
 *   2. equal-budget comparison: tagless vs tagged vs cascaded vs
 *      oracle, with storage cost printed;
 *   3. the C++ virtual-dispatch workload (the paper's future work);
 *   4. seed sensitivity of the headline result (mean ± stddev over
 *      independently generated workloads);
 *   5. interference in the tagless structure (the paper's §5
 *      motivation for adding tags);
 *   6. the direction predictor's influence (gshare vs McFarling
 *      tournament baseline machine).
 */

#include "bench_util.hh"
#include "harness/multi_seed.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultAccuracyOps);
    bench::heading("Ablations (indirect-jump misprediction rate)", ops);

    // --- 1. History length sweep --------------------------------
    {
        Table table;
        table.setHeader({"Benchmark", "h=4", "h=6", "h=9", "h=12",
                         "h=16"});
        for (const auto &name : bench::headlinePair()) {
            SharedTrace trace = recordWorkload(name, ops);
            std::vector<std::string> row = {name};
            for (unsigned bits : {4u, 6u, 9u, 12u, 16u}) {
                // Entry count fixed at 512; longer histories fold
                // through the XOR index.
                double miss =
                    runAccuracy(trace,
                                taglessGshare(patternHistory(bits)))
                        .indirectJumps.missRate();
                row.push_back(formatPercent(miss, 1));
            }
            table.addRow(row);
        }
        std::printf("[history length, tagless gshare 512]\n%s\n",
                    table.render().c_str());
    }

    // --- 2. Structures at comparable budget -----------------------
    {
        const std::vector<std::pair<std::string, IndirectConfig>>
            structures = {
                {"tagless-512", taglessGshare()},
                {"tagged-256x4w", taggedConfig(
                                      TaggedIndexScheme::HistoryXor, 4)},
                {"cascaded", cascadedConfig()},
                {"oracle", oracleConfig()},
            };
        Table table;
        std::vector<std::string> header = {"Benchmark"};
        for (const auto &[label, config] : structures) {
            auto stack = buildStack(config);
            const uint64_t cost =
                stack.predictor ? stack.predictor->costBits() : 0;
            header.push_back(label + " (" + std::to_string(cost / 8) +
                             " B)");
        }
        table.setHeader(header);
        for (const auto &name : spec95Names()) {
            SharedTrace trace = recordWorkload(name, ops);
            std::vector<std::string> row = {name};
            for (const auto &[label, config] : structures) {
                double miss = runAccuracy(trace, config)
                                  .indirectJumps.missRate();
                row.push_back(formatPercent(miss, 1));
            }
            table.addRow(row);
        }
        std::printf("[structures at comparable budget]\n%s\n",
                    table.render().c_str());
    }

    // --- 3. C++ virtual dispatch (paper §5 future work) ----------
    {
        SharedTrace trace = recordWorkload("cpp-virtual", ops);
        Table table;
        table.setHeader({"Predictor", "Mispred. rate"});
        table.addRow({"BTB", formatPercent(
                                 runAccuracy(trace, baselineConfig())
                                     .indirectJumps.missRate(),
                                 1)});
        table.addRow(
            {"tagless-512",
             formatPercent(runAccuracy(trace, taglessGshare())
                               .indirectJumps.missRate(),
                           1)});
        table.addRow(
            {"tagged-256x8w-h16",
             formatPercent(
                 runAccuracy(trace,
                             taggedConfig(TaggedIndexScheme::HistoryXor,
                                          8, patternHistory(16)))
                     .indirectJumps.missRate(),
                 1)});
        table.addRow(
            {"cascaded",
             formatPercent(runAccuracy(trace, cascadedConfig())
                               .indirectJumps.missRate(),
                           1)});
        std::printf("[cpp-virtual workload]\n%s\n",
                    table.render().c_str());
    }
    // --- 4. Seed sensitivity --------------------------------------
    {
        Table table;
        table.setHeader({"Benchmark", "BTB (5 seeds)",
                         "tagless (5 seeds)"});
        const size_t seed_ops = std::min<size_t>(ops, 400000);
        for (const auto &name : bench::headlinePair()) {
            auto btb = sweepSeeds(name, seed_ops, 5,
                                  indirectMissMetric(baselineConfig()));
            auto tc = sweepSeeds(name, seed_ops, 5,
                                 indirectMissMetric(taglessGshare()));
            table.addRow({name, btb.renderPercent(),
                          tc.renderPercent()});
        }
        std::printf("[seed sensitivity]\n%s\n",
                    table.render().c_str());
    }

    // --- 5. Tagless interference ----------------------------------
    {
        Table table;
        table.setHeader({"Benchmark", "GAg(9) interference",
                         "gshare interference"});
        for (const auto &name : bench::headlinePair()) {
            SharedTrace trace = recordWorkload(name, ops);
            std::vector<std::string> row = {name};
            for (auto scheme : {TaglessIndexScheme::GAg,
                                TaglessIndexScheme::Gshare}) {
                TaglessConfig config;
                config.scheme = scheme;
                config.entryBits = 9;
                config.historyBits = 9;
                TaglessTargetCache cache(config);
                HistoryTracker tracker(patternHistory(9));
                FrontendPredictor fe{FrontendConfig{}, &cache,
                                     &tracker};
                auto src = trace.open();
                MicroOp op;
                while (src->next(op))
                    fe.onInstruction(op);
                row.push_back(formatPercent(
                    cache.stats().interferenceRate(), 1));
            }
            table.addRow(row);
        }
        std::printf("[tagless cross-branch interference: fraction of "
                    "probes reading another branch's entry]\n%s\n",
                    table.render().c_str());
    }

    // --- 6. Direction predictor baseline --------------------------
    {
        Table table;
        table.setHeader({"Benchmark", "gshare dir miss",
                         "tournament dir miss", "ind miss (gshare fe)",
                         "ind miss (tournament fe)"});
        FrontendConfig tourney;
        tourney.direction = DirectionScheme::Tournament;
        for (const auto &name : bench::headlinePair()) {
            SharedTrace trace = recordWorkload(name, ops);
            FrontendStats g = runAccuracy(trace, taglessGshare());
            FrontendStats t = runAccuracy(trace, taglessGshare(),
                                          tourney);
            table.addRow({name,
                          formatPercent(g.condDirection.missRate(), 1),
                          formatPercent(t.condDirection.missRate(), 1),
                          formatPercent(g.indirectJumps.missRate(), 1),
                          formatPercent(t.indirectJumps.missRate(),
                                        1)});
        }
        std::printf("[direction scheme: the target cache result is "
                    "robust to the conditional predictor]\n%s\n",
                    table.render().c_str());
    }
    return 0;
}
