/** @file Shared helpers for the paper-table bench binaries. */

#ifndef TPRED_BENCH_BENCH_UTIL_HH
#define TPRED_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/paper_tables.hh"
#include "harness/parallel_runner.hh"
#include "harness/trace_cache.hh"
#include "workloads/workload.hh"

namespace tpred::bench
{

/**
 * Records one trace per named workload at the requested length,
 * through the shared trace cache, sharded across the runner.
 */
inline std::vector<SharedTrace>
recordAll(const std::vector<std::string> &names, size_t ops)
{
    const ParallelRunner runner;
    return runner.map<SharedTrace>(names.size(), [&](size_t i) {
        return cachedTrace(names[i], ops);
    });
}

/** The paper's headline pair (sections 4.2-4.4 report these two). */
inline std::vector<std::string>
headlinePair()
{
    return headlineWorkloads();
}

/** Prints a heading in the style used by all bench binaries. */
inline void
heading(const std::string &title, size_t ops)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("   (synthetic SPECint95-like workloads, %s "
                "instructions each; see DESIGN.md)\n\n",
                formatCount(ops).c_str());
}

/** Baseline cycle counts for a set of traces (BTB-only machine). */
inline std::vector<uint64_t>
baselineCycles(const std::vector<SharedTrace> &traces)
{
    const ParallelRunner runner;
    return runner.map<uint64_t>(traces.size(), [&](size_t i) {
        return runTiming(traces[i], baselineConfig()).cycles;
    });
}

/** Wall-clock stopwatch for the speedup lines in sweep benches. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace tpred::bench

#endif // TPRED_BENCH_BENCH_UTIL_HH
