/** @file Shared helpers for the paper-table bench binaries. */

#ifndef TPRED_BENCH_BENCH_UTIL_HH
#define TPRED_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "core/frontend_predictor.hh"
#include "harness/paper_tables.hh"
#include "harness/parallel_runner.hh"
#include "harness/run_options.hh"
#include "harness/trace_cache.hh"
#include "obs/run_report.hh"
#include "workloads/workload.hh"

namespace tpred::bench
{

namespace detail
{
/** State for the at-exit report writer wired up by setup(). */
struct PendingReport
{
    std::string tool;
    std::string path;
    size_t ops = 0;
};

inline PendingReport &
pendingReport()
{
    static PendingReport pending;
    return pending;
}
} // namespace detail

/**
 * One-call bench setup: parses the shared option vocabulary (env +
 * argv, fail-loud) and applies the process-wide effects (job count,
 * verbosity, corpus attachment).  Recognized flags and the positional
 * instruction count are consumed from argv.
 *
 * When a report path is set (`--report` / `TPRED_REPORT`), a
 * tpred-run-report/1 document with the run's config and process
 * metrics is written there at exit — every bench gets the report
 * surface without per-main plumbing.  Benches with richer lane data
 * additionally emit their own report via LaneReport (below).
 */
inline RunOptions
setup(int &argc, char **argv, size_t fallback_ops)
{
    RunOptions opts =
        RunOptions::fromEnvAndArgv(argc, argv, fallback_ops);
    opts.apply();
    if (!opts.reportPath.empty()) {
        detail::PendingReport &pending = detail::pendingReport();
        std::string tool = argv[0] != nullptr ? argv[0] : "bench";
        const size_t slash = tool.find_last_of('/');
        if (slash != std::string::npos)
            tool = tool.substr(slash + 1);
        pending.tool = tool;
        pending.path = opts.reportPath;
        pending.ops = opts.ops;
        // Construct the global registry *before* registering the
        // handler so it is destroyed after the handler runs.
        (void)obs::globalMetrics();
        std::atexit(+[] {
            const detail::PendingReport &p = detail::pendingReport();
            obs::RunReport report(p.tool);
            report.setConfig("ops", static_cast<uint64_t>(p.ops));
            try {
                report.captureProcess();
                report.write(p.path);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "%s\n", e.what());
            }
        });
    }
    return opts;
}

/**
 * Records one trace per named workload at the requested length,
 * through the shared trace cache, sharded across the runner.
 */
inline std::vector<SharedTrace>
recordAll(const std::vector<std::string> &names, size_t ops)
{
    const ParallelRunner runner;
    return runner.map<SharedTrace>(names.size(), [&](size_t i) {
        return cachedTrace(names[i], ops);
    });
}

/** The paper's headline pair (sections 4.2-4.4 report these two). */
inline std::vector<std::string>
headlinePair()
{
    return headlineWorkloads();
}

/** Prints a heading in the style used by all bench binaries. */
inline void
heading(const std::string &title, size_t ops)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("   (synthetic SPECint95-like workloads, %s "
                "instructions each; see DESIGN.md)\n\n",
                formatCount(ops).c_str());
}

/** Baseline cycle counts for a set of traces (BTB-only machine). */
inline std::vector<uint64_t>
baselineCycles(const std::vector<SharedTrace> &traces)
{
    const ParallelRunner runner;
    return runner.map<uint64_t>(traces.size(), [&](size_t i) {
        return runTiming(traces[i], baselineConfig()).cycles;
    });
}

/** Wall-clock stopwatch for the speedup lines in sweep benches. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Best-of-reps wall-clock throughput in Mops/s; @p lane returns a
 * checksum (stored into @p checksum) so the timed work cannot be
 * optimized away.
 */
template <typename Lane>
double
measureMops(size_t ops, unsigned reps, uint64_t &checksum, Lane &&lane)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        const Stopwatch timer;
        checksum = lane();
        const double secs = timer.seconds();
        if (secs > 0.0)
            best = std::max(best,
                            static_cast<double>(ops) / secs / 1e6);
    }
    return best;
}

/** measureMops() for lanes whose side effects are their own sink. */
template <typename Lane>
double
measureMops(size_t ops, unsigned reps, Lane &&lane)
{
    uint64_t ignored = 0;
    return measureMops(ops, reps, ignored, [&lane] {
        lane();
        return uint64_t{0};
    });
}

/** Field-by-field equality of two frontend statistic sets. */
inline bool
sameFrontendStats(const FrontendStats &a, const FrontendStats &b)
{
    auto ratio_eq = [](const RatioStat &x, const RatioStat &y) {
        return x.hits() == y.hits() && x.total() == y.total();
    };
    return a.instructions == b.instructions &&
           ratio_eq(a.allBranches, b.allBranches) &&
           ratio_eq(a.condDirection, b.condDirection) &&
           ratio_eq(a.condBranches, b.condBranches) &&
           ratio_eq(a.uncondDirect, b.uncondDirect) &&
           ratio_eq(a.indirectJumps, b.indirectJumps) &&
           ratio_eq(a.returns, b.returns) &&
           ratio_eq(a.btbHits, b.btbHits);
}

/**
 * Self-check gate for timed lanes: exits 1 unless @p got matches
 * @p want exactly — a bench must never report a speedup for a path
 * that computes different statistics.
 */
inline void
requireSameStats(const FrontendStats &want, const FrontendStats &got,
                 const char *what, const std::string &workload)
{
    if (sameFrontendStats(want, got))
        return;
    std::fprintf(stderr, "FATAL: %s disagrees with reference on %s\n",
                 what, workload.c_str());
    std::exit(1);
}

/**
 * Per-workload lane results plus the run-report plumbing every bench
 * repeated by hand before: collects lane values, and write() emits a
 * tpred-run-report/1 JSON file to $TPRED_BENCH_OUT (or the bench's
 * default path) with the process metrics captured.
 */
class LaneReport
{
  public:
    /** @param default_out Path written when $TPRED_BENCH_OUT is unset. */
    LaneReport(const char *tool, size_t ops, std::string default_out)
        : report_(tool), defaultOut_(std::move(default_out))
    {
        report_.setConfig("ops", static_cast<uint64_t>(ops));
    }

    /** Underlying report, for extra config entries or tables. */
    obs::RunReport &report() { return report_; }

    void
    value(const std::string &workload, const std::string &key,
          double v, int precision = 2)
    {
        report_.addWorkloadValue(workload, key, v, precision);
    }

    void
    value(const std::string &workload, const std::string &key,
          uint64_t v)
    {
        report_.addWorkloadValue(workload, key, v);
    }

    /**
     * Captures process metrics and writes the report; returns main()'s
     * exit code (1 with a message on I/O failure).
     */
    int
    write()
    {
        const char *env = std::getenv("TPRED_BENCH_OUT");
        const std::string path =
            env != nullptr && *env != '\0' ? env : defaultOut_;
        try {
            report_.captureProcess();
            report_.write(path);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
        std::printf("wrote %s\n", path.c_str());
        return 0;
    }

  private:
    obs::RunReport report_;
    std::string defaultOut_;
};

} // namespace tpred::bench

#endif // TPRED_BENCH_BENCH_UTIL_HH
