/** @file Shared helpers for the paper-table bench binaries. */

#ifndef TPRED_BENCH_BENCH_UTIL_HH
#define TPRED_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/paper_tables.hh"
#include "workloads/workload.hh"

namespace tpred::bench
{

/** Records one trace per named workload at the requested length. */
inline std::vector<SharedTrace>
recordAll(const std::vector<std::string> &names, size_t ops)
{
    std::vector<SharedTrace> traces;
    traces.reserve(names.size());
    for (const auto &name : names)
        traces.push_back(recordWorkload(name, ops));
    return traces;
}

/** The paper's headline pair (sections 4.2-4.4 report these two). */
inline std::vector<std::string>
headlinePair()
{
    return {"gcc", "perl"};
}

/** Prints a heading in the style used by all bench binaries. */
inline void
heading(const std::string &title, size_t ops)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("   (synthetic SPECint95-like workloads, %s "
                "instructions each; see DESIGN.md)\n\n",
                formatCount(ops).c_str());
}

/** Baseline cycle counts for a set of traces (BTB-only machine). */
inline std::vector<uint64_t>
baselineCycles(const std::vector<SharedTrace> &traces)
{
    std::vector<uint64_t> cycles;
    cycles.reserve(traces.size());
    for (const auto &trace : traces)
        cycles.push_back(runTiming(trace, baselineConfig()).cycles);
    return cycles;
}

} // namespace tpred::bench

#endif // TPRED_BENCH_BENCH_UTIL_HH
