/**
 * @file
 * BTB-pressure bench: the hierarchy x workload grid behind the
 * two-level BTB extension (docs/btb_hierarchy.md).
 *
 * Three hierarchy presets — the default 1K single-level BTB, a
 * 64-entry nano BTB, and the 64-entry L1 + 8K L2 two-level shape —
 * run against SPECint95-like and server-shaped workloads.  Server
 * code footprints overflow a small L1, so the grid shows where the
 * second level recovers BTB hit rate and BTB-miss fetch stalls that
 * SPECint-sized working sets never expose.
 *
 * An untimed self-check first requires the fused sweep kernel under
 * every hierarchy override to be bit-identical to the per-config
 * runAccuracy() path, so the reported numbers only come from proven
 * plumbing.  The timed lanes then measure fused-sweep throughput per
 * hierarchy (the two-level lookup does strictly more work per fetch;
 * the lane quantifies the simulation cost) with fold checksums that
 * must agree with the untimed reference.  Results go to stdout and
 * BENCH_btb.json (override with TPRED_BENCH_OUT) as a
 * tpred-run-report/1 document for tools/bench_compare.py.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/sweep_kernel.hh"

using namespace tpred;

namespace
{

inline uint64_t
fold(uint64_t acc, const FrontendStats &s)
{
    return acc * 0x9E3779B97F4A7C15ull +
           (s.indirectJumps.hits() ^ s.btbHits.hits());
}

/** One hierarchy preset: table label, report key prefix, front end. */
struct Variant
{
    const char *label;
    const char *key;
    FrontendConfig fe;
};

std::vector<Variant>
hierarchyVariants()
{
    return {
        {"1-level 1K", "l1_1k", FrontendConfig{}},
        {"1-level 64", "l1_64", smallBtbFrontend()},
        {"2-level 64+8K", "two_level", twoLevelBtbFrontend()},
    };
}

/** The per-variant sweep batch: BTB-only baseline + tagless cache. */
std::vector<IndirectConfig>
pressureConfigs()
{
    return {baselineConfig(), taglessGshare()};
}

/** Everything one (workload x hierarchy) cell reports. */
struct CellResult
{
    double btbHitRate = 0.0;       ///< baseline-config BTB hit rate
    double taglessMissRate = 0.0;  ///< indirect miss rate w/ tagless
    double stallPerKiloInstr = 0.0;///< BTB-miss bubble cyc / 1K instr
    double sweepMops = 0.0;        ///< fused-sweep throughput
};

CellResult
runCell(const SharedTrace &trace, const std::string &name,
        const Variant &variant, size_t ops, unsigned reps)
{
    const std::vector<IndirectConfig> configs = pressureConfigs();

    // Untimed gate: the fused sweep under this hierarchy must
    // reproduce every per-config runAccuracy() result bit for bit.
    // (This also builds the cached BranchStream, so the timed lane
    // measures the sweep itself.)
    const std::vector<FrontendStats> fused_ref =
        runSweep(trace, configs, variant.fe);
    for (size_t c = 0; c < configs.size(); ++c)
        bench::requireSameStats(
            runAccuracy(trace, configs[c], variant.fe), fused_ref[c],
            "fused sweep under a BTB hierarchy", name);
    uint64_t want_sum = 0;
    for (const FrontendStats &s : fused_ref)
        want_sum = fold(want_sum, s);

    CellResult cell;
    cell.btbHitRate = 1.0 - fused_ref[0].btbHits.missRate();
    cell.taglessMissRate = fused_ref[1].indirectJumps.missRate();

    const CoreResult timing =
        runTiming(trace, taglessGshare(), CoreParams{}, variant.fe);
    cell.stallPerKiloInstr =
        timing.instructions
            ? 1000.0 * static_cast<double>(timing.btbMissStallCycles) /
                  static_cast<double>(timing.instructions)
            : 0.0;

    const size_t aggregate_ops = ops * configs.size();
    uint64_t got_sum = 0;
    cell.sweepMops =
        bench::measureMops(aggregate_ops, reps, got_sum, [&] {
            uint64_t acc = 0;
            for (const FrontendStats &s :
                 runSweep(trace, configs, variant.fe))
                acc = fold(acc, s);
            return acc;
        });
    if (got_sum != want_sum) {
        std::fprintf(stderr,
                     "FATAL: %s sweep checksums disagree on %s\n",
                     variant.label, name.c_str());
        std::exit(1);
    }
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t ops = bench::setup(argc, argv, kDefaultTimingOps).ops;
    const unsigned reps = 3;
    bench::heading("BTB hierarchy pressure: SPECint95-like vs "
                   "server-shaped footprints",
                   ops);

    const std::vector<Variant> variants = hierarchyVariants();
    const std::vector<std::string> names = btbPressureWorkloads();
    const std::vector<SharedTrace> traces = bench::recordAll(names, ops);

    bench::LaneReport out("btb_pressure", ops, "BENCH_btb.json");
    out.report().setConfig(
        "configs", static_cast<uint64_t>(pressureConfigs().size()));
    for (const Variant &v : variants)
        out.report().setConfig(std::string(v.key) + "_btb",
                               v.fe.btb.describe());

    Table table;
    table.setHeader({"Benchmark", "BTB hierarchy", "BTB hits",
                     "tagless miss", "BTB-stall cyc/1K",
                     "sweep Mops/s"});
    for (size_t w = 0; w < names.size(); ++w) {
        if (w)
            table.addRule();
        for (const Variant &variant : variants) {
            const CellResult cell =
                runCell(traces[w], names[w], variant, ops, reps);

            char buf[64];
            std::vector<std::string> row = {
                &variant == &variants.front() ? names[w] : "",
                variant.label,
                formatPercent(cell.btbHitRate, 1),
                formatPercent(cell.taglessMissRate, 1),
            };
            std::snprintf(buf, sizeof(buf), "%.1f",
                          cell.stallPerKiloInstr);
            row.push_back(buf);
            std::snprintf(buf, sizeof(buf), "%.1f", cell.sweepMops);
            row.push_back(buf);
            table.addRow(row);

            const std::string prefix = variant.key;
            out.value(names[w], prefix + "_btb_hit_pct",
                      100.0 * cell.btbHitRate);
            out.value(names[w], prefix + "_tagless_miss_pct",
                      100.0 * cell.taglessMissRate);
            out.value(names[w], prefix + "_stall_per_1k",
                      cell.stallPerKiloInstr);
            out.value(names[w], prefix + "_sweep_mops", cell.sweepMops,
                      1);
        }
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("paper-style grid (renderBtbPressure):\n%s\n",
                renderBtbPressure({.ops = ops}).c_str());
    return out.write();
}
