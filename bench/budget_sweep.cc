/**
 * @file
 * Hardware-budget sweep (implied by the paper's §4.2 cost equations):
 * misprediction rate versus predictor storage for the tagless and
 * tagged organisations, at matched budgets.  The tagged cache pays
 * for tags with entry count — the trade the paper quantifies with its
 * "target cache(n) = 32 x n bits" accounting.
 *
 * Pass "csv" as the second argument for machine-readable output.
 */

#include <cstring>

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultAccuracyOps);
    const bool csv = argc > 2 && std::strcmp(argv[2], "csv") == 0;
    if (!csv)
        bench::heading("Budget sweep: misprediction rate vs predictor "
                       "storage (tagless vs tagged 4-way)",
                       ops);

    // Matched-budget pairs: a tagged entry costs 48 bits vs the
    // tagless 32, so a 2^n tagless cache pairs with ~2/3 the tagged
    // entries; we round to the nearest power-of-two-friendly count.
    struct Point
    {
        unsigned taglessBits;   ///< log2 tagless entries
        unsigned taggedEntries; ///< same budget at 48 bits/entry
    };
    const std::vector<Point> points = {
        {7, 84}, {8, 168}, {9, 340}, {10, 680}, {11, 1364},
    };

    for (const auto &name : bench::headlinePair()) {
        SharedTrace trace = recordWorkload(name, ops);
        Table table;
        table.setHeader({"budget (bytes)", "tagless entries",
                         "tagless miss", "tagged entries",
                         "tagged miss"});
        for (const Point &point : points) {
            // Tagged entry counts must be a multiple of ways=4.
            const unsigned tagged_entries =
                point.taggedEntries / 4 * 4;
            IndirectConfig tagless =
                taglessGshare(patternHistory(9), point.taglessBits);
            IndirectConfig tagged =
                taggedConfig(TaggedIndexScheme::HistoryXor, 4,
                             patternHistory(9), tagged_entries);

            auto tagless_stack = buildStack(tagless);
            const uint64_t budget =
                tagless_stack.predictor->costBits() / 8;

            table.addRow({
                std::to_string(budget),
                std::to_string(1u << point.taglessBits),
                formatPercent(runAccuracy(trace, tagless)
                                  .indirectJumps.missRate(),
                              1),
                std::to_string(tagged_entries),
                formatPercent(runAccuracy(trace, tagged)
                                  .indirectJumps.missRate(),
                              1),
            });
        }
        if (csv) {
            std::printf("# %s\n%s", name.c_str(),
                        table.renderCsv().c_str());
        } else {
            std::printf("[%s]\n%s\n", name.c_str(),
                        table.render().c_str());
        }
    }
    return 0;
}
