/**
 * @file
 * Hardware-budget sweep (implied by the paper's §4.2 cost equations):
 * misprediction rate versus predictor storage for the tagless and
 * tagged organisations, at matched budgets.  The tagged cache pays
 * for tags with entry count — the trade the paper quantifies with its
 * "target cache(n) = 32 x n bits" accounting.
 *
 * The cell grid is evaluated twice — once serially, once through the
 * parallel experiment engine — and the wall-clock speedup is reported
 * so BENCH_*.json can track the scaling trajectory.  Traces are
 * recorded up front through the shared cache so both timings measure
 * only the sweep itself.
 *
 * Pass "csv" as the second argument for machine-readable output.
 */

#include <cstring>

#include "bench_util.hh"
#include "harness/sweep_kernel.hh"

using namespace tpred;

namespace
{

/** Matched-budget pairs: a tagged entry costs 48 bits vs the tagless
 *  32, so a 2^n tagless cache pairs with ~2/3 the tagged entries; we
 *  round to the nearest power-of-two-friendly count. */
struct Point
{
    unsigned taglessBits;   ///< log2 tagless entries
    unsigned taggedEntries; ///< same budget at 48 bits/entry
};

const std::vector<Point> kPoints = {
    {7, 84}, {8, 168}, {9, 340}, {10, 680}, {11, 1364},
};

IndirectConfig
taglessAt(const Point &point)
{
    return taglessGshare(patternHistory(9), point.taglessBits);
}

IndirectConfig
taggedAt(const Point &point)
{
    // Tagged entry counts must be a multiple of ways=4.
    return taggedConfig(TaggedIndexScheme::HistoryXor, 4,
                        patternHistory(9),
                        point.taggedEntries / 4 * 4);
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultAccuracyOps).ops;
    // bench::setup() consumed the leading instruction count, so the
    // optional output selector is now argv[1].
    const bool csv = argc > 1 && std::strcmp(argv[1], "csv") == 0;
    if (!csv)
        bench::heading("Budget sweep: misprediction rate vs predictor "
                       "storage (tagless vs tagged 4-way)",
                       ops);

    const std::vector<std::string> names = bench::headlinePair();
    const std::vector<SharedTrace> traces = bench::recordAll(names, ops);

    // Flattened grid: (workload x point x {tagless, tagged}).  Every
    // point shares patternHistory(9), so the whole per-workload grid
    // collapses into one fused sweep; the job unit in both lanes is
    // (workload x history-group).
    const size_t per_workload = kPoints.size() * 2;
    const size_t cell_count = names.size() * per_workload;
    std::vector<IndirectConfig> configs;
    configs.reserve(per_workload);
    for (const Point &point : kPoints) {
        configs.push_back(taglessAt(point));
        configs.push_back(taggedAt(point));
    }
    const auto groups = groupByHistory(configs);
    const size_t job_count = names.size() * groups.size();
    const auto job = [&](size_t j) {
        const SharedTrace &trace = traces[j / groups.size()];
        const auto &group = groups[j % groups.size()];
        std::vector<IndirectConfig> batch;
        batch.reserve(group.size());
        for (size_t c : group)
            batch.push_back(configs[c]);
        std::vector<double> rates;
        rates.reserve(group.size());
        for (const FrontendStats &s : runSweep(trace, batch))
            rates.push_back(s.indirectJumps.missRate());
        return rates;
    };
    const auto scatter =
        [&](const std::vector<std::vector<double>> &parts) {
            std::vector<double> flat(cell_count);
            for (size_t w = 0; w < names.size(); ++w)
                for (size_t g = 0; g < groups.size(); ++g)
                    for (size_t k = 0; k < groups[g].size(); ++k)
                        flat[w * per_workload + groups[g][k]] =
                            parts[w * groups.size() + g][k];
            return flat;
        };

    bench::Stopwatch serial_watch;
    std::vector<std::vector<double>> serial_parts;
    serial_parts.reserve(job_count);
    for (size_t j = 0; j < job_count; ++j)
        serial_parts.push_back(job(j));
    const std::vector<double> serial_cells = scatter(serial_parts);
    const double serial_s = serial_watch.seconds();

    const ParallelRunner runner;
    bench::Stopwatch parallel_watch;
    const std::vector<double> cells =
        scatter(runner.map<std::vector<double>>(job_count, job));
    const double parallel_s = parallel_watch.seconds();

    const bool identical =
        std::memcmp(cells.data(), serial_cells.data(),
                    cell_count * sizeof(double)) == 0;

    for (size_t w = 0; w < names.size(); ++w) {
        Table table;
        table.setHeader({"budget (bytes)", "tagless entries",
                         "tagless miss", "tagged entries",
                         "tagged miss"});
        for (size_t p = 0; p < kPoints.size(); ++p) {
            const Point &point = kPoints[p];
            auto tagless_stack = buildStack(taglessAt(point));
            const uint64_t budget =
                tagless_stack.predictor->costBits() / 8;
            table.addRow({
                std::to_string(budget),
                std::to_string(1u << point.taglessBits),
                formatPercent(cells[w * per_workload + p * 2], 1),
                std::to_string(point.taggedEntries / 4 * 4),
                formatPercent(cells[w * per_workload + p * 2 + 1], 1),
            });
        }
        if (csv) {
            std::printf("# %s\n%s", names[w].c_str(),
                        table.renderCsv().c_str());
        } else {
            std::printf("[%s]\n%s\n", names[w].c_str(),
                        table.render().c_str());
        }
    }

    const double speedup =
        parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    if (csv) {
        std::printf("# speedup_x,serial_s,parallel_s,jobs,identical\n"
                    "# %.2f,%.3f,%.3f,%u,%d\n",
                    speedup, serial_s, parallel_s, runner.threads(),
                    identical ? 1 : 0);
    } else {
        std::printf("parallel vs serial: %s (bit-identical cells)\n",
                    identical ? "ok" : "MISMATCH");
        std::printf("parallel speedup: %.2fx (serial %.3fs, parallel "
                    "%.3fs, %u jobs)\n",
                    speedup, serial_s, parallel_s, runner.threads());
    }
    return identical ? 0 : 1;
}
