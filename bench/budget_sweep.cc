/**
 * @file
 * Hardware-budget sweep (implied by the paper's §4.2 cost equations):
 * misprediction rate versus predictor storage for the tagless and
 * tagged organisations, at matched budgets.  The tagged cache pays
 * for tags with entry count — the trade the paper quantifies with its
 * "target cache(n) = 32 x n bits" accounting.
 *
 * The cell grid is evaluated twice — once serially, once through the
 * parallel experiment engine — and the wall-clock speedup is reported
 * so BENCH_*.json can track the scaling trajectory.  Traces are
 * recorded up front through the shared cache so both timings measure
 * only the sweep itself.
 *
 * Pass "csv" as the second argument for machine-readable output.
 */

#include <cstring>

#include "bench_util.hh"

using namespace tpred;

namespace
{

/** Matched-budget pairs: a tagged entry costs 48 bits vs the tagless
 *  32, so a 2^n tagless cache pairs with ~2/3 the tagged entries; we
 *  round to the nearest power-of-two-friendly count. */
struct Point
{
    unsigned taglessBits;   ///< log2 tagless entries
    unsigned taggedEntries; ///< same budget at 48 bits/entry
};

const std::vector<Point> kPoints = {
    {7, 84}, {8, 168}, {9, 340}, {10, 680}, {11, 1364},
};

IndirectConfig
taglessAt(const Point &point)
{
    return taglessGshare(patternHistory(9), point.taglessBits);
}

IndirectConfig
taggedAt(const Point &point)
{
    // Tagged entry counts must be a multiple of ways=4.
    return taggedConfig(TaggedIndexScheme::HistoryXor, 4,
                        patternHistory(9),
                        point.taggedEntries / 4 * 4);
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultAccuracyOps).ops;
    // bench::setup() consumed the leading instruction count, so the
    // optional output selector is now argv[1].
    const bool csv = argc > 1 && std::strcmp(argv[1], "csv") == 0;
    if (!csv)
        bench::heading("Budget sweep: misprediction rate vs predictor "
                       "storage (tagless vs tagged 4-way)",
                       ops);

    const std::vector<std::string> names = bench::headlinePair();
    const std::vector<SharedTrace> traces = bench::recordAll(names, ops);

    // Flattened grid: (workload x point x {tagless, tagged}).
    const size_t per_workload = kPoints.size() * 2;
    const size_t cell_count = names.size() * per_workload;
    const auto cell = [&](size_t j) {
        const SharedTrace &trace = traces[j / per_workload];
        const Point &point = kPoints[j % per_workload / 2];
        const IndirectConfig config =
            j % 2 == 0 ? taglessAt(point) : taggedAt(point);
        return runAccuracy(trace, config).indirectJumps.missRate();
    };

    bench::Stopwatch serial_watch;
    std::vector<double> serial_cells;
    serial_cells.reserve(cell_count);
    for (size_t j = 0; j < cell_count; ++j)
        serial_cells.push_back(cell(j));
    const double serial_s = serial_watch.seconds();

    const ParallelRunner runner;
    bench::Stopwatch parallel_watch;
    const std::vector<double> cells =
        runner.map<double>(cell_count, cell);
    const double parallel_s = parallel_watch.seconds();

    const bool identical =
        std::memcmp(cells.data(), serial_cells.data(),
                    cell_count * sizeof(double)) == 0;

    for (size_t w = 0; w < names.size(); ++w) {
        Table table;
        table.setHeader({"budget (bytes)", "tagless entries",
                         "tagless miss", "tagged entries",
                         "tagged miss"});
        for (size_t p = 0; p < kPoints.size(); ++p) {
            const Point &point = kPoints[p];
            auto tagless_stack = buildStack(taglessAt(point));
            const uint64_t budget =
                tagless_stack.predictor->costBits() / 8;
            table.addRow({
                std::to_string(budget),
                std::to_string(1u << point.taglessBits),
                formatPercent(cells[w * per_workload + p * 2], 1),
                std::to_string(point.taggedEntries / 4 * 4),
                formatPercent(cells[w * per_workload + p * 2 + 1], 1),
            });
        }
        if (csv) {
            std::printf("# %s\n%s", names[w].c_str(),
                        table.renderCsv().c_str());
        } else {
            std::printf("[%s]\n%s\n", names[w].c_str(),
                        table.render().c_str());
        }
    }

    const double speedup =
        parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
    if (csv) {
        std::printf("# speedup_x,serial_s,parallel_s,jobs,identical\n"
                    "# %.2f,%.3f,%.3f,%u,%d\n",
                    speedup, serial_s, parallel_s, runner.threads(),
                    identical ? 1 : 0);
    } else {
        std::printf("parallel vs serial: %s (bit-identical cells)\n",
                    identical ? "ok" : "MISMATCH");
        std::printf("parallel speedup: %.2fx (serial %.3fs, parallel "
                    "%.3fs, %u jobs)\n",
                    speedup, serial_s, parallel_s, runner.threads());
    }
    return identical ? 0 : 1;
}
