/**
 * @file
 * Corpus-load microbenchmark: what does the persistent trace corpus
 * buy over regenerating a workload?  Three acquisition lanes per
 * SPECint95-analogue workload:
 *
 *   regen — run the synthetic workload generator and columnar-encode
 *           the stream (what every process pays without a corpus);
 *   cold  — map the corpus container after advising its pages out of
 *           the page cache (POSIX_FADV_DONTNEED), then validate all
 *           section CRCs — an approximation of first touch after
 *           reboot;
 *   warm  — map and validate with the page cache hot, the steady
 *           state for every corpus consumer after the first.
 *
 * The timed region is full trace acquisition: open, structural
 * validation, CRC32C over every payload byte (which also faults every
 * page in, so the cold lane honestly pays its I/O).  An untimed
 * self-check first replays the regenerated and the mmap-loaded trace
 * through identical predictor stacks and requires bit-identical
 * FrontendStats — the speedup is only reported for a load path proven
 * semantically equivalent to regeneration.  Results go to stdout and
 * BENCH_corpus.json (override with TPRED_BENCH_OUT) for
 * tools/bench_compare.py.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/frontend_predictor.hh"
#include "corpus/corpus.hh"
#include "corpus/mapped_file.hh"
#include "trace/compact_io.hh"

using namespace tpred;

namespace
{

/** Best-of-reps acquisition throughput in Mops/s. */
template <typename Lane>
double
measure(size_t ops, unsigned reps, Lane &&lane)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        const bench::Stopwatch timer;
        lane();
        const double secs = timer.seconds();
        if (secs > 0.0)
            best = std::max(best,
                            static_cast<double>(ops) / secs / 1e6);
    }
    return best;
}

FrontendStats
statsOf(const CompactTrace &trace)
{
    const IndirectConfig config = taglessGshare();
    PredictorStack stack = buildStack(config);
    FrontendPredictor frontend(FrontendConfig{}, stack.predictor.get(),
                               stack.tracker.get());
    trace.forEachOp(
        [&frontend](const MicroOp &op) { frontend.onInstruction(op); });
    return frontend.stats();
}

bool
sameStats(const FrontendStats &a, const FrontendStats &b)
{
    auto ratio_eq = [](const RatioStat &x, const RatioStat &y) {
        return x.hits() == y.hits() && x.total() == y.total();
    };
    return a.instructions == b.instructions &&
           ratio_eq(a.allBranches, b.allBranches) &&
           ratio_eq(a.condDirection, b.condDirection) &&
           ratio_eq(a.condBranches, b.condBranches) &&
           ratio_eq(a.uncondDirect, b.uncondDirect) &&
           ratio_eq(a.indirectJumps, b.indirectJumps) &&
           ratio_eq(a.returns, b.returns) &&
           ratio_eq(a.btbHits, b.btbHits);
}

/** One timed mmap acquisition (cold or warm); returns op count. */
size_t
mapOnce(const std::string &path, bool drop_cache)
{
    const auto mapping = MappedFile::open(path, drop_cache);
    std::string name;
    const CompactTrace trace =
        openCompactContainer(mapping->bytes(), mapping, name, path);
    return trace.size();
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultAccuracyOps);
    const uint64_t seed = 1;
    const unsigned reps = 5;
    bench::heading(
        "Corpus acquisition: workload regeneration vs checksummed "
        "zero-copy mmap load",
        ops);

    const char *dir = std::getenv("TPRED_CORPUS_DIR");
    const std::string corpus_dir =
        dir != nullptr && *dir != '\0' ? dir : "bench_corpus";
    CorpusManager corpus(corpus_dir);

    const auto &names = spec95Names();
    Table table;
    table.setHeader({"Benchmark", "regen Mops/s", "cold Mops/s",
                     "warm Mops/s", "warm speedup", "file bytes"});

    std::string json = "{\n  \"ops\": " + std::to_string(ops) +
                       ",\n  \"workloads\": {\n";
    size_t ge5x = 0;
    for (size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const CorpusKey key{name, seed, ops};

        // --- Populate (untimed) and self-check: the mmap-loaded
        // trace must drive a predictor to the regenerated trace's
        // exact statistics before its load speed means anything.
        const SharedTrace generated = recordWorkload(name, ops, seed);
        corpus.store(key, generated.compact(), generated.name());
        const auto loaded = corpus.load(key);
        if (!loaded) {
            std::fprintf(stderr,
                         "FATAL: stored corpus entry for %s failed "
                         "to load\n",
                         name.c_str());
            return 1;
        }
        if (!sameStats(statsOf(generated.compact()),
                       statsOf(*loaded))) {
            std::fprintf(stderr,
                         "FATAL: corpus load disagrees with "
                         "regeneration on %s\n",
                         name.c_str());
            return 1;
        }

        const std::string path = corpus.pathFor(key);
        const size_t trace_ops = generated.size();

        const double regen_mops = measure(trace_ops, 2, [&] {
            recordWorkload(name, ops, seed);
        });
        const double cold_mops = measure(trace_ops, reps, [&] {
            mapOnce(path, /*drop_cache=*/true);
        });
        const double warm_mops = measure(trace_ops, reps, [&] {
            mapOnce(path, /*drop_cache=*/false);
        });

        const double speedup =
            regen_mops > 0.0 ? warm_mops / regen_mops : 0.0;
        if (speedup >= 5.0)
            ++ge5x;

        uint64_t file_bytes = 0;
        for (const CorpusEntry &e : corpus.list(false))
            if (e.file == CorpusManager::fileName(key))
                file_bytes = e.fileBytes;

        char buf[64];
        std::vector<std::string> row = {name};
        std::snprintf(buf, sizeof(buf), "%.1f", regen_mops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f", cold_mops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f", warm_mops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1fx", speedup);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(file_bytes));
        row.push_back(buf);
        table.addRow(row);

        std::snprintf(buf, sizeof(buf), "%.2f", regen_mops);
        json += "    \"" + name + "\": {\"regen_mops\": " + buf;
        std::snprintf(buf, sizeof(buf), "%.2f", cold_mops);
        json += std::string(", \"cold_mops\": ") + buf;
        std::snprintf(buf, sizeof(buf), "%.2f", warm_mops);
        json += std::string(", \"warm_mops\": ") + buf;
        std::snprintf(buf, sizeof(buf), "%.2f", speedup);
        json += std::string(", \"warm_speedup\": ") + buf;
        json += ", \"file_bytes\": " + std::to_string(file_bytes) +
                "}";
        json += (w + 1 < names.size()) ? ",\n" : "\n";
    }
    json += "  }\n}\n";

    std::printf("%s\n", table.render().c_str());
    std::printf("warm speedup = checksummed mmap load vs workload "
                "regeneration, equal op budgets; >=5x on %zu of %zu "
                "workloads\n",
                ge5x, names.size());

    const char *out_path = std::getenv("TPRED_BENCH_OUT");
    if (!out_path)
        out_path = "BENCH_corpus.json";
    if (std::FILE *f = std::fopen(out_path, "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("wrote %s\n", out_path);
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    return 0;
}
