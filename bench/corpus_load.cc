/**
 * @file
 * Corpus-load microbenchmark: what does the persistent trace corpus
 * buy over regenerating a workload?  Three acquisition lanes per
 * SPECint95-analogue workload:
 *
 *   regen — run the synthetic workload generator and columnar-encode
 *           the stream (what every process pays without a corpus);
 *   cold  — map the corpus container after advising its pages out of
 *           the page cache (POSIX_FADV_DONTNEED), then validate all
 *           section CRCs — an approximation of first touch after
 *           reboot;
 *   warm  — map and validate with the page cache hot, the steady
 *           state for every corpus consumer after the first.
 *
 * The timed region is full trace acquisition: open, structural
 * validation, CRC32C over every payload byte (which also faults every
 * page in, so the cold lane honestly pays its I/O).  An untimed
 * self-check first replays the regenerated and the mmap-loaded trace
 * through identical predictor stacks and requires bit-identical
 * FrontendStats — the speedup is only reported for a load path proven
 * semantically equivalent to regeneration.  Results go to stdout and
 * BENCH_corpus.json (override with TPRED_BENCH_OUT) as a
 * tpred-run-report/1 document for tools/bench_compare.py.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "corpus/corpus.hh"
#include "corpus/mapped_file.hh"
#include "trace/compact_io.hh"

using namespace tpred;

namespace
{

FrontendStats
statsOf(const CompactTrace &trace)
{
    const IndirectConfig config = taglessGshare();
    PredictorStack stack = buildStack(config);
    FrontendPredictor frontend(FrontendConfig{}, stack.predictor.get(),
                               stack.tracker.get());
    trace.forEachOp(
        [&frontend](const MicroOp &op) { frontend.onInstruction(op); });
    return frontend.stats();
}

/** One timed mmap acquisition (cold or warm); returns op count. */
size_t
mapOnce(const std::string &path, bool drop_cache)
{
    const auto mapping = MappedFile::open(path, drop_cache);
    std::string name;
    const CompactTrace trace =
        openCompactContainer(mapping->bytes(), mapping, name, path);
    return trace.size();
}

} // namespace

int
main(int argc, char **argv)
{
    const RunOptions opts =
        bench::setup(argc, argv, kDefaultAccuracyOps);
    const size_t ops = opts.ops;
    const uint64_t seed = 1;
    const unsigned reps = 5;
    bench::heading(
        "Corpus acquisition: workload regeneration vs checksummed "
        "zero-copy mmap load",
        ops);

    const std::string corpus_dir =
        !opts.corpusDir.empty() ? opts.corpusDir : "bench_corpus";
    CorpusManager corpus(corpus_dir);

    const auto &names = spec95Names();
    Table table;
    table.setHeader({"Benchmark", "regen Mops/s", "cold Mops/s",
                     "warm Mops/s", "warm speedup", "file bytes"});

    bench::LaneReport out("corpus_load", ops, "BENCH_corpus.json");
    size_t ge5x = 0;
    for (size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const CorpusKey key{name, seed, ops};

        // --- Populate (untimed) and self-check: the mmap-loaded
        // trace must drive a predictor to the regenerated trace's
        // exact statistics before its load speed means anything.
        const SharedTrace generated = recordWorkload(name, ops, seed);
        corpus.store(key, generated.compact(), generated.name());
        const auto loaded = corpus.load(key);
        if (!loaded) {
            std::fprintf(stderr,
                         "FATAL: stored corpus entry for %s failed "
                         "to load\n",
                         name.c_str());
            return 1;
        }
        bench::requireSameStats(statsOf(generated.compact()),
                                statsOf(*loaded), "corpus load",
                                name);

        const std::string path = corpus.pathFor(key);
        const size_t trace_ops = generated.size();

        const double regen_mops = bench::measureMops(trace_ops, 2, [&] {
            recordWorkload(name, ops, seed);
        });
        const double cold_mops =
            bench::measureMops(trace_ops, reps, [&] {
                mapOnce(path, /*drop_cache=*/true);
            });
        const double warm_mops =
            bench::measureMops(trace_ops, reps, [&] {
                mapOnce(path, /*drop_cache=*/false);
            });

        const double speedup =
            regen_mops > 0.0 ? warm_mops / regen_mops : 0.0;
        if (speedup >= 5.0)
            ++ge5x;

        uint64_t file_bytes = 0;
        for (const CorpusEntry &e : corpus.list(false))
            if (e.file == CorpusManager::fileName(key))
                file_bytes = e.fileBytes;

        char buf[64];
        std::vector<std::string> row = {name};
        std::snprintf(buf, sizeof(buf), "%.1f", regen_mops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f", cold_mops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f", warm_mops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1fx", speedup);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(file_bytes));
        row.push_back(buf);
        table.addRow(row);

        out.value(name, "regen_mops", regen_mops);
        out.value(name, "cold_mops", cold_mops);
        out.value(name, "warm_mops", warm_mops);
        out.value(name, "warm_speedup", speedup);
        out.value(name, "file_bytes", file_bytes);
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("warm speedup = checksummed mmap load vs workload "
                "regeneration, equal op budgets; >=5x on %zu of %zu "
                "workloads\n",
                ge5x, names.size());

    return out.write();
}
