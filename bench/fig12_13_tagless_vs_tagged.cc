/**
 * @file
 * Figures 12-13: 512-entry tagless target cache versus 256-entry
 * tagged target caches across set associativities (the tagged cache
 * has half the entries to pay for its tags).  The paper's crossover:
 * the tagless cache beats low-associativity tagged caches, while a
 * tagged cache with >= 4 ways beats the tagless one.
 *
 * Metric: reduction in execution time over the BTB-only baseline,
 * printed as a series over associativity.
 *
 * Thin wrapper over renderFig1213(); the grid runs on the parallel
 * experiment engine.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultTimingOps).ops;
    bench::heading("Figures 12-13: tagged (256-entry) vs tagless "
                   "(512-entry) target cache (reduction in execution "
                   "time vs set-associativity)",
                   ops);
    std::printf("%s", renderFig1213({.ops = ops}).c_str());
    return 0;
}
