/**
 * @file
 * Figures 12-13: 512-entry tagless target cache versus 256-entry
 * tagged target caches across set associativities (the tagged cache
 * has half the entries to pay for its tags).  The paper's crossover:
 * the tagless cache beats low-associativity tagged caches, while a
 * tagged cache with >= 4 ways beats the tagless one.
 *
 * Metric: reduction in execution time over the BTB-only baseline,
 * printed as a series over associativity.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultTimingOps);
    bench::heading("Figures 12-13: tagged (256-entry) vs tagless "
                   "(512-entry) target cache (reduction in execution "
                   "time vs set-associativity)",
                   ops);

    const std::vector<unsigned> assocs = {1, 2, 4, 8, 16};

    for (const auto &name : bench::headlinePair()) {
        SharedTrace trace = recordWorkload(name, ops);
        const uint64_t base = runTiming(trace, baselineConfig()).cycles;

        const double tagless = reductionOver(base, trace,
                                             taglessGshare());
        Table table;
        table.setHeader({"set-assoc.", "w/ tags (256-entry)",
                         "w/o tags (512-entry)"});
        for (unsigned ways : assocs) {
            double tagged = reductionOver(
                base, trace,
                taggedConfig(TaggedIndexScheme::HistoryXor, ways));
            table.addRow({std::to_string(ways),
                          formatPercent(tagged, 2),
                          formatPercent(tagless, 2)});
        }
        std::printf("[%s]\n%s\n", name.c_str(),
                    table.render().c_str());
    }
    return 0;
}
