/**
 * @file
 * Figures 1-8: "Number of Targets per Indirect Jump" — for each
 * benchmark, the distribution of dynamic indirect jumps over the
 * number of distinct targets their static site exhibits, with the
 * paper's ">=30" overflow bucket.
 */

#include "bench_util.hh"
#include "trace/trace_stats.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultAccuracyOps);
    bench::heading("Figures 1-8: number of targets per indirect jump",
                   ops);

    for (const auto &name : spec95Names()) {
        auto workload = makeWorkload(name);
        TraceProfile profile = profileTrace(*workload, ops);
        Histogram hist = profile.targets.buildHistogram();
        std::printf("%s\n",
                    hist.render("Figure (" + name + "): % of dynamic "
                                "indirect jumps by targets of their "
                                "static site")
                        .c_str());
        std::printf("  static sites: %zu, dynamic indirect jumps: %s\n\n",
                    profile.targets.staticSites(),
                    formatCount(profile.targets.dynamicJumps()).c_str());
    }
    return 0;
}
