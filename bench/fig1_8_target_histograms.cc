/**
 * @file
 * Figures 1-8: "Number of Targets per Indirect Jump" — for each
 * benchmark, the distribution of dynamic indirect jumps over the
 * number of distinct targets their static site exhibits, with the
 * paper's ">=30" overflow bucket.
 */

#include "bench_util.hh"
#include "trace/trace_stats.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultAccuracyOps).ops;
    bench::heading("Figures 1-8: number of targets per indirect jump",
                   ops);

    const auto &names = spec95Names();
    // One job per benchmark: profile its (cached) trace and render the
    // whole figure block; blocks print afterwards in benchmark order.
    const auto blocks = ParallelRunner().map<std::string>(
        names.size(), [&](size_t w) {
            const std::string &name = names[w];
            TraceProfile profile;
            cachedTrace(name, ops).forEachOp([&](const MicroOp &op) {
                profile.counts.observe(op);
                profile.targets.observe(op);
            });
            Histogram hist = profile.targets.buildHistogram();
            std::string block =
                hist.render("Figure (" + name + "): % of dynamic "
                            "indirect jumps by targets of their "
                            "static site") +
                "\n  static sites: " +
                std::to_string(profile.targets.staticSites()) +
                ", dynamic indirect jumps: " +
                formatCount(profile.targets.dynamicJumps()) + "\n\n";
            return block;
        });
    for (const auto &block : blocks)
        std::printf("%s", block.c_str());
    return 0;
}
