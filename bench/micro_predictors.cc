/**
 * @file
 * google-benchmark microbenchmarks: raw lookup/update throughput of
 * the predictor structures, and trace-generation speed.  These are
 * engineering benchmarks for users embedding the library, not paper
 * reproductions.
 */

#include <benchmark/benchmark.h>

#include "bpred/btb.hh"
#include "bpred/history.hh"
#include "core/cascaded.hh"
#include "core/tagged_target_cache.hh"
#include "core/tagless_target_cache.hh"
#include "trace/trace_source.hh"
#include "workloads/workload.hh"

namespace
{

using namespace tpred;

void
BM_TaglessPredictUpdate(benchmark::State &state)
{
    TaglessConfig config;
    config.entryBits = static_cast<unsigned>(state.range(0));
    TaglessTargetCache cache(config);
    uint64_t i = 0;
    for (auto _ : state) {
        const uint64_t pc = 0x1000 + (i % 64) * 4;
        const uint64_t hist = i * 0x9e37;
        benchmark::DoNotOptimize(cache.predict(pc, hist));
        cache.update(pc, hist, 0x4000 + (i & 0xff) * 4);
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_TaglessPredictUpdate)->Arg(9)->Arg(12);

void
BM_TaggedPredictUpdate(benchmark::State &state)
{
    TaggedConfig config;
    config.ways = static_cast<unsigned>(state.range(0));
    TaggedTargetCache cache(config);
    uint64_t i = 0;
    for (auto _ : state) {
        const uint64_t pc = 0x1000 + (i % 64) * 4;
        const uint64_t hist = i * 0x9e37;
        benchmark::DoNotOptimize(cache.predict(pc, hist));
        cache.update(pc, hist, 0x4000 + (i & 0xff) * 4);
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_TaggedPredictUpdate)->Arg(1)->Arg(4)->Arg(16);

void
BM_CascadedPredictUpdate(benchmark::State &state)
{
    CascadedPredictor pred(CascadedConfig{});
    uint64_t i = 0;
    for (auto _ : state) {
        const uint64_t pc = 0x1000 + (i % 64) * 4;
        const uint64_t hist = i * 0x9e37;
        benchmark::DoNotOptimize(pred.predict(pc, hist));
        pred.update(pc, hist, 0x4000 + (i & 0xff) * 4);
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_CascadedPredictUpdate);

void
BM_BtbLookupUpdate(benchmark::State &state)
{
    Btb btb(BtbConfig{});
    MicroOp op;
    op.cls = InstClass::Branch;
    op.branch = BranchKind::IndirectJump;
    op.taken = true;
    uint64_t i = 0;
    for (auto _ : state) {
        op.pc = 0x1000 + (i % 512) * 4;
        op.fallthrough = op.pc + 4;
        op.nextPc = 0x4000 + (i & 0xff) * 4;
        benchmark::DoNotOptimize(btb.lookup(op.pc));
        btb.update(op);
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_BtbLookupUpdate);

void
BM_HistoryTrackerObserve(benchmark::State &state)
{
    HistorySpec spec;
    spec.kind = static_cast<HistoryKind>(state.range(0));
    spec.lengthBits = 9;
    spec.path = PathSpec{9, 1, 2};
    HistoryTracker tracker(spec);
    MicroOp op;
    op.cls = InstClass::Branch;
    op.branch = BranchKind::IndirectJump;
    op.taken = true;
    uint64_t i = 0;
    for (auto _ : state) {
        op.pc = 0x1000 + (i % 16) * 4;
        op.nextPc = 0x4000 + (i & 0x3f) * 4;
        tracker.observe(op);
        benchmark::DoNotOptimize(tracker.valueFor(op.pc));
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_HistoryTrackerObserve)->Arg(0)->Arg(1)->Arg(2);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    const auto &names = allWorkloadNames();
    const std::string name = names[static_cast<size_t>(state.range(0))];
    state.SetLabel(name);
    auto workload = makeWorkload(name);
    MicroOp op;
    uint64_t i = 0;
    for (auto _ : state) {
        workload->next(op);
        benchmark::DoNotOptimize(op);
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_WorkloadGeneration)->DenseRange(0, 8);

} // namespace

BENCHMARK_MAIN();
