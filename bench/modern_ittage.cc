/**
 * @file
 * Lineage bench: from the 1997 target cache to a modern ITTAGE-style
 * predictor.  The target cache fixed ONE history length per design;
 * ITTAGE (Seznec) keeps tagged components at geometric history lengths
 * and picks the longest match — the design that descends directly from
 * this paper's idea and ships in modern cores.
 *
 * Printed per benchmark: indirect misprediction rate for the BTB, the
 * paper's tagless and tagged caches, the cascaded two-stage predictor,
 * and ITTAGE, with storage budgets.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultAccuracyOps).ops;
    bench::heading("Lineage: target cache (1997) to ITTAGE "
                   "(indirect-jump misprediction rate)",
                   ops);

    const std::vector<std::pair<std::string, IndirectConfig>> configs = {
        {"BTB", baselineConfig()},
        {"tagless-512", taglessGshare()},
        {"tagged-4w", taggedConfig(TaggedIndexScheme::HistoryXor, 4)},
        {"tagged-16w-h16",
         taggedConfig(TaggedIndexScheme::HistoryXor, 16,
                      patternHistory(16))},
        {"cascaded", cascadedConfig()},
        {"ittage", ittageConfig()},
    };

    Table table;
    std::vector<std::string> header = {"Benchmark"};
    for (const auto &[label, config] : configs) {
        auto stack = buildStack(config);
        const uint64_t bytes =
            stack.predictor ? stack.predictor->costBits() / 8 : 0;
        header.push_back(label +
                         (bytes ? " (" + std::to_string(bytes) + "B)"
                                : ""));
    }
    table.setHeader(header);

    const auto &names = allWorkloadNames();
    const std::vector<SharedTrace> traces = bench::recordAll(names, ops);
    const auto cells = ParallelRunner().map<double>(
        names.size() * configs.size(), [&](size_t j) {
            return runAccuracy(traces[j / configs.size()],
                               configs[j % configs.size()].second)
                .indirectJumps.missRate();
        });
    for (size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row = {names[w]};
        for (size_t k = 0; k < configs.size(); ++k)
            row.push_back(
                formatPercent(cells[w * configs.size() + k], 1));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("ITTAGE's geometric history lengths cover both the "
                "monomorphic jumps (base table, like the BTB) and the "
                "deep-history interpreter dispatch the 1997 target "
                "cache was designed for.\n");
    return 0;
}
