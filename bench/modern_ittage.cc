/**
 * @file
 * Lineage bench: from the 1997 target cache to a modern ITTAGE-style
 * predictor.  The target cache fixed ONE history length per design;
 * ITTAGE (Seznec) keeps tagged components at geometric history lengths
 * and picks the longest match — the design that descends directly from
 * this paper's idea and ships in modern cores.
 *
 * Printed per benchmark: indirect misprediction rate for the BTB, the
 * paper's tagless and tagged caches, the cascaded two-stage predictor,
 * and ITTAGE, with storage budgets.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultAccuracyOps);
    bench::heading("Lineage: target cache (1997) to ITTAGE "
                   "(indirect-jump misprediction rate)",
                   ops);

    const std::vector<std::pair<std::string, IndirectConfig>> configs = {
        {"BTB", baselineConfig()},
        {"tagless-512", taglessGshare()},
        {"tagged-4w", taggedConfig(TaggedIndexScheme::HistoryXor, 4)},
        {"tagged-16w-h16",
         taggedConfig(TaggedIndexScheme::HistoryXor, 16,
                      patternHistory(16))},
        {"cascaded", cascadedConfig()},
        {"ittage", ittageConfig()},
    };

    Table table;
    std::vector<std::string> header = {"Benchmark"};
    for (const auto &[label, config] : configs) {
        auto stack = buildStack(config);
        const uint64_t bytes =
            stack.predictor ? stack.predictor->costBits() / 8 : 0;
        header.push_back(label +
                         (bytes ? " (" + std::to_string(bytes) + "B)"
                                : ""));
    }
    table.setHeader(header);

    for (const auto &name : allWorkloadNames()) {
        SharedTrace trace = recordWorkload(name, ops);
        std::vector<std::string> row = {name};
        for (const auto &[label, config] : configs) {
            row.push_back(formatPercent(
                runAccuracy(trace, config).indirectJumps.missRate(),
                1));
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("ITTAGE's geometric history lengths cover both the "
                "monomorphic jumps (base table, like the BTB) and the "
                "deep-history interpreter dispatch the 1997 target "
                "cache was designed for.\n");
    return 0;
}
