/**
 * @file
 * Where does the time go?  Fetch-stall cycles attributed to the
 * mispredicted branch kind that caused them, per benchmark and
 * predictor — the decomposition behind the paper's execution-time
 * reductions: the target cache can only recover the indirect share.
 */

#include "bench_util.hh"
#include "harness/sweep_kernel.hh"
#include "workloads/workload.hh"

using namespace tpred;

namespace
{

std::string
pct(uint64_t part, uint64_t whole)
{
    return formatPercent(
        whole ? static_cast<double>(part) / static_cast<double>(whole)
              : 0.0,
        1);
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultTimingOps).ops;
    bench::heading("Misprediction-penalty breakdown (fetch-stall "
                   "cycles as % of total cycles)",
                   ops);

    const std::vector<std::pair<std::string, IndirectConfig>> configs = {
        {"BTB-only baseline", baselineConfig()},
        {"with 512-entry target cache", taglessGshare()},
    };
    const auto &names = spec95Names();
    const std::vector<SharedTrace> traces = bench::recordAll(names, ops);
    // One fused timing sweep per workload: both configs share one
    // core trajectory until they diverge (harness/sweep_kernel.hh).
    std::vector<IndirectConfig> batch;
    batch.reserve(configs.size());
    for (const auto &[label, config] : configs)
        batch.push_back(config);
    const auto per_workload =
        ParallelRunner().map<std::vector<CoreResult>>(
            names.size(),
            [&](size_t w) { return runTimingSweep(traces[w], batch); });
    std::vector<CoreResult> results(configs.size() * names.size());
    for (size_t w = 0; w < names.size(); ++w)
        for (size_t c = 0; c < configs.size(); ++c)
            results[c * names.size() + w] = per_workload[w][c];
    for (size_t c = 0; c < configs.size(); ++c) {
        Table table;
        table.setHeader({"Benchmark", "cond", "indirect", "return",
                         "uncond/call", "all stalls", "IPC"});
        for (size_t w = 0; w < names.size(); ++w) {
            const std::string &name = names[w];
            const CoreResult &r = results[c * names.size() + w];
            const auto &s = r.stallCyclesByKind;
            const uint64_t cond =
                s[static_cast<size_t>(BranchKind::CondDirect)];
            const uint64_t ret =
                s[static_cast<size_t>(BranchKind::Return)];
            const uint64_t uncond =
                s[static_cast<size_t>(BranchKind::UncondDirect)] +
                s[static_cast<size_t>(BranchKind::Call)];
            uint64_t all = 0;
            for (uint64_t v : s)
                all += v;
            char ipc[16];
            std::snprintf(ipc, sizeof(ipc), "%.2f", r.ipc());
            table.addRow({name, pct(cond, r.cycles),
                          pct(r.indirectStallCycles(), r.cycles),
                          pct(ret, r.cycles), pct(uncond, r.cycles),
                          pct(all, r.cycles), ipc});
        }
        std::printf("[%s]\n%s\n", configs[c].first.c_str(),
                    table.render().c_str());
    }
    std::printf("The indirect column is the pool of cycles a target "
                "predictor can recover; the cond column bounds what "
                "better direction prediction would add.\n");
    return 0;
}
