/**
 * @file
 * Related work (paper §2): the Kaeli & Emma case block table.  An
 * *oracle* CBT — one that can read the case-block variable at fetch —
 * predicts jump-table dispatch almost perfectly; but on an
 * out-of-order machine the value is usually unavailable at fetch, and
 * the CBT abstains.  The target cache sidesteps this by predicting
 * from branch history instead of the (unavailable) value.
 */

#include "bench_util.hh"
#include "bpred/cbt.hh"

using namespace tpred;

namespace
{

/** Fraction of dispatches whose selector would be computed by fetch
 *  time on a deeply speculative machine (pessimistic constant). */
constexpr double kValueKnownAtFetch = 0.15;

struct CbtResult
{
    double oracle_miss = 0.0;
    double fetch_miss = 0.0;
};

CbtResult
runCbt(const SharedTrace &trace)
{
    CaseBlockTable oracle({256, 4});
    CaseBlockTable fetch({256, 4});
    RatioStat oracle_stat, fetch_stat;
    Rng rng(7);

    // Branch-index batch replay: only indirect non-returns matter.
    trace.compact().forEachBranch([&](const MicroOp &op, size_t) {
        if (!isIndirectNonReturn(op.branch))
            return;
        auto op_pred = oracle.lookup(op.pc, op.selector);
        oracle_stat.record(op_pred && *op_pred == op.nextPc);
        oracle.update(op.pc, op.selector, op.nextPc);

        const bool known = rng.chance(kValueKnownAtFetch);
        auto f_pred = fetch.lookupAtFetch(op.pc, op.selector, known);
        fetch_stat.record(f_pred && *f_pred == op.nextPc);
        fetch.update(op.pc, op.selector, op.nextPc);
    });
    return {oracle_stat.missRate(), fetch_stat.missRate()};
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultAccuracyOps).ops;
    bench::heading("Related work: case block table vs target cache "
                   "(indirect-jump misprediction rate)",
                   ops);

    Table table;
    table.setHeader({"Benchmark", "CBT (oracle value)",
                     "CBT (value @ fetch)", "BTB",
                     "Target cache (tagless gshare)"});
    const std::vector<std::string> names = bench::headlinePair();
    const std::vector<SharedTrace> traces = bench::recordAll(names, ops);
    // Per workload: CBT (its own deterministic Rng per job), BTB and
    // target-cache metrics — one row's four cells as one job.
    const auto rows = ParallelRunner().map<std::vector<double>>(
        names.size(), [&](size_t w) {
            const SharedTrace &trace = traces[w];
            CbtResult cbt = runCbt(trace);
            return std::vector<double>{
                cbt.oracle_miss, cbt.fetch_miss,
                runAccuracy(trace, baselineConfig())
                    .indirectJumps.missRate(),
                runAccuracy(trace, taglessGshare())
                    .indirectJumps.missRate()};
        });
    for (size_t w = 0; w < names.size(); ++w) {
        table.addRow({names[w], formatPercent(rows[w][0], 1),
                      formatPercent(rows[w][1], 1),
                      formatPercent(rows[w][2], 1),
                      formatPercent(rows[w][3], 1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("The oracle CBT is nearly perfect but unimplementable "
                "at fetch on an out-of-order machine (paper section "
                "2); with the value available only %.0f%% of the time "
                "it collapses, while the history-indexed target cache "
                "needs no value at all.\n",
                kValueKnownAtFetch * 100.0);
    return 0;
}
