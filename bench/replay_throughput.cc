/**
 * @file
 * Replay-kernel microbenchmark: how fast can a recorded trace be
 * walked by each of the three replay paths the harness offers?
 *
 *   legacy   — virtual TraceSource::next() pull loop, one indirect
 *              call and one 56-byte MicroOp copy per dynamic
 *              instruction (the pre-columnar hot path, kept as the
 *              SharedTrace::open() compatibility shim);
 *   compact  — devirtualized batch replay: block-decode the columnar
 *              trace into a stack buffer, visit every op inline;
 *   indexed  — branch-index fast path: materialize only the control
 *              transfers (O(branches) on coherent traces), accounting
 *              for the skipped ops arithmetically — what
 *              runAccuracy() and analyzeSites() ship.
 *
 * The timed region feeds a checksum so the lanes measure the replay
 * machinery itself; an untimed self-check first replays every lane
 * through an identical predictor stack and requires bit-identical
 * FrontendStats, so the speedups are only reported for paths proven
 * semantically equivalent.  Results go to stdout and to
 * BENCH_replay.json (override the path with TPRED_BENCH_OUT) as a
 * tpred-run-report/1 document for tools/bench_compare.py to diff
 * across commits.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"

using namespace tpred;

namespace
{

/** Full predictor replay for the untimed lane-equivalence check. */
template <typename Replay>
FrontendStats
statsOf(const IndirectConfig &config, Replay &&replay)
{
    PredictorStack stack = buildStack(config);
    FrontendPredictor frontend(FrontendConfig{}, stack.predictor.get(),
                               stack.tracker.get());
    replay(frontend);
    return frontend.stats();
}

inline uint64_t
mix(uint64_t acc, const MicroOp &op)
{
    return acc * 0x9E3779B97F4A7C15ull + (op.pc ^ op.nextPc);
}

} // namespace

int
main(int argc, char **argv)
{
    const RunOptions opts =
        bench::setup(argc, argv, kDefaultAccuracyOps);
    const size_t ops = opts.ops;
    const unsigned reps = 3;
    bench::heading("Replay-kernel throughput: legacy virtual pull vs "
                   "columnar batch replay",
                   ops);

    const auto &names = spec95Names();
    const std::vector<SharedTrace> traces = bench::recordAll(names, ops);
    const IndirectConfig config = taglessGshare();

    Table table;
    table.setHeader({"Benchmark", "legacy Mops/s", "compact Mops/s",
                     "indexed Mops/s", "speedup", "bytes/op",
                     "compression"});

    bench::LaneReport out("replay_throughput", ops,
                          "BENCH_replay.json");
    size_t ge2x = 0;
    for (size_t w = 0; w < names.size(); ++w) {
        const SharedTrace &trace = traces[w];

        // --- Untimed: all three lanes must drive a predictor to the
        // same statistics before their speed means anything.
        const FrontendStats ref =
            statsOf(config, [&](FrontendPredictor &fe) {
                auto src = trace.open();
                MicroOp op;
                while (src->next(op))
                    fe.onInstruction(op);
            });
        const FrontendStats via_batch =
            statsOf(config, [&](FrontendPredictor &fe) {
                trace.forEachOp(
                    [&fe](const MicroOp &op) { fe.onInstruction(op); });
            });
        const FrontendStats via_index =
            statsOf(config, [&](FrontendPredictor &fe) {
                size_t consumed = 0;
                trace.compact().forEachBranch(
                    [&](const MicroOp &op, size_t pos) {
                        fe.skipNonBranches(pos - consumed);
                        fe.onInstruction(op);
                        consumed = pos + 1;
                    });
                fe.skipNonBranches(trace.size() - consumed);
            });
        bench::requireSameStats(ref, via_batch, "batch replay",
                                names[w]);
        bench::requireSameStats(ref, via_index, "indexed replay",
                                names[w]);

        // --- Timed: the replay machinery itself.
        uint64_t legacy_sum = 0;
        const double legacy_mops =
            bench::measureMops(ops, reps, legacy_sum, [&] {
            auto src = trace.open();
            MicroOp op;
            uint64_t acc = 0;
            while (src->next(op))
                acc = mix(acc, op);
            return acc;
        });

        uint64_t compact_sum = 0;
        uint64_t branch_ref_sum = 0;  // branch-only reference checksum
        const double compact_mops =
            bench::measureMops(ops, reps, compact_sum, [&] {
                uint64_t acc = 0;
                trace.forEachOp(
                    [&acc](const MicroOp &op) { acc = mix(acc, op); });
                return acc;
            });
        {
            size_t at = 0;
            trace.forEachOp([&](const MicroOp &op) {
                if (op.isBranch())
                    branch_ref_sum = mix(branch_ref_sum, op) + at;
                ++at;
            });
        }

        uint64_t indexed_sum = 0;
        const double indexed_mops =
            bench::measureMops(ops, reps, indexed_sum, [&] {
                uint64_t acc = 0;
                trace.compact().forEachBranch(
                    [&](const MicroOp &op, size_t pos) {
                        acc = mix(acc, op) + pos;
                    });
                return acc;
            });

        if (legacy_sum != compact_sum ||
            indexed_sum != branch_ref_sum) {
            std::fprintf(stderr,
                         "FATAL: replay checksums disagree on %s\n",
                         names[w].c_str());
            return 1;
        }

        const double speedup =
            legacy_mops > 0.0 ? indexed_mops / legacy_mops : 0.0;
        if (speedup >= 2.0)
            ++ge2x;
        const double bytes_per_op =
            static_cast<double>(trace.compact().residentBytes()) /
            static_cast<double>(std::max<size_t>(trace.size(), 1));
        const double compression =
            static_cast<double>(
                CompactTrace::legacyBytes(trace.size())) /
            static_cast<double>(trace.compact().residentBytes());

        char buf[64];
        std::vector<std::string> row = {names[w]};
        std::snprintf(buf, sizeof(buf), "%.1f", legacy_mops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f", compact_mops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f", indexed_mops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f", bytes_per_op);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1fx", compression);
        row.push_back(buf);
        table.addRow(row);

        out.value(names[w], "legacy_mops", legacy_mops);
        out.value(names[w], "compact_mops", compact_mops);
        out.value(names[w], "indexed_mops", indexed_mops);
        out.value(names[w], "speedup", speedup);
        out.value(names[w], "compression", compression);
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("speedup = branch-indexed replay vs legacy virtual "
                "pull, equal op budgets; >=2x on %zu of %zu "
                "workloads\n",
                ge2x, names.size());

    return out.write();
}
