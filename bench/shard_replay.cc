/**
 * @file
 * Segmented-replay benchmark: what do streaming windows and sharded
 * checkpoint replay cost — and what do they bound?  Three replay
 * lanes over the same trace:
 *
 *   resident  — runAccuracy() on a fully materialized SharedTrace
 *               (the pre-segmentation baseline; skipped above
 *               kResidentCap ops, where residency is the thing this
 *               subsystem exists to avoid);
 *   streaming — runAccuracyStreaming() over the segmented container,
 *               one mapped segment window resident at a time;
 *   sharded   — runAccuracySharded(): serial checkpoint pass plus
 *               per-shard warm-up/region replay with boundary proofs.
 *
 * The container itself is built *streamingly* from the workload
 * generator (storeSegmentedFromSource), so the whole pipeline — build,
 * verify, replay, shard — never holds more than O(segment) trace
 * bytes.  That is the headline claim, and it is asserted, not just
 * reported: at >= kRssAssertOps the process peak RSS (the same
 * obs::peakRssBytes() field run reports carry) must stay under an
 * O(segment size x shards) budget, and under the container file size
 * — replaying a trace without being able to hold it.
 *
 * An untimed self-check requires the streaming and sharded lanes (and
 * the resident lane when it runs) to produce bit-identical
 * FrontendStats, and every shard's checkpoint proofs to hold, before
 * any throughput is reported.  Results go to stdout and
 * BENCH_shard.json (override with TPRED_BENCH_OUT) as a
 * tpred-run-report/1 document for tools/bench_compare.py.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "corpus/corpus.hh"
#include "corpus/segmented_trace.hh"
#include "harness/shard_replay.hh"

using namespace tpred;

namespace
{

/** Above this, the resident lane is skipped (that much residency is
 *  exactly what segmented replay exists to avoid). */
constexpr size_t kResidentCap = 20'000'000;

/** Below this, the RSS assertion is informative only: tiny runs are
 *  dominated by fixed allocator/test overhead, not trace bytes. */
constexpr size_t kRssAssertOps = 50'000'000;

constexpr unsigned kShards = 4;

size_t
segmentOpsFor(size_t ops)
{
    return std::max<size_t>(ops / 64, 8192);
}

} // namespace

int
main(int argc, char **argv)
{
    const RunOptions opts =
        bench::setup(argc, argv, kDefaultAccuracyOps);
    const size_t ops = opts.ops;
    const size_t segment_ops = segmentOpsFor(ops);
    const uint64_t seed = 1;
    const unsigned reps = 2;
    const IndirectConfig config = taglessGshare();
    bench::heading(
        "Segmented replay: resident vs streaming windows vs sharded "
        "checkpoint replay",
        ops);

    const std::string corpus_dir =
        !opts.corpusDir.empty() ? opts.corpusDir : "bench_shard_corpus";
    CorpusManager corpus(corpus_dir);

    const std::vector<std::string> names = bench::headlinePair();
    Table table;
    table.setHeader({"Benchmark", "resident Mops/s", "stream Mops/s",
                     "sharded Mops/s", "segments", "file MB",
                     "ckpt KB"});

    bench::LaneReport out("shard_replay", ops, "BENCH_shard.json");
    out.report().setConfig("segment_ops",
                           static_cast<uint64_t>(segment_ops));
    out.report().setConfig("shards", static_cast<uint64_t>(kShards));

    uint64_t max_segment_bytes = 0;
    uint64_t total_file_bytes = 0;

    for (const std::string &name : names) {
        const CorpusKey key{name, seed, ops};

        // --- Build the container streamingly (untimed): the
        // generator is drained one segment's worth at a time, so the
        // build itself obeys the O(segment) bound being asserted.
        auto trace = corpus.loadSegmented(key, segment_ops);
        if (!trace) {
            auto source = makeWorkload(name, seed);
            corpus.storeSegmentedFromSource(key, *source,
                                            source->name(),
                                            segment_ops);
            trace = corpus.loadSegmented(key, segment_ops);
        }
        if (!trace) {
            std::fprintf(stderr,
                         "FATAL: segmented corpus entry for %s failed "
                         "to load\n",
                         name.c_str());
            return 1;
        }
        total_file_bytes += trace->fileBytes();
        for (size_t i = 0; i < trace->segmentCount(); ++i)
            max_segment_bytes = std::max(
                max_segment_bytes, trace->record(i).byteLen);

        // --- Untimed equivalence self-check: no throughput is
        // reported for a lane that computes different statistics.
        const FrontendStats stream_stats =
            runAccuracyStreaming(trace, config);
        const ShardedAccuracyResult sharded_check =
            runAccuracySharded(trace, config, {.shards = kShards});
        if (!sharded_check.verified()) {
            std::fprintf(stderr,
                         "FATAL: shard checkpoint proofs failed on "
                         "%s\n",
                         name.c_str());
            return 1;
        }
        bench::requireSameStats(stream_stats, sharded_check.stats,
                                "sharded replay", name);
        bench::requireSameStats(stream_stats, sharded_check.serial,
                                "shard serial pass", name);

        // --- Timed lanes ------------------------------------------
        const double stream_mops =
            bench::measureMops(trace->totalOps(), reps, [&] {
                runAccuracyStreaming(trace, config);
            });
        const double sharded_mops =
            bench::measureMops(trace->totalOps(), reps, [&] {
                runAccuracySharded(trace, config,
                                   {.shards = kShards});
            });

        // The resident lane runs *last*: materializing the full trace
        // would otherwise contaminate the peak-RSS evidence that the
        // streaming lanes are bounded.
        double resident_mops = 0.0;
        if (ops <= kResidentCap) {
            const SharedTrace resident =
                recordWorkload(name, ops, seed);
            bench::requireSameStats(
                runAccuracy(resident, config), stream_stats,
                "streaming replay", name);
            resident_mops =
                bench::measureMops(resident.size(), reps, [&] {
                    runAccuracy(resident, config);
                });
        }

        char buf[64];
        std::vector<std::string> row = {name};
        if (resident_mops > 0.0)
            std::snprintf(buf, sizeof(buf), "%.1f", resident_mops);
        else
            std::snprintf(buf, sizeof(buf), "skipped");
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f", stream_mops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f", sharded_mops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%zu",
                      trace->segmentCount());
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f",
                      static_cast<double>(trace->fileBytes()) / 1e6);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f",
                      static_cast<double>(
                          sharded_check.checkpointBytes) /
                          1e3);
        row.push_back(buf);
        table.addRow(row);

        out.value(name, "resident_mops", resident_mops);
        out.value(name, "streaming_mops", stream_mops);
        out.value(name, "sharded_mops", sharded_mops);
        out.value(name, "segments",
                  static_cast<uint64_t>(trace->segmentCount()));
        out.value(name, "file_bytes", trace->fileBytes());
        out.value(name, "checkpoint_bytes",
                  sharded_check.checkpointBytes);
    }

    std::printf("%s\n", table.render().c_str());

    // --- The memory claim, as an assertion --------------------------
    // Budget: fixed process overhead, the streaming-build chunk
    // (segment_ops decoded MicroOps, with slack for vector growth),
    // and a handful of mapped segment windows per shard.  All terms
    // are O(segment size x shards); none scale with trace length.
    const uint64_t peak_rss = obs::peakRssBytes();
    const uint64_t rss_budget =
        256ull * 1024 * 1024 +
        3ull * segment_ops * sizeof(MicroOp) +
        4ull * kShards * max_segment_bytes;
    out.report().setConfig("rss_budget_bytes", rss_budget);
    std::printf("peak RSS %.1f MB, budget %.1f MB, container bytes "
                "%.1f MB (x%zu workloads)\n",
                static_cast<double>(peak_rss) / 1e6,
                static_cast<double>(rss_budget) / 1e6,
                static_cast<double>(total_file_bytes) / 1e6,
                names.size());
    if (ops >= kRssAssertOps) {
        if (peak_rss >= rss_budget) {
            std::fprintf(stderr,
                         "FATAL: peak RSS %" PRIu64
                         " exceeds the O(segment x shards) budget "
                         "%" PRIu64 "\n",
                         peak_rss, rss_budget);
            return 1;
        }
        if (peak_rss >= total_file_bytes) {
            std::fprintf(stderr,
                         "FATAL: peak RSS %" PRIu64
                         " not below container bytes %" PRIu64
                         " — streaming replay is not streaming\n",
                         peak_rss, total_file_bytes);
            return 1;
        }
        std::printf("RSS assertion held: replayed %.0fx more trace "
                    "bytes than peak memory\n",
                    static_cast<double>(total_file_bytes) /
                        static_cast<double>(peak_rss));
    }

    return out.write();
}
