/**
 * @file
 * Branch-stream pipeline microbenchmark: what do the three PR-10
 * layers buy?  Per SPECint95-analogue workload:
 *
 *   cold stream   — map + CRC-validate the corpus *trace* container,
 *                   then extract its BranchStream (what every
 *                   accuracy consumer paid before the stream tier);
 *   warm stream   — map + CRC-validate the derived TPBS stream
 *                   container (the stream tier's zero-copy path: no
 *                   trace decode, no extraction pass, ~half the
 *                   checksummed bytes);
 *   seg sync/pre  — segmented-container stream extraction with the
 *                   background segment prefetcher off vs on;
 *   sweep scl/simd— the fused accuracy sweep with the way-scan SIMD
 *                   kernels pinned scalar vs dispatched (identical
 *                   on binaries built without AVX2).
 *
 * Untimed self-checks gate every timed lane: the TPBS round trip
 * must reproduce the extracted stream bit-for-bit and drive the
 * fused sweep to identical FrontendStats; prefetched extraction must
 * equal synchronous extraction; the scalar and SIMD sweep paths must
 * agree exactly.  With --self-check the binary runs only those gates
 * (the perf-smoke ctest mode).  Results go to stdout and
 * BENCH_stream.json (override with TPRED_BENCH_OUT) as a
 * tpred-run-report/1 document for tools/bench_compare.py.
 */

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hh"
#include "common/simd.hh"
#include "corpus/corpus.hh"
#include "corpus/segmented_trace.hh"
#include "harness/shard_replay.hh"
#include "harness/sweep_kernel.hh"
#include "trace/branch_stream.hh"

using namespace tpred;

namespace
{

std::vector<IndirectConfig>
sweepBatch()
{
    return {
        taglessGshare(),
        taggedConfig(TaggedIndexScheme::HistoryXor, 4,
                     patternHistory(9)),
        cascadedConfig(),
    };
}

void
requireAllSame(const std::vector<FrontendStats> &want,
               const std::vector<FrontendStats> &got, const char *what,
               const std::string &workload)
{
    if (want.size() != got.size()) {
        std::fprintf(stderr, "FATAL: %s batch size mismatch on %s\n",
                     what, workload.c_str());
        std::exit(1);
    }
    for (size_t i = 0; i < want.size(); ++i)
        bench::requireSameStats(want[i], got[i], what, workload);
}

void
requireSameStream(const BranchStream &want, const BranchStream &got,
                  const char *what, const std::string &workload)
{
    if (want == got)
        return;
    std::fprintf(stderr, "FATAL: %s stream differs on %s\n", what,
                 workload.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const RunOptions opts =
        bench::setup(argc, argv, kDefaultAccuracyOps);
    bool self_check_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--self-check")
            self_check_only = true;
    }
    const size_t ops = opts.ops;
    const uint64_t seed = 1;
    const unsigned reps = 5;
    const size_t segment_ops = std::max<size_t>(1000, ops / 4);
    bench::heading(
        "Branch-stream pipeline: TPBS stream tier, segment prefetch "
        "and SIMD way scans",
        ops);

    const std::string corpus_dir =
        !opts.corpusDir.empty() ? opts.corpusDir : "bench_stream";
    CorpusManager corpus(corpus_dir);

    const auto &names = spec95Names();
    const std::vector<IndirectConfig> configs = sweepBatch();
    Table table;
    table.setHeader({"Benchmark", "cold Mops/s", "warm Mops/s",
                     "stream speedup", "seg sync", "seg pre",
                     "sweep scl", "sweep simd"});

    bench::LaneReport out("stream_pipeline", ops, "BENCH_stream.json");
    out.report().setConfig("simd_isa", simd::activeIsa());
    size_t ge2x = 0;
    for (size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const CorpusKey key{name, seed, ops};

        // --- Populate (untimed): plain trace, segmented container
        // and the derived TPBS stream for the same key.
        const SharedTrace generated = recordWorkload(name, ops, seed);
        corpus.store(key, generated.compact(), generated.name());
        corpus.storeSegmented(key, generated.compact(),
                              generated.name(), segment_ops);
        const auto seg = corpus.loadSegmented(key, segment_ops);
        if (!seg) {
            std::fprintf(stderr,
                         "FATAL: stored segmented entry for %s failed "
                         "to load\n",
                         name.c_str());
            return 1;
        }
        const BranchStream ref =
            BranchStream::extract(generated.compact());
        corpus.storeStream(key, ref, generated.name());

        // --- Self-check 1: the TPBS round trip must reproduce the
        // extracted stream exactly and sweep to identical stats.
        const auto warm_stream = corpus.loadStream(key);
        if (!warm_stream) {
            std::fprintf(stderr,
                         "FATAL: stored stream entry for %s failed "
                         "to load\n",
                         name.c_str());
            return 1;
        }
        requireSameStream(ref, *warm_stream, "TPBS round trip", name);
        const std::vector<FrontendStats> want =
            runSweep(ref, configs);
        requireAllSame(want, runSweep(*warm_stream, configs),
                       "TPBS sweep", name);

        // --- Self-check 2: prefetched segmented extraction must be
        // bit-identical to the synchronous path (and the resident
        // reference).
        setSegmentPrefetchEnabled(false);
        const BranchStream sync_stream = extractBranchStream(*seg);
        setSegmentPrefetchEnabled(true);
        const BranchStream pre_stream = extractBranchStream(*seg);
        requireSameStream(sync_stream, pre_stream,
                          "prefetched extraction", name);
        requireSameStream(ref, pre_stream, "segmented extraction",
                          name);

        // --- Self-check 3: scalar and SIMD way scans must sweep to
        // identical stats.
        simd::setForceScalar(true);
        const std::vector<FrontendStats> scalar_stats =
            runSweep(ref, configs);
        simd::setForceScalar(false);
        requireAllSame(want, scalar_stats, "scalar sweep", name);
        requireAllSame(want, runSweep(ref, configs), "simd sweep",
                       name);

        if (self_check_only)
            continue;

        const size_t trace_ops = generated.size();

        // --- Timed lanes.
        const double cold_mops =
            bench::measureMops(trace_ops, reps, [&] {
                const auto trace = corpus.load(key);
                if (trace)
                    BranchStream::extract(*trace);
            });
        const double warm_mops =
            bench::measureMops(trace_ops, reps, [&] {
                corpus.loadStream(key);
            });
        setSegmentPrefetchEnabled(false);
        const double seg_sync_mops =
            bench::measureMops(trace_ops, reps, [&] {
                extractBranchStream(*seg);
            });
        setSegmentPrefetchEnabled(true);
        const double seg_pre_mops =
            bench::measureMops(trace_ops, reps, [&] {
                extractBranchStream(*seg);
            });
        simd::setForceScalar(true);
        const double sweep_scalar_mops =
            bench::measureMops(trace_ops, reps, [&] {
                runSweep(ref, configs);
            });
        simd::setForceScalar(false);
        const double sweep_simd_mops =
            bench::measureMops(trace_ops, reps, [&] {
                runSweep(ref, configs);
            });

        const double speedup =
            cold_mops > 0.0 ? warm_mops / cold_mops : 0.0;
        if (speedup >= 2.0)
            ++ge2x;

        uint64_t stream_bytes = 0;
        for (const CorpusEntry &e : corpus.list(false))
            if (e.file == CorpusManager::streamFileName(key))
                stream_bytes = e.fileBytes;

        char buf[64];
        std::vector<std::string> row = {name};
        for (double v : {cold_mops, warm_mops}) {
            std::snprintf(buf, sizeof(buf), "%.1f", v);
            row.push_back(buf);
        }
        std::snprintf(buf, sizeof(buf), "%.1fx", speedup);
        row.push_back(buf);
        for (double v : {seg_sync_mops, seg_pre_mops,
                         sweep_scalar_mops, sweep_simd_mops}) {
            std::snprintf(buf, sizeof(buf), "%.1f", v);
            row.push_back(buf);
        }
        table.addRow(row);

        out.value(name, "cold_stream_mops", cold_mops);
        out.value(name, "warm_stream_mops", warm_mops);
        out.value(name, "stream_speedup", speedup);
        out.value(name, "seg_sync_mops", seg_sync_mops);
        out.value(name, "seg_prefetch_mops", seg_pre_mops);
        out.value(name, "sweep_scalar_mops", sweep_scalar_mops);
        out.value(name, "sweep_simd_mops", sweep_simd_mops);
        out.value(name, "stream_bytes", stream_bytes);
    }

    if (self_check_only) {
        std::printf("self-checks passed on all %zu workloads "
                    "(timed lanes skipped)\n",
                    names.size());
        return 0;
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("stream speedup = warm TPBS load vs trace load + "
                "extraction, equal op budgets; >=2x on %zu of %zu "
                "workloads (simd isa: %s)\n",
                ge2x, names.size(), simd::activeIsa());

    return out.write();
}
