/**
 * @file
 * Fused-sweep throughput, three lanes per workload:
 *
 *   tagged grid   — Table 9's ten-config tagged grid: one runSweep()
 *                   pass driving all ten SoA-batched predictors vs one
 *                   runAccuracy() per config;
 *   mixed grid    — a Table 4-9 cross-family batch (tagless GAg / GAs
 *                   / gshare, all three tagged schemes, cascaded,
 *                   BTB-only) exercising every SoA family group and
 *                   the history-tracker dedup at once;
 *   fused timing  — a tag-width sensitivity grid through
 *                   runTimingSweep(): one shared core trajectory plus
 *                   copy-on-divergence forks vs one runTiming() per
 *                   config.
 *
 * An untimed self-check first requires every fused result to be
 * bit-identical to its per-config reference, so the speedups are only
 * reported for kernels proven semantically equivalent; the timed lanes
 * then fold per-config results into checksums that must also agree.
 * Throughput is in aggregate Mops/s: (ops x configs) per wall-clock
 * second, i.e. the rate at which config-instructions are retired.
 * Results go to stdout and to BENCH_sweep.json (override with
 * TPRED_BENCH_OUT) as a tpred-run-report/1 document for
 * tools/bench_compare.py, with the compiled ISA and vector width
 * recorded in the runtime-info block.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/sweep_kernel.hh"

using namespace tpred;

namespace
{

inline uint64_t
fold(uint64_t acc, const FrontendStats &s)
{
    return acc * 0x9E3779B97F4A7C15ull +
           (s.indirectJumps.hits() ^ s.allBranches.total());
}

inline uint64_t
foldTiming(uint64_t acc, const CoreResult &r)
{
    return acc * 0x9E3779B97F4A7C15ull +
           (r.cycles ^ r.frontend.indirectJumps.hits());
}

/** Table 9's ten-config tagged grid. */
std::vector<IndirectConfig>
taggedGrid()
{
    std::vector<IndirectConfig> configs;
    for (unsigned bits : {9u, 16u})
        for (unsigned ways : {1u, 2u, 4u, 8u, 16u})
            configs.push_back(taggedConfig(TaggedIndexScheme::HistoryXor,
                                           ways, patternHistory(bits)));
    return configs;
}

/** A cross-family batch covering every SoA group (Tables 4-9). */
std::vector<IndirectConfig>
mixedGrid()
{
    std::vector<IndirectConfig> configs = {
        baselineConfig(),
        taglessGAg(9),
        taglessGAs(6, 3),
        taglessGshare(),
        taglessGshare(patternHistory(12), 9),
        taggedConfig(TaggedIndexScheme::Address, 4),
        taggedConfig(TaggedIndexScheme::HistoryConcat, 4),
        taggedConfig(TaggedIndexScheme::HistoryXor, 4),
        taggedConfig(TaggedIndexScheme::HistoryXor, 4,
                     patternHistory(16)),
        cascadedConfig(),
    };
    return configs;
}

/**
 * Tag-width sensitivity grid for the fused timing lane: identical
 * tagged geometry, shrinking tags.  Wide tags rarely alias, so the
 * members rarely diverge from the 16-bit lead — the shape the
 * copy-on-divergence fusion is built for.
 */
std::vector<IndirectConfig>
timingGrid()
{
    std::vector<IndirectConfig> configs;
    for (unsigned tag_bits : {16u, 15u, 14u, 13u, 12u, 11u}) {
        IndirectConfig c =
            taggedConfig(TaggedIndexScheme::HistoryXor, 4);
        c.tagged.tagBits = tag_bits;
        configs.push_back(c);
    }
    return configs;
}

/** Compile-time ISA / vector width of this binary. */
const char *
compiledIsa()
{
#if defined(__AVX512F__)
    return "x86-64+avx512f";
#elif defined(__AVX2__)
    return "x86-64+avx2";
#elif defined(__AVX__)
    return "x86-64+avx";
#elif defined(__SSE2__) || defined(_M_X64)
    return "x86-64+sse2";
#elif defined(__ARM_NEON)
    return "aarch64+neon";
#else
    return "generic";
#endif
}

unsigned
vectorWidthBytes()
{
#if defined(__AVX512F__)
    return 64;
#elif defined(__AVX2__) || defined(__AVX__)
    return 32;
#elif defined(__SSE2__) || defined(_M_X64) || defined(__ARM_NEON)
    return 16;
#else
    return 8;
#endif
}

struct LaneResult
{
    double seqMops = 0.0;
    double fusedMops = 0.0;

    double
    speedup() const
    {
        return seqMops > 0.0 ? fusedMops / seqMops : 0.0;
    }
};

/** Sums per-workload lane times into an aggregate Mops pair. */
struct LaneTotal
{
    double ops = 0.0;
    double seqSecs = 0.0;
    double fusedSecs = 0.0;

    void
    add(size_t aggregate_ops, const LaneResult &r)
    {
        ops += static_cast<double>(aggregate_ops);
        if (r.seqMops > 0.0)
            seqSecs += static_cast<double>(aggregate_ops) /
                       (r.seqMops * 1e6);
        if (r.fusedMops > 0.0)
            fusedSecs += static_cast<double>(aggregate_ops) /
                         (r.fusedMops * 1e6);
    }

    LaneResult
    aggregate() const
    {
        LaneResult r;
        r.seqMops = seqSecs > 0.0 ? ops / seqSecs / 1e6 : 0.0;
        r.fusedMops = fusedSecs > 0.0 ? ops / fusedSecs / 1e6 : 0.0;
        return r;
    }
};

/** Accuracy lane: runSweep() vs per-config runAccuracy(). */
LaneResult
accuracyLane(const SharedTrace &trace, const std::string &name,
             const std::vector<IndirectConfig> &configs, size_t ops,
             unsigned reps, const char *what)
{
    // Untimed: the fused kernel must reproduce every config's
    // per-config statistics exactly before its speed means anything.
    // (This also builds the cached BranchStream, so the timed lanes
    // measure the sweep itself.)
    const std::vector<FrontendStats> fused_ref = runSweep(trace, configs);
    for (size_t c = 0; c < configs.size(); ++c)
        bench::requireSameStats(runAccuracy(trace, configs[c]),
                                fused_ref[c], what, name);

    const size_t aggregate_ops = ops * configs.size();
    LaneResult r;
    uint64_t seq_sum = 0;
    r.seqMops = bench::measureMops(aggregate_ops, reps, seq_sum, [&] {
        uint64_t acc = 0;
        for (const IndirectConfig &config : configs)
            acc = fold(acc, runAccuracy(trace, config));
        return acc;
    });
    uint64_t fused_sum = 0;
    r.fusedMops =
        bench::measureMops(aggregate_ops, reps, fused_sum, [&] {
            uint64_t acc = 0;
            for (const FrontendStats &s : runSweep(trace, configs))
                acc = fold(acc, s);
            return acc;
        });
    if (seq_sum != fused_sum) {
        std::fprintf(stderr, "FATAL: %s checksums disagree on %s\n",
                     what, name.c_str());
        std::exit(1);
    }
    return r;
}

/** Timing lane: runTimingSweep() vs per-config runTiming(). */
LaneResult
timingLane(const SharedTrace &trace, const std::string &name,
           const std::vector<IndirectConfig> &configs, size_t ops,
           unsigned reps)
{
    // Untimed gate: cycles, stall breakdown and stats must all match
    // the per-config path bit for bit.
    const std::vector<CoreResult> fused_ref =
        runTimingSweep(trace, configs);
    for (size_t c = 0; c < configs.size(); ++c) {
        const CoreResult ref = runTiming(trace, configs[c]);
        if (fused_ref[c].cycles != ref.cycles ||
            fused_ref[c].stallCyclesByKind != ref.stallCyclesByKind) {
            std::fprintf(stderr,
                         "FATAL: fused timing cycles disagree with "
                         "reference on %s\n",
                         name.c_str());
            std::exit(1);
        }
        bench::requireSameStats(ref.frontend, fused_ref[c].frontend,
                                "fused timing", name);
    }

    const size_t aggregate_ops = ops * configs.size();
    LaneResult r;
    uint64_t seq_sum = 0;
    r.seqMops = bench::measureMops(aggregate_ops, reps, seq_sum, [&] {
        uint64_t acc = 0;
        for (const IndirectConfig &config : configs)
            acc = foldTiming(acc, runTiming(trace, config));
        return acc;
    });
    uint64_t fused_sum = 0;
    r.fusedMops =
        bench::measureMops(aggregate_ops, reps, fused_sum, [&] {
            uint64_t acc = 0;
            for (const CoreResult &res : runTimingSweep(trace, configs))
                acc = foldTiming(acc, res);
            return acc;
        });
    if (seq_sum != fused_sum) {
        std::fprintf(stderr,
                     "FATAL: fused timing checksums disagree on %s\n",
                     name.c_str());
        std::exit(1);
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultAccuracyOps).ops;
    const unsigned reps = 3;
    bench::heading("Fused multi-config sweeps vs per-config replay",
                   ops);

    const struct
    {
        const char *label;  ///< table + report key prefix
        std::vector<IndirectConfig> configs;
        bool timing;
    } lanes[] = {
        {"tagged", taggedGrid(), false},
        {"mixed", mixedGrid(), false},
        {"timing", timingGrid(), true},
    };

    const std::vector<std::string> names = bench::headlinePair();
    const std::vector<SharedTrace> traces = bench::recordAll(names, ops);

    bench::LaneReport out("sweep_throughput", ops, "BENCH_sweep.json");
    out.report().setRuntimeInfo("isa", compiledIsa());
    out.report().setRuntimeInfo("vector_width_bytes",
                                uint64_t{vectorWidthBytes()});

    Table table;
    table.setHeader({"Benchmark", "lane", "configs",
                     "sequential Mops/s", "fused Mops/s", "speedup"});
    for (const auto &lane : lanes) {
        out.report().setConfig(std::string(lane.label) + "_configs",
                               static_cast<uint64_t>(
                                   lane.configs.size()));
        LaneTotal total;
        for (size_t w = 0; w < names.size(); ++w) {
            const LaneResult r =
                lane.timing
                    ? timingLane(traces[w], names[w], lane.configs,
                                 ops, reps)
                    : accuracyLane(traces[w], names[w], lane.configs,
                                   ops, reps,
                                   std::string(lane.label)
                                       .append(" sweep")
                                       .c_str());
            total.add(ops * lane.configs.size(), r);

            char buf[64];
            std::vector<std::string> row = {names[w], lane.label};
            row.push_back(std::to_string(lane.configs.size()));
            std::snprintf(buf, sizeof(buf), "%.1f", r.seqMops);
            row.push_back(buf);
            std::snprintf(buf, sizeof(buf), "%.1f", r.fusedMops);
            row.push_back(buf);
            std::snprintf(buf, sizeof(buf), "%.2fx", r.speedup());
            row.push_back(buf);
            table.addRow(row);

            const std::string prefix = lane.label;
            out.value(names[w], prefix + "_sequential_mops", r.seqMops);
            out.value(names[w], prefix + "_fused_mops", r.fusedMops);
            out.value(names[w], prefix + "_speedup", r.speedup());
        }
        const LaneResult agg = total.aggregate();
        const std::string prefix = lane.label;
        out.value("aggregate", prefix + "_sequential_mops",
                  agg.seqMops);
        out.value("aggregate", prefix + "_fused_mops", agg.fusedMops);
        out.value("aggregate", prefix + "_speedup", agg.speedup());
        std::printf("aggregate %s (%zu configs x %zu workloads): "
                    "sequential %.1f, fused %.1f Mops/s -> %.2fx\n",
                    lane.label, lane.configs.size(), names.size(),
                    agg.seqMops, agg.fusedMops, agg.speedup());
    }

    std::printf("\n%s\n", table.render().c_str());
    return out.write();
}
