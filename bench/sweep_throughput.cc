/**
 * @file
 * Fused-sweep throughput: Table 9's ten-config tagged grid evaluated
 * per workload through
 *
 *   sequential — the per-config path: one runAccuracy() per config,
 *                each paying its own branch walk and re-deriving the
 *                same architectural front-end state ten times;
 *   fused      — one runSweep() pass over the trace's cached dense
 *                BranchStream driving all ten predictors at once,
 *                with one shared front-end core and the history
 *                trackers deduplicated by HistorySpec.
 *
 * An untimed self-check first requires every fused FrontendStats to
 * be bit-identical to its per-config reference, so the speedups are
 * only reported for a kernel proven semantically equivalent; the
 * timed lanes then fold each config's indirect-hit count into a
 * checksum that must also agree.  Throughput is in aggregate Mops/s:
 * (ops x configs) per wall-clock second, i.e. the rate at which
 * config-instructions are retired.  Results go to stdout and to
 * BENCH_sweep.json (override with TPRED_BENCH_OUT) as a
 * tpred-run-report/1 document for tools/bench_compare.py.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/sweep_kernel.hh"

using namespace tpred;

namespace
{

inline uint64_t
fold(uint64_t acc, const FrontendStats &s)
{
    return acc * 0x9E3779B97F4A7C15ull +
           (s.indirectJumps.hits() ^ s.allBranches.total());
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultAccuracyOps).ops;
    const unsigned reps = 3;
    bench::heading("Fused multi-config sweep vs per-config replay "
                   "(Table 9's tagged grid)",
                   ops);

    const std::vector<unsigned> assocs = {1, 2, 4, 8, 16};
    const std::vector<unsigned> history_bits = {9, 16};
    std::vector<IndirectConfig> configs;
    for (unsigned bits : history_bits)
        for (unsigned ways : assocs)
            configs.push_back(taggedConfig(TaggedIndexScheme::HistoryXor,
                                           ways, patternHistory(bits)));

    const std::vector<std::string> names = bench::headlinePair();
    const std::vector<SharedTrace> traces = bench::recordAll(names, ops);

    Table table;
    table.setHeader({"Benchmark", "sequential Mops/s", "fused Mops/s",
                     "speedup"});
    bench::LaneReport out("sweep_throughput", ops, "BENCH_sweep.json");
    out.report().setConfig("configs",
                           static_cast<uint64_t>(configs.size()));

    double seq_secs = 0.0;
    double fused_secs = 0.0;
    double aggregate_total = 0.0;
    for (size_t w = 0; w < names.size(); ++w) {
        const SharedTrace &trace = traces[w];

        // --- Untimed: the fused kernel must reproduce every config's
        // per-config statistics exactly before its speed means
        // anything.  (This also builds the cached BranchStream, so
        // the timed lanes measure the sweep itself.)
        const std::vector<FrontendStats> fused_ref =
            runSweep(trace, configs);
        for (size_t c = 0; c < configs.size(); ++c)
            bench::requireSameStats(runAccuracy(trace, configs[c]),
                                    fused_ref[c], "fused sweep",
                                    names[w]);

        const size_t aggregate_ops = ops * configs.size();
        uint64_t seq_sum = 0;
        const double seq_mops =
            bench::measureMops(aggregate_ops, reps, seq_sum, [&] {
                uint64_t acc = 0;
                for (const IndirectConfig &config : configs)
                    acc = fold(acc, runAccuracy(trace, config));
                return acc;
            });

        uint64_t fused_sum = 0;
        const double fused_mops =
            bench::measureMops(aggregate_ops, reps, fused_sum, [&] {
                uint64_t acc = 0;
                for (const FrontendStats &s : runSweep(trace, configs))
                    acc = fold(acc, s);
                return acc;
            });

        if (seq_sum != fused_sum) {
            std::fprintf(stderr,
                         "FATAL: sweep checksums disagree on %s\n",
                         names[w].c_str());
            return 1;
        }

        const double speedup =
            seq_mops > 0.0 ? fused_mops / seq_mops : 0.0;
        char buf[64];
        std::vector<std::string> row = {names[w]};
        std::snprintf(buf, sizeof(buf), "%.1f", seq_mops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.1f", fused_mops);
        row.push_back(buf);
        std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
        row.push_back(buf);
        table.addRow(row);

        out.value(names[w], "sequential_mops", seq_mops);
        out.value(names[w], "fused_mops", fused_mops);
        out.value(names[w], "speedup", speedup);

        aggregate_total += static_cast<double>(aggregate_ops);
        if (seq_mops > 0.0)
            seq_secs += static_cast<double>(aggregate_ops) /
                        (seq_mops * 1e6);
        if (fused_mops > 0.0)
            fused_secs += static_cast<double>(aggregate_ops) /
                          (fused_mops * 1e6);
    }

    const double agg_seq =
        seq_secs > 0.0 ? aggregate_total / seq_secs / 1e6 : 0.0;
    const double agg_fused =
        fused_secs > 0.0 ? aggregate_total / fused_secs / 1e6 : 0.0;
    const double agg_speedup =
        agg_seq > 0.0 ? agg_fused / agg_seq : 0.0;
    out.value("aggregate", "sequential_mops", agg_seq);
    out.value("aggregate", "fused_mops", agg_fused);
    out.value("aggregate", "speedup", agg_speedup);

    std::printf("%s\n", table.render().c_str());
    std::printf("aggregate (%zu configs x %zu workloads): sequential "
                "%.1f, fused %.1f Mops/s -> %.2fx\n",
                configs.size(), names.size(), agg_seq, agg_fused,
                agg_speedup);

    return out.write();
}
