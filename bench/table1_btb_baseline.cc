/**
 * @file
 * Table 1: per-benchmark instruction/branch/indirect-jump counts and
 * the indirect-jump misprediction rate of the baseline machine's
 * 1K-entry 4-way BTB with the default (last-target) update strategy.
 */

#include "bench_util.hh"
#include "trace/trace_stats.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultAccuracyOps);
    bench::heading("Table 1: benchmark profile and BTB indirect-jump "
                   "misprediction rate",
                   ops);

    Table table;
    table.setHeader({"Benchmark", "#Instructions", "#Branches",
                     "#Indirect Jumps", "Ind. Jump Mispred. Rate"});
    for (const auto &name : spec95Names()) {
        SharedTrace trace = recordWorkload(name, ops);
        TraceCounts counts;
        for (const auto &op : trace.ops())
            counts.observe(op);
        FrontendStats stats = runAccuracy(trace, baselineConfig());
        table.addRow({name, formatCount(counts.instructions),
                      formatCount(counts.branches),
                      formatCount(counts.indirectJumps),
                      formatPercent(stats.indirectJumps.missRate(), 1)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
