/**
 * @file
 * Table 1: per-benchmark instruction/branch/indirect-jump counts and
 * the indirect-jump misprediction rate of the baseline machine's
 * 1K-entry 4-way BTB with the default (last-target) update strategy.
 *
 * Thin wrapper over renderTable1(); the grid runs on the parallel
 * experiment engine.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultAccuracyOps).ops;
    bench::heading("Table 1: benchmark profile and BTB indirect-jump "
                   "misprediction rate",
                   ops);
    std::printf("%s\n", renderTable1({.ops = ops}).c_str());
    return 0;
}
