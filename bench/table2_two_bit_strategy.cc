/**
 * @file
 * Table 2: indirect-jump misprediction rate of the default-update BTB
 * versus the Calder/Grunwald 2-bit update strategy, plus (as the paper
 * does in the text) the 512-entry target cache for contrast.
 *
 * Thin wrapper over renderTable2(); the grid runs on the parallel
 * experiment engine.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultAccuracyOps).ops;
    bench::heading("Table 2: default vs 2-bit BTB target-update "
                   "strategy",
                   ops);
    std::printf("%s\n", renderTable2({.ops = ops}).c_str());
    return 0;
}
