/**
 * @file
 * Table 2: indirect-jump misprediction rate of the default-update BTB
 * versus the Calder/Grunwald 2-bit update strategy, plus (as the paper
 * does in the text) the 512-entry target cache for contrast.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultAccuracyOps);
    bench::heading("Table 2: default vs 2-bit BTB target-update "
                   "strategy",
                   ops);

    Table table;
    table.setHeader({"Benchmark", "BTB", "2-bit BTB",
                     "512-entry target cache"});
    for (const auto &name : spec95Names()) {
        SharedTrace trace = recordWorkload(name, ops);
        double plain = runAccuracy(trace, baselineConfig())
                           .indirectJumps.missRate();
        double two_bit = runAccuracy(trace, baselineConfig(),
                                     twoBitBtbFrontend())
                             .indirectJumps.missRate();
        double cache = runAccuracy(trace, taglessGshare())
                           .indirectJumps.missRate();
        table.addRow({name, formatPercent(plain, 1),
                      formatPercent(two_bit, 1),
                      formatPercent(cache, 1)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
