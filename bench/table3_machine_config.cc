/**
 * @file
 * Table 3: the simulated machine's instruction classes and execution
 * latencies, plus the rest of the HPS-like configuration (paper §4.1
 * and DESIGN.md §5, where the OCR-garbled values are documented).
 */

#include "bench_util.hh"
#include "uarch/core_model.hh"
#include "uarch/fu_pool.hh"

using namespace tpred;

int
main()
{
    std::printf("== Table 3: instruction classes and latencies ==\n\n");

    Table table;
    table.setHeader({"Instruction Class", "Exec. Lat.", "Description"});
    const char *descriptions[] = {
        "INT add, sub and logic OPs",
        "FP add, sub, and convert",
        "FP mul and INT mul",
        "FP div and INT div",
        "Memory loads",
        "Memory stores",
        "Shift, and bit testing",
        "Control instructions",
    };
    for (size_t i = 0; i < kNumInstClasses; ++i) {
        const auto cls = static_cast<InstClass>(i);
        table.addRow({std::string(instClassName(cls)),
                      std::to_string(executionLatency(cls)),
                      descriptions[i]});
    }
    std::printf("%s\n", table.render().c_str());

    const CoreParams params;
    std::printf("Machine: %u-wide fetch/issue/retire, %u-entry window, "
                "%u universal FUs\n",
                params.width, params.window, params.fuCount);
    std::printf("I-cache: perfect.  D-cache: %u KB, %u-way, %u B lines, "
                "memory latency %u cycles\n",
                params.dcache.sizeBytes / 1024, params.dcache.ways,
                params.dcache.lineBytes, params.dcache.missLatency);
    std::printf("Checkpointing: correct-path fetch resumes the cycle "
                "after a mispredicted branch resolves\n");
    return 0;
}
