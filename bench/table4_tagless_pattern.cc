/**
 * @file
 * Table 4: misprediction rates of 512-entry tagless target caches
 * under the pattern-history index schemes — GAg(9), GAs(8,1),
 * GAs(7,2), gshare — for the headline benchmarks.
 *
 * Thin wrapper over renderTable4(); the grid runs on the parallel
 * experiment engine.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultAccuracyOps).ops;
    bench::heading("Table 4: tagless target cache, pattern-history "
                   "index schemes (512 entries)",
                   ops);
    std::printf("%s\n", renderTable4({.ops = ops}).c_str());
    std::printf("Misprediction rates of indirect jumps (lower is "
                "better).  The paper adopts gshare for all further "
                "tagless experiments.\n");
    return 0;
}
