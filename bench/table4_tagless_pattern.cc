/**
 * @file
 * Table 4: misprediction rates of 512-entry tagless target caches
 * under the pattern-history index schemes — GAg(9), GAs(8,1),
 * GAs(7,2), gshare — for the headline benchmarks.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultAccuracyOps);
    bench::heading("Table 4: tagless target cache, pattern-history "
                   "index schemes (512 entries)",
                   ops);

    const std::vector<std::pair<std::string, IndirectConfig>> schemes = {
        {"GAg(9)", taglessGAg(9)},
        {"GAs(8,1)", taglessGAs(8, 1)},
        {"GAs(7,2)", taglessGAs(7, 2)},
        {"gshare", taglessGshare()},
    };

    Table table;
    table.setHeader({"Benchmark", "BTB", "GAg(9)", "GAs(8,1)",
                     "GAs(7,2)", "gshare"});
    for (const auto &name : bench::headlinePair()) {
        SharedTrace trace = recordWorkload(name, ops);
        std::vector<std::string> row = {name};
        row.push_back(formatPercent(
            runAccuracy(trace, baselineConfig())
                .indirectJumps.missRate(),
            1));
        for (const auto &[label, config] : schemes) {
            row.push_back(formatPercent(
                runAccuracy(trace, config).indirectJumps.missRate(),
                1));
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Misprediction rates of indirect jumps (lower is "
                "better).  The paper adopts gshare for all further "
                "tagless experiments.\n");
    return 0;
}
