/**
 * @file
 * Table 5: path history address-bit selection — which bits of each
 * recorded target feed the path register.  Instructions are word
 * aligned, so offset 2 is the lowest useful bit; the paper's result is
 * that lower bits carry more information than higher bits.
 *
 * Metric: reduction in execution time over the BTB-only baseline, for
 * 512-entry tagless caches indexed with each path-history variant.
 *
 * Thin wrapper over renderTable5(); the grid runs on the parallel
 * experiment engine.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultTimingOps).ops;
    bench::heading("Table 5: path history address-bit selection "
                   "(reduction in execution time, 9-bit path, 1 "
                   "bit/target)",
                   ops);
    std::printf("%s", renderTable5({.ops = ops}).c_str());
    return 0;
}
