/**
 * @file
 * Table 5: path history address-bit selection — which bits of each
 * recorded target feed the path register.  Instructions are word
 * aligned, so offset 2 is the lowest useful bit; the paper's result is
 * that lower bits carry more information than higher bits.
 *
 * Metric: reduction in execution time over the BTB-only baseline, for
 * 512-entry tagless caches indexed with each path-history variant.
 */

#include "bench_util.hh"

using namespace tpred;

namespace
{

IndirectConfig
configFor(const std::string &scheme, unsigned offset)
{
    if (scheme == "per-addr")
        return taglessGshare(pathPerAddress(9, 1, offset));
    if (scheme == "branch")
        return taglessGshare(pathGlobal(PathFilter::Branch, 9, 1,
                                        offset));
    if (scheme == "control")
        return taglessGshare(pathGlobal(PathFilter::Control, 9, 1,
                                        offset));
    if (scheme == "ind jmp")
        return taglessGshare(pathGlobal(PathFilter::IndJmp, 9, 1,
                                        offset));
    return taglessGshare(pathGlobal(PathFilter::CallRet, 9, 1, offset));
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultTimingOps);
    bench::heading("Table 5: path history address-bit selection "
                   "(reduction in execution time, 9-bit path, 1 "
                   "bit/target)",
                   ops);

    const std::vector<std::string> schemes = {
        "per-addr", "branch", "control", "ind jmp", "call/ret",
    };
    const std::vector<unsigned> offsets = {2, 4, 6, 8, 10};

    for (const auto &name : bench::headlinePair()) {
        SharedTrace trace = recordWorkload(name, ops);
        const uint64_t base = runTiming(trace, baselineConfig()).cycles;

        Table table;
        table.setHeader({"addr bit", "Per-addr", "Branch", "Control",
                         "Ind jmp", "Call/ret"});
        for (unsigned offset : offsets) {
            std::vector<std::string> row = {
                "bit " + std::to_string(offset) +
                (offset == 2 ? " (lowest)" : ""),
            };
            for (const auto &scheme : schemes) {
                double reduction = reductionOver(
                    base, trace, configFor(scheme, offset));
                row.push_back(formatPercent(reduction, 2));
            }
            table.addRow(row);
        }
        std::printf("[%s]\n%s\n", name.c_str(),
                    table.render().c_str());
    }
    return 0;
}
