/**
 * @file
 * Table 6: path history — bits recorded per target address.  With a
 * fixed 9-bit register, recording more bits per target identifies each
 * past branch better but remembers fewer of them; the paper finds the
 * benefit generally *decreases* as bits-per-target rises.
 *
 * Metric: reduction in execution time over the BTB-only baseline.
 */

#include "bench_util.hh"

using namespace tpred;

namespace
{

IndirectConfig
configFor(const std::string &scheme, unsigned bits_per_target)
{
    if (scheme == "per-addr")
        return taglessGshare(pathPerAddress(9, bits_per_target));
    if (scheme == "branch")
        return taglessGshare(
            pathGlobal(PathFilter::Branch, 9, bits_per_target));
    if (scheme == "control")
        return taglessGshare(
            pathGlobal(PathFilter::Control, 9, bits_per_target));
    if (scheme == "ind jmp")
        return taglessGshare(
            pathGlobal(PathFilter::IndJmp, 9, bits_per_target));
    return taglessGshare(
        pathGlobal(PathFilter::CallRet, 9, bits_per_target));
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultTimingOps);
    bench::heading("Table 6: path history bits recorded per target "
                   "(9-bit register; reduction in execution time)",
                   ops);

    const std::vector<std::string> schemes = {
        "per-addr", "branch", "control", "ind jmp", "call/ret",
    };

    for (const auto &name : bench::headlinePair()) {
        SharedTrace trace = recordWorkload(name, ops);
        const uint64_t base = runTiming(trace, baselineConfig()).cycles;

        Table table;
        table.setHeader({"bits per addr", "Per-addr", "Branch",
                         "Control", "Ind jmp", "Call/ret"});
        for (unsigned bits = 1; bits <= 4; ++bits) {
            std::vector<std::string> row = {std::to_string(bits)};
            for (const auto &scheme : schemes) {
                double reduction = reductionOver(
                    base, trace, configFor(scheme, bits));
                row.push_back(formatPercent(reduction, 2));
            }
            table.addRow(row);
        }
        std::printf("[%s]\n%s\n", name.c_str(),
                    table.render().c_str());
    }
    return 0;
}
