/**
 * @file
 * Table 6: path history — bits recorded per target address.  With a
 * fixed 9-bit register, recording more bits per target identifies each
 * past branch better but remembers fewer of them; the paper finds the
 * benefit generally *decreases* as bits-per-target rises.
 *
 * Metric: reduction in execution time over the BTB-only baseline.
 *
 * Thin wrapper over renderTable6(); the grid runs on the parallel
 * experiment engine.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultTimingOps).ops;
    bench::heading("Table 6: path history bits recorded per target "
                   "(9-bit register; reduction in execution time)",
                   ops);
    std::printf("%s", renderTable6({.ops = ops}).c_str());
    return 0;
}
