/**
 * @file
 * Table 7: tagged target cache indexing schemes — Address,
 * History-Concatenate, History-XOR — across set associativities, with
 * 9 bits of global pattern history and 256 entries total.
 *
 * Paper result: Address indexing maps all of a jump's targets into one
 * set and thrashes at low associativity; the history-based schemes
 * spread them and need far less associativity.
 *
 * Metric: reduction in execution time over the BTB-only baseline.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultTimingOps);
    bench::heading("Table 7: tagged target cache indexing schemes "
                   "(256 entries, 9 pattern-history bits; reduction in "
                   "execution time)",
                   ops);

    const std::vector<unsigned> assocs = {1, 2, 4, 8, 16};

    for (const auto &name : bench::headlinePair()) {
        SharedTrace trace = recordWorkload(name, ops);
        const uint64_t base = runTiming(trace, baselineConfig()).cycles;

        Table table;
        table.setHeader({"set-assoc.", "Addr", "History Conc",
                         "History Xor"});
        for (unsigned ways : assocs) {
            std::vector<std::string> row = {std::to_string(ways)};
            for (auto scheme : {TaggedIndexScheme::Address,
                                TaggedIndexScheme::HistoryConcat,
                                TaggedIndexScheme::HistoryXor}) {
                double reduction = reductionOver(
                    base, trace, taggedConfig(scheme, ways));
                row.push_back(formatPercent(reduction, 2));
            }
            table.addRow(row);
        }
        std::printf("[%s]\n%s\n", name.c_str(),
                    table.render().c_str());
    }
    return 0;
}
