/**
 * @file
 * Table 7: tagged target cache indexing schemes — Address,
 * History-Concatenate, History-XOR — across set associativities, with
 * 9 bits of global pattern history and 256 entries total.
 *
 * Paper result: Address indexing maps all of a jump's targets into one
 * set and thrashes at low associativity; the history-based schemes
 * spread them and need far less associativity.
 *
 * Metric: reduction in execution time over the BTB-only baseline.
 *
 * Thin wrapper over renderTable7(); the grid runs on the parallel
 * experiment engine.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultTimingOps).ops;
    bench::heading("Table 7: tagged target cache indexing schemes "
                   "(256 entries, 9 pattern-history bits; reduction in "
                   "execution time)",
                   ops);
    std::printf("%s", renderTable7({.ops = ops}).c_str());
    return 0;
}
