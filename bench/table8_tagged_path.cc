/**
 * @file
 * Table 8: tagged target caches (History-XOR indexing, 256 entries)
 * using 9-bit *path* histories recording one bit per target, across
 * set associativities and path variants.
 *
 * Metric: reduction in execution time over the BTB-only baseline.
 */

#include "bench_util.hh"

using namespace tpred;

namespace
{

HistorySpec
historyFor(const std::string &scheme)
{
    if (scheme == "per-addr")
        return pathPerAddress(9, 1);
    if (scheme == "branch")
        return pathGlobal(PathFilter::Branch, 9, 1);
    if (scheme == "control")
        return pathGlobal(PathFilter::Control, 9, 1);
    if (scheme == "ind jmp")
        return pathGlobal(PathFilter::IndJmp, 9, 1);
    return pathGlobal(PathFilter::CallRet, 9, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultTimingOps);
    bench::heading("Table 8: tagged target cache with 9-bit path "
                   "history, 1 bit/target (reduction in execution "
                   "time)",
                   ops);

    const std::vector<std::string> schemes = {
        "per-addr", "branch", "control", "ind jmp", "call/ret",
    };
    const std::vector<unsigned> assocs = {1, 2, 4, 8, 16};

    for (const auto &name : bench::headlinePair()) {
        SharedTrace trace = recordWorkload(name, ops);
        const uint64_t base = runTiming(trace, baselineConfig()).cycles;

        Table table;
        table.setHeader({"set-assoc.", "Per-addr", "Branch", "Control",
                         "Ind jmp", "Call/ret"});
        for (unsigned ways : assocs) {
            std::vector<std::string> row = {std::to_string(ways)};
            for (const auto &scheme : schemes) {
                double reduction = reductionOver(
                    base, trace,
                    taggedConfig(TaggedIndexScheme::HistoryXor, ways,
                                 historyFor(scheme)));
                row.push_back(formatPercent(reduction, 2));
            }
            table.addRow(row);
        }
        std::printf("[%s]\n%s\n", name.c_str(),
                    table.render().c_str());
    }
    return 0;
}
