/**
 * @file
 * Table 8: tagged target caches (History-XOR indexing, 256 entries)
 * using 9-bit *path* histories recording one bit per target, across
 * set associativities and path variants.
 *
 * Metric: reduction in execution time over the BTB-only baseline.
 *
 * Thin wrapper over renderTable8(); the grid runs on the parallel
 * experiment engine.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultTimingOps).ops;
    bench::heading("Table 8: tagged target cache with 9-bit path "
                   "history, 1 bit/target (reduction in execution "
                   "time)",
                   ops);
    std::printf("%s", renderTable8({.ops = ops}).c_str());
    return 0;
}
