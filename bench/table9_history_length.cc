/**
 * @file
 * Table 9: tagged target cache with 9 vs 16 bits of global pattern
 * history across set associativities.  The paper's result: extra
 * history bits (stored in the tags) help at high associativity and
 * hurt at low associativity, where the extra contexts cause conflict
 * misses.
 *
 * Metric: reduction in execution time over the BTB-only baseline.
 *
 * Thin wrapper over renderTable9(); the grid runs on the parallel
 * experiment engine.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops =
        bench::setup(argc, argv, kDefaultTimingOps).ops;
    bench::heading("Table 9: tagged target cache, 9 vs 16 pattern "
                   "history bits (256 entries, History-XOR; reduction "
                   "in execution time)",
                   ops);
    std::printf("%s", renderTable9({.ops = ops}).c_str());
    return 0;
}
