/**
 * @file
 * Table 9: tagged target cache with 9 vs 16 bits of global pattern
 * history across set associativities.  The paper's result: extra
 * history bits (stored in the tags) help at high associativity and
 * hurt at low associativity, where the extra contexts cause conflict
 * misses.
 *
 * Metric: reduction in execution time over the BTB-only baseline.
 */

#include "bench_util.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, kDefaultTimingOps);
    bench::heading("Table 9: tagged target cache, 9 vs 16 pattern "
                   "history bits (256 entries, History-XOR; reduction "
                   "in execution time)",
                   ops);

    const std::vector<unsigned> assocs = {1, 2, 4, 8, 16};

    for (const auto &name : bench::headlinePair()) {
        SharedTrace trace = recordWorkload(name, ops);
        const uint64_t base = runTiming(trace, baselineConfig()).cycles;

        Table table;
        table.setHeader({"set-assoc.", "9 bits", "16 bits"});
        for (unsigned ways : assocs) {
            std::vector<std::string> row = {std::to_string(ways)};
            for (unsigned bits : {9u, 16u}) {
                double reduction = reductionOver(
                    base, trace,
                    taggedConfig(TaggedIndexScheme::HistoryXor, ways,
                                 patternHistory(bits)));
                row.push_back(formatPercent(reduction, 2));
            }
            table.addRow(row);
        }
        std::printf("[%s]\n%s\n", name.c_str(),
                    table.render().c_str());
    }
    return 0;
}
