/**
 * @file
 * Autotuner search throughput: exhaustive grid vs successive halving
 * over the "bench" config space on the paper's headline workload pair.
 *
 * An untimed self-check first proves the two searches agree where it
 * matters — the halving aggregate frontier must equal the exhaustive
 * one point for point (same ids, same full-budget miss counts), and
 * halving must spend at least 5x fewer full-budget evaluations — so
 * the timed lanes only compare strategies proven to deliver the same
 * frontier.  Throughput is frontier-delivery rate in aggregate
 * Mops/s: the (configs x workloads x full ops) evaluation volume an
 * exhaustive search must retire, divided by each strategy's
 * wall-clock seconds.  Results go to stdout and to BENCH_tune.json
 * (override with TPRED_BENCH_OUT) as a tpred-tune-report/1-adjacent
 * run report for tools/bench_compare.py.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "tune/config_space.hh"
#include "tune/successive_halving.hh"
#include "tune/tune_report.hh"

using namespace tpred;

namespace
{

/** Exits 1 unless the halving run earns its timed lane. */
void
requireSameFrontier(const tune::TuneResult &exhaustive,
                    const tune::TuneResult &halving)
{
    const std::vector<tune::ParetoPoint> &want =
        exhaustive.aggregateFrontier;
    const std::vector<tune::ParetoPoint> &got =
        halving.aggregateFrontier;
    if (want.size() != got.size()) {
        std::fprintf(stderr,
                     "FATAL: halving frontier has %zu points, "
                     "exhaustive %zu\n",
                     got.size(), want.size());
        std::exit(1);
    }
    for (size_t i = 0; i < want.size(); ++i) {
        if (want[i].id != got[i].id || want[i].misses != got[i].misses ||
            want[i].total != got[i].total) {
            std::fprintf(stderr,
                         "FATAL: frontier point %zu differs: "
                         "exhaustive %s, halving %s\n",
                         i, want[i].id.c_str(), got[i].id.c_str());
            std::exit(1);
        }
    }
    if (halving.fullEvals * 5 > exhaustive.fullEvals) {
        std::fprintf(stderr,
                     "FATAL: halving paid %llu full evaluations, "
                     "more than 1/5 of the exhaustive %llu\n",
                     static_cast<unsigned long long>(halving.fullEvals),
                     static_cast<unsigned long long>(
                         exhaustive.fullEvals));
        std::exit(1);
    }
}

std::string
fixed2(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", value);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const RunOptions run =
        bench::setup(argc, argv, /*fallback_ops=*/200'000);
    const size_t ops = run.ops;

    const tune::ConfigSpace space = tune::enumerateSpace("bench");
    tune::TuneOptions opt;
    opt.fullOps = ops;
    opt.rungs = 3;
    opt.workloads = bench::headlinePair();

    bench::heading("autotuner search: exhaustive vs successive halving",
                   ops);
    std::printf("space: %zu configs x %zu workloads\n\n",
                space.candidates.size(), opt.workloads.size());

    // Untimed self-check: same frontier, >= 5x fewer full evals.
    const tune::TuneResult exhaustive = tune::runExhaustive(space, opt);
    const tune::TuneResult halving =
        tune::runSuccessiveHalving(space, opt);
    requireSameFrontier(exhaustive, halving);
    std::printf("self-check: frontiers identical (%zu points), "
                "halving full evals %llu vs exhaustive %llu\n\n",
                halving.aggregateFrontier.size(),
                static_cast<unsigned long long>(halving.fullEvals),
                static_cast<unsigned long long>(exhaustive.fullEvals));

    // Both lanes retire the same logical search; normalize by the
    // exhaustive evaluation volume so the halving lane's higher
    // Mops/s expresses its shortcut directly.
    const size_t volume =
        space.candidates.size() * opt.workloads.size() * ops;
    const unsigned reps = 3;
    uint64_t sink = 0;
    const double exhaustive_mops =
        bench::measureMops(volume, reps, sink, [&] {
            return tune::runExhaustive(space, opt).fullEvals;
        });
    const double halving_mops =
        bench::measureMops(volume, reps, sink, [&] {
            return tune::runSuccessiveHalving(space, opt).fullEvals;
        });

    Table table;
    table.setHeader({"lane", "Mops/s", "full evals"});
    table.addRow({"exhaustive", fixed2(exhaustive_mops),
                  std::to_string(exhaustive.fullEvals)});
    table.addRow({"halving", fixed2(halving_mops),
                  std::to_string(halving.fullEvals)});
    std::printf("%s\n", table.render().c_str());
    std::printf("frontier (aggregate):\n%s\n",
                tune::renderFrontierTable(halving.aggregateFrontier)
                    .c_str());

    bench::LaneReport report("bench/tune_search", ops,
                             "BENCH_tune.json");
    report.report().setConfig("space", space.name);
    report.report().setConfig(
        "space_configs",
        static_cast<uint64_t>(space.candidates.size()));
    report.report().setConfig("rungs",
                              static_cast<uint64_t>(opt.rungs));
    report.report().addTable(
        "frontier_aggregate",
        tune::renderFrontierTable(halving.aggregateFrontier));
    for (const std::string &w : opt.workloads) {
        report.value(w, "exhaustive_mops", exhaustive_mops);
        report.value(w, "halving_mops", halving_mops);
        report.value(w, "full_evals", halving.fullEvals);
        report.value(w, "exhaustive_evals", exhaustive.fullEvals);
        report.value(w, "frontier_size",
                     static_cast<uint64_t>(
                         halving.aggregateFrontier.size()));
    }
    return report.write();
}
