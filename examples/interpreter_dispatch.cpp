/**
 * @file
 * Interpreter dispatch — the perl scenario from the paper's §4.2.3.
 *
 * Runs the perl-like workload through the full front end (gshare +
 * BTB + RAS) four ways: BTB only, pattern-history target cache,
 * IndJmp path-history target cache, and a 4-way tagged cache, then
 * prints a per-class accuracy breakdown.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/paper_tables.hh"

using namespace tpred;

namespace
{

void
report(Table &table, const std::string &label,
       const FrontendStats &stats)
{
    table.addRow({
        label,
        formatPercent(stats.indirectJumps.missRate(), 1),
        formatPercent(stats.condDirection.missRate(), 1),
        formatPercent(stats.returns.missRate(), 2),
        std::to_string(stats.mpki()).substr(0, 5),
    });
}

} // namespace

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, 1'000'000);
    std::printf("perl-like interpreter, %s instructions\n\n",
                formatCount(ops).c_str());

    SharedTrace trace = recordWorkload("perl", ops);

    Table table;
    table.setHeader({"Front end", "ind. jump miss", "cond dir miss",
                     "return miss", "MPKI"});
    report(table, "BTB only",
           runAccuracy(trace, baselineConfig()));
    report(table, "+ tagless target cache (pattern)",
           runAccuracy(trace, taglessGshare()));
    report(table, "+ tagless target cache (ind-jmp path)",
           runAccuracy(trace,
                       taglessGshare(pathGlobal(PathFilter::IndJmp))));
    report(table, "+ tagged target cache (4-way)",
           runAccuracy(trace,
                       taggedConfig(TaggedIndexScheme::HistoryXor, 4)));
    report(table, "+ oracle", runAccuracy(trace, oracleConfig()));

    std::printf("%s\n", table.render().c_str());
    std::printf("The interpreter processes the same token sequence "
                "every loop iteration, so branch history identifies "
                "the position in the token stream — exactly the "
                "paper's explanation of perl's result.\n");
    return 0;
}
