/**
 * @file
 * Quickstart: build a target cache by hand, feed it a tiny indirect-
 * branch stream, and watch it beat the BTB's last-target scheme.
 *
 * The scenario is the paper's motivating one: an indirect jump whose
 * target is decided by the preceding conditional branch.  The BTB can
 * only replay the previous target; the target cache indexes on the
 * branch history and nails it.
 */

#include <cstdio>

#include "bpred/btb.hh"
#include "bpred/history.hh"
#include "common/stats.hh"
#include "core/tagless_target_cache.hh"

using namespace tpred;

int
main()
{
    // A 512-entry tagless target cache with gshare indexing and a
    // 9-bit global pattern history — the paper's default tagless
    // configuration.
    TaglessTargetCache cache(TaglessConfig{});
    PatternHistory history(9);

    // The baseline: a BTB entry storing the last computed target.
    Btb btb(BtbConfig{});

    RatioStat btb_stat, cache_stat;

    // Simulated program: `if (flag) ... ; switch (flag) ...` — the
    // conditional at 0x100 decides the indirect target at 0x200.
    bool flag = false;
    for (int i = 0; i < 1000; ++i) {
        flag = (i % 3) != 0;  // a short repeating pattern

        // -- conditional branch at 0x100 resolves; record history.
        MicroOp cond;
        cond.pc = 0x100;
        cond.fallthrough = 0x104;
        cond.cls = InstClass::Branch;
        cond.branch = BranchKind::CondDirect;
        cond.taken = flag;
        cond.nextPc = flag ? 0x180 : 0x104;
        btb.update(cond);
        history.update(flag);

        // -- indirect jump at 0x200: predict, score, train.
        MicroOp jump;
        jump.pc = 0x200;
        jump.fallthrough = 0x204;
        jump.cls = InstClass::Branch;
        jump.branch = BranchKind::IndirectJump;
        jump.taken = true;
        jump.nextPc = flag ? 0x4000 : 0x5000;

        auto btb_pred = btb.lookup(jump.pc);
        btb_stat.record(btb_pred && btb_pred->target == jump.nextPc);

        auto cache_pred = cache.predict(jump.pc, history.value());
        cache_stat.record(cache_pred == jump.nextPc);

        btb.update(jump);
        cache.update(jump.pc, history.value(), jump.nextPc);
    }

    std::printf("indirect jump with history-determined target, 1000 "
                "executions:\n");
    std::printf("  BTB (last computed target): %s mispredicted\n",
                formatPercent(btb_stat.missRate(), 1).c_str());
    std::printf("  target cache (%s):          %s mispredicted\n",
                cache.describe().c_str(),
                formatPercent(cache_stat.missRate(), 1).c_str());
    std::printf("\nThe target cache learns one target per history "
                "context instead of one per branch.\n");
    return 0;
}
