/**
 * @file
 * End-to-end timing: run the out-of-order HPS-like core over every
 * benchmark with and without a target cache and report the paper's
 * headline metric — reduction in execution time — plus IPC.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/paper_tables.hh"
#include "workloads/workload.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, 400'000);
    std::printf("out-of-order timing model, %s instructions per "
                "benchmark\n\n",
                formatCount(ops).c_str());

    Table table;
    table.setHeader({"Benchmark", "base IPC", "tagless", "tagged 4-way",
                     "oracle"});
    for (const auto &name : allWorkloadNames()) {
        SharedTrace trace = recordWorkload(name, ops);
        CoreResult base = runTiming(trace, baselineConfig());
        char ipc[16];
        std::snprintf(ipc, sizeof(ipc), "%.2f", base.ipc());
        const std::string ipc_str(ipc);
        table.addRow({
            name,
            ipc_str,
            formatPercent(
                reductionOver(base.cycles, trace, taglessGshare()), 2),
            formatPercent(
                reductionOver(base.cycles, trace,
                              taggedConfig(
                                  TaggedIndexScheme::HistoryXor, 4)),
                2),
            formatPercent(
                reductionOver(base.cycles, trace, oracleConfig()), 2),
        });
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Columns show reduction in execution time over the "
                "BTB-only baseline (negative = slower).  The oracle "
                "column bounds what any indirect-target predictor "
                "could contribute on this machine.\n");
    return 0;
}
