/**
 * @file
 * Trace workflow: record a workload to a binary trace file, reload it,
 * and drill into which static sites cost the mispredictions — the
 * capture/replay/analyze loop a performance engineer would run.
 */

#include <cstdio>

#include "common/stats.hh"
#include "harness/paper_tables.hh"
#include "harness/site_report.hh"
#include "trace/trace_io.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, 400'000);
    const std::string path = "/tmp/tpred_example_gcc.tpr";

    // 1. Record the workload once and persist it.
    SharedTrace recorded = recordWorkload("gcc", ops);
    saveTraceFile(path, recorded.decodeOps(), recorded.name());
    std::printf("recorded %s instructions of '%s' to %s\n",
                formatCount(recorded.size()).c_str(),
                recorded.name().c_str(), path.c_str());

    // 2. Reload it — experiments now replay the exact same stream.
    std::string name;
    VectorTraceSource replay(loadTraceFile(path, name), name);
    SharedTrace trace(replay, ops);
    std::printf("reloaded '%s' (%s instructions)\n\n", name.c_str(),
                formatCount(trace.size()).c_str());

    // 3. Attribute mispredictions to static sites, before and after.
    SiteReport before = analyzeSites(trace, baselineConfig());
    SiteReport after = analyzeSites(trace, taglessGshare());

    std::printf("BTB-only: %s misses over %s indirect jumps (%s)\n",
                formatCount(before.totalMisses).c_str(),
                formatCount(before.totalIndirect).c_str(),
                formatPercent(
                    static_cast<double>(before.totalMisses) /
                        static_cast<double>(before.totalIndirect),
                    1)
                    .c_str());
    std::printf("%s\n", before.render(5).c_str());

    std::printf("with target cache: %s misses (%s)\n",
                formatCount(after.totalMisses).c_str(),
                formatPercent(
                    static_cast<double>(after.totalMisses) /
                        static_cast<double>(after.totalIndirect),
                    1)
                    .c_str());
    std::printf("%s\n", after.render(5).c_str());

    std::remove(path.c_str());
    return 0;
}
