/**
 * @file
 * Virtual dispatch — the paper's §5 future work ("for object oriented
 * programs ... tagged caches should provide even greater performance
 * benefits").
 *
 * Runs the C++-style polymorphic-call workload across the predictor
 * structures and shows the per-site polymorphism profile that drives
 * the result.
 */

#include <cstdio>

#include "common/table.hh"
#include "harness/paper_tables.hh"
#include "trace/trace_stats.hh"

using namespace tpred;

int
main(int argc, char **argv)
{
    const size_t ops = resolveOps(argc, argv, 1'000'000);
    std::printf("C++-style virtual-dispatch workload, %s "
                "instructions\n\n",
                formatCount(ops).c_str());

    SharedTrace trace = recordWorkload("cpp-virtual", ops);

    // Polymorphism profile of the call sites.
    TargetProfiler profiler;
    trace.forEachOp(
        [&profiler](const MicroOp &op) { profiler.observe(op); });
    Histogram hist = profiler.buildHistogram();
    std::printf("%s\n",
                hist.render("dynamic dispatches by distinct targets "
                            "of their call site")
                    .c_str());

    Table table;
    table.setHeader({"Predictor", "ind. dispatch miss"});
    const std::vector<std::pair<std::string, IndirectConfig>> configs = {
        {"BTB (last target)", baselineConfig()},
        {"tagless 512, pattern(9)", taglessGshare()},
        {"tagged 256 4-way, pattern(9)",
         taggedConfig(TaggedIndexScheme::HistoryXor, 4)},
        {"tagged 256 16-way, pattern(16)",
         taggedConfig(TaggedIndexScheme::HistoryXor, 16,
                      patternHistory(16))},
        {"cascaded", cascadedConfig()},
    };
    for (const auto &[label, config] : configs) {
        table.addRow({label,
                      formatPercent(runAccuracy(trace, config)
                                        .indirectJumps.missRate(),
                                    1)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Monomorphic sites are easy for every scheme; the "
                "megamorphic sites are where history indexing and "
                "tags pay off.\n");
    return 0;
}
