#include "bpred/btb.hh"

#include <cassert>

#include "common/bits.hh"
#include "common/state_io.hh"

namespace tpred
{

Btb::Btb(const BtbConfig &config)
    : config_(config),
      setBits_(floorLog2(config.sets)),
      entries_(config.sets * config.ways)
{
    assert(isPowerOfTwo(config.sets));
    assert(config.ways >= 1);
}

uint64_t
Btb::setIndex(uint64_t pc) const
{
    // Instructions are word aligned; drop the two zero bits.
    return bits(pc >> 2, 0, setBits_);
}

uint64_t
Btb::tagOf(uint64_t pc) const
{
    return pc >> (2 + setBits_);
}

Btb::Entry *
Btb::findEntry(uint64_t pc)
{
    const uint64_t set = setIndex(pc);
    const uint64_t tag = tagOf(pc);
    Entry *base = &entries_[set * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

Btb::Entry &
Btb::victimEntry(uint64_t set)
{
    Entry *base = &entries_[set * config_.ways];
    Entry *victim = base;
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (!base[w].valid)
            return base[w];
        if (base[w].lastUsed < victim->lastUsed)
            victim = &base[w];
    }
    return *victim;
}

std::optional<BtbPrediction>
Btb::lookup(uint64_t pc)
{
    Entry *entry = findEntry(pc);
    memoPc_ = pc;
    memoEntry_ = entry;
    memoValid_ = true;
    if (!entry)
        return std::nullopt;
    entry->lastUsed = ++useClock_;
    return BtbPrediction{entry->target, entry->fallthrough, entry->kind};
}

std::optional<BtbPrediction>
Btb::peek(uint64_t pc) const
{
    const uint64_t set = setIndex(pc);
    const uint64_t tag = tagOf(pc);
    const Entry *base = &entries_[set * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            return BtbPrediction{base[w].target, base[w].fallthrough,
                                 base[w].kind};
        }
    }
    return std::nullopt;
}

void
Btb::update(const MicroOp &op)
{
    assert(op.isBranch());
    Entry *entry = memoValid_ && memoPc_ == op.pc ? memoEntry_
                                                  : findEntry(op.pc);
    memoValid_ = false;
    if (!entry) {
        Entry &victim = victimEntry(setIndex(op.pc));
        victim.valid = true;
        victim.tag = tagOf(op.pc);
        victim.kind = op.branch;
        victim.fallthrough = op.fallthrough;
        victim.missStreak = 0;
        victim.lastUsed = ++useClock_;
        // Only record a target when the branch actually produced one.
        victim.target = op.taken ? op.nextPc : 0;
        return;
    }

    entry->kind = op.branch;
    entry->fallthrough = op.fallthrough;
    entry->lastUsed = ++useClock_;

    if (!op.taken)
        return;  // not-taken conditional: keep the stored taken-target

    if (entry->target == op.nextPc) {
        entry->missStreak = 0;
        return;
    }

    switch (config_.strategy) {
      case BtbUpdateStrategy::Default:
        entry->target = op.nextPc;
        entry->missStreak = 0;
        break;
      case BtbUpdateStrategy::TwoBit:
        // Keep the old target until it mispredicts twice in a row.
        if (++entry->missStreak >= 2) {
            entry->target = op.nextPc;
            entry->missStreak = 0;
        }
        break;
    }
}

size_t
Btb::validEntries() const
{
    size_t n = 0;
    for (const auto &entry : entries_)
        n += entry.valid ? 1 : 0;
    return n;
}

void
Btb::saveState(StateWriter &w) const
{
    w.u64(useClock_);
    for (const Entry &e : entries_) {
        w.b(e.valid);
        w.u64(e.tag);
        w.u64(e.target);
        w.u64(e.fallthrough);
        w.u8(static_cast<uint8_t>(e.kind));
        w.u8(e.missStreak);
        w.u64(e.lastUsed);
    }
}

void
Btb::restoreState(StateReader &r)
{
    useClock_ = r.u64();
    for (Entry &e : entries_) {
        e.valid = r.b();
        e.tag = r.u64();
        e.target = r.u64();
        e.fallthrough = r.u64();
        e.kind = static_cast<BranchKind>(r.u8());
        e.missStreak = r.u8();
        e.lastUsed = r.u64();
    }
    // The memo is only valid between a lookup() and the matching
    // update(); a restore never lands in that window.
    memoValid_ = false;
    memoEntry_ = nullptr;
    memoPc_ = 0;
}

} // namespace tpred
