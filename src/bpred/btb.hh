/**
 * @file
 * Branch target buffer (paper sections 1-2).
 *
 * The BTB stores, per branch, the taken target and fall-through address.
 * For indirect jumps the stored target is the last computed target, which
 * is exactly the baseline scheme the target cache improves upon.  The
 * Calder/Grunwald "2-bit" update strategy (related work, paper Table 2)
 * is implemented as an alternative target-update policy.
 */

#ifndef TPRED_BPRED_BTB_HH
#define TPRED_BPRED_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/micro_op.hh"

namespace tpred
{

class StateWriter;
class StateReader;

/** Target-address update policy for BTB entries. */
enum class BtbUpdateStrategy : uint8_t
{
    /** Replace the stored target on every misprediction. */
    Default,
    /**
     * Calder & Grunwald: replace the stored target only after two
     * consecutive mispredictions with that target.
     */
    TwoBit,
};

/** BTB geometry and policy. */
struct BtbConfig
{
    unsigned sets = 256;   ///< must be a power of two
    unsigned ways = 4;
    BtbUpdateStrategy strategy = BtbUpdateStrategy::Default;

    unsigned entries() const { return sets * ways; }
};

/** What a BTB hit tells the fetch stage. */
struct BtbPrediction
{
    uint64_t target = 0;       ///< predicted taken-target
    uint64_t fallthrough = 0;  ///< pc + 4
    BranchKind kind = BranchKind::None;
};

/**
 * Set-associative BTB with true-LRU replacement.
 *
 * lookup() is performed at fetch; update() at branch resolution with the
 * architectural outcome.  The structure is policy-free about *direction*:
 * a separate direction predictor decides taken/not-taken for conditional
 * branches, the BTB only supplies addresses and the branch kind.
 */
class Btb
{
  public:
    explicit Btb(const BtbConfig &config);

    /**
     * Fetch-time probe.
     * @return The stored prediction, or nullopt on miss.  A hit
     *         refreshes the entry's LRU state.
     */
    std::optional<BtbPrediction> lookup(uint64_t pc);

    /**
     * Side-effect-free probe: what lookup(pc) *would* return, without
     * refreshing LRU state or the probe memo.  The fused timing sweep
     * uses this to evaluate every batch member's fetch-time prediction
     * against the lead front end's BTB before the lead itself fetches
     * the op (harness/sweep_kernel.cc) — the lead's own lookup() then
     * applies the one architectural LRU refresh, exactly as in a
     * per-config run.
     */
    std::optional<BtbPrediction> peek(uint64_t pc) const;

    /**
     * Resolution-time update: allocates on miss, refreshes the kind and
     * fall-through, and applies the configured target-update strategy.
     * Conditional branches only update the target when taken.
     */
    void update(const MicroOp &op);

    const BtbConfig &config() const { return config_; }

    /** Number of valid entries (for tests / occupancy reporting). */
    size_t validEntries() const;

    /** Serializes the full table + LRU clock (sharded replay). */
    void saveState(StateWriter &w) const;

    /** Restores a saveState() snapshot; geometry must match. */
    void restoreState(StateReader &r);

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t target = 0;
        uint64_t fallthrough = 0;
        BranchKind kind = BranchKind::None;
        /// Consecutive mispredicts of the stored target (TwoBit strategy).
        uint8_t missStreak = 0;
        uint64_t lastUsed = 0;
    };

    uint64_t setIndex(uint64_t pc) const;
    uint64_t tagOf(uint64_t pc) const;
    Entry *findEntry(uint64_t pc);
    Entry &victimEntry(uint64_t set);

    BtbConfig config_;
    unsigned setBits_;
    std::vector<Entry> entries_;  ///< sets x ways, row-major
    uint64_t useClock_ = 0;

    // The front end always probes lookup(pc) then trains update(op)
    // with the same pc and nothing in between; memoizing the probed
    // entry spares the update a second set walk.  lookup() never
    // alters the pc->entry mapping and update() consumes (and any
    // update invalidates) the memo, so behaviour is identical.
    uint64_t memoPc_ = 0;
    Entry *memoEntry_ = nullptr;
    bool memoValid_ = false;
};

} // namespace tpred

#endif // TPRED_BPRED_BTB_HH
