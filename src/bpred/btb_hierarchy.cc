#include "bpred/btb_hierarchy.hh"

#include <cassert>
#include <sstream>

#include "common/bits.hh"
#include "common/state_io.hh"
#include "obs/metrics.hh"

namespace tpred
{

void
creditBtbCounters(const BtbHierarchyStats &s)
{
    static const obs::Counter l1_hits =
        obs::globalMetrics().counter("btb.l1_hits");
    static const obs::Counter l1_misses =
        obs::globalMetrics().counter("btb.l1_misses");
    static const obs::Counter l2_hits =
        obs::globalMetrics().counter("btb.l2_hits");
    static const obs::Counter prefetches =
        obs::globalMetrics().counter("btb.prefetches");
    static const obs::Counter victims =
        obs::globalMetrics().counter("btb.victims");
    l1_hits.inc(s.l1Hits);
    l1_misses.inc(s.l1Misses);
    l2_hits.inc(s.l2Hits);
    prefetches.inc(s.prefetches);
    victims.inc(s.victims);
}

namespace
{

uint64_t
levelStorageBits(const BtbConfig &cfg)
{
    // Modeled entry cost: tag (48-bit VA, word aligned, minus the set
    // index) + 32-bit target offset + kind + 2-bit strategy state +
    // true-LRU rank within the set.
    const unsigned set_bits = floorLog2(cfg.sets);
    const unsigned tag_bits = set_bits < 46 ? 46 - set_bits : 0;
    const unsigned lru_bits = cfg.ways > 1 ? floorLog2(cfg.ways) : 0;
    const uint64_t entry_bits = tag_bits + 32 + 3 + 2 + lru_bits + 1;
    return entry_bits * cfg.entries();
}

/** Single-level adapter: the paper's Btb behind the hierarchy API. */
class SingleLevelBtb final : public BtbHierarchy
{
  public:
    explicit SingleLevelBtb(const BtbHierarchyConfig &config)
        : BtbHierarchy(config),
          btb_(config.l1)
    {
    }

    BtbProbe
    lookup(uint64_t pc) override
    {
        BtbProbe probe{btb_.lookup(pc), 0};
        if (probe.pred)
            ++hstats_.l1Hits;
        else
            ++hstats_.l1Misses;
        return probe;
    }

    BtbProbe
    peek(uint64_t pc) const override
    {
        return {btb_.peek(pc), 0};
    }

    void update(const MicroOp &op) override { btb_.update(op); }

    size_t validEntries() const override { return btb_.validEntries(); }

    // Save format is exactly Btb's own: a single-level hierarchy
    // checkpoint is byte-for-byte what the pre-hierarchy front end
    // wrote.
    void saveState(StateWriter &w) const override { btb_.saveState(w); }
    void restoreState(StateReader &r) override { btb_.restoreState(r); }

  private:
    Btb btb_;
};

/**
 * Exclusive two-level BTB.  Entries carry their full pc so they can
 * migrate between levels with different set geometries.
 */
class TwoLevelBtb final : public BtbHierarchy
{
  public:
    explicit TwoLevelBtb(const BtbHierarchyConfig &config)
        : BtbHierarchy(config),
          l1_(config.l1),
          l2_(config.l2)
    {
    }

    BtbProbe
    lookup(uint64_t pc) override
    {
        if (Entry *hit = l1_.find(pc)) {
            hit->lastUsed = ++l1_.useClock;
            ++hstats_.l1Hits;
            return {predictionOf(*hit), 0};
        }
        ++hstats_.l1Misses;
        Entry *lower = l2_.find(pc);
        if (!lower)
            return {std::nullopt, 0};

        // L2 hit: prefetch the entry into L1 (the hierarchy is
        // exclusive, so the L2 copy is consumed) and move any valid L1
        // victim down.  The redirect still happens this fetch, just
        // missPenalty cycles late.
        ++hstats_.l2Hits;
        ++hstats_.prefetches;
        Entry promoted = *lower;
        lower->valid = false;
        Entry &slot = l1_.victim(l1_.setOf(pc));
        if (slot.valid)
            demote(slot);
        slot = promoted;
        slot.lastUsed = ++l1_.useClock;
        return {predictionOf(slot), config_.missPenalty};
    }

    BtbProbe
    peek(uint64_t pc) const override
    {
        if (const Entry *hit = l1_.find(pc))
            return {predictionOf(*hit), 0};
        if (const Entry *lower = l2_.find(pc))
            return {predictionOf(*lower), config_.missPenalty};
        return {std::nullopt, 0};
    }

    void
    update(const MicroOp &op) override
    {
        assert(op.isBranch());
        // Train wherever the entry lives.  The fetch-time lookup for
        // this pc already promoted any L2-resident entry, so the L2
        // branch only fires for updates without a preceding probe.
        if (Entry *entry = l1_.find(op.pc)) {
            train(l1_, *entry, op);
            return;
        }
        if (Entry *entry = l2_.find(op.pc)) {
            train(l2_, *entry, op);
            return;
        }
        Entry &slot = l1_.victim(l1_.setOf(op.pc));
        if (slot.valid)
            demote(slot);
        slot.valid = true;
        slot.pc = op.pc;
        slot.kind = op.branch;
        slot.fallthrough = op.fallthrough;
        slot.missStreak = 0;
        slot.lastUsed = ++l1_.useClock;
        slot.target = op.taken ? op.nextPc : 0;
    }

    size_t
    validEntries() const override
    {
        return l1_.validEntries() + l2_.validEntries();
    }

    void
    saveState(StateWriter &w) const override
    {
        l1_.save(w);
        l2_.save(w);
    }

    void
    restoreState(StateReader &r) override
    {
        l1_.restore(r);
        l2_.restore(r);
    }

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t pc = 0;  ///< full pc; level tags derive from it
        uint64_t target = 0;
        uint64_t fallthrough = 0;
        BranchKind kind = BranchKind::None;
        uint8_t missStreak = 0;
        uint64_t lastUsed = 0;
    };

    struct Level
    {
        explicit Level(const BtbConfig &config)
            : cfg(config),
              setBits(floorLog2(config.sets)),
              entries(config.sets * config.ways)
        {
            assert(isPowerOfTwo(config.sets));
            assert(config.ways >= 1);
        }

        uint64_t setOf(uint64_t pc) const
        {
            return bits(pc >> 2, 0, setBits);
        }

        Entry *
        find(uint64_t pc)
        {
            Entry *base = &entries[setOf(pc) * cfg.ways];
            for (unsigned w = 0; w < cfg.ways; ++w) {
                if (base[w].valid && base[w].pc == pc)
                    return &base[w];
            }
            return nullptr;
        }

        const Entry *
        find(uint64_t pc) const
        {
            return const_cast<Level *>(this)->find(pc);
        }

        Entry &
        victim(uint64_t set)
        {
            Entry *base = &entries[set * cfg.ways];
            Entry *victim = base;
            for (unsigned w = 0; w < cfg.ways; ++w) {
                if (!base[w].valid)
                    return base[w];
                if (base[w].lastUsed < victim->lastUsed)
                    victim = &base[w];
            }
            return *victim;
        }

        size_t
        validEntries() const
        {
            size_t n = 0;
            for (const Entry &e : entries)
                n += e.valid ? 1 : 0;
            return n;
        }

        void
        save(StateWriter &w) const
        {
            w.u64(useClock);
            for (const Entry &e : entries) {
                w.b(e.valid);
                w.u64(e.pc);
                w.u64(e.target);
                w.u64(e.fallthrough);
                w.u8(static_cast<uint8_t>(e.kind));
                w.u8(e.missStreak);
                w.u64(e.lastUsed);
            }
        }

        void
        restore(StateReader &r)
        {
            useClock = r.u64();
            for (Entry &e : entries) {
                e.valid = r.b();
                e.pc = r.u64();
                e.target = r.u64();
                e.fallthrough = r.u64();
                e.kind = static_cast<BranchKind>(r.u8());
                e.missStreak = r.u8();
                e.lastUsed = r.u64();
            }
        }

        BtbConfig cfg;
        unsigned setBits;
        std::vector<Entry> entries;
        uint64_t useClock = 0;
    };

    static BtbPrediction
    predictionOf(const Entry &e)
    {
        return {e.target, e.fallthrough, e.kind};
    }

    /** Moves a valid L1 victim down into L2 (its L2 victim drops). */
    void
    demote(const Entry &evicted)
    {
        ++hstats_.victims;
        Entry &slot = l2_.victim(l2_.setOf(evicted.pc));
        slot = evicted;
        slot.lastUsed = ++l2_.useClock;
    }

    /** Same training policy as Btb::update's hit path. */
    static void
    train(Level &level, Entry &entry, const MicroOp &op)
    {
        entry.kind = op.branch;
        entry.fallthrough = op.fallthrough;
        entry.lastUsed = ++level.useClock;
        if (!op.taken)
            return;  // not-taken conditional: keep the taken-target
        if (entry.target == op.nextPc) {
            entry.missStreak = 0;
            return;
        }
        switch (level.cfg.strategy) {
          case BtbUpdateStrategy::Default:
            entry.target = op.nextPc;
            entry.missStreak = 0;
            break;
          case BtbUpdateStrategy::TwoBit:
            if (++entry.missStreak >= 2) {
                entry.target = op.nextPc;
                entry.missStreak = 0;
            }
            break;
        }
    }

    Level l1_;
    Level l2_;
};

} // namespace

std::string
BtbHierarchyConfig::describe() const
{
    std::ostringstream out;
    if (!twoLevel) {
        out << "btb" << l1.sets << "x" << l1.ways;
        if (l1.strategy == BtbUpdateStrategy::TwoBit)
            out << "-2bit";
        return out.str();
    }
    out << "l1-" << l1.sets << "x" << l1.ways << "+l2-" << l2.sets << "x"
        << l2.ways << "p" << missPenalty;
    return out.str();
}

uint64_t
BtbHierarchyConfig::storageBits() const
{
    uint64_t total = levelStorageBits(l1);
    if (twoLevel)
        total += levelStorageBits(l2);
    return total;
}

std::unique_ptr<BtbHierarchy>
makeBtbHierarchy(const BtbHierarchyConfig &config)
{
    if (config.twoLevel)
        return std::make_unique<TwoLevelBtb>(config);
    return std::make_unique<SingleLevelBtb>(config);
}

} // namespace tpred
