/**
 * @file
 * BTB hierarchy interface: one fetch-time probe API over either the
 * paper's single monolithic BTB or a modern two-level front end.
 *
 * The paper models a single 1K-entry BTB (bpred/btb.hh).  Server front
 * ends (Micro BTB, arXiv 2106.04205; FDIP revisited, arXiv 2006.13547)
 * instead pair a tiny zero-bubble L1 BTB with a large second level:
 * an L1 miss that hits L2 still steers fetch, but the redirect arrives
 * a few cycles late — a fetch bubble charged even when the prediction
 * is *correct*.  The two-level implementation here models that regime
 * with exclusive L2->L1 prefetch-on-miss and L1-victim movement into
 * L2, using the Arm BTB geometries reverse-engineered in arXiv
 * 2412.05413 as realistic defaults (a ~64-entry nano BTB in front of a
 * several-K-entry main BTB, ~2-cycle bubble on an L2-supplied target).
 *
 * Both implementations expose deterministic per-level counters through
 * the obs registry: btb.l1_hits, btb.l1_misses, btb.l2_hits,
 * btb.prefetches and btb.victims.  Probes accumulate in plain
 * per-instance stats (hstats) and the experiment layer credits them to
 * the registry once per counted run (creditBtbCounters), so the
 * per-branch hot path stays free of atomics and warm-up/verification
 * replays never distort the totals.
 */

#ifndef TPRED_BPRED_BTB_HIERARCHY_HH
#define TPRED_BPRED_BTB_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "bpred/btb.hh"

namespace tpred
{

class StateWriter;
class StateReader;

/** Geometry of a one- or two-level BTB front end. */
struct BtbHierarchyConfig
{
    /** The only level when twoLevel is false; the nano BTB otherwise. */
    BtbConfig l1{};
    bool twoLevel = false;
    /** Second level; only used when twoLevel is true. */
    BtbConfig l2{1024, 8, BtbUpdateStrategy::Default};
    /** Fetch-bubble cycles charged when a probe is satisfied from L2. */
    unsigned missPenalty = 0;

    /** Stable human-readable tag, e.g. "btb256x4" or "l1-16x4+l2-1024x8p2". */
    std::string describe() const;

    /** Modeled storage cost of all levels (tune axis). */
    uint64_t storageBits() const;
};

/** What a hierarchy probe tells the fetch stage. */
struct BtbProbe
{
    std::optional<BtbPrediction> pred;
    /**
     * Cycles the fetch redirect arrives late because the prediction was
     * supplied by L2 rather than L1.  Always 0 on an L1 hit, a full
     * miss, or a single-level BTB.
     */
    unsigned bubbleCycles = 0;
};

/** Per-instance probe accounting (mirrors the btb.* obs counters). */
struct BtbHierarchyStats
{
    uint64_t l1Hits = 0;
    uint64_t l1Misses = 0;
    uint64_t l2Hits = 0;      ///< L1 misses satisfied by L2
    uint64_t prefetches = 0;  ///< L2->L1 promotions (== l2Hits)
    uint64_t victims = 0;     ///< valid L1 victims moved into L2
};

/**
 * Fetch-time target/kind detection, one or two levels deep.
 *
 * The contract every implementation honours (the fused sweeps depend
 * on it): peek(pc) returns exactly the prediction and bubble that
 * lookup(pc) would, without any side effect; lookup() applies the one
 * architectural LRU refresh / promotion; update() trains wherever the
 * entry currently lives and allocates into L1 on a full miss.
 */
class BtbHierarchy
{
  public:
    virtual ~BtbHierarchy() = default;

    /** Fetch-time probe; may move entries between levels. */
    virtual BtbProbe lookup(uint64_t pc) = 0;

    /** Side-effect-free probe: what lookup(pc) *would* return. */
    virtual BtbProbe peek(uint64_t pc) const = 0;

    /** Resolution-time training (see bpred/btb.hh for the policy). */
    virtual void update(const MicroOp &op) = 0;

    /** Valid entries summed over all levels. */
    virtual size_t validEntries() const = 0;

    /**
     * Serializes all levels (tables + LRU clocks).  Probe accounting
     * (hstats) is intentionally *not* serialized: the counters describe
     * work this instance performed, not architectural state, and a
     * restored fork must not re-report its parent's probes.
     */
    virtual void saveState(StateWriter &w) const = 0;

    /** Restores a saveState() snapshot; config must match. */
    virtual void restoreState(StateReader &r) = 0;

    const BtbHierarchyConfig &config() const { return config_; }
    const BtbHierarchyStats &hstats() const { return hstats_; }

  protected:
    explicit BtbHierarchy(const BtbHierarchyConfig &config)
        : config_(config)
    {
    }

    BtbHierarchyConfig config_;
    BtbHierarchyStats hstats_;
};

/** Builds the implementation @p config selects. */
std::unique_ptr<BtbHierarchy>
makeBtbHierarchy(const BtbHierarchyConfig &config);

/**
 * Credits @p stats to the deterministic btb.* obs counters.  Called by
 * the experiment layer once per *counted* run (the same discipline as
 * CoreModel::endSession's count_metrics): warm-up windows, shard
 * verification replays and divergence forks never credit, so a sharded
 * or fused run stays counter-indistinguishable from a continuous one.
 */
void creditBtbCounters(const BtbHierarchyStats &stats);

} // namespace tpred

#endif // TPRED_BPRED_BTB_HIERARCHY_HH
