#include "bpred/cbt.hh"

#include <cassert>

#include "common/bits.hh"

namespace tpred
{

CaseBlockTable::CaseBlockTable(const CbtConfig &config)
    : config_(config),
      setBits_(floorLog2(config.sets)),
      entries_(config.sets * config.ways)
{
    assert(isPowerOfTwo(config.sets));
    assert(config.ways >= 1);
}

uint64_t
CaseBlockTable::setIndex(uint64_t pc, uint64_t selector) const
{
    return ((pc >> 2) ^ selector) & mask(setBits_);
}

CaseBlockTable::Entry *
CaseBlockTable::findEntry(uint64_t pc, uint64_t selector)
{
    Entry *base = &entries_[setIndex(pc, selector) * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].pc == pc &&
            base[w].selector == selector) {
            return &base[w];
        }
    }
    return nullptr;
}

std::optional<uint64_t>
CaseBlockTable::lookup(uint64_t pc, uint64_t selector)
{
    Entry *entry = findEntry(pc, selector);
    if (!entry)
        return std::nullopt;
    entry->lastUsed = ++useClock_;
    return entry->target;
}

void
CaseBlockTable::update(uint64_t pc, uint64_t selector, uint64_t target)
{
    Entry *entry = findEntry(pc, selector);
    if (!entry) {
        Entry *base = &entries_[setIndex(pc, selector) * config_.ways];
        entry = base;
        for (unsigned w = 0; w < config_.ways; ++w) {
            if (!base[w].valid) {
                entry = &base[w];
                break;
            }
            if (base[w].lastUsed < entry->lastUsed)
                entry = &base[w];
        }
        entry->valid = true;
        entry->pc = pc;
        entry->selector = selector;
    }
    entry->target = target;
    entry->lastUsed = ++useClock_;
}

} // namespace tpred
