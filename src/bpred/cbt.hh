/**
 * @file
 * Case block table (Kaeli & Emma), the related-work mechanism of paper
 * section 2.
 *
 * The CBT maps (switch site, case-block variable value) to the case
 * address, dynamically building a jump table.  Its limitation on
 * out-of-order machines — the variable's value is usually unknown at
 * fetch — is modelled by the @c valueKnown flag of lookupAtFetch().
 */

#ifndef TPRED_BPRED_CBT_HH
#define TPRED_BPRED_CBT_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace tpred
{

/** CBT geometry. */
struct CbtConfig
{
    unsigned sets = 128;  ///< power of two
    unsigned ways = 4;
};

/**
 * Set-associative table keyed by (site pc, selector value), LRU
 * replacement.
 */
class CaseBlockTable
{
  public:
    explicit CaseBlockTable(const CbtConfig &config);

    /**
     * Oracle-style probe: the selector value is known.
     * @return The recorded case address, or nullopt.
     */
    std::optional<uint64_t> lookup(uint64_t pc, uint64_t selector);

    /**
     * Fetch-time probe on a speculative machine: when @p value_known is
     * false (the common out-of-order case) the probe cannot be made and
     * the CBT abstains.
     */
    std::optional<uint64_t>
    lookupAtFetch(uint64_t pc, uint64_t selector, bool value_known)
    {
        if (!value_known)
            return std::nullopt;
        return lookup(pc, selector);
    }

    /** Records the resolved case address for (pc, selector). */
    void update(uint64_t pc, uint64_t selector, uint64_t target);

    const CbtConfig &config() const { return config_; }

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t pc = 0;
        uint64_t selector = 0;
        uint64_t target = 0;
        uint64_t lastUsed = 0;
    };

    uint64_t setIndex(uint64_t pc, uint64_t selector) const;
    Entry *findEntry(uint64_t pc, uint64_t selector);

    CbtConfig config_;
    unsigned setBits_;
    std::vector<Entry> entries_;
    uint64_t useClock_ = 0;
};

} // namespace tpred

#endif // TPRED_BPRED_CBT_HH
