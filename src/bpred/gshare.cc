#include "bpred/gshare.hh"

#include <cassert>

#include "common/bits.hh"
#include "common/state_io.hh"

namespace tpred
{

GShare::GShare(unsigned index_bits)
    : indexBits_(index_bits),
      pht_(size_t{1} << index_bits, SatCounter(2, 1))
{
    assert(index_bits >= 1 && index_bits <= 24);
}

uint64_t
GShare::indexOf(uint64_t pc, uint64_t history) const
{
    return ((pc >> 2) ^ history) & mask(indexBits_);
}

bool
GShare::predict(uint64_t pc, uint64_t history) const
{
    return pht_[indexOf(pc, history)].isTaken();
}

void
GShare::update(uint64_t pc, uint64_t history, bool taken)
{
    SatCounter &ctr = pht_[indexOf(pc, history)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

void
GShare::saveState(StateWriter &w) const
{
    for (const SatCounter &ctr : pht_)
        w.u8(static_cast<uint8_t>(ctr.count()));
}

void
GShare::restoreState(StateReader &r)
{
    for (SatCounter &ctr : pht_)
        ctr.set(r.u8());
}

} // namespace tpred
