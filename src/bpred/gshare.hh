/**
 * @file
 * gshare conditional-branch direction predictor (McFarling).
 *
 * The paper's machine needs a direction predictor for conditional
 * branches; its pattern history register doubles as the history input of
 * pattern-history target caches ("the target cache can use the branch
 * predictor's branch history register", section 3.1).
 */

#ifndef TPRED_BPRED_GSHARE_HH
#define TPRED_BPRED_GSHARE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"

namespace tpred
{

class StateWriter;
class StateReader;

/**
 * PHT of 2-bit counters indexed by (pc XOR global-history).
 *
 * The global history register itself lives in the caller (the front-end
 * predictor) so it can be shared with the target cache.
 */
class GShare
{
  public:
    /**
     * @param index_bits log2 of the PHT entry count (1..24).
     */
    explicit GShare(unsigned index_bits);

    /** Direction prediction for @p pc under @p history. */
    bool predict(uint64_t pc, uint64_t history) const;

    /** Trains the indexed counter with the resolved direction. */
    void update(uint64_t pc, uint64_t history, bool taken);

    unsigned indexBits() const { return indexBits_; }

    /** Serializes every PHT counter (sharded replay). */
    void saveState(StateWriter &w) const;

    /** Restores a saveState() snapshot; geometry must match. */
    void restoreState(StateReader &r);

  private:
    uint64_t indexOf(uint64_t pc, uint64_t history) const;

    unsigned indexBits_;
    std::vector<SatCounter> pht_;
};

} // namespace tpred

#endif // TPRED_BPRED_GSHARE_HH
