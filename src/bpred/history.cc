#include "bpred/history.hh"

#include <algorithm>
#include <cassert>

#include "common/state_io.hh"

namespace tpred
{

PatternHistory::PatternHistory(unsigned length)
    : length_(length)
{
    assert(length >= 1 && length <= 32);
}

void
PatternHistory::update(bool taken)
{
    reg_ = ((reg_ << 1) | (taken ? 1 : 0)) & mask(length_);
}

std::string_view
pathFilterName(PathFilter filter)
{
    switch (filter) {
      case PathFilter::Control: return "control";
      case PathFilter::Branch: return "branch";
      case PathFilter::CallRet: return "call/ret";
      case PathFilter::IndJmp: return "ind jmp";
    }
    return "?";
}

namespace
{

bool
matchesFilter(const MicroOp &op, PathFilter filter)
{
    switch (filter) {
      case PathFilter::Control:
        // Any instruction that actually redirected the stream.
        return isControl(op.branch) && op.taken;
      case PathFilter::Branch:
        return op.branch == BranchKind::CondDirect && op.taken;
      case PathFilter::CallRet:
        return op.branch == BranchKind::Call ||
               op.branch == BranchKind::IndirectCall ||
               op.branch == BranchKind::Return;
      case PathFilter::IndJmp:
        return isIndirectNonReturn(op.branch);
    }
    return false;
}

} // namespace

void
GlobalPathHistory::observe(const MicroOp &op)
{
    if (matchesFilter(op, filter_))
        reg_.record(op.nextPc);
}

void
PerAddressPathHistory::observe(const MicroOp &op)
{
    if (!isIndirectNonReturn(op.branch))
        return;
    auto [it, inserted] = regs_.try_emplace(op.pc, spec_);
    it->second.record(op.nextPc);
}

uint64_t
PerAddressPathHistory::valueFor(uint64_t pc) const
{
    auto it = regs_.find(pc);
    return it == regs_.end() ? 0 : it->second.value();
}

void
PerAddressPathHistory::saveState(StateWriter &w) const
{
    std::vector<std::pair<uint64_t, uint64_t>> sorted;
    sorted.reserve(regs_.size());
    for (const auto &[pc, reg] : regs_)
        sorted.emplace_back(pc, reg.value());
    std::sort(sorted.begin(), sorted.end());
    w.u64(sorted.size());
    for (const auto &[pc, value] : sorted) {
        w.u64(pc);
        w.u64(value);
    }
}

void
PerAddressPathHistory::restoreState(StateReader &r)
{
    regs_.clear();
    const uint64_t count = r.u64();
    regs_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        const uint64_t pc = r.u64();
        const uint64_t value = r.u64();
        auto [it, inserted] = regs_.try_emplace(pc, spec_);
        it->second.restoreValue(value);
    }
}

std::string
HistorySpec::describe() const
{
    switch (kind) {
      case HistoryKind::Pattern:
        return "pattern(" + std::to_string(lengthBits) + ")";
      case HistoryKind::PathGlobal:
        return "path-global/" + std::string(pathFilterName(filter)) +
               "(" + std::to_string(path.lengthBits) + "b," +
               std::to_string(path.bitsPerTarget) + "/tgt)";
      case HistoryKind::PathPerAddress:
        return "path-per-addr(" + std::to_string(path.lengthBits) + "b," +
               std::to_string(path.bitsPerTarget) + "/tgt)";
    }
    return "?";
}

HistoryTracker::HistoryTracker(const HistorySpec &spec)
    : spec_(spec),
      pattern_(spec.kind == HistoryKind::Pattern ? spec.lengthBits : 1),
      globalPath_(spec.path, spec.filter),
      perAddrPath_(spec.path)
{
}

uint64_t
HistoryTracker::valueFor(uint64_t pc) const
{
    switch (spec_.kind) {
      case HistoryKind::Pattern:
        return pattern_.value();
      case HistoryKind::PathGlobal:
        return globalPath_.value();
      case HistoryKind::PathPerAddress:
        return perAddrPath_.valueFor(pc);
    }
    return 0;
}

void
HistoryTracker::observe(const MicroOp &op)
{
    switch (spec_.kind) {
      case HistoryKind::Pattern:
        if (op.branch == BranchKind::CondDirect)
            pattern_.update(op.taken);
        break;
      case HistoryKind::PathGlobal:
        globalPath_.observe(op);
        break;
      case HistoryKind::PathPerAddress:
        perAddrPath_.observe(op);
        break;
    }
}

void
HistoryTracker::reset()
{
    pattern_.reset();
    globalPath_.reset();
    perAddrPath_.reset();
}

void
HistoryTracker::saveState(StateWriter &w) const
{
    w.u64(pattern_.value());
    w.u64(globalPath_.value());
    perAddrPath_.saveState(w);
}

void
HistoryTracker::restoreState(StateReader &r)
{
    pattern_.restoreValue(r.u64());
    globalPath_.restoreValue(r.u64());
    perAddrPath_.restoreState(r);
}

} // namespace tpred
