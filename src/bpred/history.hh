/**
 * @file
 * Branch history registers (paper section 3.1).
 *
 * Two families of history feed the target cache index:
 *  - pattern history: the global taken/not-taken outcomes of the last n
 *    conditional branches, exactly the 2-level predictor's register;
 *  - path history: bits of the target addresses of recent control
 *    instructions, either one global register (with a type filter) or
 *    one register per static indirect jump recording that jump's own
 *    past targets.
 */

#ifndef TPRED_BPRED_HISTORY_HH
#define TPRED_BPRED_HISTORY_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/bits.hh"
#include "trace/micro_op.hh"

namespace tpred
{

class StateWriter;
class StateReader;

/**
 * Global pattern history register: taken/not-taken outcomes of the last
 * n conditional branches, newest outcome in the LSB.
 */
class PatternHistory
{
  public:
    /** @param length Register length in bits (1..32). */
    explicit PatternHistory(unsigned length);

    /** Shifts in one conditional-branch outcome. */
    void update(bool taken);

    /** Current register value (low length() bits). */
    uint64_t value() const { return reg_; }

    unsigned length() const { return length_; }

    void reset() { reg_ = 0; }

    /** Restores an exact register value (checkpoint restore). */
    void restoreValue(uint64_t v) { reg_ = v & mask(length_); }

  private:
    unsigned length_;
    uint64_t reg_ = 0;
};

/**
 * Which control instructions a *global* path history register records
 * (paper section 3.1's four variations plus per-address).
 */
enum class PathFilter : uint8_t
{
    Control,  ///< every instruction that can redirect the stream
    Branch,   ///< conditional branches only
    CallRet,  ///< procedure calls and returns only
    IndJmp,   ///< indirect jumps only
};

/** Printable name of a path filter. */
std::string_view pathFilterName(PathFilter filter);

/**
 * Parameters shared by global and per-address path history registers.
 *
 * When a recorded instruction resolves, @c bitsPerTarget bits of its
 * target address, starting at bit @c addrBitOffset, are shifted into the
 * register.  The paper's Table 5 studies @c addrBitOffset (low vs high
 * address bits); Table 6 studies @c bitsPerTarget.  Instructions are
 * word-aligned, so the two lowest address bits carry no information and
 * the useful offsets start at 2.
 */
struct PathSpec
{
    unsigned lengthBits = 9;
    unsigned bitsPerTarget = 1;
    unsigned addrBitOffset = 2;

    bool operator==(const PathSpec &) const = default;

    /** Bits of @p target that this spec records. */
    uint64_t
    recordedBits(uint64_t target) const
    {
        return bits(target, addrBitOffset, bitsPerTarget);
    }
};

/**
 * One path history shift register.
 */
class PathRegister
{
  public:
    explicit PathRegister(const PathSpec &spec = {}) : spec_(spec) {}

    /** Shifts in the recorded bits of @p target. */
    void
    record(uint64_t target)
    {
        reg_ = ((reg_ << spec_.bitsPerTarget) | spec_.recordedBits(target))
               & mask(spec_.lengthBits);
    }

    uint64_t value() const { return reg_; }

    void reset() { reg_ = 0; }

    /** Restores an exact register value (checkpoint restore). */
    void restoreValue(uint64_t v) { reg_ = v & mask(spec_.lengthBits); }

  private:
    PathSpec spec_;
    uint64_t reg_ = 0;
};

/**
 * Global path history: a single register recording the targets of all
 * resolved control instructions matching @c filter.
 *
 * Not-taken conditional branches do not redirect the stream and are not
 * recorded (the path consists of the targets of branches actually
 * leading to the current instruction).
 */
class GlobalPathHistory
{
  public:
    GlobalPathHistory(const PathSpec &spec, PathFilter filter)
        : reg_(spec), filter_(filter)
    {
    }

    /** Folds a resolved instruction into the history. */
    void observe(const MicroOp &op);

    uint64_t value() const { return reg_.value(); }

    PathFilter filter() const { return filter_; }

    void reset() { reg_.reset(); }

    /** Restores an exact register value (checkpoint restore). */
    void restoreValue(uint64_t v) { reg_.restoreValue(v); }

  private:
    PathRegister reg_;
    PathFilter filter_;
};

/**
 * Per-address path history: one register per static indirect jump,
 * recording that jump's own last k targets (paper section 3.1).
 *
 * The register file is unbounded here (simulation convenience); a
 * hardware implementation would bound and tag it like any other
 * predictor table.
 */
class PerAddressPathHistory
{
  public:
    explicit PerAddressPathHistory(const PathSpec &spec) : spec_(spec) {}

    /** Folds a resolved indirect jump into its own register. */
    void observe(const MicroOp &op);

    /** History value for the register of static jump @p pc (0 if new). */
    uint64_t valueFor(uint64_t pc) const;

    size_t registers() const { return regs_.size(); }

    void reset() { regs_.clear(); }

    /** Serializes the register file, sorted by pc for determinism. */
    void saveState(StateWriter &w) const;

    /** Restores a saveState() snapshot (replaces all registers). */
    void restoreState(StateReader &r);

  private:
    PathSpec spec_;
    std::unordered_map<uint64_t, PathRegister> regs_;
};

/** Which history family a target-cache configuration indexes with. */
enum class HistoryKind : uint8_t
{
    Pattern,        ///< global conditional-branch pattern history
    PathGlobal,     ///< one global path register with a type filter
    PathPerAddress, ///< one path register per static indirect jump
};

/** Full history specification for an experiment configuration. */
struct HistorySpec
{
    HistoryKind kind = HistoryKind::Pattern;
    unsigned lengthBits = 9;
    PathSpec path{};                        ///< path kinds only
    PathFilter filter = PathFilter::Control; ///< PathGlobal only

    /**
     * Field-wise equality.  Two equal specs construct HistoryTracker
     * instances with identical state trajectories, which is what lets
     * the fused sweep kernel advance one tracker per spec group
     * (harness/sweep_kernel.hh).
     */
    bool operator==(const HistorySpec &) const = default;

    /** Short human-readable description ("pattern(9)", "path-ind jmp"). */
    std::string describe() const;
};

/**
 * Owns whichever registers a HistorySpec requires and presents a uniform
 * query interface to the target cache harness.
 *
 * observe() must be called for every retired instruction, in order; the
 * registers are updated with architectural outcomes, which models the
 * checkpoint-repaired history of the paper's HPS machine.
 */
class HistoryTracker
{
  public:
    explicit HistoryTracker(const HistorySpec &spec);

    /** History value to index the target cache for jump @p pc. */
    uint64_t valueFor(uint64_t pc) const;

    /** Folds a resolved instruction into the tracked registers. */
    void observe(const MicroOp &op);

    const HistorySpec &spec() const { return spec_; }

    void reset();

    /** Serializes whichever registers the spec uses (sharded replay). */
    void saveState(StateWriter &w) const;

    /** Restores a saveState() snapshot; spec must match. */
    void restoreState(StateReader &r);

  private:
    HistorySpec spec_;
    PatternHistory pattern_;
    GlobalPathHistory globalPath_;
    PerAddressPathHistory perAddrPath_;
};

} // namespace tpred

#endif // TPRED_BPRED_HISTORY_HH
