#include "bpred/ras.hh"

#include <cassert>

#include "common/state_io.hh"

namespace tpred
{

ReturnAddressStack::ReturnAddressStack(unsigned depth)
    : stack_(depth, 0)
{
    assert(depth >= 1);
}

void
ReturnAddressStack::push(uint64_t return_address)
{
    topIdx_ = (topIdx_ + 1) % stack_.size();
    stack_[topIdx_] = return_address;
    if (size_ < stack_.size())
        ++size_;
}

uint64_t
ReturnAddressStack::pop()
{
    if (size_ == 0)
        return 0;
    uint64_t value = stack_[topIdx_];
    topIdx_ = (topIdx_ + stack_.size() - 1) % stack_.size();
    --size_;
    return value;
}

uint64_t
ReturnAddressStack::top() const
{
    return size_ == 0 ? 0 : stack_[topIdx_];
}

void
ReturnAddressStack::saveState(StateWriter &w) const
{
    w.u32(topIdx_);
    w.u32(size_);
    for (uint64_t v : stack_)
        w.u64(v);
}

void
ReturnAddressStack::restoreState(StateReader &r)
{
    topIdx_ = r.u32();
    size_ = r.u32();
    for (uint64_t &v : stack_)
        v = r.u64();
}

} // namespace tpred
