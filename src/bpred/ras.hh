/**
 * @file
 * Return address stack (Webb; Kaeli & Emma).
 *
 * The paper excludes returns from the target cache because "they are
 * effectively handled with the return address stack" (section 1,
 * footnote); this is that stack.
 */

#ifndef TPRED_BPRED_RAS_HH
#define TPRED_BPRED_RAS_HH

#include <cstdint>
#include <vector>

namespace tpred
{

class StateWriter;
class StateReader;

/**
 * Fixed-depth circular return address stack.
 *
 * Overflow overwrites the oldest entry; underflow predicts 0 (a
 * guaranteed miss), both standard hardware behaviours.
 */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 16);

    /** Pushes the return address of a call. */
    void push(uint64_t return_address);

    /** Pops and returns the predicted return target; 0 when empty. */
    uint64_t pop();

    /** Peeks without popping; 0 when empty. */
    uint64_t top() const;

    unsigned size() const { return size_; }
    unsigned depth() const { return static_cast<unsigned>(stack_.size()); }
    bool empty() const { return size_ == 0; }

    void reset() { size_ = 0; topIdx_ = 0; }

    /** Serializes the stack contents and pointers (sharded replay). */
    void saveState(StateWriter &w) const;

    /** Restores a saveState() snapshot; depth must match. */
    void restoreState(StateReader &r);

  private:
    std::vector<uint64_t> stack_;
    unsigned topIdx_ = 0;  ///< index of the most recent entry
    unsigned size_ = 0;    ///< live entries (<= depth)
};

} // namespace tpred

#endif // TPRED_BPRED_RAS_HH
