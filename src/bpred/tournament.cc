#include "bpred/tournament.hh"

#include "common/bits.hh"
#include "common/state_io.hh"

namespace tpred
{

TournamentPredictor::TournamentPredictor(const TournamentConfig &config)
    : config_(config),
      bimodal_(size_t{1} << config.bimodalBits, SatCounter(2, 1)),
      gshare_(config.gshareBits),
      chooser_(size_t{1} << config.chooserBits, SatCounter(2, 1))
{
}

bool
TournamentPredictor::bimodalPredict(uint64_t pc) const
{
    return bimodal_[bits(pc >> 2, 0, config_.bimodalBits)].isTaken();
}

bool
TournamentPredictor::predict(uint64_t pc, uint64_t history) const
{
    ++predictions_;
    const bool use_gshare =
        chooser_[bits(pc >> 2, 0, config_.chooserBits)].isTaken();
    if (use_gshare) {
        ++gshareUses_;
        return gshare_.predict(pc, history);
    }
    return bimodalPredict(pc);
}

void
TournamentPredictor::update(uint64_t pc, uint64_t history, bool taken)
{
    const bool g_correct = gshare_.predict(pc, history) == taken;
    const bool b_correct = bimodalPredict(pc) == taken;

    // Chooser moves toward the component that was (exclusively) right.
    SatCounter &choice = chooser_[bits(pc >> 2, 0,
                                       config_.chooserBits)];
    if (g_correct && !b_correct)
        choice.increment();
    else if (b_correct && !g_correct)
        choice.decrement();

    // Both components always train.
    gshare_.update(pc, history, taken);
    SatCounter &bim = bimodal_[bits(pc >> 2, 0, config_.bimodalBits)];
    if (taken)
        bim.increment();
    else
        bim.decrement();
}

void
TournamentPredictor::saveState(StateWriter &w) const
{
    for (const SatCounter &ctr : bimodal_)
        w.u8(static_cast<uint8_t>(ctr.count()));
    gshare_.saveState(w);
    for (const SatCounter &ctr : chooser_)
        w.u8(static_cast<uint8_t>(ctr.count()));
    w.u64(predictions_);
    w.u64(gshareUses_);
}

void
TournamentPredictor::restoreState(StateReader &r)
{
    for (SatCounter &ctr : bimodal_)
        ctr.set(r.u8());
    gshare_.restoreState(r);
    for (SatCounter &ctr : chooser_)
        ctr.set(r.u8());
    predictions_ = r.u64();
    gshareUses_ = r.u64();
}

double
TournamentPredictor::gshareShare() const
{
    return predictions_
               ? static_cast<double>(gshareUses_) / predictions_
               : 0.0;
}

} // namespace tpred
