/**
 * @file
 * McFarling tournament (combining) direction predictor — the
 * "Combining Branch Predictors" scheme the paper cites [6]: a bimodal
 * (per-PC) component, a gshare (global-history) component, and a
 * per-PC chooser trained toward whichever component was right.
 */

#ifndef TPRED_BPRED_TOURNAMENT_HH
#define TPRED_BPRED_TOURNAMENT_HH

#include <cstdint>
#include <vector>

#include "bpred/gshare.hh"
#include "common/sat_counter.hh"

namespace tpred
{

class StateWriter;
class StateReader;

/** Tournament geometry. */
struct TournamentConfig
{
    unsigned bimodalBits = 12;  ///< log2 bimodal entries
    unsigned gshareBits = 12;   ///< log2 gshare PHT entries
    unsigned chooserBits = 12;  ///< log2 chooser entries
};

/**
 * The combining predictor.  Like GShare, the global history register
 * lives in the caller so it can be shared with the target cache.
 */
class TournamentPredictor
{
  public:
    explicit TournamentPredictor(const TournamentConfig &config = {});

    /** Direction prediction for @p pc under @p history. */
    bool predict(uint64_t pc, uint64_t history) const;

    /** Trains both components and the chooser. */
    void update(uint64_t pc, uint64_t history, bool taken);

    /** Fraction of predictions the chooser sent to gshare. */
    double gshareShare() const;

    /** Serializes both components, chooser and usage counts. */
    void saveState(StateWriter &w) const;

    /** Restores a saveState() snapshot; geometry must match. */
    void restoreState(StateReader &r);

  private:
    bool bimodalPredict(uint64_t pc) const;

    TournamentConfig config_;
    std::vector<SatCounter> bimodal_;
    GShare gshare_;
    std::vector<SatCounter> chooser_;  ///< taken = use gshare
    mutable uint64_t predictions_ = 0;
    mutable uint64_t gshareUses_ = 0;
};

} // namespace tpred

#endif // TPRED_BPRED_TOURNAMENT_HH
