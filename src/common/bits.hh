/**
 * @file
 * Bit-manipulation helpers shared by the predictor structures.
 *
 * All predictor index/tag computations in this repository are expressed in
 * terms of these helpers so that the arithmetic is auditable in one place.
 */

#ifndef TPRED_COMMON_BITS_HH
#define TPRED_COMMON_BITS_HH

#include <cassert>
#include <cstdint>

namespace tpred
{

/** Returns a mask with the low @p n bits set. @p n may be 0..64. */
constexpr uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

/** Extracts bits [lo, lo+n) of @p value, right-justified. */
constexpr uint64_t
bits(uint64_t value, unsigned lo, unsigned n)
{
    return (value >> lo) & mask(n);
}

/** True iff @p value is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2; @p value must be non-zero. */
constexpr unsigned
floorLog2(uint64_t value)
{
    assert(value != 0);
    unsigned l = 0;
    while (value >>= 1)
        ++l;
    return l;
}

/** Ceiling of log2; @p value must be non-zero. */
constexpr unsigned
ceilLog2(uint64_t value)
{
    return floorLog2(value) + (isPowerOfTwo(value) ? 0 : 1);
}

/**
 * Folds (XOR-reduces) @p value down to @p n bits.  Used to hash long
 * history registers into short tags without discarding upper bits.
 */
constexpr uint64_t
foldXor(uint64_t value, unsigned n)
{
    if (n == 0)
        return 0;
    uint64_t folded = 0;
    while (value) {
        folded ^= value & mask(n);
        value >>= n;
    }
    return folded;
}

} // namespace tpred

#endif // TPRED_COMMON_BITS_HH
