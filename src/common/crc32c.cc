#include "common/crc32c.hh"

#include <array>
#include <cstring>

namespace tpred
{

namespace
{

/** Reflected CRC32C polynomial. */
constexpr uint32_t kPoly = 0x82F63B78u;

/** 8 slice tables, built once at first use. */
struct Tables
{
    uint32_t t[8][256];

    Tables()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
            t[0][i] = crc;
        }
        for (uint32_t i = 0; i < 256; ++i)
            for (int slice = 1; slice < 8; ++slice)
                t[slice][i] =
                    (t[slice - 1][i] >> 8) ^ t[0][t[slice - 1][i] & 0xFF];
    }
};

const Tables &
tables()
{
    static const Tables instance;
    return instance;
}

#if defined(__x86_64__) || defined(__i386__)

/**
 * SSE4.2 crc32 instruction path.  The target attribute lets this one
 * function use the instruction without -msse4.2 on the whole build;
 * callers reach it only after the cpuid check below, so binaries stay
 * runnable on any x86-64.  Same convention as the software path
 * (state kept inverted between chunks), so the two are drop-in
 * interchangeable mid-stream.
 */
__attribute__((target("sse4.2"))) uint32_t
crcHardware(uint32_t crc, const uint8_t *p, size_t bytes)
{
    crc = ~crc;
    while (bytes > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
        crc = static_cast<uint32_t>(
            __builtin_ia32_crc32qi(crc, *p++));
        --bytes;
    }
    uint64_t acc = crc;
    while (bytes >= 8) {
        uint64_t word;
        std::memcpy(&word, p, 8);
        acc = __builtin_ia32_crc32di(acc, word);
        p += 8;
        bytes -= 8;
    }
    crc = static_cast<uint32_t>(acc);
    while (bytes-- > 0)
        crc = static_cast<uint32_t>(
            __builtin_ia32_crc32qi(crc, *p++));
    return ~crc;
}

bool
hardwareAvailable()
{
    static const bool available = __builtin_cpu_supports("sse4.2");
    return available;
}

#else

bool
hardwareAvailable()
{
    return false;
}

#endif

} // namespace

uint32_t
crc32cUpdate(uint32_t crc, const void *data, size_t bytes)
{
#if defined(__x86_64__) || defined(__i386__)
    if (hardwareAvailable())
        return crcHardware(crc, static_cast<const uint8_t *>(data),
                           bytes);
#endif
    return crc32cUpdateSoftware(crc, data, bytes);
}

const char *
crc32cImpl()
{
    return hardwareAvailable() ? "sse4.2" : "software";
}

uint32_t
crc32cUpdateSoftware(uint32_t crc, const void *data, size_t bytes)
{
    const Tables &tab = tables();
    const uint8_t *p = static_cast<const uint8_t *>(data);
    crc = ~crc;

    // Byte-wise to 8-byte alignment, then slice-by-8, then the tail.
    while (bytes > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
        crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xFF];
        --bytes;
    }
    while (bytes >= 8) {
        uint64_t word;
        std::memcpy(&word, p, 8);  // little-endian hosts only
        word ^= crc;
        crc = tab.t[7][word & 0xFF] ^
              tab.t[6][(word >> 8) & 0xFF] ^
              tab.t[5][(word >> 16) & 0xFF] ^
              tab.t[4][(word >> 24) & 0xFF] ^
              tab.t[3][(word >> 32) & 0xFF] ^
              tab.t[2][(word >> 40) & 0xFF] ^
              tab.t[1][(word >> 48) & 0xFF] ^
              tab.t[0][(word >> 56) & 0xFF];
        p += 8;
        bytes -= 8;
    }
    while (bytes-- > 0)
        crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xFF];

    return ~crc;
}

} // namespace tpred
