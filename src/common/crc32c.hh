/**
 * @file
 * CRC32C (Castagnoli) checksum, the polynomial used by iSCSI, ext4
 * and the persistent trace corpus (docs/trace_format.md).
 *
 * Two implementations, one answer: a software slice-by-8 reference
 * (a few GB/s, no ISA dependency) and an SSE4.2 hardware path (the
 * crc32 instruction, an order of magnitude faster) selected at
 * runtime via cpuid — no special compile flags needed, so every
 * build gets the fast path on capable x86-64 hosts.  Both compute
 * the identical reflected-CRC32C value; test_stream_pipeline proves
 * them equal on random buffers at every alignment.
 *
 * Corpus loads checksum every payload byte on every map, so this is
 * the hot loop of warm trace/stream acquisition — the hardware path
 * is what keeps full-file verification an order of magnitude cheaper
 * than the work it guards.
 */

#ifndef TPRED_COMMON_CRC32C_HH
#define TPRED_COMMON_CRC32C_HH

#include <cstddef>
#include <cstdint>

namespace tpred
{

/**
 * Incremental CRC32C.
 * @param crc Previous return value, or 0 for the first chunk.
 * @return Updated checksum over the concatenation so far.
 */
uint32_t crc32cUpdate(uint32_t crc, const void *data, size_t bytes);

/**
 * The software slice-by-8 reference, always available — the
 * differential anchor the hardware path is tested against.  Not for
 * production callers; crc32cUpdate() dispatches to the fastest
 * correct implementation.
 */
uint32_t crc32cUpdateSoftware(uint32_t crc, const void *data,
                              size_t bytes);

/** Implementation crc32cUpdate() dispatches to: "sse4.2"/"software". */
const char *crc32cImpl();

/** One-shot CRC32C of a buffer. */
inline uint32_t
crc32c(const void *data, size_t bytes)
{
    return crc32cUpdate(0, data, bytes);
}

} // namespace tpred

#endif // TPRED_COMMON_CRC32C_HH
