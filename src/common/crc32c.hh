/**
 * @file
 * CRC32C (Castagnoli) checksum, the polynomial used by iSCSI, ext4
 * and the persistent trace corpus (docs/trace_format.md).  Software
 * slice-by-8 implementation — no SSE4.2 dependency — running at a few
 * GB/s, fast enough that verifying a mapped corpus file stays an
 * order of magnitude cheaper than regenerating the trace.
 */

#ifndef TPRED_COMMON_CRC32C_HH
#define TPRED_COMMON_CRC32C_HH

#include <cstddef>
#include <cstdint>

namespace tpred
{

/**
 * Incremental CRC32C.
 * @param crc Previous return value, or 0 for the first chunk.
 * @return Updated checksum over the concatenation so far.
 */
uint32_t crc32cUpdate(uint32_t crc, const void *data, size_t bytes);

/** One-shot CRC32C of a buffer. */
inline uint32_t
crc32c(const void *data, size_t bytes)
{
    return crc32cUpdate(0, data, bytes);
}

} // namespace tpred

#endif // TPRED_COMMON_CRC32C_HH
