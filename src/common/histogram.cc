#include "common/histogram.hh"

#include <algorithm>
#include <cstdio>

namespace tpred
{

Histogram::Histogram(size_t capacity)
    : buckets_(capacity, 0)
{
}

void
Histogram::add(uint64_t key, uint64_t weight)
{
    if (key < buckets_.size())
        buckets_[key] += weight;
    else
        overflow_ += weight;
    total_ += weight;
}

uint64_t
Histogram::count(uint64_t key) const
{
    if (key < buckets_.size())
        return buckets_[key];
    return overflow_;
}

double
Histogram::fraction(uint64_t key) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(count(key)) / static_cast<double>(total_);
}

double
Histogram::overflowFraction() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(overflow_) / static_cast<double>(total_);
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    double sum = 0.0;
    for (size_t k = 0; k < buckets_.size(); ++k)
        sum += static_cast<double>(k) * static_cast<double>(buckets_[k]);
    sum += static_cast<double>(buckets_.size()) *
           static_cast<double>(overflow_);
    return sum / static_cast<double>(total_);
}

std::string
Histogram::render(const std::string &title, unsigned bar_width) const
{
    std::string out = title + "\n";
    char line[256];
    for (size_t k = 0; k < buckets_.size(); ++k) {
        if (buckets_[k] == 0)
            continue;
        double frac = fraction(k);
        unsigned bar = static_cast<unsigned>(frac * bar_width + 0.5);
        std::snprintf(line, sizeof(line), "  %4zu | %-*s %6.2f%%\n",
                      k, bar_width,
                      std::string(std::min<unsigned>(bar, bar_width),
                                  '#').c_str(),
                      frac * 100.0);
        out += line;
    }
    if (overflow_ != 0) {
        double frac = overflowFraction();
        unsigned bar = static_cast<unsigned>(frac * bar_width + 0.5);
        std::snprintf(line, sizeof(line), " >=%3zu | %-*s %6.2f%%\n",
                      buckets_.size(), bar_width,
                      std::string(std::min<unsigned>(bar, bar_width),
                                  '#').c_str(),
                      frac * 100.0);
        out += line;
    }
    return out;
}

} // namespace tpred
