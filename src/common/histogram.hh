/**
 * @file
 * Integer-bucket histogram used for the "targets per indirect jump"
 * distributions of the paper's Figures 1-8.
 */

#ifndef TPRED_COMMON_HISTOGRAM_HH
#define TPRED_COMMON_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tpred
{

/**
 * A histogram over non-negative integer keys with an overflow bucket.
 *
 * Keys in [0, capacity) land in their own bucket; keys >= capacity are
 * accumulated in the overflow bucket, mirroring the paper's ">=30" bar.
 */
class Histogram
{
  public:
    /** @param capacity Number of distinct buckets before overflow. */
    explicit Histogram(size_t capacity);

    /** Adds @p weight observations of key @p key. */
    void add(uint64_t key, uint64_t weight = 1);

    /** Total weight across all buckets. */
    uint64_t total() const { return total_; }

    /** Weight in bucket @p key (keys >= capacity read the overflow). */
    uint64_t count(uint64_t key) const;

    /** Weight in the overflow (>= capacity) bucket. */
    uint64_t overflow() const { return overflow_; }

    /** Fraction of total weight in bucket @p key; 0 when empty. */
    double fraction(uint64_t key) const;

    /** Fraction of total weight in the overflow bucket. */
    double overflowFraction() const;

    /** Number of in-range buckets. */
    size_t capacity() const { return buckets_.size(); }

    /** Weighted mean of the keys (overflow counted at capacity). */
    double mean() const;

    /** Renders an ASCII bar chart, one row per non-empty bucket. */
    std::string render(const std::string &title, unsigned bar_width = 50)
        const;

  private:
    std::vector<uint64_t> buckets_;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

} // namespace tpred

#endif // TPRED_COMMON_HISTOGRAM_HH
