#include "common/rng.hh"

#include <cassert>
#include <cmath>

namespace tpred
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

constexpr uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
    // Guard against the (astronomically unlikely) all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0)
        state_[0] = 1;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    assert(bound != 0);
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
        below(static_cast<uint64_t>(hi - lo) + 1));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::uniform()
{
    // 53 random mantissa bits, as in the reference implementation.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

size_t
Rng::weighted(const std::vector<double> &weights)
{
    assert(!weights.empty());
    double total = 0.0;
    for (double w : weights)
        total += (w > 0.0 ? w : 0.0);
    if (total <= 0.0)
        return below(weights.size());
    double draw = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        double w = weights[i] > 0.0 ? weights[i] : 0.0;
        if (draw < w)
            return i;
        draw -= w;
    }
    return weights.size() - 1;
}

unsigned
Rng::geometric(double p, unsigned cap)
{
    assert(cap >= 1);
    unsigned value = 1;
    while (value < cap && chance(p))
        ++value;
    return value;
}

} // namespace tpred
