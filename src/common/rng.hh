/**
 * @file
 * Deterministic pseudo-random number generator for workload synthesis.
 *
 * Workload generators must be bit-for-bit reproducible across runs and
 * platforms, so we carry our own xoshiro256** implementation rather than
 * relying on the (implementation-defined) standard library distributions.
 */

#ifndef TPRED_COMMON_RNG_HH
#define TPRED_COMMON_RNG_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tpred
{

/**
 * xoshiro256** by Blackman & Vigna; public-domain algorithm.
 *
 * Seeded with splitmix64 so that small consecutive seeds produce
 * well-decorrelated streams.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initializes the state from a 64-bit seed. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Bernoulli draw: true with probability @p p (clamped to [0,1]). */
    bool chance(double p);

    /** Uniform double in [0, 1). */
    double uniform();

    /**
     * Draws an index from an unnormalized discrete weight vector.
     * An all-zero weight vector draws uniformly.
     */
    size_t weighted(const std::vector<double> &weights);

    /**
     * Geometric-ish draw in [1, cap]: returns 1 with probability
     * 1-p, 2 with probability p(1-p), ... truncated at @p cap.
     */
    unsigned geometric(double p, unsigned cap);

  private:
    std::array<uint64_t, 4> state_{};
};

} // namespace tpred

#endif // TPRED_COMMON_RNG_HH
