/**
 * @file
 * Saturating counter, the workhorse state element of dynamic predictors.
 */

#ifndef TPRED_COMMON_SAT_COUNTER_HH
#define TPRED_COMMON_SAT_COUNTER_HH

#include <cassert>
#include <cstdint>

namespace tpred
{

/**
 * An n-bit up/down saturating counter.
 *
 * Used both as a 2-bit direction counter in the gshare predictor and as
 * the hysteresis counter of the Calder/Grunwald "2-bit" BTB update
 * strategy (paper section 2).
 */
class SatCounter
{
  public:
    /**
     * @param bits Counter width in bits (1..16).
     * @param initial Initial count; clamped to the representable range.
     */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : maxVal_((1u << bits) - 1),
          count_(initial > maxVal_ ? maxVal_ : initial)
    {
        assert(bits >= 1 && bits <= 16);
    }

    /** Increment, saturating at the maximum. */
    void increment() { if (count_ < maxVal_) ++count_; }

    /** Decrement, saturating at zero. */
    void decrement() { if (count_ > 0) --count_; }

    /** Resets the count to an explicit value (clamped). */
    void set(unsigned v) { count_ = v > maxVal_ ? maxVal_ : v; }

    /** Current count. */
    unsigned count() const { return count_; }

    /** Maximum representable count. */
    unsigned max() const { return maxVal_; }

    /** True when the count is in the upper half (MSB set). */
    bool isTaken() const { return count_ > maxVal_ / 2; }

    /** True when the counter is saturated at its maximum. */
    bool isMax() const { return count_ == maxVal_; }

    /** True when the counter is saturated at zero. */
    bool isMin() const { return count_ == 0; }

  private:
    unsigned maxVal_;
    unsigned count_;
};

} // namespace tpred

#endif // TPRED_COMMON_SAT_COUNTER_HH
