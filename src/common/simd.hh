/**
 * @file
 * Portable SIMD kernels for the batched sweep hot loops.
 *
 * The fused sweep kernel's per-branch cost is dominated by two scans
 * over a tagged bank's way columns: the tag-match probe (valid &&
 * tag == needle) and the allocation victim scan (first invalid way,
 * else the true-LRU minimum).  Both walk small contiguous SoA
 * columns — exactly the shape vector compares want.
 *
 * Dispatch is compile-time: the AVX2 path exists only when the
 * translation unit is built with AVX2 enabled (the TPRED_NATIVE
 * CMake option's -march=native does this on capable hosts);
 * otherwise every call is the scalar loop, with zero runtime cost.
 * setForceScalar(true) pins the scalar path at runtime so
 * differential tests and the stream_pipeline bench can prove the two
 * paths bit-identical on the same binary.
 *
 * Semantics are defined by the scalar loops below — the vector paths
 * must preserve them exactly, including order: findTagMatch returns
 * the FIRST matching way, and findVictim returns the FIRST invalid
 * way, else the FIRST way holding the minimum lastUsed value (ties
 * keep the lowest index, as the scalar strict-less scan does).
 */

#ifndef TPRED_COMMON_SIMD_HH
#define TPRED_COMMON_SIMD_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace tpred::simd
{

/** "No way matched" sentinel, distinct from every way index. */
inline constexpr size_t kNone = static_cast<size_t>(-1);

/** Whether this binary carries a vector path at all. */
#if defined(__AVX2__)
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

namespace detail
{

inline std::atomic<bool> forceScalar{false};

/** Reference semantics: first way with a valid tag match. */
inline size_t
scalarFindTagMatch(const uint8_t *valid, const uint64_t *tags,
                   size_t ways, uint64_t tag)
{
    for (size_t w = 0; w < ways; ++w) {
        if (valid[w] && tags[w] == tag)
            return w;
    }
    return kNone;
}

/** Reference semantics: first invalid way, else first LRU minimum. */
inline size_t
scalarFindVictim(const uint8_t *valid, const uint64_t *last_used,
                 size_t ways)
{
    size_t e = 0;
    for (size_t w = 0; w < ways; ++w) {
        if (!valid[w])
            return w;
        if (last_used[w] < last_used[e])
            e = w;
    }
    return e;
}

#if defined(__AVX2__)

inline size_t
avx2FindTagMatch(const uint8_t *valid, const uint64_t *tags,
                 size_t ways, uint64_t tag)
{
    const __m256i needle =
        _mm256_set1_epi64x(static_cast<long long>(tag));
    size_t w = 0;
    for (; w + 4 <= ways; w += 4) {
        const __m256i quad = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        unsigned mask = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(quad, needle))));
        // Lanes come out lowest-index-first, so walking the set bits
        // in ascending order preserves the first-match rule; the
        // valid check stays scalar (an invalid way may hold a stale
        // equal tag and must be skipped, not returned).
        while (mask != 0) {
            const unsigned lane =
                static_cast<unsigned>(__builtin_ctz(mask));
            if (valid[w + lane])
                return w + lane;
            mask &= mask - 1;
        }
    }
    for (; w < ways; ++w) {
        if (valid[w] && tags[w] == tag)
            return w;
    }
    return kNone;
}

inline size_t
avx2FindVictim(const uint8_t *valid, const uint64_t *last_used,
               size_t ways)
{
    // Invalid ways first: eight valid bytes per step, the classic
    // zero-byte test (valid holds only 0 or 1).
    size_t w = 0;
    for (; w + 8 <= ways; w += 8) {
        uint64_t eight;
        std::memcpy(&eight, valid + w, 8);
        if (((eight - 0x0101010101010101ull) & ~eight &
             0x8080808080808080ull) != 0)
            break;  // this group holds an invalid way
    }
    for (size_t k = w; k < ways; ++k) {
        if (!valid[k])
            return k;
    }

    // All ways valid: unsigned vector min of lastUsed (sign-flip
    // makes the signed cmpgt an unsigned compare), then the first
    // index holding the minimum — the scalar scan's tie-break.
    uint64_t min_val = UINT64_MAX;
    size_t k = 0;
    if (ways >= 4) {
        const __m256i flip = _mm256_set1_epi64x(
            static_cast<long long>(0x8000000000000000ull));
        __m256i best = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(last_used)),
            flip);
        for (k = 4; k + 4 <= ways; k += 4) {
            const __m256i cur = _mm256_xor_si256(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(last_used + k)),
                flip);
            best = _mm256_blendv_epi8(
                best, cur, _mm256_cmpgt_epi64(best, cur));
        }
        alignas(32) uint64_t lanes[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), best);
        for (uint64_t lane : lanes)
            min_val = std::min(
                min_val, static_cast<uint64_t>(
                             lane ^ 0x8000000000000000ull));
    }
    for (; k < ways; ++k)
        min_val = std::min(min_val, last_used[k]);
    for (size_t i = 0; i < ways; ++i) {
        if (last_used[i] == min_val)
            return i;
    }
    return 0;  // unreachable: min_val came from the array
}

#endif // __AVX2__

} // namespace detail

/** True when calls will take the vector path. */
inline bool
enabled()
{
    return kCompiled &&
           !detail::forceScalar.load(std::memory_order_relaxed);
}

/**
 * Pins every kernel to the scalar reference path (true) or restores
 * compile-time dispatch (false).  For differential tests; affects
 * the whole process.
 */
inline void
setForceScalar(bool force)
{
    detail::forceScalar.store(force, std::memory_order_relaxed);
}

/** "avx2" or "scalar" — what calls will actually run. */
inline const char *
activeIsa()
{
    return enabled() ? "avx2" : "scalar";
}

/**
 * Index of the first way with valid[w] && tags[w] == tag, or kNone.
 * @p valid and @p tags are parallel columns of one set's ways.
 */
inline size_t
findTagMatch(const uint8_t *valid, const uint64_t *tags, size_t ways,
             uint64_t tag)
{
#if defined(__AVX2__)
    if (enabled())
        return detail::avx2FindTagMatch(valid, tags, ways, tag);
#endif
    return detail::scalarFindTagMatch(valid, tags, ways, tag);
}

/**
 * Allocation victim for one set: the first invalid way, else the
 * first way holding the minimum lastUsed (true LRU, lowest index on
 * ties).  Never kNone — a set always yields a victim.
 */
inline size_t
findVictim(const uint8_t *valid, const uint64_t *last_used,
           size_t ways)
{
#if defined(__AVX2__)
    if (enabled())
        return detail::avx2FindVictim(valid, last_used, ways);
#endif
    return detail::scalarFindVictim(valid, last_used, ways);
}

} // namespace tpred::simd

#endif // TPRED_COMMON_SIMD_HH
