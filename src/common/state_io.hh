/**
 * @file
 * Byte-exact predictor state serialization, the substrate of the
 * sharded-replay checkpoints (docs/parallelism.md).
 *
 * Every predictor family, the history trackers and the core model
 * implement saveState(StateWriter&) / restoreState(StateReader&) in
 * terms of these two classes.  The encoding is deliberately trivial —
 * fixed-width little-endian fields in declaration order, no framing,
 * no versioning — because checkpoints never leave the process family
 * that wrote them: they exist to transplant exact state between
 * replay shards and to prove bit-identity by memcmp of two
 * serializations.  Any change to serialized state changes the bytes,
 * which is precisely what the differential proof should notice.
 *
 * StateReader throws StateFormatError on underflow and (via
 * expectEnd) on trailing bytes, so a shape mismatch between writer
 * and reader is always a loud failure, never a silent misparse.
 */

#ifndef TPRED_COMMON_STATE_IO_HH
#define TPRED_COMMON_STATE_IO_HH

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace tpred
{

/** A checkpoint blob that does not parse back as it was written. */
class StateFormatError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Appends fixed-width little-endian fields to a byte vector. */
class StateWriter
{
  public:
    void u8(uint8_t v) { bytes_.push_back(v); }
    void b(bool v) { u8(v ? 1 : 0); }
    void u16(uint16_t v) { raw(&v, sizeof(v)); }
    void u32(uint32_t v) { raw(&v, sizeof(v)); }
    void u64(uint64_t v) { raw(&v, sizeof(v)); }
    void i16(int16_t v) { raw(&v, sizeof(v)); }

    const std::vector<uint8_t> &bytes() const { return bytes_; }
    std::vector<uint8_t> take() { return std::move(bytes_); }
    size_t size() const { return bytes_.size(); }

  private:
    void
    raw(const void *p, size_t n)
    {
        const auto *b = static_cast<const uint8_t *>(p);
        bytes_.insert(bytes_.end(), b, b + n);
    }

    std::vector<uint8_t> bytes_;
};

/** Consumes the fields back in the order they were written. */
class StateReader
{
  public:
    explicit StateReader(std::span<const uint8_t> bytes) : bytes_(bytes)
    {
    }

    uint8_t u8() { uint8_t v; raw(&v, sizeof(v)); return v; }
    bool b() { return u8() != 0; }
    uint16_t u16() { uint16_t v; raw(&v, sizeof(v)); return v; }
    uint32_t u32() { uint32_t v; raw(&v, sizeof(v)); return v; }
    uint64_t u64() { uint64_t v; raw(&v, sizeof(v)); return v; }
    int16_t i16() { int16_t v; raw(&v, sizeof(v)); return v; }

    size_t remaining() const { return bytes_.size() - at_; }

    /** @throws StateFormatError unless every byte was consumed. */
    void
    expectEnd() const
    {
        if (at_ != bytes_.size())
            throw StateFormatError(
                "checkpoint has " +
                std::to_string(bytes_.size() - at_) +
                " trailing byte(s)");
    }

  private:
    void
    raw(void *p, size_t n)
    {
        if (n > bytes_.size() - at_)
            throw StateFormatError("checkpoint truncated");
        std::memcpy(p, bytes_.data() + at_, n);
        at_ += n;
    }

    std::span<const uint8_t> bytes_;
    size_t at_ = 0;
};

} // namespace tpred

#endif // TPRED_COMMON_STATE_IO_HH
