#include "common/stats.hh"

#include <cstdio>

namespace tpred
{

std::string
formatPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
formatCount(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int run = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (run == 3) {
            out.push_back(',');
            run = 0;
        }
        out.push_back(*it);
        ++run;
    }
    return {out.rbegin(), out.rend()};
}

double
execTimeReduction(uint64_t baseline_cycles, uint64_t improved_cycles)
{
    if (baseline_cycles == 0)
        return 0.0;
    return (static_cast<double>(baseline_cycles) -
            static_cast<double>(improved_cycles)) /
           static_cast<double>(baseline_cycles);
}

} // namespace tpred
