/**
 * @file
 * Lightweight statistics primitives: named counters and ratio helpers.
 */

#ifndef TPRED_COMMON_STATS_HH
#define TPRED_COMMON_STATS_HH

#include <cstdint>
#include <string>

namespace tpred
{

/**
 * A hit/miss style ratio accumulator.
 *
 * Records a stream of boolean events and reports the miss (or hit) rate.
 * Used throughout the harness for prediction-accuracy bookkeeping.
 */
class RatioStat
{
  public:
    /** Records one event; @p hit selects the numerator. */
    void record(bool hit) { ++total_; if (hit) ++hits_; }

    /** Merges another accumulator into this one. */
    void merge(const RatioStat &other)
    {
        hits_ += other.hits_;
        total_ += other.total_;
    }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return total_ - hits_; }
    uint64_t total() const { return total_; }

    /** Hit fraction in [0,1]; 0 when no events recorded. */
    double hitRate() const
    {
        return total_ ? static_cast<double>(hits_) / total_ : 0.0;
    }

    /** Miss fraction in [0,1]; 0 when no events recorded. */
    double missRate() const { return total_ ? 1.0 - hitRate() : 0.0; }

    void reset() { hits_ = 0; total_ = 0; }

    /** Restores exact counts, e.g. from a serialized checkpoint. */
    void setCounts(uint64_t hits, uint64_t total)
    {
        hits_ = hits;
        total_ = total;
    }

  private:
    uint64_t hits_ = 0;
    uint64_t total_ = 0;
};

/** Formats a fraction as a fixed-precision percentage string. */
std::string formatPercent(double fraction, int precision = 2);

/** Formats a large count with thousands separators (paper-table style). */
std::string formatCount(uint64_t value);

/**
 * Relative execution-time reduction, the paper's headline timing metric:
 * (baseline - improved) / baseline.  Negative when @p improved is slower.
 * Returns 0 when @p baseline_cycles is zero.
 */
double execTimeReduction(uint64_t baseline_cycles, uint64_t improved_cycles);

} // namespace tpred

#endif // TPRED_COMMON_STATS_HH
