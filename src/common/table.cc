#include "common/table.hh"

#include <algorithm>

namespace tpred
{

const std::string Table::kRuleMarker = "\x01rule";

void
Table::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::addRule()
{
    rows_.push_back({kRuleMarker});
}

std::string
Table::render() const
{
    // Compute per-column widths across header and body.
    std::vector<size_t> widths;
    auto absorb = [&widths](const std::vector<std::string> &row) {
        if (!row.empty() && row[0] == kRuleMarker)
            return;
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    absorb(header_);
    for (const auto &row : rows_)
        absorb(row);

    size_t line_len = 0;
    for (size_t w : widths)
        line_len += w + 3;

    auto emit = [&](std::string &out, const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            out += row[i];
            if (i + 1 < row.size())
                out += std::string(widths[i] - row[i].size() + 3, ' ');
        }
        out += '\n';
    };

    std::string out;
    if (!header_.empty()) {
        emit(out, header_);
        out += std::string(line_len, '-');
        out += '\n';
    }
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kRuleMarker) {
            out += std::string(line_len, '-');
            out += '\n';
        } else {
            emit(out, row);
        }
    }
    return out;
}

std::string
Table::renderCsv() const
{
    auto emit = [](std::string &out, const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            const std::string &cell = row[i];
            const bool quote =
                cell.find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                out += '"';
                for (char c : cell) {
                    if (c == '"')
                        out += '"';
                    out += c;
                }
                out += '"';
            } else {
                out += cell;
            }
            if (i + 1 < row.size())
                out += ',';
        }
        out += '\n';
    };

    std::string out;
    if (!header_.empty())
        emit(out, header_);
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kRuleMarker)
            continue;  // rules have no CSV meaning
        emit(out, row);
    }
    return out;
}

} // namespace tpred
