/**
 * @file
 * ASCII table formatter used by the bench harness to print paper-style
 * result tables.
 */

#ifndef TPRED_COMMON_TABLE_HH
#define TPRED_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace tpred
{

/**
 * Accumulates rows of string cells and renders an aligned ASCII table.
 *
 * Column widths are computed from content; the first row added with
 * setHeader() is separated from the body by a rule.
 */
class Table
{
  public:
    /** Sets the header row (replacing any previous header). */
    void setHeader(std::vector<std::string> cells);

    /** Appends a body row. Rows may have differing cell counts. */
    void addRow(std::vector<std::string> cells);

    /** Appends a horizontal rule between body rows. */
    void addRule();

    /** Renders the table to a string, one trailing newline included. */
    std::string render() const;

    /** Renders as CSV (header first, commas escaped by quoting). */
    std::string renderCsv() const;

    /** Number of body rows. */
    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    // A row with the special marker cell renders as a rule.
    std::vector<std::vector<std::string>> rows_;
    static const std::string kRuleMarker;
};

} // namespace tpred

#endif // TPRED_COMMON_TABLE_HH
