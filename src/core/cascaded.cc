#include "core/cascaded.hh"

#include <cassert>

#include "common/bits.hh"
#include "common/state_io.hh"

namespace tpred
{

CascadedPredictor::CascadedPredictor(const CascadedConfig &config)
    : config_(config),
      stage1Bits_(floorLog2(config.stage1Entries)),
      stage1_(config.stage1Entries),
      stage2_(config.stage2)
{
    assert(isPowerOfTwo(config.stage1Entries));
}

uint64_t
cascadedStage1IndexOf(unsigned stage1_bits, uint64_t pc)
{
    return bits(pc >> 2, 0, stage1_bits);
}

CascadedPredictor::Stage1Entry &
CascadedPredictor::stage1Slot(uint64_t pc)
{
    return stage1_[cascadedStage1IndexOf(stage1Bits_, pc)];
}

std::optional<uint64_t>
CascadedPredictor::predict(uint64_t pc, uint64_t history)
{
    ++probes_;
    if (auto t = stage2_.predict(pc, history)) {
        ++stage2Hits_;
        return t;
    }
    Stage1Entry &s1 = stage1Slot(pc);
    if (s1.valid && s1.tag == (pc >> 2))
        return s1.target;
    return std::nullopt;
}

void
CascadedPredictor::update(uint64_t pc, uint64_t history, uint64_t target)
{
    Stage1Entry &s1 = stage1Slot(pc);
    const bool s1_hit = s1.valid && s1.tag == (pc >> 2);
    const bool s1_correct = s1_hit && s1.target == target;

    // Stage 2: train an existing entry whenever present; allocate only
    // when the cheap stage could not cover this jump (filtered
    // allocation keeps polymorphic jumps from being crowded out).
    const bool s2_present = stage2_.predict(pc, history).has_value();
    if (s2_present || !s1_correct)
        stage2_.update(pc, history, target);

    // Stage 1 is a plain last-target table.
    s1.valid = true;
    s1.tag = pc >> 2;
    s1.target = target;
}

std::string
CascadedPredictor::describe() const
{
    return "cascaded(s1=" + std::to_string(config_.stage1Entries) +
           ", s2=" + stage2_.describe() + ")";
}

uint64_t
CascadedPredictor::costBits() const
{
    // Stage 1 entry: 32-bit target + 30-bit tag + valid.
    return static_cast<uint64_t>(config_.stage1Entries) * 63 +
           stage2_.costBits();
}

double
CascadedPredictor::stage2Share() const
{
    return probes_ ? static_cast<double>(stage2Hits_) / probes_ : 0.0;
}

void
CascadedPredictor::saveState(StateWriter &w) const
{
    for (const Stage1Entry &e : stage1_) {
        w.b(e.valid);
        w.u64(e.tag);
        w.u64(e.target);
    }
    stage2_.saveState(w);
    w.u64(stage2Hits_);
    w.u64(probes_);
}

void
CascadedPredictor::restoreState(StateReader &r)
{
    for (Stage1Entry &e : stage1_) {
        e.valid = r.b();
        e.tag = r.u64();
        e.target = r.u64();
    }
    stage2_.restoreState(r);
    stage2Hits_ = r.u64();
    probes_ = r.u64();
}

} // namespace tpred
