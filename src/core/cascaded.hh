/**
 * @file
 * Cascaded (staged) indirect predictor — the post-paper direction taken
 * by Driesen & Hölzle, included as the DESIGN.md "future work" extension.
 *
 * Stage 1 is a per-branch last-target table that captures monomorphic
 * jumps cheaply; stage 2 is a history-indexed tagged target cache that
 * is only *allocated* when stage 1 mispredicts, reserving its capacity
 * for genuinely polymorphic jumps.
 */

#ifndef TPRED_CORE_CASCADED_HH
#define TPRED_CORE_CASCADED_HH

#include <cstdint>
#include <unordered_map>

#include "core/indirect_predictor.hh"
#include "core/tagged_target_cache.hh"

namespace tpred
{

/** Cascaded predictor configuration. */
struct CascadedConfig
{
    /** Entries of the stage-1 last-target table. */
    unsigned stage1Entries = 128;
    /** Stage-2 tagged target cache. */
    TaggedConfig stage2{};
};

/**
 * The stage-1 slot index, as a free function over the geometry so the
 * scalar predictor and the SoA-batched sweep kernel
 * (harness/batched_predictors.cc) share one definition.  @p stage1_bits
 * is floorLog2(config.stage1Entries), precomputed by the caller.
 */
uint64_t cascadedStage1IndexOf(unsigned stage1_bits, uint64_t pc);

/**
 * Two-stage cascaded predictor with misprediction-filtered allocation.
 */
class CascadedPredictor : public IndirectPredictor
{
  public:
    explicit CascadedPredictor(const CascadedConfig &config);

    std::optional<uint64_t> predict(uint64_t pc, uint64_t history)
        override;
    void update(uint64_t pc, uint64_t history, uint64_t target) override;
    std::string describe() const override;
    uint64_t costBits() const override;

    /** Fraction of predictions served by stage 2 (diagnostics). */
    double stage2Share() const;

    void saveState(StateWriter &w) const override;
    void restoreState(StateReader &r) override;

  private:
    struct Stage1Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t target = 0;
    };

    Stage1Entry &stage1Slot(uint64_t pc);

    CascadedConfig config_;
    unsigned stage1Bits_;
    std::vector<Stage1Entry> stage1_;
    TaggedTargetCache stage2_;
    uint64_t stage2Hits_ = 0;
    uint64_t probes_ = 0;
};

} // namespace tpred

#endif // TPRED_CORE_CASCADED_HH
