#include "core/frontend_predictor.hh"

#include <cassert>

#include "common/state_io.hh"

namespace tpred
{

namespace
{

void
saveRatio(StateWriter &w, const RatioStat &s)
{
    w.u64(s.hits());
    w.u64(s.total());
}

void
restoreRatio(StateReader &r, RatioStat &s)
{
    const uint64_t hits = r.u64();
    const uint64_t total = r.u64();
    s.setCounts(hits, total);
}

} // namespace

FrontendPredictor::FrontendPredictor(const FrontendConfig &config,
                                     IndirectPredictor *indirect,
                                     HistoryTracker *tracker)
    : config_(config),
      btb_(makeBtbHierarchy(config.btb)),
      gshare_(config.gshareIndexBits),
      tournament_(config.tournament),
      ghr_(config.gshareHistoryBits),
      ras_(config.rasDepth),
      indirect_(indirect),
      tracker_(tracker)
{
    assert(!indirect_ || tracker_);
}

PredictionOutcome
FrontendPredictor::onInstruction(const MicroOp &op)
{
    ++stats_.instructions;
    if (!op.isBranch())
        return {op.fallthrough, true};

    // --- Fetch-time prediction -------------------------------------
    const BtbProbe probe = btb_->lookup(op.pc);
    const std::optional<BtbPrediction> &btb_pred = probe.pred;
    stats_.btbHits.record(btb_pred.has_value());

    uint64_t predicted = op.fallthrough;
    uint64_t indirect_history = 0;
    bool predicted_dir = false;

    switch (op.branch) {
      case BranchKind::CondDirect:
        predicted_dir =
            config_.direction == DirectionScheme::Tournament
                ? tournament_.predict(op.pc, ghr_.value())
                : gshare_.predict(op.pc, ghr_.value());
        // A taken prediction needs the BTB for the target address.
        if (predicted_dir && btb_pred)
            predicted = btb_pred->target;
        break;

      case BranchKind::UncondDirect:
      case BranchKind::Call:
        predicted = btb_pred ? btb_pred->target : op.fallthrough;
        break;

      case BranchKind::Return:
        predicted = ras_.pop();
        break;

      case BranchKind::IndirectJump:
      case BranchKind::IndirectCall:
        // The fetch-time history value is also the training index, so
        // capture it even when the BTB fails to detect the branch.
        if (indirect_)
            indirect_history = tracker_->valueFor(op.pc);
        if (btb_pred) {
            // BTB detected the indirect branch; the target cache entry
            // (when configured and hitting) overrides the BTB's
            // last-computed target.
            std::optional<uint64_t> cache_target;
            if (indirect_) {
                indirect_->prime(op);
                cache_target = indirect_->predict(op.pc, indirect_history);
            }
            predicted = cache_target.value_or(btb_pred->target);
        }
        break;

      case BranchKind::None:
        break;
    }

    // RAS maintenance follows the architectural path.
    if (op.branch == BranchKind::Call ||
        op.branch == BranchKind::IndirectCall) {
        ras_.push(op.fallthrough);
    }

    const bool correct = predicted == op.nextPc;

    // An L2-supplied probe delays the fetch redirect — but only when
    // the branch consumed the probe: a conditional predicted not-taken
    // falls through regardless of what the BTB knew.  The condition
    // depends only on batch-shared state (shared hierarchy, shared
    // direction predictor), never on a member's predicted target.
    unsigned bubble = probe.bubbleCycles;
    if (op.branch == BranchKind::CondDirect && !predicted_dir)
        bubble = 0;

    // --- Scoring -----------------------------------------------------
    stats_.allBranches.record(correct);
    switch (op.branch) {
      case BranchKind::CondDirect:
        stats_.condDirection.record(predicted_dir == op.taken);
        stats_.condBranches.record(correct);
        break;
      case BranchKind::UncondDirect:
      case BranchKind::Call:
        stats_.uncondDirect.record(correct);
        break;
      case BranchKind::IndirectJump:
      case BranchKind::IndirectCall:
        stats_.indirectJumps.record(correct);
        break;
      case BranchKind::Return:
        stats_.returns.record(correct);
        break;
      case BranchKind::None:
        break;
    }

    // --- Training ----------------------------------------------------
    if (op.branch == BranchKind::CondDirect) {
        if (config_.direction == DirectionScheme::Tournament)
            tournament_.update(op.pc, ghr_.value(), op.taken);
        else
            gshare_.update(op.pc, ghr_.value(), op.taken);
        ghr_.update(op.taken);
    }
    btb_->update(op);
    if (indirect_ && isIndirectNonReturn(op.branch)) {
        // Train with the same index the fetch-time probe used.
        indirect_->update(op.pc, indirect_history, op.nextPc);
    }
    if (tracker_)
        tracker_->observe(op);

    return {predicted, correct, bubble};
}

void
FrontendPredictor::saveState(StateWriter &w) const
{
    btb_->saveState(w);
    gshare_.saveState(w);
    tournament_.saveState(w);
    w.u64(ghr_.value());
    ras_.saveState(w);
    w.u64(stats_.instructions);
    saveRatio(w, stats_.allBranches);
    saveRatio(w, stats_.condDirection);
    saveRatio(w, stats_.condBranches);
    saveRatio(w, stats_.uncondDirect);
    saveRatio(w, stats_.indirectJumps);
    saveRatio(w, stats_.returns);
    saveRatio(w, stats_.btbHits);
}

void
FrontendPredictor::restoreState(StateReader &r)
{
    btb_->restoreState(r);
    gshare_.restoreState(r);
    tournament_.restoreState(r);
    ghr_.restoreValue(r.u64());
    ras_.restoreState(r);
    stats_.instructions = r.u64();
    restoreRatio(r, stats_.allBranches);
    restoreRatio(r, stats_.condDirection);
    restoreRatio(r, stats_.condBranches);
    restoreRatio(r, stats_.uncondDirect);
    restoreRatio(r, stats_.indirectJumps);
    restoreRatio(r, stats_.returns);
    restoreRatio(r, stats_.btbHits);
}

} // namespace tpred
