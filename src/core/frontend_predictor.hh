/**
 * @file
 * Composite fetch-stage predictor: gshare direction prediction, BTB
 * target/kind detection, return address stack, and an optional indirect
 * target predictor (the target cache) consulted exactly as the paper
 * describes — "during instruction fetch, the BTB and the target cache
 * are examined concurrently; if the BTB detects an indirect branch, the
 * selected target cache entry is used for target prediction".
 */

#ifndef TPRED_CORE_FRONTEND_PREDICTOR_HH
#define TPRED_CORE_FRONTEND_PREDICTOR_HH

#include <cstdint>
#include <memory>

#include "bpred/btb_hierarchy.hh"
#include "bpred/gshare.hh"
#include "bpred/tournament.hh"
#include "bpred/history.hh"
#include "bpred/ras.hh"
#include "common/stats.hh"
#include "core/indirect_predictor.hh"

namespace tpred
{

/** Conditional-branch direction scheme of the front end. */
enum class DirectionScheme : uint8_t
{
    GShare,      ///< single gshare PHT (the default machine)
    Tournament,  ///< McFarling combining predictor (ablation)
};

/** Front-end structure sizes. */
struct FrontendConfig
{
    /** BTB hierarchy; default = the paper's single-level 1K BTB. */
    BtbHierarchyConfig btb{};
    DirectionScheme direction = DirectionScheme::GShare;
    unsigned gshareIndexBits = 12;
    unsigned gshareHistoryBits = 12;
    TournamentConfig tournament{};
    unsigned rasDepth = 16;
};

/** Prediction-accuracy accumulators, split by branch class. */
struct FrontendStats
{
    uint64_t instructions = 0;
    RatioStat allBranches;    ///< next-PC correct, any control instr.
    RatioStat condDirection;  ///< direction only, conditional branches
    RatioStat condBranches;   ///< next-PC correct, conditional branches
    RatioStat uncondDirect;   ///< next-PC correct, jumps + direct calls
    RatioStat indirectJumps;  ///< next-PC correct, indirect non-return
    RatioStat returns;        ///< next-PC correct, returns
    RatioStat btbHits;        ///< BTB hit rate over all branches

    /** Mispredictions per 1000 instructions (all branch classes). */
    double
    mpki() const
    {
        return instructions
                   ? 1000.0 * static_cast<double>(allBranches.misses()) /
                         static_cast<double>(instructions)
                   : 0.0;
    }
};

/** What the front end decided for one instruction. */
struct PredictionOutcome
{
    uint64_t predictedNext = 0;
    bool correct = true;
    /**
     * Cycles the fetch redirect arrives late because the BTB probe was
     * satisfied from L2 (bpred/btb_hierarchy.hh).  Only ever nonzero
     * for a two-level hierarchy, and only when the branch actually
     * consumed the probe (a not-taken-predicted conditional does not).
     * Depends solely on batch-shared front-end state, never on a batch
     * member's predicted target — the fused timing sweep's
     * correctness-only divergence coupling rests on that.
     */
    unsigned fetchBubbleCycles = 0;
};

/**
 * Trace-driven front end.
 *
 * onInstruction() performs the fetch-time prediction, compares it with
 * the architectural outcome carried by the MicroOp, trains every
 * structure, and reports whether fetch would have been redirected.
 * History registers are trained with architectural outcomes, modelling
 * the checkpoint-repaired history of the paper's HPS machine.
 *
 * The indirect predictor and its history tracker are borrowed, not
 * owned, so one experiment can share them across machine instances.
 */
class FrontendPredictor
{
  public:
    /**
     * @param config Structure sizes.
     * @param indirect Optional target predictor; nullptr = BTB-only
     *        baseline (the paper's Table 1 machine).
     * @param tracker History source for @p indirect; required when
     *        @p indirect is non-null.
     */
    FrontendPredictor(const FrontendConfig &config,
                      IndirectPredictor *indirect = nullptr,
                      HistoryTracker *tracker = nullptr);

    /** Predicts, scores and trains on one instruction. */
    PredictionOutcome onInstruction(const MicroOp &op);

    /**
     * Accounts @p count non-control instructions without replaying
     * them.  Exactly equivalent to @p count onInstruction() calls on
     * ops with BranchKind::None, which touch nothing but the
     * instruction counter — the contract behind the branch-index
     * fast path (CompactTrace::forEachBranch).
     */
    void skipNonBranches(uint64_t count) { stats_.instructions += count; }

    const FrontendStats &stats() const { return stats_; }
    void resetStats() { stats_ = FrontendStats{}; }

    /**
     * Overwrites the accuracy stats wholesale.  The fused timing sweep
     * uses this after restoring a forked member from the lead's
     * checkpoint: the shared-class counts are the lead's own, but
     * indirectJumps (and hence allBranches) must be the member's
     * (harness/sweep_kernel.cc).
     */
    void setStats(const FrontendStats &s) { stats_ = s; }

    const BtbHierarchy &btb() const { return *btb_; }
    IndirectPredictor *indirect() const { return indirect_; }

    /**
     * Serializes the owned structures (BTB, direction predictors, GHR,
     * RAS) and the accuracy stats.  The borrowed indirect predictor
     * and history tracker are NOT included — the owner checkpoints
     * them alongside (see harness/shard_replay.hh).
     */
    void saveState(StateWriter &w) const;

    /** Restores a saveState() snapshot; config must match. */
    void restoreState(StateReader &r);

  private:
    FrontendConfig config_;
    std::unique_ptr<BtbHierarchy> btb_;
    GShare gshare_;
    TournamentPredictor tournament_;
    PatternHistory ghr_;
    ReturnAddressStack ras_;
    IndirectPredictor *indirect_;
    HistoryTracker *tracker_;
    FrontendStats stats_;
};

} // namespace tpred

#endif // TPRED_CORE_FRONTEND_PREDICTOR_HH
