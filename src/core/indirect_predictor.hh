/**
 * @file
 * Abstract interface for indirect-jump target predictors.
 *
 * A target predictor maps (branch address, branch history) to a
 * predicted target address at fetch, and is trained with the computed
 * target at resolution using the same index (paper section 3).
 */

#ifndef TPRED_CORE_INDIRECT_PREDICTOR_HH
#define TPRED_CORE_INDIRECT_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <string>

#include "trace/micro_op.hh"

namespace tpred
{

class StateWriter;
class StateReader;

/**
 * Interface implemented by the target cache variants, the oracle and
 * the cascaded extension.
 *
 * The history value is supplied by the caller (a HistoryTracker) so that
 * one predictor implementation serves pattern history, global path
 * history and per-address path history configurations alike.
 */
class IndirectPredictor
{
  public:
    virtual ~IndirectPredictor() = default;

    /**
     * Fetch-time probe.
     * @param pc Address of the indirect jump.
     * @param history History register value at fetch.
     * @return Predicted target, or nullopt when the predictor has no
     *         prediction (tagged miss); the front end then falls back
     *         to the BTB's last-computed target.
     */
    virtual std::optional<uint64_t> predict(uint64_t pc,
                                            uint64_t history) = 0;

    /**
     * Resolution-time training with the computed target, using the same
     * (pc, history) index as the fetch-time probe.
     */
    virtual void update(uint64_t pc, uint64_t history,
                        uint64_t target) = 0;

    /**
     * Oracle hook: called with the full architectural record before
     * predict().  Real predictors ignore it.
     */
    virtual void prime(const MicroOp &op) { (void)op; }

    /** Human-readable configuration description. */
    virtual std::string describe() const = 0;

    /** Storage cost in bits (paper section 4.2's budget accounting). */
    virtual uint64_t costBits() const = 0;

    /**
     * Serializes the complete predictor state for a sharded-replay
     * checkpoint (docs/parallelism.md).  Restoring the bytes into a
     * freshly constructed predictor of the same configuration must
     * reproduce the exact prediction/training trajectory.
     */
    virtual void saveState(StateWriter &w) const = 0;

    /** Restores a saveState() snapshot; configuration must match. */
    virtual void restoreState(StateReader &r) = 0;
};

} // namespace tpred

#endif // TPRED_CORE_INDIRECT_PREDICTOR_HH
