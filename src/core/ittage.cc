#include "core/ittage.hh"

#include <cassert>

#include "common/bits.hh"
#include "common/state_io.hh"

namespace tpred
{

IttagePredictor::IttagePredictor(const IttageConfig &config)
    : config_(config),
      base_(config.baseEntries, 0),
      ditherState_(config.seed | 1)
{
    assert(isPowerOfTwo(config.baseEntries));
    assert(!config.historyLengths.empty());
    for (size_t i = 1; i < config.historyLengths.size(); ++i)
        assert(config.historyLengths[i] > config.historyLengths[i - 1]);
    tables_.assign(config.historyLengths.size(),
                   std::vector<TaggedEntry>(size_t{1}
                                            << config.tableBits));
}

uint64_t
IttagePredictor::indexOf(unsigned table, uint64_t pc,
                         uint64_t history) const
{
    const uint64_t hist =
        history & mask(config_.historyLengths[table]);
    // Fold the history prefix down to the index width and mix with the
    // address; different tables use a different rotation so they
    // decorrelate.
    const uint64_t folded = foldXor(hist, config_.tableBits);
    const uint64_t addr = pc >> 2;
    return (addr ^ folded ^ (addr >> (table + 3))) &
           mask(config_.tableBits);
}

uint64_t
IttagePredictor::tagOf(unsigned table, uint64_t pc,
                       uint64_t history) const
{
    const uint64_t hist =
        history & mask(config_.historyLengths[table]);
    const uint64_t folded = foldXor(hist * 0x9e3779b9u, config_.tagBits);
    return ((pc >> 2) ^ folded ^ (table * 0x27d4eb2du)) &
           mask(config_.tagBits);
}

IttagePredictor::Probe
IttagePredictor::probe(uint64_t pc, uint64_t history)
{
    Probe result;
    const uint64_t base_target =
        base_[bits(pc >> 2, 0, floorLog2(config_.baseEntries))];
    result.target = base_target;
    result.altTarget = base_target;

    // Longest match provides; the next match (or the base table) is
    // the alternate.
    for (int t = static_cast<int>(tables_.size()) - 1; t >= 0; --t) {
        const auto ut = static_cast<unsigned>(t);
        const TaggedEntry &entry =
            tables_[ut][indexOf(ut, pc, history)];
        if (!entry.valid || entry.tag != tagOf(ut, pc, history))
            continue;
        if (result.provider < 0) {
            result.provider = t;
            result.providerTarget = entry.target;
            result.target = entry.target;
            result.weakProvider = !entry.confidence.isTaken();
        } else {
            result.altTarget = entry.target;
            break;
        }
    }
    // A weak (low-confidence) provider defers to the alternate when
    // the adaptive counter says weak providers have been losing — the
    // behaviour that keeps phase-changing monomorphic jumps on the
    // base table's fast-adapting last-target prediction.
    if (result.provider >= 0 && result.weakProvider &&
        useAltOnWeak_.isTaken()) {
        result.target = result.altTarget;
    }
    return result;
}

std::optional<uint64_t>
IttagePredictor::predict(uint64_t pc, uint64_t history)
{
    ++probes_;
    Probe p = probe(pc, history);
    if (p.provider >= 0)
        ++taggedHits_;
    if (p.target == 0)
        return std::nullopt;  // never-seen jump
    return p.target;
}

void
IttagePredictor::update(uint64_t pc, uint64_t history, uint64_t target)
{
    Probe p = probe(pc, history);
    const bool correct = p.target == target;

    // Train the use-alt chooser on cases where provider and alternate
    // disagree and the provider was weak.
    if (p.provider >= 0 && p.weakProvider &&
        p.providerTarget != p.altTarget) {
        if (p.altTarget == target)
            useAltOnWeak_.increment();
        else if (p.providerTarget == target)
            useAltOnWeak_.decrement();
    }

    if (p.provider >= 0) {
        const auto ut = static_cast<unsigned>(p.provider);
        TaggedEntry &entry = tables_[ut][indexOf(ut, pc, history)];
        if (entry.target == target) {
            entry.confidence.increment();
            entry.useful.increment();
        } else if (entry.confidence.isMin()) {
            // Low confidence: recycle the entry for the new target.
            entry.target = target;
            entry.confidence.set(0);
        } else {
            // Asymmetric training: confidence is earned one correct
            // prediction at a time but lost two levels per miss, so a
            // context that is right only by coincidence never holds
            // the confident state against the alternate prediction.
            entry.confidence.decrement();
            entry.confidence.decrement();
        }
    } else {
        // Base table: plain last-target.
        base_[bits(pc >> 2, 0, floorLog2(config_.baseEntries))] =
            target;
    }

    // On a misprediction, allocate in ONE longer-history table whose
    // slot is not protected by a useful bit; dither the start table to
    // spread allocations (Seznec's trick, simplified).
    if (!correct) {
        const unsigned start =
            static_cast<unsigned>(p.provider + 1);
        if (start >= tables_.size())
            return;
        ditherState_ = ditherState_ * 6364136223846793005ull + 1442695ull;
        const unsigned offset =
            static_cast<unsigned>((ditherState_ >> 33) %
                                  (tables_.size() - start));
        for (unsigned t = start + offset; t < tables_.size(); ++t) {
            TaggedEntry &entry = tables_[t][indexOf(t, pc, history)];
            if (entry.valid && entry.useful.isTaken()) {
                entry.useful.decrement();  // age the protector
                continue;
            }
            entry.valid = true;
            entry.tag = tagOf(t, pc, history);
            entry.target = target;
            entry.confidence.set(0);
            entry.useful.set(0);
            break;
        }
    }
}

std::string
IttagePredictor::describe() const
{
    std::string lengths;
    for (unsigned len : config_.historyLengths) {
        if (!lengths.empty())
            lengths += ",";
        lengths += std::to_string(len);
    }
    return "ittage(base=" + std::to_string(config_.baseEntries) +
           ", 4x" + std::to_string(1u << config_.tableBits) + "e, h={" +
           lengths + "})";
}

uint64_t
IttagePredictor::costBits() const
{
    // Base: 32-bit targets.  Tagged entry: target + tag + 2-bit
    // confidence + 1-bit useful + valid.
    const uint64_t tagged_entry = 32 + config_.tagBits + 2 + 1 + 1;
    return uint64_t{config_.baseEntries} * 32 +
           tables_.size() * (uint64_t{1} << config_.tableBits) *
               tagged_entry;
}

double
IttagePredictor::taggedShare() const
{
    return probes_ ? static_cast<double>(taggedHits_) / probes_ : 0.0;
}

void
IttagePredictor::saveState(StateWriter &w) const
{
    for (uint64_t t : base_)
        w.u64(t);
    for (const auto &table : tables_) {
        for (const TaggedEntry &e : table) {
            w.b(e.valid);
            w.u64(e.tag);
            w.u64(e.target);
            w.u8(static_cast<uint8_t>(e.confidence.count()));
            w.u8(static_cast<uint8_t>(e.useful.count()));
        }
    }
    w.u8(static_cast<uint8_t>(useAltOnWeak_.count()));
    w.u64(ditherState_);
    w.u64(probes_);
    w.u64(taggedHits_);
}

void
IttagePredictor::restoreState(StateReader &r)
{
    for (uint64_t &t : base_)
        t = r.u64();
    for (auto &table : tables_) {
        for (TaggedEntry &e : table) {
            e.valid = r.b();
            e.tag = r.u64();
            e.target = r.u64();
            e.confidence.set(r.u8());
            e.useful.set(r.u8());
        }
    }
    useAltOnWeak_.set(r.u8());
    ditherState_ = r.u64();
    probes_ = r.u64();
    taggedHits_ = r.u64();
}

} // namespace tpred
