/**
 * @file
 * ITTAGE-style indirect target predictor (Seznec), included as the
 * modern descendant of the paper's target cache: where the target
 * cache picks ONE history length, ITTAGE keeps several tagged tables
 * with geometrically increasing history lengths and predicts from the
 * longest one that matches — gracefully covering both the monomorphic
 * jumps the BTB already handled and the deep-history interpreter
 * dispatch the target cache was built for.
 *
 * This is a faithful-in-structure, simplified-in-detail
 * implementation: per-entry confidence and useful counters, provider /
 * alternate selection, and allocation on misprediction in a longer
 * table, without the u-bit aging tick of the full CBP version.
 */

#ifndef TPRED_CORE_ITTAGE_HH
#define TPRED_CORE_ITTAGE_HH

#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"
#include "core/indirect_predictor.hh"

namespace tpred
{

/** ITTAGE geometry. */
struct IttageConfig
{
    /** Entries of the direct-mapped, untagged base table. */
    unsigned baseEntries = 256;
    /** log2 entries of each tagged component. */
    unsigned tableBits = 7;
    /** Tag width of the tagged components. */
    unsigned tagBits = 11;
    /** Geometric history lengths of the tagged components. */
    std::vector<unsigned> historyLengths = {4, 9, 16, 32};
    /** Seed for the allocation-throttling dither. */
    uint64_t seed = 0x17a6e;
};

/**
 * The predictor.  The caller supplies a single *global* history value
 * (as for the target cache); each component consumes its own prefix of
 * it.  History lengths above the width of the supplied value saturate
 * to that width, so pairing ITTAGE with a >= 32-bit HistoryTracker is
 * recommended (see harness/paper_tables.hh: ittageConfig()).
 */
class IttagePredictor : public IndirectPredictor
{
  public:
    explicit IttagePredictor(const IttageConfig &config);

    std::optional<uint64_t> predict(uint64_t pc, uint64_t history)
        override;
    void update(uint64_t pc, uint64_t history, uint64_t target) override;
    std::string describe() const override;
    uint64_t costBits() const override;

    /** Fraction of predictions provided by tagged components. */
    double taggedShare() const;

    void saveState(StateWriter &w) const override;
    void restoreState(StateReader &r) override;

  private:
    struct TaggedEntry
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t target = 0;
        SatCounter confidence{2, 0};
        SatCounter useful{1, 0};
    };

    struct Probe
    {
        int provider = -1;        ///< table index, -1 = base
        uint64_t target = 0;      ///< effective prediction
        uint64_t providerTarget = 0;
        uint64_t altTarget = 0;   ///< next match / base table
        bool weakProvider = false;
    };

    uint64_t indexOf(unsigned table, uint64_t pc, uint64_t history)
        const;
    uint64_t tagOf(unsigned table, uint64_t pc, uint64_t history) const;
    Probe probe(uint64_t pc, uint64_t history);

    IttageConfig config_;
    std::vector<uint64_t> base_;
    std::vector<std::vector<TaggedEntry>> tables_;
    /// Adaptive use-alt-on-weak-provider counter (Seznec's
    /// USE_ALT_ON_NA): high = weak providers are untrustworthy here.
    SatCounter useAltOnWeak_{4, 8};
    uint64_t ditherState_;
    uint64_t probes_ = 0;
    uint64_t taggedHits_ = 0;
};

} // namespace tpred

#endif // TPRED_CORE_ITTAGE_HH
