// OraclePredictor is header-only; this translation unit anchors the
// vtable so the class has a home object file.
#include "core/oracle.hh"

namespace tpred
{
} // namespace tpred
