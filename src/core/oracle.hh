/**
 * @file
 * Oracle target predictor: always predicts the architecturally computed
 * target.  Gives the upper bound of what any indirect predictor can
 * contribute (used by the timing ablations and as a test reference).
 */

#ifndef TPRED_CORE_ORACLE_HH
#define TPRED_CORE_ORACLE_HH

#include "common/state_io.hh"
#include "core/indirect_predictor.hh"

namespace tpred
{

/**
 * The harness calls prime() with the architectural record before
 * predict(); the oracle simply echoes the resolved target back.
 */
class OraclePredictor : public IndirectPredictor
{
  public:
    void prime(const MicroOp &op) override { nextTarget_ = op.nextPc; }

    std::optional<uint64_t>
    predict(uint64_t pc, uint64_t history) override
    {
        (void)pc;
        (void)history;
        return nextTarget_;
    }

    void
    update(uint64_t pc, uint64_t history, uint64_t target) override
    {
        (void)pc;
        (void)history;
        (void)target;
    }

    std::string describe() const override { return "oracle"; }

    uint64_t costBits() const override { return 0; }

    void saveState(StateWriter &w) const override
    {
        w.u64(nextTarget_);
    }

    void restoreState(StateReader &r) override
    {
        nextTarget_ = r.u64();
    }

  private:
    uint64_t nextTarget_ = 0;
};

} // namespace tpred

#endif // TPRED_CORE_ORACLE_HH
