#include "core/tagged_target_cache.hh"

#include <cassert>

#include "common/bits.hh"
#include "common/state_io.hh"

namespace tpred
{

std::string_view
taggedIndexSchemeName(TaggedIndexScheme scheme)
{
    switch (scheme) {
      case TaggedIndexScheme::Address: return "addr";
      case TaggedIndexScheme::HistoryConcat: return "hist-concat";
      case TaggedIndexScheme::HistoryXor: return "hist-xor";
    }
    return "?";
}

TaggedTargetCache::TaggedTargetCache(const TaggedConfig &config)
    : config_(config),
      setBits_(config.sets() > 1 ? floorLog2(config.sets()) : 0),
      entries_(config.entries)
{
    assert(config.ways >= 1);
    assert(config.entries % config.ways == 0);
    assert(isPowerOfTwo(config.sets()));
    assert(config.tagBits >= 1 && config.tagBits <= 32);
}

std::pair<uint64_t, uint64_t>
taggedIndexOf(const TaggedConfig &config, unsigned set_bits, uint64_t pc,
              uint64_t history)
{
    const uint64_t addr = pc >> 2;
    const uint64_t hist = history & mask(config.historyBits);
    uint64_t set = 0;
    uint64_t tag = 0;
    switch (config.scheme) {
      case TaggedIndexScheme::Address:
        set = bits(addr, 0, set_bits);
        // Higher address bits XOR the full history form the tag; the
        // address is XOR-folded so no identifying bit is discarded.
        tag = foldXor(addr >> set_bits, config.tagBits) ^
              (hist & mask(config.tagBits));
        break;
      case TaggedIndexScheme::HistoryConcat: {
        set = bits(hist, 0, set_bits);
        const unsigned hi_bits = config.historyBits > set_bits
                                     ? config.historyBits - set_bits
                                     : 0;
        const uint64_t hist_hi = hist >> set_bits;
        tag = (foldXor(addr, config.tagBits > hi_bits
                                 ? config.tagBits - hi_bits
                                 : 1)
               << hi_bits) | hist_hi;
        tag &= mask(config.tagBits);
        break;
      }
      case TaggedIndexScheme::HistoryXor: {
        const uint64_t x = addr ^ hist;
        set = bits(x, 0, set_bits);
        tag = foldXor(x >> set_bits, config.tagBits);
        break;
      }
    }
    return {set, tag};
}

std::pair<uint64_t, uint64_t>
TaggedTargetCache::indexOf(uint64_t pc, uint64_t history) const
{
    return taggedIndexOf(config_, setBits_, pc, history);
}

TaggedTargetCache::Entry *
TaggedTargetCache::findEntry(uint64_t set, uint64_t tag)
{
    Entry *base = &entries_[set * config_.ways];
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

std::optional<uint64_t>
TaggedTargetCache::predict(uint64_t pc, uint64_t history)
{
    auto [set, tag] = indexOf(pc, history);
    Entry *entry = findEntry(set, tag);
    if (!entry)
        return std::nullopt;
    entry->lastUsed = ++useClock_;
    return entry->target;
}

void
TaggedTargetCache::update(uint64_t pc, uint64_t history, uint64_t target)
{
    auto [set, tag] = indexOf(pc, history);
    Entry *entry = findEntry(set, tag);
    if (!entry) {
        Entry *base = &entries_[set * config_.ways];
        entry = base;
        for (unsigned w = 0; w < config_.ways; ++w) {
            if (!base[w].valid) {
                entry = &base[w];
                break;
            }
            if (base[w].lastUsed < entry->lastUsed)
                entry = &base[w];
        }
        if (entry->valid)
            ++conflictEvictions_;
        entry->valid = true;
        entry->tag = tag;
    }
    entry->target = target;
    entry->lastUsed = ++useClock_;
}

std::string
TaggedTargetCache::describe() const
{
    return "tagged-" + std::string(taggedIndexSchemeName(config_.scheme)) +
           "/" + std::to_string(config_.entries) + "e-" +
           std::to_string(config_.ways) + "w-h" +
           std::to_string(config_.historyBits);
}

size_t
TaggedTargetCache::validEntries() const
{
    size_t n = 0;
    for (const auto &entry : entries_)
        n += entry.valid ? 1 : 0;
    return n;
}

void
TaggedTargetCache::saveState(StateWriter &w) const
{
    w.u64(useClock_);
    w.u64(conflictEvictions_);
    for (const Entry &e : entries_) {
        w.b(e.valid);
        w.u64(e.tag);
        w.u64(e.target);
        w.u64(e.lastUsed);
    }
}

void
TaggedTargetCache::restoreState(StateReader &r)
{
    useClock_ = r.u64();
    conflictEvictions_ = r.u64();
    for (Entry &e : entries_) {
        e.valid = r.b();
        e.tag = r.u64();
        e.target = r.u64();
        e.lastUsed = r.u64();
    }
}

} // namespace tpred
