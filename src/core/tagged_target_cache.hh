/**
 * @file
 * Tagged target cache (paper section 3.2, Figure 11).
 *
 * Tags eliminate the interference that plagues the tagless structure:
 * a probe only produces a prediction when its tag matches, otherwise
 * the front end falls back to the BTB.  Indexing schemes of paper
 * section 4.3.1: Address, History-Concatenate, History-XOR.
 */

#ifndef TPRED_CORE_TAGGED_TARGET_CACHE_HH
#define TPRED_CORE_TAGGED_TARGET_CACHE_HH

#include <cstdint>
#include <vector>

#include "core/indirect_predictor.hh"

namespace tpred
{

/** Set-index / tag derivation scheme (paper 4.3.1). */
enum class TaggedIndexScheme : uint8_t
{
    /**
     * Lower address bits select the set; higher address bits XOR
     * history form the tag.  All targets of one jump land in one set,
     * so low associativity thrashes (paper Table 7, "Addr").
     */
    Address,
    /**
     * Lower history bits select the set; higher history bits
     * concatenated with address bits form the tag.
     */
    HistoryConcat,
    /**
     * Address XOR history: low bits select the set, high bits form the
     * tag.  The scheme the paper adopts.
     */
    HistoryXor,
};

std::string_view taggedIndexSchemeName(TaggedIndexScheme scheme);

/** Tagged target cache geometry. */
struct TaggedConfig
{
    TaggedIndexScheme scheme = TaggedIndexScheme::HistoryXor;
    unsigned entries = 256;  ///< total entries (paper's default)
    unsigned ways = 4;       ///< set associativity; entries % ways == 0
    unsigned historyBits = 9;
    unsigned tagBits = 16;

    unsigned sets() const { return entries / ways; }
};

/**
 * The (set, tag) derivation, as a free function over the geometry so the
 * scalar predictor and the SoA-batched sweep kernel
 * (harness/batched_predictors.cc) share one definition.  @p set_bits is
 * floorLog2(config.sets()) (0 for a single set), precomputed by the
 * caller.
 */
std::pair<uint64_t, uint64_t> taggedIndexOf(const TaggedConfig &config,
                                            unsigned set_bits, uint64_t pc,
                                            uint64_t history);

/**
 * Set-associative, true-LRU tagged target cache.
 *
 * predict() returns nullopt on a tag miss; update() allocates the LRU
 * way of the indexed set.
 */
class TaggedTargetCache : public IndirectPredictor
{
  public:
    explicit TaggedTargetCache(const TaggedConfig &config);

    std::optional<uint64_t> predict(uint64_t pc, uint64_t history)
        override;
    void update(uint64_t pc, uint64_t history, uint64_t target) override;
    std::string describe() const override;

    /** Tag + 32-bit target per entry. */
    uint64_t
    costBits() const override
    {
        return static_cast<uint64_t>(config_.entries) *
               (32 + config_.tagBits);
    }

    const TaggedConfig &config() const { return config_; }

    /** (set, tag) derivation, exposed for unit tests. */
    std::pair<uint64_t, uint64_t> indexOf(uint64_t pc, uint64_t history)
        const;

    /** Valid-entry count (occupancy reporting). */
    size_t validEntries() const;

    /** Allocations that displaced a live entry (conflict pressure). */
    uint64_t conflictEvictions() const { return conflictEvictions_; }

    void saveState(StateWriter &w) const override;
    void restoreState(StateReader &r) override;

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t target = 0;
        uint64_t lastUsed = 0;
    };

    Entry *findEntry(uint64_t set, uint64_t tag);

    TaggedConfig config_;
    unsigned setBits_;
    std::vector<Entry> entries_;
    uint64_t useClock_ = 0;
    uint64_t conflictEvictions_ = 0;
};

} // namespace tpred

#endif // TPRED_CORE_TAGGED_TARGET_CACHE_HH
