#include "core/tagless_target_cache.hh"

#include <cassert>

#include "common/bits.hh"
#include "common/state_io.hh"

namespace tpred
{

std::string_view
taglessIndexSchemeName(TaglessIndexScheme scheme)
{
    switch (scheme) {
      case TaglessIndexScheme::GAg: return "GAg";
      case TaglessIndexScheme::GAs: return "GAs";
      case TaglessIndexScheme::Gshare: return "gshare";
    }
    return "?";
}

TaglessTargetCache::TaglessTargetCache(const TaglessConfig &config)
    : config_(config),
      targets_(config.entries(), 0),
      lastWriterPc_(config.entries(), 0)
{
    assert(config.entryBits >= 1 && config.entryBits <= 24);
    if (config.scheme == TaglessIndexScheme::GAs) {
        assert(config.historyBits + config.addrBits == config.entryBits);
    } else {
        assert(config.historyBits <= config.entryBits ||
               config.scheme == TaglessIndexScheme::Gshare);
    }
}

uint64_t
taglessIndexOf(const TaglessConfig &config, uint64_t pc,
               uint64_t history)
{
    const uint64_t addr = pc >> 2;  // word-aligned instructions
    switch (config.scheme) {
      case TaglessIndexScheme::GAg:
        return history & mask(config.entryBits);
      case TaglessIndexScheme::GAs:
        // Address bits pick the sub-table (high index bits), history
        // bits pick the entry within it.
        return ((bits(addr, 0, config.addrBits) << config.historyBits) |
                (history & mask(config.historyBits)))
               & mask(config.entryBits);
      case TaglessIndexScheme::Gshare:
        // Histories longer than the index are XOR-folded in rather
        // than truncated, so every history bit influences the index.
        return (addr ^ foldXor(history, config.entryBits)) &
               mask(config.entryBits);
    }
    return 0;
}

uint64_t
TaglessTargetCache::indexOf(uint64_t pc, uint64_t history) const
{
    return taglessIndexOf(config_, pc, history);
}

std::optional<uint64_t>
TaglessTargetCache::predict(uint64_t pc, uint64_t history)
{
    const uint64_t idx = indexOf(pc, history);
    ++stats_.probes;
    if (lastWriterPc_[idx] != 0 && lastWriterPc_[idx] != pc)
        ++stats_.crossBranchProbes;
    // A tagless cache always produces a prediction, interference or not.
    return targets_[idx];
}

void
TaglessTargetCache::update(uint64_t pc, uint64_t history, uint64_t target)
{
    const uint64_t idx = indexOf(pc, history);
    targets_[idx] = target;
    lastWriterPc_[idx] = pc;
}

std::string
TaglessTargetCache::describe() const
{
    std::string name(taglessIndexSchemeName(config_.scheme));
    if (config_.scheme == TaglessIndexScheme::GAs) {
        name += "(" + std::to_string(config_.historyBits) + "," +
                std::to_string(config_.addrBits) + ")";
    } else {
        name += "(" + std::to_string(config_.historyBits) + ")";
    }
    return "tagless-" + name + "/" + std::to_string(config_.entries());
}

void
TaglessTargetCache::saveState(StateWriter &w) const
{
    for (uint64_t t : targets_)
        w.u64(t);
    for (uint64_t pc : lastWriterPc_)
        w.u64(pc);
    w.u64(stats_.probes);
    w.u64(stats_.crossBranchProbes);
}

void
TaglessTargetCache::restoreState(StateReader &r)
{
    for (uint64_t &t : targets_)
        t = r.u64();
    for (uint64_t &pc : lastWriterPc_)
        pc = r.u64();
    stats_.probes = r.u64();
    stats_.crossBranchProbes = r.u64();
}

} // namespace tpred
