/**
 * @file
 * Tagless target cache (paper section 3.2, Figure 10).
 *
 * Structurally the pattern history table of a 2-level predictor, except
 * each entry stores a branch *target* instead of a direction counter.
 * Index schemes studied in paper Table 4: GAg, GAs, gshare.
 */

#ifndef TPRED_CORE_TAGLESS_TARGET_CACHE_HH
#define TPRED_CORE_TAGLESS_TARGET_CACHE_HH

#include <cstdint>
#include <vector>

#include "core/indirect_predictor.hh"

namespace tpred
{

/** Hashing scheme selecting the tagless cache entry (paper 4.2.1). */
enum class TaglessIndexScheme : uint8_t
{
    /** GAg(h): the h history bits alone select the entry. */
    GAg,
    /**
     * GAs(h,a): a address bits select a conceptual sub-table, h history
     * bits select the entry within it (h + a = log2 entries).
     */
    GAs,
    /** gshare: branch address XOR history selects the entry. */
    Gshare,
};

std::string_view taglessIndexSchemeName(TaglessIndexScheme scheme);

/** Tagless target cache geometry. */
struct TaglessConfig
{
    TaglessIndexScheme scheme = TaglessIndexScheme::Gshare;
    /** log2 of the entry count; the paper's default is 9 (512). */
    unsigned entryBits = 9;
    /** History bits consumed by the index (= entryBits for GAg/gshare;
     *  entryBits - addrBits for GAs). */
    unsigned historyBits = 9;
    /** Address bits consumed (GAs only). */
    unsigned addrBits = 0;

    size_t entries() const { return size_t{1} << entryBits; }
};

/**
 * The entry-index computation, as a free function over the geometry so
 * the scalar predictor and the SoA-batched sweep kernel
 * (harness/batched_predictors.cc) share one definition — the two paths
 * cannot drift apart.
 */
uint64_t taglessIndexOf(const TaglessConfig &config, uint64_t pc,
                        uint64_t history);

/** Interference accounting (simulation-side, costs no "hardware"). */
struct TaglessStats
{
    uint64_t probes = 0;
    /** Probes whose entry was last written by a different branch —
     *  the interference the paper's section 5 discusses. */
    uint64_t crossBranchProbes = 0;

    double
    interferenceRate() const
    {
        return probes ? static_cast<double>(crossBranchProbes) / probes
                      : 0.0;
    }
};

/**
 * The tagless target cache.
 *
 * Every probe "hits" — the selected entry's stored target is the
 * prediction, interference and all.  An entry that has never been
 * written predicts target 0, which can never match a real target (the
 * workloads lay code above address 0x1000), so cold entries always
 * mispredict, as in the paper.
 */
class TaglessTargetCache : public IndirectPredictor
{
  public:
    explicit TaglessTargetCache(const TaglessConfig &config);

    std::optional<uint64_t> predict(uint64_t pc, uint64_t history)
        override;
    void update(uint64_t pc, uint64_t history, uint64_t target) override;
    std::string describe() const override;

    /** 32 bits of target per entry (paper's cost equation, 4.2). */
    uint64_t costBits() const override { return 32 * config_.entries(); }

    const TaglessConfig &config() const { return config_; }

    /** Index computation, exposed for unit tests. */
    uint64_t indexOf(uint64_t pc, uint64_t history) const;

    /** Interference statistics over the probes made so far. */
    const TaglessStats &stats() const { return stats_; }

    void saveState(StateWriter &w) const override;
    void restoreState(StateReader &r) override;

  private:
    TaglessConfig config_;
    std::vector<uint64_t> targets_;
    std::vector<uint64_t> lastWriterPc_;
    TaglessStats stats_;
};

} // namespace tpred

#endif // TPRED_CORE_TAGLESS_TARGET_CACHE_HH
