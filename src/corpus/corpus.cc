#include "corpus/corpus.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "corpus/mapped_file.hh"
#include "corpus/segmented_trace.hh"
#include "trace/compact_io.hh"
#include "trace/stream_io.hh"
#include "trace/trace_source.hh"

namespace fs = std::filesystem;

namespace tpred
{

namespace
{

constexpr const char *kEntrySuffix = ".tpct";
constexpr const char *kSegmentedSuffix = ".tpcs";
constexpr const char *kStreamSuffix = ".tpbs";
constexpr const char *kQuarantineSuffix = ".quarantined";
constexpr const char *kTempMarker = ".tmp";

/** Minimal JSON string escaping (names are workload identifiers). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Current UTC time as ISO 8601 (manifest provenance only). */
std::string
isoNow()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

/**
 * Inverts CorpusManager::fileName().  Workload names may contain
 * '-', so the numeric fields are parsed from the right.
 * @return true when @p file has the expected shape.
 */
bool
parseFileName(const std::string &file, CorpusKey &key)
{
    if (!file.ends_with(kEntrySuffix))
        return false;
    const std::string stem =
        file.substr(0, file.size() - std::strlen(kEntrySuffix));
    const size_t c_at = stem.rfind("-c");
    if (c_at == std::string::npos)
        return false;
    const size_t o_at = stem.rfind("-o", c_at - 1);
    if (o_at == std::string::npos)
        return false;
    const size_t s_at = stem.rfind("-s", o_at - 1);
    if (s_at == std::string::npos || s_at == 0)
        return false;
    try {
        key.workload = stem.substr(0, s_at);
        key.seed = std::stoull(stem.substr(s_at + 2, o_at - s_at - 2));
        key.ops = std::stoull(stem.substr(o_at + 2, c_at - o_at - 2));
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

/**
 * Inverts CorpusManager::streamFileName():
 * {workload}-s{seed}-o{ops}-b{v}.tpbs.
 */
bool
parseStreamFileName(const std::string &file, CorpusKey &key)
{
    if (!file.ends_with(kStreamSuffix))
        return false;
    const std::string stem =
        file.substr(0, file.size() - std::strlen(kStreamSuffix));
    const size_t b_at = stem.rfind("-b");
    if (b_at == std::string::npos)
        return false;
    const size_t o_at = stem.rfind("-o", b_at - 1);
    if (o_at == std::string::npos)
        return false;
    const size_t s_at = stem.rfind("-s", o_at - 1);
    if (s_at == std::string::npos || s_at == 0)
        return false;
    try {
        key.workload = stem.substr(0, s_at);
        key.seed = std::stoull(stem.substr(s_at + 2, o_at - s_at - 2));
        key.ops = std::stoull(stem.substr(o_at + 2, b_at - o_at - 2));
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

/** Stable identity string for orphan matching in gc(). */
std::string
keyId(const CorpusKey &key)
{
    return key.workload + "|" + std::to_string(key.seed) + "|" +
           std::to_string(key.ops);
}

/**
 * Inverts CorpusManager::segmentedFileName():
 * {workload}-s{seed}-o{ops}-g{segOps}-c{v}.tpcs.
 */
bool
parseSegmentedFileName(const std::string &file, CorpusKey &key,
                       uint64_t &segment_ops)
{
    if (!file.ends_with(kSegmentedSuffix))
        return false;
    const std::string stem =
        file.substr(0, file.size() - std::strlen(kSegmentedSuffix));
    const size_t c_at = stem.rfind("-c");
    if (c_at == std::string::npos)
        return false;
    const size_t g_at = stem.rfind("-g", c_at - 1);
    if (g_at == std::string::npos)
        return false;
    const size_t o_at = stem.rfind("-o", g_at - 1);
    if (o_at == std::string::npos)
        return false;
    const size_t s_at = stem.rfind("-s", o_at - 1);
    if (s_at == std::string::npos || s_at == 0)
        return false;
    try {
        key.workload = stem.substr(0, s_at);
        key.seed = std::stoull(stem.substr(s_at + 2, o_at - s_at - 2));
        key.ops = std::stoull(stem.substr(o_at + 2, g_at - o_at - 2));
        segment_ops =
            std::stoull(stem.substr(g_at + 2, c_at - g_at - 2));
    } catch (const std::exception &) {
        return false;
    }
    return true;
}

/** Writes @p data to @p path via temp file + fsync + atomic rename. */
void
atomicWrite(const std::string &path, const void *data, size_t bytes)
{
    const std::string tmp =
        path + kTempMarker + std::to_string(::getpid());
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw std::runtime_error("cannot create " + tmp + ": " +
                                 std::strerror(errno));
    const char *p = static_cast<const char *>(data);
    size_t left = bytes;
    while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int saved = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            throw std::runtime_error("write to " + tmp + " failed: " +
                                     std::strerror(saved));
        }
        p += n;
        left -= static_cast<size_t>(n);
    }
    // The rename is only atomic-durable if the data reached the disk
    // first.
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        ::unlink(tmp.c_str());
        throw std::runtime_error("fsync of " + tmp + " failed: " +
                                 std::strerror(errno));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int saved = errno;
        ::unlink(tmp.c_str());
        throw std::runtime_error("rename to " + path + " failed: " +
                                 std::strerror(saved));
    }
}

} // namespace

const char *
corpusArtifactName(CorpusArtifact kind)
{
    switch (kind) {
      case CorpusArtifact::Plain:
        return "plain";
      case CorpusArtifact::Segmented:
        return "segmented";
      case CorpusArtifact::BranchStream:
        return "branch-stream";
    }
    return "?";
}

CorpusManager::CorpusManager(std::string dir,
                             obs::MetricsRegistry *metrics)
    : dir_(std::move(dir)),
      owned_(metrics == nullptr
                 ? std::make_unique<obs::MetricsRegistry>()
                 : nullptr),
      metrics_(metrics != nullptr ? metrics : owned_.get()),
      hits_(metrics_->counter("corpus.hits")),
      misses_(metrics_->counter("corpus.misses")),
      stores_(metrics_->counter("corpus.stores")),
      quarantined_(metrics_->counter("corpus.quarantined")),
      bytesLoaded_(metrics_->counter("corpus.bytes_loaded")),
      bytesStored_(metrics_->counter("corpus.bytes_stored")),
      fsyncs_(metrics_->counter("corpus.fsyncs")),
      streamHits_(metrics_->counter("stream_corpus.hits")),
      streamMisses_(metrics_->counter("stream_corpus.misses")),
      streamStores_(metrics_->counter("stream_corpus.stores")),
      streamQuarantined_(
          metrics_->counter("stream_corpus.quarantined")),
      streamBytesLoaded_(
          metrics_->counter("stream_corpus.bytes_loaded")),
      streamBytesStored_(
          metrics_->counter("stream_corpus.bytes_stored"))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        throw std::runtime_error("cannot create corpus directory " +
                                 dir_ + ": " + ec.message());
}

std::string
CorpusManager::fileName(const CorpusKey &key)
{
    return key.workload + "-s" + std::to_string(key.seed) + "-o" +
           std::to_string(key.ops) + "-c" +
           std::to_string(kCompactVersion) + kEntrySuffix;
}

std::string
CorpusManager::pathFor(const CorpusKey &key) const
{
    return (fs::path(dir_) / fileName(key)).string();
}

void
CorpusManager::quarantine(const std::string &path,
                          const std::string &why,
                          obs::Counter &counter)
{
    const std::string target = path + kQuarantineSuffix;
    std::error_code ec;
    fs::remove(target, ec);  // a previous quarantine of the same name
    fs::rename(path, target, ec);
    counter.inc();
    std::fprintf(stderr,
                 "tpred-corpus: quarantined %s (%s)%s\n", path.c_str(),
                 why.c_str(),
                 ec ? " [rename failed; file left in place]" : "");
}

std::shared_ptr<const CompactTrace>
CorpusManager::load(const CorpusKey &key, std::string *name_out)
{
    const std::string path = pathFor(key);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        misses_.inc();
        return nullptr;
    }
    try {
        std::shared_ptr<MappedFile> mapping = MappedFile::open(path);
        const uint64_t bytes = mapping->size();
        std::string name;
        CompactTrace trace = openCompactContainer(
            mapping->bytes(), mapping, name, path);
        if (name_out != nullptr)
            *name_out = name;
        hits_.inc();
        bytesLoaded_.inc(bytes);
        return std::make_shared<const CompactTrace>(std::move(trace));
    } catch (const std::exception &e) {
        // Never trust a damaged file: set it aside and regenerate.
        quarantine(path, e.what(), quarantined_);
        misses_.inc();
        return nullptr;
    }
}

void
CorpusManager::store(const CorpusKey &key, const CompactTrace &trace,
                     const std::string &name)
{
    const std::vector<uint8_t> image =
        serializeCompactTrace(trace, name);
    atomicWrite(pathFor(key), image.data(), image.size());
    fsyncs_.inc();
    stores_.inc();
    bytesStored_.inc(image.size());
    refreshManifest();
}

std::string
CorpusManager::segmentedFileName(const CorpusKey &key,
                                 size_t segment_ops)
{
    return key.workload + "-s" + std::to_string(key.seed) + "-o" +
           std::to_string(key.ops) + "-g" +
           std::to_string(segment_ops) + "-c" +
           std::to_string(kCompactVersion) + kSegmentedSuffix;
}

std::string
CorpusManager::segmentedPathFor(const CorpusKey &key,
                                size_t segment_ops) const
{
    return (fs::path(dir_) / segmentedFileName(key, segment_ops))
        .string();
}

std::shared_ptr<const SegmentedTrace>
CorpusManager::loadSegmented(const CorpusKey &key, size_t segment_ops)
{
    const std::string path = segmentedPathFor(key, segment_ops);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        misses_.inc();
        return nullptr;
    }
    try {
        auto trace = SegmentedTrace::open(path);
        // Full verification up front, one window at a time: a
        // defective segment must surface here, not mid-replay.
        trace->verifyAllSegments();
        hits_.inc();
        bytesLoaded_.inc(trace->fileBytes());
        return trace;
    } catch (const std::exception &e) {
        quarantine(path, e.what(), quarantined_);
        misses_.inc();
        return nullptr;
    }
}

void
CorpusManager::storeSegmented(const CorpusKey &key,
                              const CompactTrace &trace,
                              const std::string &name,
                              size_t segment_ops)
{
    const std::string path = segmentedPathFor(key, segment_ops);
    writeSegmentedTraceFile(path, trace, name, segment_ops);
    fsyncs_.inc();
    stores_.inc();
    std::error_code ec;
    bytesStored_.inc(fs::file_size(path, ec));
    refreshManifest();
}

void
CorpusManager::storeSegmentedFromSource(const CorpusKey &key,
                                        TraceSource &source,
                                        const std::string &name,
                                        size_t segment_ops)
{
    if (segment_ops == 0)
        throw std::invalid_argument("segment_ops must be positive");
    const std::string path = segmentedPathFor(key, segment_ops);
    SegmentedFileWriter writer(path, name);

    // Pull one segment's worth of ops at a time: nothing beyond the
    // chunk being encoded is ever resident.
    std::vector<MicroOp> chunk;
    chunk.reserve(std::min(segment_ops, key.ops));
    uint64_t pulled = 0;
    MicroOp op;
    while (pulled < key.ops && source.next(op)) {
        chunk.push_back(op);
        ++pulled;
        if (chunk.size() == segment_ops) {
            writer.addSegment(CompactTrace::encode(chunk));
            chunk.clear();
        }
    }
    if (!chunk.empty())
        writer.addSegment(CompactTrace::encode(chunk));
    writer.finish();

    fsyncs_.inc();
    stores_.inc();
    std::error_code ec;
    bytesStored_.inc(fs::file_size(path, ec));
    refreshManifest();
}

std::string
CorpusManager::streamFileName(const CorpusKey &key)
{
    return key.workload + "-s" + std::to_string(key.seed) + "-o" +
           std::to_string(key.ops) + "-b" +
           std::to_string(kStreamVersion) + kStreamSuffix;
}

std::string
CorpusManager::streamPathFor(const CorpusKey &key) const
{
    return (fs::path(dir_) / streamFileName(key)).string();
}

std::shared_ptr<const BranchStream>
CorpusManager::loadStream(const CorpusKey &key, std::string *name_out)
{
    const std::string path = streamPathFor(key);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        streamMisses_.inc();
        return nullptr;
    }
    try {
        std::shared_ptr<MappedFile> mapping = MappedFile::open(path);
        const uint64_t bytes = mapping->size();
        std::string name;
        BranchStream stream = openBranchStreamContainer(
            mapping->bytes(), mapping, name, path);
        if (name_out != nullptr)
            *name_out = name;
        streamHits_.inc();
        streamBytesLoaded_.inc(bytes);
        return std::make_shared<const BranchStream>(std::move(stream));
    } catch (const std::exception &e) {
        // Streams are derived data: quarantine and re-extract.
        quarantine(path, e.what(), streamQuarantined_);
        streamMisses_.inc();
        return nullptr;
    }
}

void
CorpusManager::storeStream(const CorpusKey &key,
                           const BranchStream &stream,
                           const std::string &name)
{
    const std::vector<uint8_t> image =
        serializeBranchStream(stream, name);
    atomicWrite(streamPathFor(key), image.data(), image.size());
    fsyncs_.inc();
    streamStores_.inc();
    streamBytesStored_.inc(image.size());
    refreshManifest();
}

std::vector<CorpusEntry>
CorpusManager::list(bool verify) const
{
    std::vector<CorpusEntry> entries;
    for (const auto &de : fs::directory_iterator(dir_)) {
        if (!de.is_regular_file())
            continue;
        const std::string file = de.path().filename().string();
        if (file.ends_with(kStreamSuffix)) {
            CorpusEntry entry;
            entry.file = file;
            entry.kind = CorpusArtifact::BranchStream;
            parseStreamFileName(file, entry.key);
            try {
                const auto mapping =
                    MappedFile::open(de.path().string());
                entry.fileBytes = mapping->size();
                if (verify) {
                    std::string name;
                    const BranchStream stream =
                        openBranchStreamContainer(mapping->bytes(),
                                                  mapping, name,
                                                  de.path().string());
                    entry.name = name;
                    entry.opCount = stream.opCount;
                    entry.branchCount = stream.size();
                } else {
                    const StreamContainerInfo info =
                        peekBranchStreamContainer(mapping->bytes(),
                                                  de.path().string());
                    entry.name = info.name;
                    entry.opCount = info.opCount;
                    entry.branchCount = info.branchCount;
                }
                entry.ok = true;
            } catch (const std::exception &e) {
                entry.ok = false;
                entry.error = e.what();
            }
            entries.push_back(std::move(entry));
            continue;
        }
        if (file.ends_with(kSegmentedSuffix)) {
            CorpusEntry entry;
            entry.file = file;
            entry.kind = CorpusArtifact::Segmented;
            uint64_t seg_ops = 0;
            parseSegmentedFileName(file, entry.key, seg_ops);
            try {
                const auto trace =
                    SegmentedTrace::open(de.path().string());
                if (verify)
                    trace->verifyAllSegments();
                entry.name = trace->name();
                entry.opCount = trace->totalOps();
                entry.branchCount = trace->totalBranches();
                entry.fileBytes = trace->fileBytes();
                entry.segmentCount = trace->segmentCount();
                entry.ok = true;
            } catch (const std::exception &e) {
                entry.ok = false;
                entry.error = e.what();
            }
            entries.push_back(std::move(entry));
            continue;
        }
        if (!file.ends_with(kEntrySuffix))
            continue;
        CorpusEntry entry;
        entry.file = file;
        entry.kind = CorpusArtifact::Plain;
        parseFileName(file, entry.key);
        try {
            const auto mapping = MappedFile::open(de.path().string());
            entry.fileBytes = mapping->size();
            if (verify) {
                std::string name;
                const CompactTrace trace = openCompactContainer(
                    mapping->bytes(), mapping, name,
                    de.path().string());
                entry.name = name;
                entry.opCount = trace.size();
                entry.branchCount = trace.branchPositions().size();
            } else {
                const CompactContainerInfo info = peekCompactContainer(
                    mapping->bytes(), de.path().string());
                entry.name = info.name;
                entry.opCount = info.opCount;
                entry.branchCount = info.branchCount;
            }
            entry.ok = true;
        } catch (const std::exception &e) {
            entry.ok = false;
            entry.error = e.what();
        }
        entries.push_back(std::move(entry));
    }
    std::sort(entries.begin(), entries.end(),
              [](const CorpusEntry &a, const CorpusEntry &b) {
                  return a.file < b.file;
              });
    return entries;
}

size_t
CorpusManager::gc(uint64_t max_bytes)
{
    size_t removed = 0;
    struct Live
    {
        fs::path path;
        uint64_t bytes;
        fs::file_time_type mtime;
        std::string id;  ///< keyId() for orphan accounting
    };
    std::vector<Live> live;
    /// Valid .tpbs files and the trace key each one derives from.
    std::vector<std::pair<fs::path, std::string>> streams;
    /// keyId() -> number of live trace files (plain + segmented).
    std::map<std::string, size_t> parents;
    uint64_t total = 0;

    for (const auto &de : fs::directory_iterator(dir_)) {
        if (!de.is_regular_file())
            continue;
        const std::string file = de.path().filename().string();
        const bool stale =
            file.ends_with(kQuarantineSuffix) ||
            file.find(kTempMarker) != std::string::npos;
        if (stale) {
            std::error_code ec;
            if (fs::remove(de.path(), ec))
                ++removed;
            continue;
        }
        if (file.ends_with(kStreamSuffix)) {
            CorpusKey key;
            const bool named = parseStreamFileName(file, key);
            try {
                if (!named)
                    throw CompactFormatError(
                        de.path().string() +
                        ": unparseable stream file name");
                const auto mapping =
                    MappedFile::open(de.path().string());
                std::string name;
                openBranchStreamContainer(mapping->bytes(), mapping,
                                          name, de.path().string());
                streams.emplace_back(de.path(), keyId(key));
            } catch (const std::exception &e) {
                std::fprintf(stderr,
                             "tpred-corpus: gc removing %s (%s)\n",
                             de.path().c_str(), e.what());
                std::error_code ec;
                if (fs::remove(de.path(), ec))
                    ++removed;
            }
            continue;
        }
        if (file.ends_with(kSegmentedSuffix)) {
            try {
                const auto trace =
                    SegmentedTrace::open(de.path().string());
                trace->verifyAllSegments();
                CorpusKey key;
                uint64_t seg_ops = 0;
                std::string id;
                if (parseSegmentedFileName(file, key, seg_ops))
                    id = keyId(key);
                live.push_back({de.path(), trace->fileBytes(),
                                fs::last_write_time(de.path()), id});
                total += trace->fileBytes();
            } catch (const std::exception &e) {
                std::fprintf(stderr,
                             "tpred-corpus: gc removing %s (%s)\n",
                             de.path().c_str(), e.what());
                std::error_code ec;
                if (fs::remove(de.path(), ec))
                    ++removed;
            }
            continue;
        }
        if (!file.ends_with(kEntrySuffix))
            continue;
        try {
            const auto mapping = MappedFile::open(de.path().string());
            std::string name;
            openCompactContainer(mapping->bytes(), mapping, name,
                                 de.path().string());
            CorpusKey key;
            std::string id;
            if (parseFileName(file, key))
                id = keyId(key);
            live.push_back({de.path(), mapping->size(),
                            fs::last_write_time(de.path()), id});
            total += mapping->size();
        } catch (const std::exception &e) {
            std::fprintf(stderr, "tpred-corpus: gc removing %s (%s)\n",
                         de.path().c_str(), e.what());
            std::error_code ec;
            if (fs::remove(de.path(), ec))
                ++removed;
        }
    }
    for (const Live &entry : live)
        if (!entry.id.empty())
            ++parents[entry.id];

    if (max_bytes > 0 && total > max_bytes) {
        std::sort(live.begin(), live.end(),
                  [](const Live &a, const Live &b) {
                      return a.mtime < b.mtime;
                  });
        for (const Live &entry : live) {
            if (total <= max_bytes)
                break;
            std::error_code ec;
            if (fs::remove(entry.path, ec)) {
                total -= entry.bytes;
                ++removed;
                if (!entry.id.empty())
                    --parents[entry.id];
            }
        }
    }

    // Streams are derived data: collect any whose parent trace —
    // plain or segmented, same (workload, seed, ops) — is gone,
    // including parents evicted just above.
    for (const auto &[path, id] : streams) {
        const auto it = parents.find(id);
        if (it != parents.end() && it->second > 0)
            continue;
        std::fprintf(stderr,
                     "tpred-corpus: gc removing %s (orphaned "
                     "branch-stream; parent trace removed)\n",
                     path.c_str());
        std::error_code ec;
        if (fs::remove(path, ec))
            ++removed;
    }

    refreshManifest();
    return removed;
}

std::string
CorpusManager::manifestPath() const
{
    return (fs::path(dir_) / "manifest.json").string();
}

void
CorpusManager::refreshManifest() const
{
    std::lock_guard<std::mutex> lock(manifestMutex_);

    // The manifest is derived state: rebuilt from the authoritative
    // file headers, so deleting it (or racing writers across
    // processes — last rename wins) loses nothing.
    std::string json = "{\n";
    json += "  \"format\": \"tpred-corpus-manifest\",\n";
    json += "  \"version\": 1,\n";
    json += "  \"generator\": \"" +
            jsonEscape(kGeneratorVersion) + "\",\n";
    json += "  \"container_version\": " +
            std::to_string(kCompactVersion) + ",\n";
    json += "  \"updated\": \"" + isoNow() + "\",\n";
    json += "  \"entries\": [";

    bool first = true;
    for (const auto &de : fs::directory_iterator(dir_)) {
        if (!de.is_regular_file())
            continue;
        const std::string file = de.path().filename().string();
        if (file.ends_with(kStreamSuffix)) {
            std::string entry = "\n    {\"file\": \"" +
                                jsonEscape(file) +
                                "\", \"kind\": \"branch-stream\"";
            CorpusKey key;
            if (parseStreamFileName(file, key)) {
                entry += ", \"workload\": \"" +
                         jsonEscape(key.workload) +
                         "\", \"seed\": " + std::to_string(key.seed) +
                         ", \"ops\": " + std::to_string(key.ops);
            }
            try {
                const auto mapping =
                    MappedFile::open(de.path().string());
                const StreamContainerInfo info =
                    peekBranchStreamContainer(mapping->bytes(),
                                              de.path().string());
                entry += ", \"name\": \"" + jsonEscape(info.name) +
                         "\", \"op_count\": " +
                         std::to_string(info.opCount) +
                         ", \"branch_count\": " +
                         std::to_string(info.branchCount) +
                         ", \"bytes\": " +
                         std::to_string(info.fileBytes) +
                         ", \"crc32c\": " +
                         std::to_string(info.totalCrc);
            } catch (const std::exception &e) {
                entry += ", \"error\": \"" + jsonEscape(e.what()) +
                         "\"";
            }
            entry += "}";
            json += (first ? "" : ",") + entry;
            first = false;
            continue;
        }
        if (file.ends_with(kSegmentedSuffix)) {
            std::string entry = "\n    {\"file\": \"" +
                                jsonEscape(file) + "\"";
            CorpusKey key;
            uint64_t seg_ops = 0;
            if (parseSegmentedFileName(file, key, seg_ops)) {
                entry += ", \"workload\": \"" +
                         jsonEscape(key.workload) +
                         "\", \"seed\": " + std::to_string(key.seed) +
                         ", \"ops\": " + std::to_string(key.ops) +
                         ", \"segment_ops\": " +
                         std::to_string(seg_ops);
            }
            try {
                const auto trace =
                    SegmentedTrace::open(de.path().string());
                entry += ", \"name\": \"" + jsonEscape(trace->name()) +
                         "\", \"op_count\": " +
                         std::to_string(trace->totalOps()) +
                         ", \"branch_count\": " +
                         std::to_string(trace->totalBranches()) +
                         ", \"bytes\": " +
                         std::to_string(trace->fileBytes()) +
                         ", \"segments\": " +
                         std::to_string(trace->segmentCount());
            } catch (const std::exception &e) {
                entry += ", \"error\": \"" + jsonEscape(e.what()) +
                         "\"";
            }
            entry += "}";
            json += (first ? "" : ",") + entry;
            first = false;
            continue;
        }
        if (!file.ends_with(kEntrySuffix))
            continue;
        std::string entry = "\n    {\"file\": \"" + jsonEscape(file) +
                            "\"";
        CorpusKey key;
        if (parseFileName(file, key)) {
            entry += ", \"workload\": \"" + jsonEscape(key.workload) +
                     "\", \"seed\": " + std::to_string(key.seed) +
                     ", \"ops\": " + std::to_string(key.ops);
        }
        try {
            const auto mapping = MappedFile::open(de.path().string());
            const CompactContainerInfo info = peekCompactContainer(
                mapping->bytes(), de.path().string());
            entry += ", \"name\": \"" + jsonEscape(info.name) +
                     "\", \"op_count\": " +
                     std::to_string(info.opCount) +
                     ", \"branch_count\": " +
                     std::to_string(info.branchCount) +
                     ", \"bytes\": " +
                     std::to_string(info.fileBytes) +
                     ", \"crc32c\": " +
                     std::to_string(info.totalCrc) +
                     ", \"fast_branch_scan\": " +
                     (info.fastBranchScan ? "true" : "false");
        } catch (const std::exception &e) {
            entry += ", \"error\": \"" + jsonEscape(e.what()) + "\"";
        }
        entry += "}";
        json += (first ? "" : ",") + entry;
        first = false;
    }
    json += "\n  ]\n}\n";

    try {
        atomicWrite(manifestPath(), json.data(), json.size());
        fsyncs_.inc();
    } catch (const std::exception &e) {
        // Advisory metadata only — never fail an experiment over it.
        std::fprintf(stderr,
                     "tpred-corpus: manifest refresh failed: %s\n",
                     e.what());
    }
}

} // namespace tpred
