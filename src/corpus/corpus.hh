/**
 * @file
 * Persistent trace corpus: an on-disk store of CompactTrace
 * containers, shared by every process that replays traces.
 *
 * The paper's methodology is trace-driven — SPECint95 streams were
 * captured once and replayed across every predictor configuration.
 * The in-process TraceCache gives one process that amortization;
 * CorpusManager extends it across processes and runs: traces are
 * written once (temp file + atomic rename, CRC32C-checked sections),
 * then every later tpredsim/bench/test invocation maps them back
 * zero-copy instead of regenerating the workload.
 *
 * Robust degradation is a design rule: a truncated, bit-flipped or
 * version-skewed file is never trusted — load() quarantines it
 * (renames to *.quarantined, warns on stderr) and reports a miss so
 * the caller regenerates.  A corpus can therefore never poison an
 * experiment; at worst it stops helping.
 *
 * A human-auditable manifest.json records provenance (generator
 * version, per-file checksums, encoding stats); it is regenerated
 * from the authoritative file headers on every mutation, so it can
 * be deleted at any time.  tools/tpredcorpus wraps this class in a
 * build/verify/ls/gc CLI.
 */

#ifndef TPRED_CORPUS_CORPUS_HH
#define TPRED_CORPUS_CORPUS_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "trace/compact_trace.hh"

namespace tpred
{

class SegmentedTrace;
class TraceSource;

/** Identity of one corpus entry: what would have been generated. */
struct CorpusKey
{
    std::string workload;
    uint64_t seed = 1;
    size_t ops = 0;
};

/** Artifact kind of one corpus file. */
enum class CorpusArtifact
{
    Plain,        ///< monolithic TPCC trace container (.tpct)
    Segmented,    ///< chunked TPCS trace container (.tpcs)
    BranchStream, ///< derived TPBS branch-stream container (.tpbs)
};

/** Human-readable name of @p kind ("plain" / "segmented" / ...). */
const char *corpusArtifactName(CorpusArtifact kind);

/** One corpus file as seen by ls/verify tooling. */
struct CorpusEntry
{
    std::string file;      ///< basename within the corpus dir
    std::string name;      ///< recorded stream name ("" if unreadable)
    CorpusKey key;         ///< parsed from the filename
    CorpusArtifact kind = CorpusArtifact::Plain;
    uint64_t opCount = 0;
    uint64_t branchCount = 0;
    uint64_t fileBytes = 0;
    uint64_t segmentCount = 0; ///< 0 for plain (unsegmented) entries
    bool ok = false;
    std::string error;     ///< why !ok
};

/**
 * Manages one corpus directory.  All methods are safe to call from
 * multiple threads; distinct processes coordinate through atomic
 * renames only (no lock files), which POSIX makes safe for the
 * write-once content involved.
 */
class CorpusManager
{
  public:
    /** Recorded in the manifest as the writing software version. */
    static constexpr const char *kGeneratorVersion = "tpred-corpus/1";

    /**
     * Opens (creating if needed) the corpus at @p dir.
     * @param metrics Registry the "corpus.*" counters report into;
     *        nullptr gives this manager a private registry (so tests
     *        see per-instance counts).  Production corpora attached
     *        to the global trace cache use &obs::globalMetrics() so
     *        run reports include them.
     * @throws std::runtime_error when the directory cannot be created.
     */
    explicit CorpusManager(std::string dir,
                           obs::MetricsRegistry *metrics = nullptr);

    const std::string &dir() const { return dir_; }

    /** Registry holding this manager's "corpus.*" counters. */
    obs::MetricsRegistry &metricsRegistry() const { return *metrics_; }

    /** Basename a key stores under (embeds the container version). */
    static std::string fileName(const CorpusKey &key);

    /** Absolute path for @p key inside this corpus. */
    std::string pathFor(const CorpusKey &key) const;

    /**
     * Maps and validates the entry for @p key.
     * @param name_out Optional; receives the recorded stream name.
     * @return The zero-copy trace (holding its mapping), or nullptr
     *         when absent or quarantined — the caller regenerates.
     */
    std::shared_ptr<const CompactTrace> load(const CorpusKey &key,
                                             std::string *name_out =
                                                 nullptr);

    /**
     * Persists @p trace for @p key: serialize, write a temp file,
     * fsync, atomically rename into place, refresh the manifest.
     * @throws std::runtime_error on I/O failure (nothing partial is
     *         ever visible under the final name).
     */
    void store(const CorpusKey &key, const CompactTrace &trace,
               const std::string &name);

    /**
     * Scans the corpus directory.
     * @param verify Full checksum verification per file (true) or
     *        structural header validation only (false).
     */
    std::vector<CorpusEntry> list(bool verify) const;

    /**
     * Deletes quarantined files, stale temp files and entries that
     * fail full verification; then, if @p max_bytes > 0, evicts the
     * oldest trace entries (by modification time) until the corpus
     * fits; finally removes orphaned branch-stream containers whose
     * parent trace (plain or segmented, same key) is gone.  Stream
     * containers are derived data and do not count against
     * @p max_bytes — they live and die with their parent trace.
     * @return Number of files removed.
     */
    size_t gc(uint64_t max_bytes = 0);

    /**
     * Basename a key's *segmented* container stores under (embeds the
     * segment granularity and container version; distinct ".tpcs"
     * suffix so plain-container scans skip it).
     */
    static std::string segmentedFileName(const CorpusKey &key,
                                         size_t segment_ops);

    /** Absolute path for @p key's segmented container. */
    std::string segmentedPathFor(const CorpusKey &key,
                                 size_t segment_ops) const;

    /**
     * Opens the segmented entry for @p key and fully verifies every
     * segment up front — one window at a time, so peak memory is
     * O(segment size) no matter how long the trace is.
     * @return The validated envelope (segments are re-mapped on
     *         demand), or nullptr when absent or quarantined.
     */
    std::shared_ptr<const SegmentedTrace>
    loadSegmented(const CorpusKey &key, size_t segment_ops);

    /**
     * Persists @p trace as a segmented container with @p segment_ops
     * ops per segment (temp file + fsync + atomic rename, as store()).
     */
    void storeSegmented(const CorpusKey &key, const CompactTrace &trace,
                        const std::string &name, size_t segment_ops);

    /**
     * Streaming store: pulls key.ops ops from @p source one segment's
     * worth at a time, encoding and writing each before pulling the
     * next — peak memory O(segment_ops), which is what makes building
     * a 10^8..10^9-op corpus entry feasible at flat RSS.
     */
    void storeSegmentedFromSource(const CorpusKey &key,
                                  TraceSource &source,
                                  const std::string &name,
                                  size_t segment_ops);

    /**
     * Basename a key's *branch-stream* container stores under
     * (embeds the TPBS version; distinct ".tpbs" suffix so trace
     * scans skip it).  The stream is derived data: it always sits
     * alongside a plain or segmented trace entry for the same key,
     * and gc() collects it once that parent is gone.
     */
    static std::string streamFileName(const CorpusKey &key);

    /** Absolute path for @p key's branch-stream container. */
    std::string streamPathFor(const CorpusKey &key) const;

    /**
     * Maps and validates the branch-stream entry for @p key.
     * Reported under the "stream_corpus.*" counters, separate from
     * the trace tier.
     * @return The zero-copy stream (holding its mapping), or nullptr
     *         when absent or quarantined — the caller re-extracts
     *         from the trace.
     */
    std::shared_ptr<const BranchStream>
    loadStream(const CorpusKey &key, std::string *name_out = nullptr);

    /**
     * Persists @p stream for @p key (temp file + fsync + atomic
     * rename, as store()).
     */
    void storeStream(const CorpusKey &key, const BranchStream &stream,
                     const std::string &name);

    std::string manifestPath() const;

    /** Regenerates manifest.json from the file headers on disk. */
    void refreshManifest() const;

  private:
    void quarantine(const std::string &path, const std::string &why,
                    obs::Counter &counter);

    std::string dir_;
    mutable std::mutex manifestMutex_;

    std::unique_ptr<obs::MetricsRegistry> owned_;  ///< when unshared
    obs::MetricsRegistry *metrics_;
    obs::Counter hits_;
    obs::Counter misses_;
    obs::Counter stores_;
    obs::Counter quarantined_;
    obs::Counter bytesLoaded_;
    obs::Counter bytesStored_;
    obs::Counter fsyncs_;

    // Branch-stream tier ("stream_corpus.*"), separate from the
    // trace counters so warm-run reports show which tier served.
    obs::Counter streamHits_;
    obs::Counter streamMisses_;
    obs::Counter streamStores_;
    obs::Counter streamQuarantined_;
    obs::Counter streamBytesLoaded_;
    obs::Counter streamBytesStored_;
};

} // namespace tpred

#endif // TPRED_CORPUS_CORPUS_HH
