#include "corpus/mapped_file.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace tpred
{

namespace
{

[[noreturn]] void
fail(const std::string &path, const char *what)
{
    throw std::runtime_error("cannot map " + path + ": " +
                             std::string(what) + ": " +
                             std::strerror(errno));
}

} // namespace

std::shared_ptr<MappedFile>
MappedFile::open(const std::string &path, bool drop_cache)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fail(path, "open");

    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        fail(path, "fstat");
    }
    const size_t size = static_cast<size_t>(st.st_size);

    if (drop_cache) {
        // Best effort: evicts clean pages so the subsequent reads
        // fault in from storage (cold-start measurement).
        ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    }

    void *base = nullptr;
    if (size > 0) {
        base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (base == MAP_FAILED) {
            const int saved = errno;
            ::close(fd);
            errno = saved;
            fail(path, "mmap");
        }
    }
    ::close(fd);

    return std::shared_ptr<MappedFile>(
        new MappedFile(base, size, 0, size, path));
}

std::shared_ptr<MappedFile>
MappedFile::openRange(const std::string &path, uint64_t offset,
                      size_t length)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fail(path, "open");

    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        fail(path, "fstat");
    }
    const uint64_t file_size = static_cast<uint64_t>(st.st_size);
    if (offset > file_size || length > file_size - offset) {
        ::close(fd);
        throw std::runtime_error(
            "cannot map " + path + ": window [" +
            std::to_string(offset) + ", " +
            std::to_string(offset + length) + ") exceeds file size " +
            std::to_string(file_size));
    }

    // mmap offsets must be page-aligned; round down and remember the
    // slack so bytes() still starts at the byte the caller asked for.
    const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
    const uint64_t map_offset = offset & ~(page - 1);
    const size_t adjust = static_cast<size_t>(offset - map_offset);
    const size_t map_size = length + adjust;

    void *base = nullptr;
    if (map_size > 0) {
        base = ::mmap(nullptr, map_size, PROT_READ, MAP_PRIVATE, fd,
                      static_cast<off_t>(map_offset));
        if (base == MAP_FAILED) {
            const int saved = errno;
            ::close(fd);
            errno = saved;
            fail(path, "mmap");
        }
    }
    ::close(fd);

    return std::shared_ptr<MappedFile>(
        new MappedFile(base, map_size, adjust, length, path));
}

MappedFile::~MappedFile()
{
    if (base_ != nullptr)
        ::munmap(base_, mapSize_);
}

} // namespace tpred
