#include "corpus/mapped_file.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace tpred
{

namespace
{

[[noreturn]] void
fail(const std::string &path, const char *what)
{
    throw std::runtime_error("cannot map " + path + ": " +
                             std::string(what) + ": " +
                             std::strerror(errno));
}

} // namespace

std::shared_ptr<MappedFile>
MappedFile::open(const std::string &path, bool drop_cache)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fail(path, "open");

    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        fail(path, "fstat");
    }
    const size_t size = static_cast<size_t>(st.st_size);

    if (drop_cache) {
        // Best effort: evicts clean pages so the subsequent reads
        // fault in from storage (cold-start measurement).
        ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    }

    void *base = nullptr;
    if (size > 0) {
        base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (base == MAP_FAILED) {
            const int saved = errno;
            ::close(fd);
            errno = saved;
            fail(path, "mmap");
        }
    }
    ::close(fd);

    return std::shared_ptr<MappedFile>(
        new MappedFile(base, size, path));
}

MappedFile::~MappedFile()
{
    if (base_ != nullptr)
        ::munmap(base_, size_);
}

} // namespace tpred
