/**
 * @file
 * Read-only memory-mapped file, the zero-copy substrate of the
 * persistent trace corpus: a corpus container is mapped once and the
 * CompactTrace column spans point straight into the mapping, so
 * replay decodes out of the page cache with no deserialization pass
 * and no heap copy of the trace data.
 */

#ifndef TPRED_CORPUS_MAPPED_FILE_HH
#define TPRED_CORPUS_MAPPED_FILE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace tpred
{

/**
 * RAII read-only mapping of a whole file.  Created via open() as a
 * shared_ptr so a CompactTrace can hold it as its backing handle;
 * the mapping lives exactly as long as the last view of it.
 */
class MappedFile
{
  public:
    /**
     * Maps @p path read-only.
     * @param drop_cache Advise the kernel to evict the file's page
     *        cache first (POSIX_FADV_DONTNEED) — used by the
     *        corpus_load bench to approximate a cold start.
     * @throws std::runtime_error (message names the path) on any
     *         open/stat/mmap failure.
     */
    static std::shared_ptr<MappedFile> open(const std::string &path,
                                            bool drop_cache = false);

    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** The mapped bytes (empty span for a zero-length file). */
    std::span<const uint8_t> bytes() const
    {
        return {static_cast<const uint8_t *>(base_), size_};
    }

    size_t size() const { return size_; }
    const std::string &path() const { return path_; }

  private:
    MappedFile(void *base, size_t size, std::string path)
        : base_(base), size_(size), path_(std::move(path))
    {
    }

    void *base_ = nullptr;
    size_t size_ = 0;
    std::string path_;
};

} // namespace tpred

#endif // TPRED_CORPUS_MAPPED_FILE_HH
