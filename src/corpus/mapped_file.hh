/**
 * @file
 * Read-only memory-mapped file, the zero-copy substrate of the
 * persistent trace corpus: a corpus container is mapped once and the
 * CompactTrace column spans point straight into the mapping, so
 * replay decodes out of the page cache with no deserialization pass
 * and no heap copy of the trace data.
 */

#ifndef TPRED_CORPUS_MAPPED_FILE_HH
#define TPRED_CORPUS_MAPPED_FILE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace tpred
{

/**
 * RAII read-only mapping of a whole file.  Created via open() as a
 * shared_ptr so a CompactTrace can hold it as its backing handle;
 * the mapping lives exactly as long as the last view of it.
 */
class MappedFile
{
  public:
    /**
     * Maps @p path read-only.
     * @param drop_cache Advise the kernel to evict the file's page
     *        cache first (POSIX_FADV_DONTNEED) — used by the
     *        corpus_load bench to approximate a cold start.
     * @throws std::runtime_error (message names the path) on any
     *         open/stat/mmap failure.
     */
    static std::shared_ptr<MappedFile> open(const std::string &path,
                                            bool drop_cache = false);

    /**
     * Maps only @p length bytes starting at @p offset — the windowed
     * view used by segmented streaming replay, where one segment at a
     * time is resident instead of the whole container.  @p offset is
     * page-aligned down internally; bytes() returns exactly the
     * requested [offset, offset + length) range.
     * @throws std::runtime_error when the range exceeds the file or
     *         any open/stat/mmap step fails.
     */
    static std::shared_ptr<MappedFile>
    openRange(const std::string &path, uint64_t offset, size_t length);

    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** The mapped bytes (empty span for a zero-length file/window). */
    std::span<const uint8_t> bytes() const
    {
        return {static_cast<const uint8_t *>(base_) + viewOffset_,
                size_};
    }

    size_t size() const { return size_; }
    const std::string &path() const { return path_; }

  private:
    MappedFile(void *base, size_t map_size, size_t view_offset,
               size_t view_size, std::string path)
        : base_(base), mapSize_(map_size), viewOffset_(view_offset),
          size_(view_size), path_(std::move(path))
    {
    }

    void *base_ = nullptr;   ///< page-aligned mapping base
    size_t mapSize_ = 0;     ///< bytes actually mapped (munmap length)
    size_t viewOffset_ = 0;  ///< bytes() start relative to base_
    size_t size_ = 0;        ///< bytes() length
    std::string path_;
};

} // namespace tpred

#endif // TPRED_CORPUS_MAPPED_FILE_HH
