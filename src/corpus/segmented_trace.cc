#include "corpus/segmented_trace.hh"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "common/crc32c.hh"
#include "corpus/mapped_file.hh"
#include "trace/compact_io.hh"

namespace tpred
{

std::shared_ptr<const SegmentedTrace>
SegmentedTrace::open(const std::string &path)
{
    std::error_code ec;
    const uint64_t file_len = std::filesystem::file_size(path, ec);
    if (ec)
        throw std::runtime_error("cannot stat " + path + ": " +
                                 ec.message());

    auto trace = std::shared_ptr<SegmentedTrace>(new SegmentedTrace());
    trace->path_ = path;
    trace->fileBytes_ = file_len;

    // Two small windows validate the whole envelope; no segment
    // payload is touched.
    const uint64_t head_len =
        std::min<uint64_t>(file_len, segmentedHeaderMaxBytes());
    const auto head = MappedFile::openRange(path, 0, head_len);
    trace->header_ = parseSegmentedHeader(head->bytes(), path);

    const uint64_t tail_len =
        segmentedTailBytes(trace->header_.segmentCount);
    if (tail_len > file_len)
        throw CompactFormatError(path + ": truncated segmented "
                                        "container (missing index)");
    const auto tail =
        MappedFile::openRange(path, file_len - tail_len, tail_len);
    trace->segments_ = parseSegmentedTail(
        tail->bytes(),
        head->bytes().first(trace->header_.headerNameBytes),
        trace->header_, file_len, path);

    const SegmentRecord &last = trace->segments_.back();
    trace->totalBranches_ = last.firstBranch + last.branchCount;
    return trace;
}

size_t
SegmentedTrace::segmentContaining(uint64_t pos) const
{
    const auto it = std::upper_bound(
        segments_.begin(), segments_.end(), pos,
        [](uint64_t p, const SegmentRecord &rec) {
            return p < rec.firstOp;
        });
    if (it == segments_.begin())
        throw std::out_of_range("segmentContaining: bad position");
    return static_cast<size_t>(it - segments_.begin()) - 1;
}

std::shared_ptr<const CompactTrace>
SegmentedTrace::openSegment(size_t i) const
{
    const SegmentRecord &rec = segments_.at(i);
    const std::string whence =
        path_ + " segment " + std::to_string(i);

    const auto window =
        MappedFile::openRange(path_, rec.offset, rec.byteLen);
    const std::span<const uint8_t> image = window->bytes();
    if (crc32c(image.data(), image.size()) != rec.crc)
        throw CompactFormatError(whence + ": segment checksum "
                                          "mismatch (corrupt payload)");

    std::string name;
    CompactTrace seg =
        openCompactContainer(image, window, name, whence);
    if (seg.size() != rec.opCount ||
        seg.branchPositions().size() != rec.branchCount)
        throw CompactFormatError(whence + ": payload op/branch count "
                                          "disagrees with the index");
    return std::make_shared<const CompactTrace>(std::move(seg));
}

void
SegmentedTrace::verifyAllSegments() const
{
    for (size_t i = 0; i < segments_.size(); ++i)
        openSegment(i);  // one window at a time; throws on defect
}

SegmentedReplay::SegmentedReplay(
    std::shared_ptr<const SegmentedTrace> trace, uint64_t start_op,
    std::function<void()> on_window_open)
    : trace_(std::move(trace)),
      onWindowOpen_(std::move(on_window_open))
{
    if (start_op >= trace_->totalOps()) {
        // Positioned at (or past) the end: first next() returns false.
        segIdx_ = trace_->segmentCount() - 1;
        pos_ = trace_->totalOps();
        return;
    }
    openSegmentWindow(trace_->segmentContaining(start_op));
    // Skip within the starting segment to the exact op.
    MicroOp scratch;
    for (uint64_t skip = start_op - trace_->record(segIdx_).firstOp;
         skip > 0; --skip) {
        replay_->next(scratch);
    }
    pos_ = start_op;
}

void
SegmentedReplay::openSegmentWindow(size_t idx)
{
    segment_ = trace_->openSegment(idx);
    replay_.emplace(*segment_);
    segIdx_ = idx;
    if (onWindowOpen_)
        onWindowOpen_();
}

} // namespace tpred
