#include "corpus/segmented_trace.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "common/crc32c.hh"
#include "corpus/mapped_file.hh"
#include "obs/metrics.hh"
#include "trace/compact_io.hh"

namespace tpred
{

namespace
{

std::atomic<bool> &
prefetchFlag()
{
    static std::atomic<bool> enabled{[] {
        const char *env = std::getenv("TPRED_PREFETCH");
        return env == nullptr || *env == '\0' ||
               std::strcmp(env, "0") != 0;
    }()};
    return enabled;
}

} // namespace

bool
segmentPrefetchEnabled()
{
    return prefetchFlag().load(std::memory_order_relaxed);
}

void
setSegmentPrefetchEnabled(bool enabled)
{
    prefetchFlag().store(enabled, std::memory_order_relaxed);
}

std::shared_ptr<const SegmentedTrace>
SegmentedTrace::open(const std::string &path)
{
    std::error_code ec;
    const uint64_t file_len = std::filesystem::file_size(path, ec);
    if (ec)
        throw std::runtime_error("cannot stat " + path + ": " +
                                 ec.message());

    auto trace = std::shared_ptr<SegmentedTrace>(new SegmentedTrace());
    trace->path_ = path;
    trace->fileBytes_ = file_len;

    // Two small windows validate the whole envelope; no segment
    // payload is touched.
    const uint64_t head_len =
        std::min<uint64_t>(file_len, segmentedHeaderMaxBytes());
    const auto head = MappedFile::openRange(path, 0, head_len);
    trace->header_ = parseSegmentedHeader(head->bytes(), path);

    const uint64_t tail_len =
        segmentedTailBytes(trace->header_.segmentCount);
    if (tail_len > file_len)
        throw CompactFormatError(path + ": truncated segmented "
                                        "container (missing index)");
    const auto tail =
        MappedFile::openRange(path, file_len - tail_len, tail_len);
    trace->segments_ = parseSegmentedTail(
        tail->bytes(),
        head->bytes().first(trace->header_.headerNameBytes),
        trace->header_, file_len, path);

    const SegmentRecord &last = trace->segments_.back();
    trace->totalBranches_ = last.firstBranch + last.branchCount;
    return trace;
}

size_t
SegmentedTrace::segmentContaining(uint64_t pos) const
{
    const auto it = std::upper_bound(
        segments_.begin(), segments_.end(), pos,
        [](uint64_t p, const SegmentRecord &rec) {
            return p < rec.firstOp;
        });
    if (it == segments_.begin())
        throw std::out_of_range("segmentContaining: bad position");
    return static_cast<size_t>(it - segments_.begin()) - 1;
}

std::shared_ptr<const CompactTrace>
SegmentedTrace::openSegment(size_t i) const
{
    const SegmentRecord &rec = segments_.at(i);
    const std::string whence =
        path_ + " segment " + std::to_string(i);

    const auto window =
        MappedFile::openRange(path_, rec.offset, rec.byteLen);
    const std::span<const uint8_t> image = window->bytes();
    if (crc32c(image.data(), image.size()) != rec.crc)
        throw CompactFormatError(whence + ": segment checksum "
                                          "mismatch (corrupt payload)");

    std::string name;
    CompactTrace seg =
        openCompactContainer(image, window, name, whence);
    if (seg.size() != rec.opCount ||
        seg.branchPositions().size() != rec.branchCount)
        throw CompactFormatError(whence + ": payload op/branch count "
                                          "disagrees with the index");
    return std::make_shared<const CompactTrace>(std::move(seg));
}

void
SegmentedTrace::verifyAllSegments() const
{
    for (size_t i = 0; i < segments_.size(); ++i)
        openSegment(i);  // one window at a time; throws on defect
}

SegmentPrefetcher::SegmentPrefetcher(const SegmentedTrace &trace)
    : trace_(trace),
      enabled_(segmentPrefetchEnabled() && trace.segmentCount() > 1)
{
}

SegmentPrefetcher::~SegmentPrefetcher()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable())
        worker_.join();
}

std::shared_ptr<const CompactTrace>
SegmentPrefetcher::fetch(size_t i)
{
    if (!enabled_)
        return trace_.openSegment(i);

    std::shared_ptr<const CompactTrace> out;
    {
        std::unique_lock<std::mutex> lock(mu_);
        // Settle any in-flight decode before inspecting the slot.
        cv_.wait(lock, [&] { return requested_ == kNone; });
        if (readyIdx_ == i) {
            out = std::move(ready_);
            readyIdx_ = kNone;
        } else {
            // Non-sequential request (first fetch, restart): drop a
            // stale window before mapping another, keeping peak
            // residency at one consumer + one in-flight window.
            ready_.reset();
            readyIdx_ = kNone;
        }
    }
    if (!out) {
        // Cold slot — or a background decode that failed and left it
        // empty.  Decoding the same bytes here reproduces the exact
        // CompactFormatError the synchronous path reports.
        out = trace_.openSegment(i);
        obs::globalMetrics()
            .counter("segments.prefetch_syncs",
                     obs::MetricKind::Runtime)
            .inc();
    } else {
        obs::globalMetrics()
            .counter("segments.prefetch_hits",
                     obs::MetricKind::Runtime)
            .inc();
    }

    if (i + 1 < trace_.segmentCount()) {
        if (!worker_.joinable())
            worker_ = std::thread(&SegmentPrefetcher::workerLoop, this);
        {
            std::lock_guard<std::mutex> lock(mu_);
            requested_ = i + 1;
        }
        cv_.notify_all();
    }
    return out;
}

void
SegmentPrefetcher::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        cv_.wait(lock, [&] { return stop_ || requested_ != kNone; });
        if (stop_)
            return;
        const size_t idx = requested_;
        lock.unlock();
        std::shared_ptr<const CompactTrace> segment;
        try {
            segment = trace_.openSegment(idx);
        } catch (...) {
            // Leave the slot empty; the consumer's synchronous
            // fallback rethrows the identical error.
            segment.reset();
        }
        lock.lock();
        ready_ = std::move(segment);
        readyIdx_ = ready_ ? idx : kNone;
        requested_ = kNone;
        cv_.notify_all();
    }
}

SegmentedReplay::SegmentedReplay(
    std::shared_ptr<const SegmentedTrace> trace, uint64_t start_op,
    std::function<void()> on_window_open)
    : trace_(std::move(trace)),
      prefetch_(std::make_unique<SegmentPrefetcher>(*trace_)),
      onWindowOpen_(std::move(on_window_open))
{
    if (start_op >= trace_->totalOps()) {
        // Positioned at (or past) the end: first next() returns false.
        segIdx_ = trace_->segmentCount() - 1;
        pos_ = trace_->totalOps();
        return;
    }
    openSegmentWindow(trace_->segmentContaining(start_op));
    // Skip within the starting segment to the exact op.
    MicroOp scratch;
    for (uint64_t skip = start_op - trace_->record(segIdx_).firstOp;
         skip > 0; --skip) {
        replay_->next(scratch);
    }
    pos_ = start_op;
}

void
SegmentedReplay::openSegmentWindow(size_t idx)
{
    // Drop the exhausted window before adopting the next so at most
    // one consumer window plus one prefetched window are resident.
    replay_.reset();
    segment_.reset();
    segment_ = prefetch_->fetch(idx);
    replay_.emplace(*segment_);
    segIdx_ = idx;
    if (onWindowOpen_)
        onWindowOpen_();
}

} // namespace tpred
