/**
 * @file
 * Windowed reader for segmented trace containers (trace/segmented_io.hh).
 *
 * A SegmentedTrace never maps the whole file: open() maps two small
 * windows (header, index+footer) to validate the envelope, and each
 * openSegment() call maps exactly one segment image, CRC-checks it,
 * and returns a zero-copy CompactTrace whose backing handle IS the
 * window — drop the trace and the window unmaps.  Peak memory for a
 * sequential replay is therefore O(max segment size), independent of
 * trace length: that is what lets a billion-op corpus trace stream
 * through the page cache (see SegmentedReplay and
 * harness/shard_replay.hh).
 */

#ifndef TPRED_CORPUS_SEGMENTED_TRACE_HH
#define TPRED_CORPUS_SEGMENTED_TRACE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "trace/compact_trace.hh"
#include "trace/segmented_io.hh"

namespace tpred
{

/**
 * An opened segmented container: validated envelope + segment index,
 * no segment payload resident.  Immutable after open(); safe to share
 * across threads (each thread maps its own segment windows).
 */
class SegmentedTrace
{
  public:
    /**
     * Opens and validates @p path: header, footer, metadata CRC and
     * the structural consistency of every index record.  Segment
     * *payloads* are not read here — openSegment()/verifyAllSegments()
     * check those.
     * @throws CompactFormatError on any envelope defect,
     *         std::runtime_error on I/O failure.
     */
    static std::shared_ptr<const SegmentedTrace>
    open(const std::string &path);

    const std::string &path() const { return path_; }
    const std::string &name() const { return header_.name; }
    uint64_t totalOps() const { return header_.totalOps; }
    uint64_t totalBranches() const { return totalBranches_; }
    uint32_t version() const { return header_.version; }
    uint64_t fileBytes() const { return fileBytes_; }
    size_t segmentCount() const { return segments_.size(); }

    const SegmentRecord &record(size_t i) const { return segments_[i]; }
    std::span<const SegmentRecord> records() const { return segments_; }

    /** Index of the segment containing global op @p pos. */
    size_t segmentContaining(uint64_t pos) const;

    /**
     * Maps segment @p i's window, verifies its CRC32C against the
     * index record plus the full per-section checks of the plain
     * container reader, and cross-checks the decoded op/branch counts
     * against the index.  The returned trace holds the window mapping;
     * releasing it unmaps the segment.
     * @throws CompactFormatError on corruption.
     */
    std::shared_ptr<const CompactTrace> openSegment(size_t i) const;

    /**
     * Opens (and thereby fully verifies) every segment in turn, one
     * window at a time — bounded memory regardless of trace size.
     * @throws CompactFormatError naming the first defective segment.
     */
    void verifyAllSegments() const;

  private:
    SegmentedTrace() = default;

    std::string path_;
    SegmentedHeaderInfo header_;
    std::vector<SegmentRecord> segments_;
    uint64_t fileBytes_ = 0;
    uint64_t totalBranches_ = 0;
};

/**
 * Process-wide toggle for pipelined segment prefetch (default on;
 * TPRED_PREFETCH=0 in the environment disables it at startup).
 * Prefetch never changes results — segments carry no decode state
 * across boundaries, so mapping+validating+decoding segment k+1 on a
 * background thread yields byte-identical windows to the synchronous
 * path; only the wall-clock overlap differs.  The toggle exists for
 * the differential tests and the sync-vs-prefetch bench lanes.
 */
bool segmentPrefetchEnabled();
void setSegmentPrefetchEnabled(bool enabled);

/**
 * Double-buffered background decoder for sequential segment
 * consumption.  fetch(i) returns segment i — taking it from the
 * background slot when the previous fetch pipelined it — and then
 * schedules segment i+1 on the worker thread, so the map + CRC +
 * per-section validation of the next window overlaps with the
 * consumption of the current one.
 *
 * At most ONE segment is in flight: the consumer holds window i
 * while the worker prepares window i+1, so peak residency stays
 * O(max segment size) and the flat-RSS guarantee of streaming
 * replay holds.
 *
 * Corruption keeps fail-loud semantics: a background decode that
 * fails simply leaves the slot empty, and fetch() falls back to a
 * synchronous openSegment() over the same bytes — which throws the
 * identical CompactFormatError the unpipelined path would.
 *
 * Single consumer; fetch() must not be called concurrently.  The
 * trace must outlive the prefetcher.  When segmentPrefetchEnabled()
 * is false (or the trace has a single segment) no thread is spawned
 * and fetch() degenerates to openSegment().
 */
class SegmentPrefetcher
{
  public:
    explicit SegmentPrefetcher(const SegmentedTrace &trace);
    ~SegmentPrefetcher();

    SegmentPrefetcher(const SegmentPrefetcher &) = delete;
    SegmentPrefetcher &operator=(const SegmentPrefetcher &) = delete;

    /** Maps/validates segment @p i and pipelines segment i+1. */
    std::shared_ptr<const CompactTrace> fetch(size_t i);

  private:
    static constexpr size_t kNone = static_cast<size_t>(-1);

    void workerLoop();

    const SegmentedTrace &trace_;
    const bool enabled_;

    std::thread worker_;
    std::mutex mu_;
    std::condition_variable cv_;
    size_t requested_ = kNone;  ///< index the worker should decode
    size_t readyIdx_ = kNone;   ///< index held in ready_
    std::shared_ptr<const CompactTrace> ready_;
    bool stop_ = false;
};

/**
 * Streaming replay source over a SegmentedTrace: the windowed
 * counterpart of CompactReplay.  next() pulls from the current
 * segment's block decoder; crossing a segment boundary unmaps the old
 * window and maps the next, so exactly one segment is resident.
 * Optionally starts mid-trace (skipping within the starting segment),
 * which is how sharded replay begins its warm-up window at a
 * checkpointed segment boundary.
 */
class SegmentedReplay
{
  public:
    /**
     * @param trace    Shared so the replay keeps the envelope alive.
     * @param start_op Global op index to start at (0 = whole trace).
     * @param on_window_open Invoked once per segment window mapped —
     *        observability hook (runtime-kind metrics), may be empty.
     */
    explicit SegmentedReplay(
        std::shared_ptr<const SegmentedTrace> trace,
        uint64_t start_op = 0,
        std::function<void()> on_window_open = {});

    /** Pulls the next op; false at end of trace. */
    bool
    next(MicroOp &op)
    {
        while (true) {
            if (replay_ && replay_->next(op)) {
                ++pos_;
                return true;
            }
            if (segIdx_ + 1 >= trace_->segmentCount()) {
                replay_.reset();
                segment_.reset();
                return false;
            }
            openSegmentWindow(segIdx_ + 1);
        }
    }

    /** Global index of the next op next() would produce. */
    uint64_t position() const { return pos_; }

  private:
    void openSegmentWindow(size_t idx);

    std::shared_ptr<const SegmentedTrace> trace_;
    /// Pipelines the next window while this one replays (layer 2);
    /// behind a unique_ptr so the replay itself stays movable.
    std::unique_ptr<SegmentPrefetcher> prefetch_;
    std::shared_ptr<const CompactTrace> segment_;
    std::optional<CompactReplay> replay_;
    std::function<void()> onWindowOpen_;
    size_t segIdx_ = 0;
    uint64_t pos_ = 0;
};

} // namespace tpred

#endif // TPRED_CORPUS_SEGMENTED_TRACE_HH
