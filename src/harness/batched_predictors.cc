#include "harness/batched_predictors.hh"

#include <algorithm>
#include <cassert>

#include "common/bits.hh"
#include "common/simd.hh"
#include "common/state_io.hh"
#include "core/cascaded.hh"

namespace tpred
{

size_t
findOrAppendHistorySpec(std::vector<HistorySpec> &specs,
                        const HistorySpec &spec)
{
    for (size_t k = 0; k < specs.size(); ++k) {
        if (specs[k] == spec)
            return k;
    }
    specs.push_back(spec);
    return specs.size() - 1;
}

// --- TaggedBank ------------------------------------------------------

size_t
BatchedPredictors::TaggedBank::addSlot(const TaggedConfig &config)
{
    // The scalar constructor's invariants, enforced on the same
    // geometry here.
    assert(config.ways >= 1);
    assert(config.entries % config.ways == 0);
    assert(isPowerOfTwo(config.sets()));
    assert(config.tagBits >= 1 && config.tagBits <= 32);

    TaggedGeom g;
    g.config = config;
    g.setBits = config.sets() > 1 ? floorLog2(config.sets()) : 0;
    g.base = valid.size();
    valid.resize(g.base + config.entries, 0);
    tag.resize(g.base + config.entries, 0);
    target.resize(g.base + config.entries, 0);
    lastUsed.resize(g.base + config.entries, 0);
    geom.push_back(g);
    useClock.push_back(0);
    conflictEvictions.push_back(0);
    return geom.size() - 1;
}

size_t
BatchedPredictors::TaggedBank::probe(size_t slot, uint64_t pc,
                                     uint64_t history) const
{
    const TaggedGeom &g = geom[slot];
    const auto [set, tg] = taggedIndexOf(g.config, g.setBits, pc, history);
    const size_t base = g.base + set * g.config.ways;
    const size_t w = simd::findTagMatch(valid.data() + base,
                                        tag.data() + base,
                                        g.config.ways, tg);
    return w == simd::kNone ? kMiss : base + w;
}

void
BatchedPredictors::TaggedBank::update(size_t slot, uint64_t pc,
                                      uint64_t history, uint64_t tgt)
{
    const TaggedGeom &g = geom[slot];
    const auto [set, tg] = taggedIndexOf(g.config, g.setBits, pc, history);
    const size_t base = g.base + set * g.config.ways;
    const size_t w = simd::findTagMatch(valid.data() + base,
                                        tag.data() + base,
                                        g.config.ways, tg);
    size_t e;
    if (w != simd::kNone) {
        e = base + w;
    } else {
        // Invalid way first, else true-LRU victim — the scalar
        // update()'s allocation scan, order preserved by findVictim.
        e = base + simd::findVictim(valid.data() + base,
                                    lastUsed.data() + base,
                                    g.config.ways);
        if (valid[e])
            ++conflictEvictions[slot];
        valid[e] = 1;
        tag[e] = tg;
    }
    target[e] = tgt;
    lastUsed[e] = ++useClock[slot];
}

void
BatchedPredictors::TaggedBank::save(size_t slot, StateWriter &w) const
{
    const TaggedGeom &g = geom[slot];
    w.u64(useClock[slot]);
    w.u64(conflictEvictions[slot]);
    for (size_t e = g.base; e < g.base + g.config.entries; ++e) {
        w.b(valid[e] != 0);
        w.u64(tag[e]);
        w.u64(target[e]);
        w.u64(lastUsed[e]);
    }
}

// --- Hot columns -----------------------------------------------------

void
BatchedPredictors::TaglessHot::push(size_t pos, const TaglessMeta &m)
{
    meta.push_back(pos);
    member.push_back(m.member);
    tracker.push_back(m.tracker);
    base.push_back(m.base);
    config.push_back(m.config);
}

void
BatchedPredictors::TaglessHot::erase(size_t pos)
{
    for (size_t j = 0; j < meta.size(); ++j) {
        if (meta[j] == pos) {
            meta.erase(meta.begin() + j);
            member.erase(member.begin() + j);
            tracker.erase(tracker.begin() + j);
            base.erase(base.begin() + j);
            config.erase(config.begin() + j);
            return;
        }
    }
}

void
BatchedPredictors::TaggedHot::push(size_t pos, const TaggedMeta &m)
{
    meta.push_back(pos);
    member.push_back(m.member);
    tracker.push_back(m.tracker);
    slot.push_back(m.slot);
}

void
BatchedPredictors::TaggedHot::erase(size_t pos)
{
    for (size_t j = 0; j < meta.size(); ++j) {
        if (meta[j] == pos) {
            meta.erase(meta.begin() + j);
            member.erase(member.begin() + j);
            tracker.erase(tracker.begin() + j);
            slot.erase(slot.begin() + j);
            return;
        }
    }
}

void
BatchedPredictors::CascadedHot::push(size_t pos, const CascadedMeta &m)
{
    meta.push_back(pos);
    member.push_back(m.member);
    tracker.push_back(m.tracker);
    stage1Bits.push_back(m.stage1Bits);
    stage1Base.push_back(m.stage1Base);
    slot.push_back(m.slot);
}

void
BatchedPredictors::CascadedHot::erase(size_t pos)
{
    for (size_t j = 0; j < meta.size(); ++j) {
        if (meta[j] == pos) {
            meta.erase(meta.begin() + j);
            member.erase(member.begin() + j);
            tracker.erase(tracker.begin() + j);
            stage1Bits.erase(stage1Bits.begin() + j);
            stage1Base.erase(stage1Base.begin() + j);
            slot.erase(slot.begin() + j);
            return;
        }
    }
}

// --- BatchedPredictors -----------------------------------------------

bool
BatchedPredictors::timingBatchable(const IndirectConfig &config)
{
    return config.structure != IndirectStructure::Ittage &&
           config.structure != IndirectStructure::Oracle;
}

BatchedPredictors::BatchedPredictors(
    std::span<const IndirectConfig> configs)
    : members_(configs.size()),
      directory_(configs.size()),
      liveMembers_(configs.size()),
      hist_(configs.size(), 0),
      predicted_(configs.size(), 0),
      taglessIdx_(configs.size(), 0),
      taggedHit_(configs.size(), kMiss),
      cascadedS2Hit_(configs.size(), kMiss),
      indirect_(configs.size())
{
    for (size_t i = 0; i < members_; ++i)
        liveMembers_[i] = i;

    for (size_t i = 0; i < configs.size(); ++i) {
        const IndirectConfig &c = configs[i];
        if (c.structure == IndirectStructure::None) {
            directory_[i] = {Family::None, noneLive_.size()};
            noneLive_.push_back(i);
            continue;
        }

        // One tracker per distinct spec among predictor-carrying
        // members — the same dedup rule the scalar kernel used.
        const size_t t = findOrAppendHistorySpec(specs_, c.history);
        if (t == trackers_.size())
            trackers_.push_back(
                std::make_unique<HistoryTracker>(c.history));

        switch (c.structure) {
          case IndirectStructure::Tagless: {
            // The scalar constructor's invariants.
            assert(c.tagless.entryBits >= 1 &&
                   c.tagless.entryBits <= 24);
            assert(c.tagless.scheme != TaglessIndexScheme::GAs ||
                   c.tagless.historyBits + c.tagless.addrBits ==
                       c.tagless.entryBits);
            TaglessMeta meta;
            meta.config = c.tagless;
            meta.member = i;
            meta.tracker = t;
            meta.base = taglessTargets_.size();
            taglessTargets_.resize(meta.base + c.tagless.entries(), 0);
            taglessWriterPc_.resize(meta.base + c.tagless.entries(), 0);
            directory_[i] = {Family::Tagless, taglessMeta_.size()};
            taglessHot_.push(taglessMeta_.size(), meta);
            taglessMeta_.push_back(meta);
            break;
          }
          case IndirectStructure::Tagged: {
            TaggedMeta meta;
            meta.member = i;
            meta.tracker = t;
            meta.slot = tagged_.addSlot(c.tagged);
            directory_[i] = {Family::Tagged, taggedMeta_.size()};
            taggedHot_.push(taggedMeta_.size(), meta);
            taggedMeta_.push_back(meta);
            break;
          }
          case IndirectStructure::Cascaded: {
            assert(isPowerOfTwo(c.cascaded.stage1Entries));
            CascadedMeta meta;
            meta.member = i;
            meta.tracker = t;
            meta.stage1Bits = floorLog2(c.cascaded.stage1Entries);
            meta.stage1Base = s1Valid_.size();
            meta.stage1Entries = c.cascaded.stage1Entries;
            s1Valid_.resize(meta.stage1Base + meta.stage1Entries, 0);
            s1Tag_.resize(meta.stage1Base + meta.stage1Entries, 0);
            s1Target_.resize(meta.stage1Base + meta.stage1Entries, 0);
            meta.slot = cascadedStage2_.addSlot(c.cascaded.stage2);
            directory_[i] = {Family::Cascaded, cascadedMeta_.size()};
            cascadedHot_.push(cascadedMeta_.size(), meta);
            cascadedMeta_.push_back(meta);
            break;
          }
          case IndirectStructure::Ittage:
          case IndirectStructure::Oracle: {
            ScalarMeta meta;
            meta.member = i;
            meta.tracker = t;
            meta.predictor = buildStack(c).predictor;
            directory_[i] = {Family::Scalar, scalarMeta_.size()};
            scalarLive_.push_back(scalarMeta_.size());
            scalarMeta_.push_back(std::move(meta));
            break;
          }
          case IndirectStructure::None:
            break;  // handled above
        }
    }
    trackerVal_.assign(trackers_.size(), 0);
}

bool
BatchedPredictors::hasPredictor(size_t m) const
{
    return directory_[m].family != Family::None;
}

void
BatchedPredictors::computePredictions(const MicroOp &op, bool btb_hit,
                                      uint64_t btb_target)
{
    pc_ = op.pc;
    probeActive_ = btb_hit;
    const uint64_t fall = op.fallthrough;

    // One history computation per distinct spec — members sharing a
    // spec no longer re-derive it (per-address path history is a hash
    // lookup per call).
    for (size_t t = 0; t < trackers_.size(); ++t)
        trackerVal_[t] = trackers_[t]->valueFor(pc_);

    for (size_t j = 0; j < taglessHot_.size(); ++j) {
        const size_t m = taglessHot_.member[j];
        const uint64_t h = trackerVal_[taglessHot_.tracker[j]];
        hist_[m] = h;
        // The index is cached for update time regardless of the BTB
        // probe: the scalar path captures the history either way.
        const size_t idx =
            taglessHot_.base[j] +
            taglessIndexOf(taglessHot_.config[j], pc_, h);
        taglessIdx_[m] = idx;
        // A tagless cache always produces a prediction on probe.
        predicted_[m] = btb_hit ? taglessTargets_[idx] : fall;
    }

    for (size_t j = 0; j < taggedHot_.size(); ++j) {
        const size_t m = taggedHot_.member[j];
        const uint64_t h = trackerVal_[taggedHot_.tracker[j]];
        hist_[m] = h;
        size_t e = kMiss;
        uint64_t p = fall;
        if (btb_hit) {
            e = tagged_.probe(taggedHot_.slot[j], pc_, h);
            p = e != kMiss ? tagged_.target[e] : btb_target;
        }
        taggedHit_[m] = e;
        predicted_[m] = p;
    }

    for (size_t j = 0; j < cascadedHot_.size(); ++j) {
        const size_t m = cascadedHot_.member[j];
        const uint64_t h = trackerVal_[cascadedHot_.tracker[j]];
        hist_[m] = h;
        size_t e = kMiss;
        uint64_t p = fall;
        if (btb_hit) {
            e = cascadedStage2_.probe(cascadedHot_.slot[j], pc_, h);
            if (e != kMiss) {
                p = cascadedStage2_.target[e];
            } else {
                const size_t s1 =
                    cascadedHot_.stage1Base[j] +
                    cascadedStage1IndexOf(cascadedHot_.stage1Bits[j],
                                          pc_);
                p = (s1Valid_[s1] && s1Tag_[s1] == (pc_ >> 2))
                        ? s1Target_[s1]
                        : btb_target;
            }
        }
        cascadedS2Hit_[m] = e;
        predicted_[m] = p;
    }

    for (size_t k : scalarLive_) {
        ScalarMeta &g = scalarMeta_[k];
        const uint64_t h = trackerVal_[g.tracker];
        hist_[g.member] = h;
        uint64_t p = fall;
        if (btb_hit) {
            // Stateful probe — the reason these members are excluded
            // from timing fusion (timingBatchable()).
            g.predictor->prime(op);
            p = g.predictor->predict(pc_, h).value_or(btb_target);
        }
        predicted_[g.member] = p;
    }

    for (size_t m : noneLive_)
        predicted_[m] = btb_hit ? btb_target : fall;
}

void
BatchedPredictors::commitPredictions()
{
    if (!probeActive_)
        return;  // BTB miss: the scalar path never probed

    for (size_t j = 0; j < taglessHot_.size(); ++j) {
        TaglessMeta &g = taglessMeta_[taglessHot_.meta[j]];
        const size_t idx = taglessIdx_[taglessHot_.member[j]];
        ++g.probes;
        if (taglessWriterPc_[idx] != 0 && taglessWriterPc_[idx] != pc_)
            ++g.crossBranchProbes;
    }

    for (size_t j = 0; j < taggedHot_.size(); ++j) {
        const size_t e = taggedHit_[taggedHot_.member[j]];
        if (e != kMiss)
            tagged_.touch(taggedHot_.slot[j], e);
    }

    for (size_t j = 0; j < cascadedHot_.size(); ++j) {
        CascadedMeta &g = cascadedMeta_[cascadedHot_.meta[j]];
        ++g.probes;
        const size_t e = cascadedS2Hit_[cascadedHot_.member[j]];
        if (e != kMiss) {
            ++g.stage2Hits;
            cascadedStage2_.touch(cascadedHot_.slot[j], e);
        }
    }

    // Scalar members committed inside computePredictions(); BTB-only
    // members have no state.
}

void
BatchedPredictors::recordOutcomes(uint64_t next_pc)
{
    for (size_t m : liveMembers_)
        indirect_[m].record(predicted_[m] == next_pc);
}

void
BatchedPredictors::updateAll(uint64_t next_pc)
{
    for (size_t j = 0; j < taglessHot_.size(); ++j) {
        const size_t idx = taglessIdx_[taglessHot_.member[j]];
        taglessTargets_[idx] = next_pc;
        taglessWriterPc_[idx] = pc_;
    }

    for (size_t j = 0; j < taggedHot_.size(); ++j) {
        tagged_.update(taggedHot_.slot[j], pc_,
                       hist_[taggedHot_.member[j]], next_pc);
    }

    for (size_t j = 0; j < cascadedHot_.size(); ++j) {
        const size_t m = cascadedHot_.member[j];
        const size_t slot = cascadedHot_.slot[j];
        const size_t s1 =
            cascadedHot_.stage1Base[j] +
            cascadedStage1IndexOf(cascadedHot_.stage1Bits[j], pc_);
        const bool s1_hit = s1Valid_[s1] && s1Tag_[s1] == (pc_ >> 2);
        const bool s1_correct = s1_hit && s1Target_[s1] == next_pc;
        // The scalar update()'s presence probe goes through
        // stage2.predict(), which refreshes LRU on a hit — replicated
        // exactly, clock bump and all.
        const size_t e = cascadedStage2_.probe(slot, pc_, hist_[m]);
        if (e != kMiss)
            cascadedStage2_.touch(slot, e);
        if (e != kMiss || !s1_correct)
            cascadedStage2_.update(slot, pc_, hist_[m], next_pc);
        s1Valid_[s1] = 1;
        s1Tag_[s1] = pc_ >> 2;
        s1Target_[s1] = next_pc;
    }

    for (size_t k : scalarLive_) {
        ScalarMeta &g = scalarMeta_[k];
        g.predictor->update(pc_, hist_[g.member], next_pc);
    }
}

void
BatchedPredictors::observeTrackers(const MicroOp &op)
{
    for (auto &tracker : trackers_)
        tracker->observe(op);
}

void
BatchedPredictors::retire(size_t m)
{
    std::erase(liveMembers_, m);
    const DirEntry &d = directory_[m];
    switch (d.family) {
      case Family::None:
        std::erase(noneLive_, m);
        break;
      case Family::Tagless:
        taglessHot_.erase(d.pos);
        break;
      case Family::Tagged:
        taggedHot_.erase(d.pos);
        break;
      case Family::Cascaded:
        cascadedHot_.erase(d.pos);
        break;
      case Family::Scalar:
        std::erase(scalarLive_, d.pos);
        break;
    }
}

void
BatchedPredictors::savePredictorState(size_t m, StateWriter &w) const
{
    const DirEntry &d = directory_[m];
    switch (d.family) {
      case Family::Tagless: {
        const TaglessMeta &g = taglessMeta_[d.pos];
        const size_t n = g.config.entries();
        for (size_t e = g.base; e < g.base + n; ++e)
            w.u64(taglessTargets_[e]);
        for (size_t e = g.base; e < g.base + n; ++e)
            w.u64(taglessWriterPc_[e]);
        w.u64(g.probes);
        w.u64(g.crossBranchProbes);
        break;
      }
      case Family::Tagged:
        tagged_.save(taggedMeta_[d.pos].slot, w);
        break;
      case Family::Cascaded: {
        const CascadedMeta &g = cascadedMeta_[d.pos];
        for (size_t e = g.stage1Base;
             e < g.stage1Base + g.stage1Entries; ++e) {
            w.b(s1Valid_[e] != 0);
            w.u64(s1Tag_[e]);
            w.u64(s1Target_[e]);
        }
        cascadedStage2_.save(g.slot, w);
        w.u64(g.stage2Hits);
        w.u64(g.probes);
        break;
      }
      case Family::Scalar:
        scalarMeta_[d.pos].predictor->saveState(w);
        break;
      case Family::None:
        assert(false && "BTB-only member has no predictor state");
        break;
    }
}

void
BatchedPredictors::saveTrackerState(size_t m, StateWriter &w) const
{
    const DirEntry &d = directory_[m];
    assert(d.family != Family::None);
    size_t tracker = 0;
    switch (d.family) {
      case Family::Tagless:
        tracker = taglessMeta_[d.pos].tracker;
        break;
      case Family::Tagged:
        tracker = taggedMeta_[d.pos].tracker;
        break;
      case Family::Cascaded:
        tracker = cascadedMeta_[d.pos].tracker;
        break;
      case Family::Scalar:
        tracker = scalarMeta_[d.pos].tracker;
        break;
      case Family::None:
        return;
    }
    trackers_[tracker]->saveState(w);
}

} // namespace tpred
