/**
 * @file
 * SoA-batched indirect-predictor state for the fused sweep kernels.
 *
 * PR 5's runSweep() shares one architectural front end per batch but
 * still routes every member's predict()/update() through a virtual
 * call on a unique_ptr<IndirectPredictor> — one dispatch per member
 * per indirect branch, each landing in a separately heap-allocated
 * table.  BatchedPredictors restructures that state as
 * structure-of-arrays, grouped by predictor family:
 *
 *  - **tagless** members share one contiguous target column and one
 *    last-writer column, `[member][entry]`, with per-member probe
 *    counters alongside;
 *  - **tagged** members share one bank of parallel
 *    valid/tag/target/lastUsed columns, `[member][set][way]`;
 *  - **cascaded** members share stage-1 valid/tag/target columns plus
 *    a second tagged bank for their stage-2 caches;
 *  - **ITTAGE and oracle** members stay scalar behind the same
 *    interface (their predict() is inherently stateful — see
 *    timingBatchable());
 *  - **BTB-only** members carry no table at all.
 *
 * Lookups and updates then run as tight, devirtualized loops over the
 * family groups, sharing one history computation per distinct
 * HistorySpec per branch.  The per-branch loops walk dense *hot
 * columns* — parallel arrays holding exactly the fields the loop
 * reads (member, tracker, table base, geometry), compacted on
 * retire() — rather than chasing live-index -> meta-struct
 * indirection, and the tagged banks' way scans (tag compare, LRU
 * victim) go through the portable SIMD kernels in common/simd.hh
 * (vectorized under TPRED_NATIVE/AVX2, scalar otherwise, both
 * order-exact).  The index math is the *same code* the
 * scalar predictors run — taglessIndexOf / taggedIndexOf /
 * cascadedStage1IndexOf are free functions over the geometry — so the
 * two paths cannot drift apart, and savePredictorState() emits the
 * exact byte format of the scalar predictor's saveState(), which is
 * what lets the copy-on-divergence timing fusion transplant a batch
 * member into a fresh per-config rig (harness/sweep_kernel.cc).
 *
 * The per-branch protocol is split into a pure probe phase and a
 * side-effect phase:
 *
 *   computePredictions()  — reads tables, caches (history, index,
 *                           prediction) per member; mutates nothing
 *                           for the batched families;
 *   commitPredictions()   — applies the probe-time side effects the
 *                           scalar predictors perform inside
 *                           predict(): tagless probe/interference
 *                           counters, tagged LRU refresh, cascaded
 *                           probe counters + stage-2 LRU refresh;
 *   updateAll()           — resolution-time training with the cached
 *                           fetch-time histories.
 *
 * The split exists for the timing fusion: a member that diverges at a
 * branch must be serialized with its *pre-branch* state, after
 * computePredictions() but before commitPredictions().  The accuracy
 * kernel simply calls both back to back (predictAll()).
 *
 * Scalar members (ITTAGE, oracle) cannot be probed without side
 * effects, so computePredictions() runs their virtual predict() in
 * place — harmless for accuracy sweeps, disqualifying for timing
 * fusion, which is exactly what timingBatchable() encodes.
 */

#ifndef TPRED_HARNESS_BATCHED_PREDICTORS_HH
#define TPRED_HARNESS_BATCHED_PREDICTORS_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "harness/experiment.hh"

namespace tpred
{

/**
 * Appends @p spec to @p specs unless an equal spec is already present.
 * @return The index of the (found or appended) spec.
 *
 * The one HistorySpec dedup scan shared by groupByHistory() and the
 * batch constructor — previously two hand-rolled O(n^2) loops that had
 * to be kept in sync.
 */
size_t findOrAppendHistorySpec(std::vector<HistorySpec> &specs,
                               const HistorySpec &spec);

/**
 * One batch of indirect predictors in SoA layout.
 *
 * Member indices are batch positions (the order of the configs span
 * given to the constructor).  Histories are deduplicated: one
 * HistoryTracker per distinct HistorySpec among the predictor-carrying
 * members, advanced once per branch.
 */
class BatchedPredictors
{
  public:
    explicit BatchedPredictors(std::span<const IndirectConfig> configs);

    /** Number of members in the batch (live or retired). */
    size_t size() const { return members_; }

    /** Number of deduplicated history trackers. */
    size_t trackerCount() const { return trackers_.size(); }

    /**
     * Whether a config can join a *fused timing* batch.  ITTAGE and
     * the oracle cannot: their predict()/prime() mutate state, so the
     * pure probe the divergence check needs does not exist, and a
     * forked member could not be serialized with pre-branch state.
     * They take the per-config scalar path instead (the batching rule
     * documented in docs/sweep_kernel.md).  Accuracy sweeps batch
     * every structure.
     */
    static bool timingBatchable(const IndirectConfig &config);

    /** True when member @p m carries an indirect predictor. */
    bool hasPredictor(size_t m) const;

    /** Members not yet retired, ascending batch order. */
    std::span<const size_t> live() const { return liveMembers_; }

    // --- Per-indirect-branch protocol --------------------------------

    /**
     * Probe phase: computes every live member's fetch-time history and
     * predicted target for indirect branch @p op.  @p btb_hit /
     * @p btb_target describe the shared front end's BTB probe; as in
     * the per-config path, predictors are consulted (and their probe
     * side effects later committed) only on a BTB hit, but histories
     * are captured regardless because they index the update.
     *
     * Mutates nothing for tagless/tagged/cascaded/BTB-only members.
     * Scalar members (ITTAGE, oracle) run their stateful predict()
     * here — see timingBatchable().
     */
    void computePredictions(const MicroOp &op, bool btb_hit,
                            uint64_t btb_target);

    /** Member @p m's predicted target from computePredictions(). */
    uint64_t prediction(size_t m) const { return predicted_[m]; }

    /**
     * Side-effect phase: applies the probe-time state changes the
     * scalar predict() would have made (LRU refreshes, probe
     * counters) for every live member.  No-op when the BTB missed —
     * the scalar path never consulted the predictor.
     */
    void commitPredictions();

    /** Records predicted-vs-resolved for every live member. */
    void recordOutcomes(uint64_t next_pc);

    /**
     * Training phase: update(pc, history, target) for every live
     * member, with the fetch-time histories cached by
     * computePredictions().
     */
    void updateAll(uint64_t next_pc);

    /** Accuracy one-shot: compute + commit in one call. */
    void
    predictAll(const MicroOp &op, bool btb_hit, uint64_t btb_target)
    {
        computePredictions(op, btb_hit, btb_target);
        commitPredictions();
    }

    /** Advances every deduplicated tracker; call once per branch. */
    void observeTrackers(const MicroOp &op);

    /** Member @p m's accumulated indirect-branch outcomes. */
    const RatioStat &indirectStats(size_t m) const
    {
        return indirect_[m];
    }

    // --- Copy-on-divergence support ----------------------------------

    /**
     * Removes member @p m from every live list: subsequent
     * commit/record/update passes skip it.  Called after a diverged
     * timing member has been serialized and forked onto its own core.
     */
    void retire(size_t m);

    /**
     * Serializes member @p m's predictor in the exact byte format of
     * the scalar predictor's saveState(), so the bytes restore into a
     * freshly built per-config stack.  Precondition: hasPredictor(m).
     */
    void savePredictorState(size_t m, StateWriter &w) const;

    /**
     * Serializes member @p m's (shared) history tracker.
     * Precondition: hasPredictor(m).
     */
    void saveTrackerState(size_t m, StateWriter &w) const;

  private:
    static constexpr size_t kMiss = SIZE_MAX;

    enum class Family : uint8_t
    {
        None,
        Tagless,
        Tagged,
        Cascaded,
        Scalar,
    };

    /** member index -> (family, position in that family's meta list) */
    struct DirEntry
    {
        Family family = Family::None;
        size_t pos = 0;
    };

    struct TaglessMeta
    {
        TaglessConfig config{};
        size_t member = 0;
        size_t tracker = 0;
        size_t base = 0;  ///< first entry in the shared columns
        uint64_t probes = 0;
        uint64_t crossBranchProbes = 0;
    };

    /** One member's geometry within a TaggedBank. */
    struct TaggedGeom
    {
        TaggedConfig config{};
        unsigned setBits = 0;
        size_t base = 0;  ///< first entry in the bank columns
    };

    /**
     * A bank of tagged target caches in SoA layout — parallel
     * valid/tag/target/lastUsed columns over all slots, per-slot LRU
     * clocks.  Used for the tagged family and again for the cascaded
     * members' stage-2 caches.
     */
    struct TaggedBank
    {
        std::vector<TaggedGeom> geom;
        std::vector<uint64_t> useClock;
        std::vector<uint64_t> conflictEvictions;
        std::vector<uint8_t> valid;
        std::vector<uint64_t> tag;
        std::vector<uint64_t> target;
        std::vector<uint64_t> lastUsed;

        size_t addSlot(const TaggedConfig &config);
        /** Entry index of a tag hit, or kMiss; no side effects. */
        size_t probe(size_t slot, uint64_t pc, uint64_t history) const;
        /** The scalar predict()'s hit-time LRU refresh. */
        void touch(size_t slot, size_t entry)
        {
            lastUsed[entry] = ++useClock[slot];
        }
        void update(size_t slot, uint64_t pc, uint64_t history,
                    uint64_t tgt);
        /** Byte-exact TaggedTargetCache::saveState() format. */
        void save(size_t slot, StateWriter &w) const;
    };

    struct TaggedMeta
    {
        size_t member = 0;
        size_t tracker = 0;
        size_t slot = 0;
    };

    struct CascadedMeta
    {
        size_t member = 0;
        size_t tracker = 0;
        unsigned stage1Bits = 0;
        size_t stage1Base = 0;
        size_t stage1Entries = 0;
        size_t slot = 0;  ///< stage-2 slot in cascadedStage2_
        uint64_t stage2Hits = 0;
        uint64_t probes = 0;
    };

    struct ScalarMeta
    {
        size_t member = 0;
        size_t tracker = 0;
        std::unique_ptr<IndirectPredictor> predictor;
    };

    // Dense per-family hot columns: the fields the per-branch loops
    // touch, as parallel arrays walked by plain index — stride-1
    // loads instead of live-list -> meta-struct pointer chasing.
    // `meta` back-references the stable meta arrays (probe counters,
    // saveState); erase() compacts a retired member's row out so the
    // walk stays dense.

    struct TaglessHot
    {
        std::vector<size_t> meta;   ///< -> taglessMeta_ (stable)
        std::vector<size_t> member;
        std::vector<size_t> tracker;
        std::vector<size_t> base;
        std::vector<TaglessConfig> config;

        size_t size() const { return meta.size(); }
        void push(size_t pos, const TaglessMeta &m);
        void erase(size_t pos);
    };

    struct TaggedHot
    {
        std::vector<size_t> meta;   ///< -> taggedMeta_ (stable)
        std::vector<size_t> member;
        std::vector<size_t> tracker;
        std::vector<size_t> slot;

        size_t size() const { return meta.size(); }
        void push(size_t pos, const TaggedMeta &m);
        void erase(size_t pos);
    };

    struct CascadedHot
    {
        std::vector<size_t> meta;   ///< -> cascadedMeta_ (stable)
        std::vector<size_t> member;
        std::vector<size_t> tracker;
        std::vector<unsigned> stage1Bits;
        std::vector<size_t> stage1Base;
        std::vector<size_t> slot;

        size_t size() const { return meta.size(); }
        void push(size_t pos, const CascadedMeta &m);
        void erase(size_t pos);
    };

    size_t members_ = 0;
    std::vector<DirEntry> directory_;

    // Deduplicated histories.
    std::vector<HistorySpec> specs_;
    std::vector<std::unique_ptr<HistoryTracker>> trackers_;
    std::vector<uint64_t> trackerVal_;  ///< per-branch scratch

    // Family groups: stable meta arrays + dense hot columns the
    // per-branch loops walk (built once, compacted only by retire()).
    std::vector<TaglessMeta> taglessMeta_;
    TaglessHot taglessHot_;
    std::vector<uint64_t> taglessTargets_;
    std::vector<uint64_t> taglessWriterPc_;

    TaggedBank tagged_;
    std::vector<TaggedMeta> taggedMeta_;
    TaggedHot taggedHot_;

    std::vector<CascadedMeta> cascadedMeta_;
    CascadedHot cascadedHot_;
    std::vector<uint8_t> s1Valid_;
    std::vector<uint64_t> s1Tag_;
    std::vector<uint64_t> s1Target_;
    TaggedBank cascadedStage2_;

    std::vector<ScalarMeta> scalarMeta_;
    std::vector<size_t> scalarLive_;

    std::vector<size_t> noneLive_;  ///< BTB-only member indices

    std::vector<size_t> liveMembers_;  ///< all live, ascending

    // Per-branch scratch, indexed by member.
    std::vector<uint64_t> hist_;
    std::vector<uint64_t> predicted_;
    std::vector<uint64_t> taglessIdx_;
    std::vector<size_t> taggedHit_;
    std::vector<size_t> cascadedS2Hit_;
    uint64_t pc_ = 0;
    bool probeActive_ = false;  ///< BTB hit: predict side effects due

    std::vector<RatioStat> indirect_;
};

} // namespace tpred

#endif // TPRED_HARNESS_BATCHED_PREDICTORS_HH
