#include "harness/experiment.hh"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "core/oracle.hh"
#include "obs/metrics.hh"
#include "workloads/workload.hh"

namespace tpred
{

namespace
{

/**
 * Virtual-TraceSource compatibility shim over the columnar storage:
 * keeps a shared reference to the trace and pulls ops through a
 * CompactReplay block decoder.
 */
class ReplaySource : public TraceSource
{
  public:
    ReplaySource(std::shared_ptr<const CompactTrace> trace,
                 std::string name)
        : trace_(std::move(trace)), replay_(*trace_),
          name_(std::move(name))
    {
    }

    bool next(MicroOp &op) override { return replay_.next(op); }

    std::string name() const override { return name_; }

  private:
    std::shared_ptr<const CompactTrace> trace_;
    CompactReplay replay_;
    std::string name_;
};

} // namespace

std::string
IndirectConfig::describe() const
{
    switch (structure) {
      case IndirectStructure::None:
        return "btb-only";
      case IndirectStructure::Tagless:
        return TaglessTargetCache(tagless).describe() + "+" +
               history.describe();
      case IndirectStructure::Tagged:
        return TaggedTargetCache(tagged).describe() + "+" +
               history.describe();
      case IndirectStructure::Cascaded:
        return CascadedPredictor(cascaded).describe() + "+" +
               history.describe();
      case IndirectStructure::Ittage:
        return IttagePredictor(ittage).describe();
      case IndirectStructure::Oracle:
        return "oracle";
    }
    return "?";
}

PredictorStack
buildStack(const IndirectConfig &config)
{
    PredictorStack stack;
    switch (config.structure) {
      case IndirectStructure::None:
        return stack;
      case IndirectStructure::Tagless:
        stack.predictor =
            std::make_unique<TaglessTargetCache>(config.tagless);
        break;
      case IndirectStructure::Tagged:
        stack.predictor =
            std::make_unique<TaggedTargetCache>(config.tagged);
        break;
      case IndirectStructure::Cascaded:
        stack.predictor =
            std::make_unique<CascadedPredictor>(config.cascaded);
        break;
      case IndirectStructure::Ittage:
        stack.predictor =
            std::make_unique<IttagePredictor>(config.ittage);
        break;
      case IndirectStructure::Oracle:
        stack.predictor = std::make_unique<OraclePredictor>();
        break;
    }
    stack.tracker = std::make_unique<HistoryTracker>(config.history);
    return stack;
}

SharedTrace::SharedTrace()
    : trace_(std::make_shared<const CompactTrace>())
{
}

SharedTrace::SharedTrace(TraceSource &source, size_t max_ops)
    : trace_(std::make_shared<const CompactTrace>(
          CompactTrace::encode(drainTrace(source, max_ops)))),
      name_(source.name())
{
}

SharedTrace::SharedTrace(std::vector<MicroOp> ops, std::string name)
    : trace_(std::make_shared<const CompactTrace>(
          CompactTrace::encode(ops))),
      name_(std::move(name))
{
}

SharedTrace::SharedTrace(std::shared_ptr<const CompactTrace> trace,
                         std::string name)
    : trace_(std::move(trace)), name_(std::move(name))
{
}

std::unique_ptr<TraceSource>
SharedTrace::open() const
{
    return std::make_unique<ReplaySource>(trace_, name_);
}

SharedTrace
recordWorkload(const std::string &name, size_t max_ops, uint64_t seed)
{
    static const obs::Counter recorded =
        obs::globalMetrics().counter("experiment.traces_recorded");
    static const obs::Timer phase =
        obs::globalMetrics().timer("phase.record");
    obs::ScopedTimer timed(phase);
    recorded.inc();
    auto workload = makeWorkload(name, seed);
    return SharedTrace(*workload, max_ops);
}

FrontendStats
runAccuracy(const SharedTrace &trace, const IndirectConfig &config,
            const FrontendConfig &fe)
{
    static const obs::Counter runs =
        obs::globalMetrics().counter("experiment.accuracy_runs");
    static const obs::Counter replayed = obs::globalMetrics().counter(
        "experiment.instructions_replayed");
    static const obs::Timer phase =
        obs::globalMetrics().timer("phase.accuracy");
    obs::ScopedTimer timed(phase);
    runs.inc();
    replayed.inc(trace.size());
    PredictorStack stack = buildStack(config);
    FrontendPredictor frontend(fe, stack.predictor.get(),
                               stack.tracker.get());
    // Branch-index fast path: only control transfers touch predictor
    // state, and a skipped op contributes exactly one instruction to
    // the stats, so the gaps are accounted for arithmetically.
    size_t consumed = 0;
    trace.compact().forEachBranch([&](const MicroOp &op, size_t pos) {
        frontend.skipNonBranches(pos - consumed);
        frontend.onInstruction(op);
        consumed = pos + 1;
    });
    frontend.skipNonBranches(trace.size() - consumed);
    creditBtbCounters(frontend.btb().hstats());
    return frontend.stats();
}

CoreResult
runTiming(const SharedTrace &trace, const IndirectConfig &config,
          const CoreParams &params, const FrontendConfig &fe)
{
    static const obs::Counter runs =
        obs::globalMetrics().counter("experiment.timing_runs");
    static const obs::Counter replayed = obs::globalMetrics().counter(
        "experiment.instructions_replayed");
    static const obs::Timer phase =
        obs::globalMetrics().timer("phase.timing");
    obs::ScopedTimer timed(phase);
    runs.inc();
    replayed.inc(trace.size());
    PredictorStack stack = buildStack(config);
    FrontendPredictor frontend(fe, stack.predictor.get(),
                               stack.tracker.get());
    CoreModel core(params);
    CompactReplay source = trace.replay();
    const CoreResult result = core.run(source, frontend, trace.size());
    creditBtbCounters(frontend.btb().hstats());
    return result;
}

size_t
parseOps(std::string_view text, const char *what)
{
    if (text.empty())
        throw std::invalid_argument(
            std::string(what) + ": empty instruction count");
    size_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            throw std::invalid_argument(
                std::string(what) + ": malformed instruction count '" +
                std::string(text) + "' (expect a positive integer)");
        const size_t digit = static_cast<size_t>(c - '0');
        if (value > (SIZE_MAX - digit) / 10)
            throw std::out_of_range(
                std::string(what) + ": instruction count '" +
                std::string(text) + "' overflows size_t");
        value = value * 10 + digit;
    }
    if (value == 0)
        throw std::invalid_argument(
            std::string(what) + ": instruction count must be positive");
    return value;
}

size_t
resolveOps(int argc, char **argv, size_t fallback)
{
    try {
        if (argc > 1)
            return parseOps(argv[1], "argv[1]");
        if (const char *env = std::getenv("TPRED_OPS"))
            return parseOps(env, "TPRED_OPS");
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(2);
    }
    return fallback;
}

} // namespace tpred
