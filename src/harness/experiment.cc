#include "harness/experiment.hh"

#include <cstdlib>

#include "core/oracle.hh"
#include "workloads/workload.hh"

namespace tpred
{

namespace
{

/** Replays a SharedTrace's op vector without copying it. */
class ReplaySource : public TraceSource
{
  public:
    ReplaySource(std::shared_ptr<const std::vector<MicroOp>> ops,
                 std::string name)
        : ops_(std::move(ops)), name_(std::move(name))
    {
    }

    bool
    next(MicroOp &op) override
    {
        if (pos_ >= ops_->size())
            return false;
        op = (*ops_)[pos_++];
        return true;
    }

    std::string name() const override { return name_; }

  private:
    std::shared_ptr<const std::vector<MicroOp>> ops_;
    std::string name_;
    size_t pos_ = 0;
};

} // namespace

std::string
IndirectConfig::describe() const
{
    switch (structure) {
      case IndirectStructure::None:
        return "btb-only";
      case IndirectStructure::Tagless:
        return TaglessTargetCache(tagless).describe() + "+" +
               history.describe();
      case IndirectStructure::Tagged:
        return TaggedTargetCache(tagged).describe() + "+" +
               history.describe();
      case IndirectStructure::Cascaded:
        return CascadedPredictor(cascaded).describe() + "+" +
               history.describe();
      case IndirectStructure::Ittage:
        return IttagePredictor(ittage).describe();
      case IndirectStructure::Oracle:
        return "oracle";
    }
    return "?";
}

PredictorStack
buildStack(const IndirectConfig &config)
{
    PredictorStack stack;
    switch (config.structure) {
      case IndirectStructure::None:
        return stack;
      case IndirectStructure::Tagless:
        stack.predictor =
            std::make_unique<TaglessTargetCache>(config.tagless);
        break;
      case IndirectStructure::Tagged:
        stack.predictor =
            std::make_unique<TaggedTargetCache>(config.tagged);
        break;
      case IndirectStructure::Cascaded:
        stack.predictor =
            std::make_unique<CascadedPredictor>(config.cascaded);
        break;
      case IndirectStructure::Ittage:
        stack.predictor =
            std::make_unique<IttagePredictor>(config.ittage);
        break;
      case IndirectStructure::Oracle:
        stack.predictor = std::make_unique<OraclePredictor>();
        break;
    }
    stack.tracker = std::make_unique<HistoryTracker>(config.history);
    return stack;
}

SharedTrace::SharedTrace()
    : ops_(std::make_shared<const std::vector<MicroOp>>())
{
}

SharedTrace::SharedTrace(TraceSource &source, size_t max_ops)
    : name_(source.name())
{
    auto ops = std::make_shared<std::vector<MicroOp>>();
    *ops = drainTrace(source, max_ops);
    ops_ = std::move(ops);
}

std::unique_ptr<TraceSource>
SharedTrace::open() const
{
    return std::make_unique<ReplaySource>(ops_, name_);
}

SharedTrace
recordWorkload(const std::string &name, size_t max_ops, uint64_t seed)
{
    auto workload = makeWorkload(name, seed);
    return SharedTrace(*workload, max_ops);
}

FrontendStats
runAccuracy(const SharedTrace &trace, const IndirectConfig &config,
            const FrontendConfig &fe)
{
    PredictorStack stack = buildStack(config);
    FrontendPredictor frontend(fe, stack.predictor.get(),
                               stack.tracker.get());
    auto source = trace.open();
    MicroOp op;
    while (source->next(op))
        frontend.onInstruction(op);
    return frontend.stats();
}

CoreResult
runTiming(const SharedTrace &trace, const IndirectConfig &config,
          const CoreParams &params, const FrontendConfig &fe)
{
    PredictorStack stack = buildStack(config);
    FrontendPredictor frontend(fe, stack.predictor.get(),
                               stack.tracker.get());
    CoreModel core(params);
    auto source = trace.open();
    return core.run(*source, frontend, trace.size());
}

size_t
resolveOps(int argc, char **argv, size_t fallback)
{
    if (argc > 1) {
        const long long v = std::atoll(argv[1]);
        if (v > 0)
            return static_cast<size_t>(v);
    }
    if (const char *env = std::getenv("TPRED_OPS")) {
        const long long v = std::atoll(env);
        if (v > 0)
            return static_cast<size_t>(v);
    }
    return fallback;
}

} // namespace tpred
