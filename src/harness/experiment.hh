/**
 * @file
 * Experiment harness: builds predictor stacks from declarative
 * configurations, replays shared traces through them, and reports
 * the paper's two metrics — indirect misprediction rate and reduction
 * in execution time relative to the BTB-only baseline.
 */

#ifndef TPRED_HARNESS_EXPERIMENT_HH
#define TPRED_HARNESS_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "bpred/history.hh"
#include "core/cascaded.hh"
#include "core/ittage.hh"
#include "core/frontend_predictor.hh"
#include "core/tagged_target_cache.hh"
#include "core/tagless_target_cache.hh"
#include "trace/trace_source.hh"
#include "uarch/core_model.hh"

namespace tpred
{

/** Which indirect-predictor structure an experiment runs. */
enum class IndirectStructure : uint8_t
{
    None,     ///< BTB-only baseline (paper Table 1)
    Tagless,  ///< section 3.2 / Figure 10
    Tagged,   ///< section 3.2 / Figure 11
    Cascaded, ///< extension (DESIGN.md section 6)
    Ittage,   ///< modern descendant (DESIGN.md section 6)
    Oracle,   ///< perfect target prediction (upper bound)
};

/** Full declarative description of an indirect-predictor setup. */
struct IndirectConfig
{
    IndirectStructure structure = IndirectStructure::None;
    TaglessConfig tagless{};
    TaggedConfig tagged{};
    CascadedConfig cascaded{};
    IttageConfig ittage{};
    HistorySpec history{};

    std::string describe() const;
};

/** A constructed predictor + its history source. */
struct PredictorStack
{
    std::unique_ptr<IndirectPredictor> predictor;  ///< null for None
    std::unique_ptr<HistoryTracker> tracker;       ///< null for None
};

/** Instantiates the structures an IndirectConfig describes. */
PredictorStack buildStack(const IndirectConfig &config);

/**
 * Immutable, shareable recorded trace.  Generate a workload once, then
 * open any number of cheap replay sources over it.
 */
class SharedTrace
{
  public:
    /** Empty trace (zero ops); assign over it to fill a result slot. */
    SharedTrace();

    /** Records @p max_ops instructions of @p source. */
    SharedTrace(TraceSource &source, size_t max_ops);

    /** Opens a replay source positioned at the beginning. */
    std::unique_ptr<TraceSource> open() const;

    const std::string &name() const { return name_; }
    size_t size() const { return ops_->size(); }
    const std::vector<MicroOp> &ops() const { return *ops_; }

  private:
    std::shared_ptr<const std::vector<MicroOp>> ops_;
    std::string name_;
};

/** Records a named workload into a SharedTrace. */
SharedTrace recordWorkload(const std::string &name, size_t max_ops,
                           uint64_t seed = 1);

/**
 * Accuracy experiment: replays the trace through a front end built
 * from @p config and returns the per-class prediction statistics.
 */
FrontendStats runAccuracy(const SharedTrace &trace,
                          const IndirectConfig &config,
                          const FrontendConfig &fe = {});

/**
 * Timing experiment: replays the trace through the out-of-order core
 * and returns cycles, IPC and accuracy statistics.
 */
CoreResult runTiming(const SharedTrace &trace,
                     const IndirectConfig &config,
                     const CoreParams &params = {},
                     const FrontendConfig &fe = {});

/**
 * Default run lengths; bench binaries accept an instruction-count
 * argv override and the TPRED_OPS environment variable.
 */
constexpr size_t kDefaultAccuracyOps = 2'000'000;
constexpr size_t kDefaultTimingOps = 1'000'000;

/** Resolves the run length: argv[1] if given, else $TPRED_OPS, else
 *  @p fallback. */
size_t resolveOps(int argc, char **argv, size_t fallback);

} // namespace tpred

#endif // TPRED_HARNESS_EXPERIMENT_HH
