/**
 * @file
 * Experiment harness: builds predictor stacks from declarative
 * configurations, replays shared traces through them, and reports
 * the paper's two metrics — indirect misprediction rate and reduction
 * in execution time relative to the BTB-only baseline.
 */

#ifndef TPRED_HARNESS_EXPERIMENT_HH
#define TPRED_HARNESS_EXPERIMENT_HH

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bpred/history.hh"
#include "core/cascaded.hh"
#include "core/ittage.hh"
#include "core/frontend_predictor.hh"
#include "core/tagged_target_cache.hh"
#include "core/tagless_target_cache.hh"
#include "trace/compact_trace.hh"
#include "trace/trace_source.hh"
#include "uarch/core_model.hh"

namespace tpred
{

/** Which indirect-predictor structure an experiment runs. */
enum class IndirectStructure : uint8_t
{
    None,     ///< BTB-only baseline (paper Table 1)
    Tagless,  ///< section 3.2 / Figure 10
    Tagged,   ///< section 3.2 / Figure 11
    Cascaded, ///< extension (DESIGN.md section 6)
    Ittage,   ///< modern descendant (DESIGN.md section 6)
    Oracle,   ///< perfect target prediction (upper bound)
};

/** Full declarative description of an indirect-predictor setup. */
struct IndirectConfig
{
    IndirectStructure structure = IndirectStructure::None;
    TaglessConfig tagless{};
    TaggedConfig tagged{};
    CascadedConfig cascaded{};
    IttageConfig ittage{};
    HistorySpec history{};

    std::string describe() const;
};

/** A constructed predictor + its history source. */
struct PredictorStack
{
    std::unique_ptr<IndirectPredictor> predictor;  ///< null for None
    std::unique_ptr<HistoryTracker> tracker;       ///< null for None
};

/** Instantiates the structures an IndirectConfig describes. */
PredictorStack buildStack(const IndirectConfig &config);

/**
 * Immutable, shareable recorded trace.  Generate a workload once, then
 * replay it any number of times.
 *
 * The canonical in-memory form is the columnar CompactTrace
 * (trace/compact_trace.hh) — ~8x smaller than the former
 * std::vector<MicroOp> storage.  Hot paths replay it through the
 * non-virtual batch API (forEachOp / forEachBranch / replay()); the
 * virtual TraceSource shim from open() remains for compatibility.
 */
class SharedTrace
{
  public:
    /** Empty trace (zero ops); assign over it to fill a result slot. */
    SharedTrace();

    /** Records @p max_ops instructions of @p source. */
    SharedTrace(TraceSource &source, size_t max_ops);

    /** Adopts an already-recorded op vector. */
    SharedTrace(std::vector<MicroOp> ops, std::string name);

    /**
     * Adopts already-columnar storage without copying — the handle a
     * corpus load or trace-file read produces (possibly zero-copy
     * views into an mmap the CompactTrace keeps alive).
     */
    SharedTrace(std::shared_ptr<const CompactTrace> trace,
                std::string name);

    /**
     * Opens a virtual replay source positioned at the beginning
     * (compatibility shim; prefer replay()/forEachOp on hot paths).
     */
    std::unique_ptr<TraceSource> open() const;

    /** Opens a devirtualized block-replay source. */
    CompactReplay replay() const { return CompactReplay(*trace_); }

    /**
     * Opens a devirtualized block-replay source whose first op is op
     * @p start — the entry point for forked timing members
     * (harness/sweep_kernel.cc), which resume a suspended session at
     * an exact fetched-op boundary.
     */
    CompactReplay replayAt(size_t start) const
    {
        return CompactReplay(*trace_, start);
    }

    const std::string &name() const { return name_; }
    size_t size() const { return trace_->size(); }

    /** The columnar storage itself (branch index, size accounting). */
    const CompactTrace &compact() const { return *trace_; }

    /**
     * The trace's dense branch stream, built lazily on first request
     * and shared by all configs and threads (sweep kernel fast path).
     */
    const BranchStream &branchStream() const
    {
        return trace_->branchStream();
    }

    /** Batch replay: fn(const MicroOp &) for every op, in order. */
    template <typename Fn>
    void
    forEachOp(Fn &&fn) const
    {
        trace_->forEachOp(std::forward<Fn>(fn));
    }

    /** Decodes the whole trace into a fresh vector (tooling only). */
    std::vector<MicroOp> decodeOps() const { return trace_->decodeAll(); }

  private:
    std::shared_ptr<const CompactTrace> trace_;
    std::string name_;
};

/** Records a named workload into a SharedTrace. */
SharedTrace recordWorkload(const std::string &name, size_t max_ops,
                           uint64_t seed = 1);

/**
 * Accuracy experiment: replays the trace through a front end built
 * from @p config and returns the per-class prediction statistics.
 */
FrontendStats runAccuracy(const SharedTrace &trace,
                          const IndirectConfig &config,
                          const FrontendConfig &fe = {});

/**
 * Timing experiment: replays the trace through the out-of-order core
 * and returns cycles, IPC and accuracy statistics.
 */
CoreResult runTiming(const SharedTrace &trace,
                     const IndirectConfig &config,
                     const CoreParams &params = {},
                     const FrontendConfig &fe = {});

/**
 * Default run lengths; bench binaries accept an instruction-count
 * argv override and the TPRED_OPS environment variable.
 */
constexpr size_t kDefaultAccuracyOps = 2'000'000;
constexpr size_t kDefaultTimingOps = 1'000'000;

/**
 * Strictly parses an instruction count: the whole of @p text must be
 * a positive decimal integer — no sign, suffix, blank or trailing
 * junk ("2m", "-3", "1e6" and "20 " all fail).
 * @param what Label used in the error message (e.g. "argv[1]").
 * @throws std::invalid_argument on malformed or zero input.
 * @throws std::out_of_range when the value exceeds size_t.
 */
size_t parseOps(std::string_view text, const char *what);

/**
 * Resolves the run length: argv[1] if given, else $TPRED_OPS, else
 * @p fallback.  A malformed override is a hard error: the message is
 * printed to stderr and the process exits with status 2 — never a
 * silent partial parse or fallback.
 */
size_t resolveOps(int argc, char **argv, size_t fallback);

} // namespace tpred

#endif // TPRED_HARNESS_EXPERIMENT_HH
