#include "harness/multi_seed.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "harness/parallel_runner.hh"
#include "harness/trace_cache.hh"

namespace tpred
{

SeedSweepResult
summarize(std::vector<double> samples)
{
    SeedSweepResult result;
    result.samples = std::move(samples);
    if (result.samples.empty())
        return result;

    double sum = 0.0;
    result.min = result.samples.front();
    result.max = result.samples.front();
    for (double s : result.samples) {
        sum += s;
        result.min = std::min(result.min, s);
        result.max = std::max(result.max, s);
    }
    result.mean = sum / static_cast<double>(result.samples.size());

    if (result.samples.size() > 1) {
        double sq = 0.0;
        for (double s : result.samples)
            sq += (s - result.mean) * (s - result.mean);
        result.stddev = std::sqrt(
            sq / static_cast<double>(result.samples.size() - 1));
    }
    return result;
}

std::string
SeedSweepResult::renderPercent(int precision) const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%% ± %.*f%%", precision,
                  mean * 100.0, precision, stddev * 100.0);
    return buf;
}

SeedSweepResult
sweepSeeds(const std::string &workload, size_t ops, unsigned num_seeds,
           const std::function<double(const SharedTrace &)> &metric,
           unsigned threads)
{
    const ParallelRunner runner(threads);
    std::vector<double> samples = runner.map<double>(
        num_seeds, [&](size_t i) {
            const SharedTrace trace = cachedTrace(
                workload, ops, static_cast<uint64_t>(i) + 1);
            return metric(trace);
        });
    return summarize(std::move(samples));
}

std::function<double(const SharedTrace &)>
indirectMissMetric(const IndirectConfig &config)
{
    return [config](const SharedTrace &trace) {
        return runAccuracy(trace, config).indirectJumps.missRate();
    };
}

} // namespace tpred
