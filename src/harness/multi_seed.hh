/**
 * @file
 * Multi-seed methodology support: every synthetic workload is a
 * deterministic function of its seed, so statistical confidence comes
 * from replicating an experiment across seeds and reporting the
 * spread — the harness-level equivalent of running several inputs per
 * SPEC benchmark.
 */

#ifndef TPRED_HARNESS_MULTI_SEED_HH
#define TPRED_HARNESS_MULTI_SEED_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace tpred
{

/** Summary statistics of one metric across seeds. */
struct SeedSweepResult
{
    std::vector<double> samples;
    double mean = 0.0;
    double stddev = 0.0;  ///< sample standard deviation
    double min = 0.0;
    double max = 0.0;

    /** "12.3% ± 0.4%" style rendering (values are fractions). */
    std::string renderPercent(int precision = 1) const;
};

/** Computes the summary statistics of @p samples. */
SeedSweepResult summarize(std::vector<double> samples);

/**
 * Records @p workload under @p num_seeds different seeds (through the
 * shared trace cache) and evaluates @p metric on each trace, sharding
 * the seeds across the parallel runner.  Samples are keyed by seed
 * index, so the result is bit-identical for any thread count.
 *
 * @param metric Maps a recorded trace to the scalar under study (e.g.
 *        a misprediction rate or an execution-time reduction).
 * @param threads Worker count; 0 = defaultJobs(), 1 = inline/serial.
 */
SeedSweepResult
sweepSeeds(const std::string &workload, size_t ops, unsigned num_seeds,
           const std::function<double(const SharedTrace &)> &metric,
           unsigned threads = 0);

/** Convenience metric: indirect misprediction rate under @p config. */
std::function<double(const SharedTrace &)>
indirectMissMetric(const IndirectConfig &config);

} // namespace tpred

#endif // TPRED_HARNESS_MULTI_SEED_HH
