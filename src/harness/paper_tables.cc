#include "harness/paper_tables.hh"

#include <cstdio>
#include <functional>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/parallel_runner.hh"
#include "harness/sweep_kernel.hh"
#include "harness/trace_cache.hh"
#include "trace/trace_stats.hh"
#include "workloads/workload.hh"

namespace tpred
{

IndirectConfig
baselineConfig()
{
    return IndirectConfig{};
}

FrontendConfig
twoBitBtbFrontend()
{
    FrontendConfig fe;
    fe.btb.l1.strategy = BtbUpdateStrategy::TwoBit;
    return fe;
}

FrontendConfig
smallBtbFrontend()
{
    // Just the nano L1 on its own: 16 sets x 4 ways = 64 entries, the
    // first-level geometry arXiv 2412.05413 reverse-engineers out of
    // recent Arm cores.  No second level, so misses cost accuracy, not
    // bubbles.
    FrontendConfig fe;
    fe.btb.l1 = BtbConfig{16, 4, BtbUpdateStrategy::Default};
    return fe;
}

FrontendConfig
twoLevelBtbFrontend()
{
    // The same 64-entry nano BTB backed by an 8K-entry main BTB with a
    // 2-cycle bubble on an L2-supplied redirect (arXiv 2412.05413).
    FrontendConfig fe;
    fe.btb.l1 = BtbConfig{16, 4, BtbUpdateStrategy::Default};
    fe.btb.twoLevel = true;
    fe.btb.l2 = BtbConfig{1024, 8, BtbUpdateStrategy::Default};
    fe.btb.missPenalty = 2;
    return fe;
}

HistorySpec
patternHistory(unsigned bits)
{
    HistorySpec spec;
    spec.kind = HistoryKind::Pattern;
    spec.lengthBits = bits;
    return spec;
}

HistorySpec
pathGlobal(PathFilter filter, unsigned length_bits,
           unsigned bits_per_target, unsigned addr_bit_offset)
{
    HistorySpec spec;
    spec.kind = HistoryKind::PathGlobal;
    spec.lengthBits = length_bits;
    spec.filter = filter;
    spec.path.lengthBits = length_bits;
    spec.path.bitsPerTarget = bits_per_target;
    spec.path.addrBitOffset = addr_bit_offset;
    return spec;
}

HistorySpec
pathPerAddress(unsigned length_bits, unsigned bits_per_target,
               unsigned addr_bit_offset)
{
    HistorySpec spec;
    spec.kind = HistoryKind::PathPerAddress;
    spec.lengthBits = length_bits;
    spec.path.lengthBits = length_bits;
    spec.path.bitsPerTarget = bits_per_target;
    spec.path.addrBitOffset = addr_bit_offset;
    return spec;
}

IndirectConfig
taglessGAg(unsigned history_bits)
{
    IndirectConfig config;
    config.structure = IndirectStructure::Tagless;
    config.tagless.scheme = TaglessIndexScheme::GAg;
    config.tagless.entryBits = history_bits;
    config.tagless.historyBits = history_bits;
    config.history = patternHistory(history_bits);
    return config;
}

IndirectConfig
taglessGAs(unsigned history_bits, unsigned addr_bits)
{
    IndirectConfig config;
    config.structure = IndirectStructure::Tagless;
    config.tagless.scheme = TaglessIndexScheme::GAs;
    config.tagless.entryBits = history_bits + addr_bits;
    config.tagless.historyBits = history_bits;
    config.tagless.addrBits = addr_bits;
    config.history = patternHistory(history_bits);
    return config;
}

IndirectConfig
taglessGshare(const HistorySpec &history, unsigned entry_bits)
{
    IndirectConfig config;
    config.structure = IndirectStructure::Tagless;
    config.tagless.scheme = TaglessIndexScheme::Gshare;
    config.tagless.entryBits = entry_bits;
    config.tagless.historyBits = history.lengthBits;
    config.history = history;
    return config;
}

IndirectConfig
taggedConfig(TaggedIndexScheme scheme, unsigned ways,
             const HistorySpec &history, unsigned entries)
{
    IndirectConfig config;
    config.structure = IndirectStructure::Tagged;
    config.tagged.scheme = scheme;
    config.tagged.entries = entries;
    config.tagged.ways = ways;
    config.tagged.historyBits = history.lengthBits;
    config.history = history;
    return config;
}

IndirectConfig
cascadedConfig(unsigned stage1_entries, unsigned stage2_ways)
{
    IndirectConfig config;
    config.structure = IndirectStructure::Cascaded;
    config.cascaded.stage1Entries = stage1_entries;
    config.cascaded.stage2.ways = stage2_ways;
    config.history = patternHistory(9);
    return config;
}

IndirectConfig
ittageConfig()
{
    IndirectConfig config;
    config.structure = IndirectStructure::Ittage;
    // The longest component consumes 32 history bits.
    config.history = patternHistory(32);
    return config;
}

IndirectConfig
oracleConfig()
{
    IndirectConfig config;
    config.structure = IndirectStructure::Oracle;
    config.history = patternHistory(1);
    return config;
}

double
reductionOver(uint64_t baseline_cycles, const SharedTrace &trace,
              const IndirectConfig &config, const CoreParams &params)
{
    const CoreResult result = runTiming(trace, config, params);
    return execTimeReduction(baseline_cycles, result.cycles);
}

// --- Paper-table drivers -------------------------------------------
//
// Every driver follows the same shape: record traces through the
// shared cache, evaluate the experiment grid as index-keyed jobs
// (serially or across the runner — each job is a pure function of its
// index over immutable traces, so both paths produce the same bits),
// then format the cells in grid order.

namespace
{

/** Runs job(i) for i in [0, count) per the requested ExecMode. */
template <typename T>
std::vector<T>
mapJobs(const TableOptions &opt, size_t count,
        const std::function<T(size_t)> &job)
{
    if (opt.mode == ExecMode::Serial) {
        std::vector<T> results;
        results.reserve(count);
        for (size_t i = 0; i < count; ++i)
            results.push_back(job(i));
        return results;
    }
    return ParallelRunner(opt.threads).map<T>(count, job);
}

/** One cached trace per workload name, at opt.ops instructions. */
std::vector<SharedTrace>
tracesFor(const TableOptions &opt, const std::vector<std::string> &names)
{
    return mapJobs<SharedTrace>(opt, names.size(), [&](size_t i) {
        return cachedTrace(names[i], opt.ops);
    });
}

/** BTB-only baseline cycles per trace, for the timing tables. */
std::vector<uint64_t>
baseCyclesFor(const TableOptions &opt,
              const std::vector<SharedTrace> &traces)
{
    return mapJobs<uint64_t>(opt, traces.size(), [&](size_t i) {
        return runTiming(traces[i], baselineConfig()).cycles;
    });
}

/** The five path-history variants Tables 5, 6 and 8 sweep. */
const std::vector<std::string> &
pathSchemeLabels()
{
    static const std::vector<std::string> labels = {
        "per-addr", "branch", "control", "ind jmp", "call/ret",
    };
    return labels;
}

/**
 * Fused accuracy cells: evaluates every (workload x config) pair's
 * indirect miss rate, one runSweep() per (workload x history-group)
 * job, and scatters the results back into (workload x config) grid
 * order.  Cell values are bit-identical to per-config runAccuracy().
 */
std::vector<double>
sweepMissRates(const TableOptions &opt,
               const std::vector<SharedTrace> &traces,
               const std::vector<IndirectConfig> &configs,
               const FrontendConfig &fe = {})
{
    const auto groups = groupByHistory(configs);
    const auto parts = mapJobs<std::vector<double>>(
        opt, traces.size() * groups.size(), [&](size_t j) {
            const SharedTrace &trace = traces[j / groups.size()];
            const auto &group = groups[j % groups.size()];
            std::vector<IndirectConfig> batch;
            batch.reserve(group.size());
            for (size_t c : group)
                batch.push_back(configs[c]);
            std::vector<double> rates;
            rates.reserve(group.size());
            for (const FrontendStats &s : runSweep(trace, batch, fe))
                rates.push_back(s.indirectJumps.missRate());
            return rates;
        });

    std::vector<double> cells(traces.size() * configs.size());
    for (size_t w = 0; w < traces.size(); ++w)
        for (size_t g = 0; g < groups.size(); ++g)
            for (size_t k = 0; k < groups[g].size(); ++k)
                cells[w * configs.size() + groups[g][k]] =
                    parts[w * groups.size() + g][k];
    return cells;
}

/**
 * Fused timing cells: evaluates every (workload x config) pair's
 * execution-time reduction over the BTB baseline, one runTimingSweep()
 * per (workload x history-group) job, and scatters the results back
 * into (workload x config) grid order.  Cell values are bit-identical
 * to per-config runTiming() — the fusion shares one core trajectory
 * and forks members on divergence (docs/sweep_kernel.md).
 */
std::vector<double>
sweepReductions(const TableOptions &opt,
                const std::vector<SharedTrace> &traces,
                const std::vector<uint64_t> &bases,
                const std::vector<IndirectConfig> &configs)
{
    const auto groups = groupByHistory(configs);
    const auto parts = mapJobs<std::vector<double>>(
        opt, traces.size() * groups.size(), [&](size_t j) {
            const size_t w = j / groups.size();
            const auto &group = groups[j % groups.size()];
            std::vector<IndirectConfig> batch;
            batch.reserve(group.size());
            for (size_t c : group)
                batch.push_back(configs[c]);
            std::vector<double> vals;
            vals.reserve(group.size());
            for (const CoreResult &r : runTimingSweep(traces[w], batch))
                vals.push_back(execTimeReduction(bases[w], r.cycles));
            return vals;
        });

    std::vector<double> cells(traces.size() * configs.size());
    for (size_t w = 0; w < traces.size(); ++w)
        for (size_t g = 0; g < groups.size(); ++g)
            for (size_t k = 0; k < groups[g].size(); ++k)
                cells[w * configs.size() + groups[g][k]] =
                    parts[w * groups.size() + g][k];
    return cells;
}

HistorySpec
pathSchemeHistory(const std::string &scheme, unsigned bits_per_target,
                  unsigned addr_bit_offset)
{
    if (scheme == "per-addr")
        return pathPerAddress(9, bits_per_target, addr_bit_offset);
    if (scheme == "branch")
        return pathGlobal(PathFilter::Branch, 9, bits_per_target,
                          addr_bit_offset);
    if (scheme == "control")
        return pathGlobal(PathFilter::Control, 9, bits_per_target,
                          addr_bit_offset);
    if (scheme == "ind jmp")
        return pathGlobal(PathFilter::IndJmp, 9, bits_per_target,
                          addr_bit_offset);
    return pathGlobal(PathFilter::CallRet, 9, bits_per_target,
                      addr_bit_offset);
}

/**
 * Shared skeleton of the per-workload timing tables (5-9, Figs
 * 12-13): for each headline workload, a rows x cols grid of
 * execution-time reductions over the BTB baseline, flattened into
 * (workload x row x col)-indexed jobs.
 */
std::string
renderReductionGrid(const TableOptions &opt,
                    const std::vector<std::string> &header,
                    const std::vector<std::string> &row_labels,
                    const std::function<IndirectConfig(size_t row,
                                                       size_t col)>
                        &config_at)
{
    const auto &names = headlineWorkloads();
    const auto traces = tracesFor(opt, names);
    const auto bases = baseCyclesFor(opt, traces);

    const size_t rows = row_labels.size();
    const size_t cols = header.size() - 1;
    const size_t per_workload = rows * cols;

    // Fused timing cells via runTimingSweep: the parallelism unit
    // stays one job per (workload x history group), with the whole
    // group sharing one core trajectory inside the job, so Serial and
    // Parallel modes produce the same bits as the per-cell layout did.
    std::vector<IndirectConfig> configs;
    configs.reserve(per_workload);
    for (size_t row = 0; row < rows; ++row)
        for (size_t col = 0; col < cols; ++col)
            configs.push_back(config_at(row, col));
    const auto cells = sweepReductions(opt, traces, bases, configs);

    std::string out;
    for (size_t w = 0; w < names.size(); ++w) {
        Table table;
        table.setHeader(header);
        for (size_t row = 0; row < rows; ++row) {
            std::vector<std::string> cells_row = {row_labels[row]};
            for (size_t col = 0; col < cols; ++col)
                cells_row.push_back(formatPercent(
                    cells[w * per_workload + row * cols + col], 2));
            table.addRow(cells_row);
        }
        out += "[" + names[w] + "]\n" + table.render() + "\n";
    }
    return out;
}

} // namespace

const std::vector<std::string> &
headlineWorkloads()
{
    static const std::vector<std::string> names = {"gcc", "perl"};
    return names;
}

std::string
renderTable1(const TableOptions &opt)
{
    const auto &names = spec95Names();
    const auto traces = tracesFor(opt, names);
    const auto rows = mapJobs<std::vector<std::string>>(
        opt, names.size(), [&](size_t i) {
            TraceCounts counts;
            traces[i].forEachOp(
                [&counts](const MicroOp &op) { counts.observe(op); });
            const FrontendStats stats =
                runAccuracy(traces[i], baselineConfig());
            return std::vector<std::string>{
                names[i],
                formatCount(counts.instructions),
                formatCount(counts.branches),
                formatCount(counts.indirectJumps),
                formatPercent(stats.indirectJumps.missRate(), 1),
            };
        });

    Table table;
    table.setHeader({"Benchmark", "#Instructions", "#Branches",
                     "#Indirect Jumps", "Ind. Jump Mispred. Rate"});
    for (const auto &row : rows)
        table.addRow(row);
    return table.render();
}

std::string
renderTable2(const TableOptions &opt)
{
    const auto &names = spec95Names();
    const auto traces = tracesFor(opt, names);
    // A fused batch shares one FrontendConfig, so the 2-bit BTB
    // column runs as its own (degenerate, batch-of-one) sweep.
    const auto fused = sweepMissRates(
        opt, traces, {baselineConfig(), taglessGshare()});
    const auto two_bit = sweepMissRates(
        opt, traces, {baselineConfig()}, twoBitBtbFrontend());

    Table table;
    table.setHeader({"Benchmark", "BTB", "2-bit BTB",
                     "512-entry target cache"});
    for (size_t i = 0; i < names.size(); ++i) {
        table.addRow({names[i],
                      formatPercent(fused[i * 2 + 0], 1),
                      formatPercent(two_bit[i], 1),
                      formatPercent(fused[i * 2 + 1], 1)});
    }
    return table.render();
}

std::string
renderTable4(const TableOptions &opt)
{
    const auto &names = headlineWorkloads();
    const auto traces = tracesFor(opt, names);
    const std::vector<IndirectConfig> configs = {
        baselineConfig(),   taglessGAg(9),    taglessGAs(8, 1),
        taglessGAs(7, 2),   taglessGshare(),
    };
    const size_t cols = configs.size();
    const auto cells = sweepMissRates(opt, traces, configs);

    Table table;
    table.setHeader({"Benchmark", "BTB", "GAg(9)", "GAs(8,1)",
                     "GAs(7,2)", "gshare"});
    for (size_t i = 0; i < names.size(); ++i) {
        std::vector<std::string> row = {names[i]};
        for (size_t col = 0; col < cols; ++col)
            row.push_back(formatPercent(cells[i * cols + col], 1));
        table.addRow(row);
    }
    return table.render();
}

std::string
renderTable5(const TableOptions &opt)
{
    const std::vector<unsigned> offsets = {2, 4, 6, 8, 10};
    std::vector<std::string> row_labels;
    for (unsigned offset : offsets)
        row_labels.push_back("bit " + std::to_string(offset) +
                             (offset == 2 ? " (lowest)" : ""));
    return renderReductionGrid(
        opt,
        {"addr bit", "Per-addr", "Branch", "Control", "Ind jmp",
         "Call/ret"},
        row_labels, [&](size_t row, size_t col) {
            return taglessGshare(pathSchemeHistory(
                pathSchemeLabels()[col], 1, offsets[row]));
        });
}

std::string
renderTable6(const TableOptions &opt)
{
    std::vector<std::string> row_labels;
    for (unsigned bits = 1; bits <= 4; ++bits)
        row_labels.push_back(std::to_string(bits));
    return renderReductionGrid(
        opt,
        {"bits per addr", "Per-addr", "Branch", "Control", "Ind jmp",
         "Call/ret"},
        row_labels, [&](size_t row, size_t col) {
            return taglessGshare(pathSchemeHistory(
                pathSchemeLabels()[col],
                static_cast<unsigned>(row) + 1, 2));
        });
}

std::string
renderTable7(const TableOptions &opt)
{
    const std::vector<unsigned> assocs = {1, 2, 4, 8, 16};
    const std::vector<TaggedIndexScheme> schemes = {
        TaggedIndexScheme::Address,
        TaggedIndexScheme::HistoryConcat,
        TaggedIndexScheme::HistoryXor,
    };
    std::vector<std::string> row_labels;
    for (unsigned ways : assocs)
        row_labels.push_back(std::to_string(ways));
    return renderReductionGrid(
        opt, {"set-assoc.", "Addr", "History Conc", "History Xor"},
        row_labels, [&](size_t row, size_t col) {
            return taggedConfig(schemes[col], assocs[row]);
        });
}

std::string
renderTable8(const TableOptions &opt)
{
    const std::vector<unsigned> assocs = {1, 2, 4, 8, 16};
    std::vector<std::string> row_labels;
    for (unsigned ways : assocs)
        row_labels.push_back(std::to_string(ways));
    return renderReductionGrid(
        opt,
        {"set-assoc.", "Per-addr", "Branch", "Control", "Ind jmp",
         "Call/ret"},
        row_labels, [&](size_t row, size_t col) {
            return taggedConfig(
                TaggedIndexScheme::HistoryXor, assocs[row],
                pathSchemeHistory(pathSchemeLabels()[col], 1, 2));
        });
}

std::string
renderTable9(const TableOptions &opt)
{
    const std::vector<unsigned> assocs = {1, 2, 4, 8, 16};
    const std::vector<unsigned> history_bits = {9, 16};
    std::vector<std::string> row_labels;
    for (unsigned ways : assocs)
        row_labels.push_back(std::to_string(ways));
    return renderReductionGrid(
        opt, {"set-assoc.", "9 bits", "16 bits"}, row_labels,
        [&](size_t row, size_t col) {
            return taggedConfig(TaggedIndexScheme::HistoryXor,
                                assocs[row],
                                patternHistory(history_bits[col]));
        });
}

std::string
renderFig1213(const TableOptions &opt)
{
    const std::vector<unsigned> assocs = {1, 2, 4, 8, 16};
    const auto &names = headlineWorkloads();
    const auto traces = tracesFor(opt, names);
    const auto bases = baseCyclesFor(opt, traces);

    // Per workload: cell 0 is the tagless reference, cells 1..n the
    // tagged cache at each associativity; fused timing cells, one
    // runTimingSweep() per (workload x history-group) job.
    std::vector<IndirectConfig> configs = {taglessGshare()};
    for (unsigned ways : assocs)
        configs.push_back(
            taggedConfig(TaggedIndexScheme::HistoryXor, ways));
    const size_t per_workload = configs.size();
    const auto cells = sweepReductions(opt, traces, bases, configs);

    std::string out;
    for (size_t w = 0; w < names.size(); ++w) {
        const double tagless = cells[w * per_workload];
        Table table;
        table.setHeader({"set-assoc.", "w/ tags (256-entry)",
                         "w/o tags (512-entry)"});
        for (size_t k = 0; k < assocs.size(); ++k) {
            table.addRow({std::to_string(assocs[k]),
                          formatPercent(cells[w * per_workload + 1 + k],
                                        2),
                          formatPercent(tagless, 2)});
        }
        out += "[" + names[w] + "]\n" + table.render() + "\n";
    }
    return out;
}

namespace
{

std::string
formatStallRate(double cycles_per_kilo_instr)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", cycles_per_kilo_instr);
    return buf;
}

} // namespace

const std::vector<std::string> &
btbPressureWorkloads()
{
    // Two SPECint95-like generators against the object-heavy and the
    // server-shaped ones: the footprint axis of the BTB-pressure grid.
    static const std::vector<std::string> names = {
        "gcc", "perl", "cpp-virtual", "server-dispatch", "server-jit",
    };
    return names;
}

std::string
renderBtbPressure(const TableOptions &opt)
{
    struct Variant
    {
        const char *label;
        FrontendConfig fe;
    };
    const std::vector<Variant> variants = {
        {"1-level 1K", FrontendConfig{}},
        {"1-level 64", smallBtbFrontend()},
        {"2-level 64+8K", twoLevelBtbFrontend()},
    };
    const std::vector<IndirectConfig> configs = {
        baselineConfig(),
        taglessGshare(),
        taggedConfig(TaggedIndexScheme::HistoryXor, 4),
    };

    const auto &names = btbPressureWorkloads();
    const auto traces = tracesFor(opt, names);

    // Accuracy cells per hierarchy variant: a fused batch shares one
    // FrontendConfig, so each variant runs as its own sweep (the same
    // shape as Table 2's 2-bit column).
    std::vector<std::vector<double>> miss(variants.size());
    std::vector<std::vector<double>> btb_hit(variants.size());
    for (size_t v = 0; v < variants.size(); ++v) {
        miss[v] = sweepMissRates(opt, traces, configs, variants[v].fe);
        btb_hit[v] = mapJobs<double>(opt, names.size(), [&](size_t w) {
            const std::vector<IndirectConfig> solo = {baselineConfig()};
            const auto stats = runSweep(traces[w], solo, variants[v].fe);
            return 1.0 - stats[0].btbHits.missRate();
        });
    }

    // Timing cells: BTB-miss bubble cycles per 1000 instructions with
    // the tagless target cache in place — the stall a better hierarchy
    // (or a smaller code footprint) recovers.
    const auto stalls = mapJobs<double>(
        opt, variants.size() * names.size(), [&](size_t j) {
            const size_t v = j / names.size();
            const size_t w = j % names.size();
            const CoreResult r = runTiming(traces[w], taglessGshare(),
                                           CoreParams{}, variants[v].fe);
            return r.instructions ? 1000.0 *
                                        static_cast<double>(
                                            r.btbMissStallCycles) /
                                        static_cast<double>(r.instructions)
                                  : 0.0;
        });

    Table table;
    table.setHeader({"Benchmark", "BTB hierarchy", "BTB hits",
                     "BTB ind.miss", "tagless", "tagged",
                     "BTB-stall cyc/1K"});
    for (size_t w = 0; w < names.size(); ++w) {
        if (w)
            table.addRule();
        for (size_t v = 0; v < variants.size(); ++v) {
            const size_t base = w * configs.size();
            table.addRow({
                v == 0 ? names[w] : "",
                variants[v].label,
                formatPercent(btb_hit[v][w], 1),
                formatPercent(miss[v][base + 0], 1),
                formatPercent(miss[v][base + 1], 1),
                formatPercent(miss[v][base + 2], 1),
                formatStallRate(stalls[v * names.size() + w]),
            });
        }
    }
    return table.render();
}

} // namespace tpred
