#include "harness/paper_tables.hh"

#include "common/stats.hh"

namespace tpred
{

IndirectConfig
baselineConfig()
{
    return IndirectConfig{};
}

FrontendConfig
twoBitBtbFrontend()
{
    FrontendConfig fe;
    fe.btb.strategy = BtbUpdateStrategy::TwoBit;
    return fe;
}

HistorySpec
patternHistory(unsigned bits)
{
    HistorySpec spec;
    spec.kind = HistoryKind::Pattern;
    spec.lengthBits = bits;
    return spec;
}

HistorySpec
pathGlobal(PathFilter filter, unsigned length_bits,
           unsigned bits_per_target, unsigned addr_bit_offset)
{
    HistorySpec spec;
    spec.kind = HistoryKind::PathGlobal;
    spec.lengthBits = length_bits;
    spec.filter = filter;
    spec.path.lengthBits = length_bits;
    spec.path.bitsPerTarget = bits_per_target;
    spec.path.addrBitOffset = addr_bit_offset;
    return spec;
}

HistorySpec
pathPerAddress(unsigned length_bits, unsigned bits_per_target,
               unsigned addr_bit_offset)
{
    HistorySpec spec;
    spec.kind = HistoryKind::PathPerAddress;
    spec.lengthBits = length_bits;
    spec.path.lengthBits = length_bits;
    spec.path.bitsPerTarget = bits_per_target;
    spec.path.addrBitOffset = addr_bit_offset;
    return spec;
}

IndirectConfig
taglessGAg(unsigned history_bits)
{
    IndirectConfig config;
    config.structure = IndirectStructure::Tagless;
    config.tagless.scheme = TaglessIndexScheme::GAg;
    config.tagless.entryBits = history_bits;
    config.tagless.historyBits = history_bits;
    config.history = patternHistory(history_bits);
    return config;
}

IndirectConfig
taglessGAs(unsigned history_bits, unsigned addr_bits)
{
    IndirectConfig config;
    config.structure = IndirectStructure::Tagless;
    config.tagless.scheme = TaglessIndexScheme::GAs;
    config.tagless.entryBits = history_bits + addr_bits;
    config.tagless.historyBits = history_bits;
    config.tagless.addrBits = addr_bits;
    config.history = patternHistory(history_bits);
    return config;
}

IndirectConfig
taglessGshare(const HistorySpec &history, unsigned entry_bits)
{
    IndirectConfig config;
    config.structure = IndirectStructure::Tagless;
    config.tagless.scheme = TaglessIndexScheme::Gshare;
    config.tagless.entryBits = entry_bits;
    config.tagless.historyBits = history.lengthBits;
    config.history = history;
    return config;
}

IndirectConfig
taggedConfig(TaggedIndexScheme scheme, unsigned ways,
             const HistorySpec &history, unsigned entries)
{
    IndirectConfig config;
    config.structure = IndirectStructure::Tagged;
    config.tagged.scheme = scheme;
    config.tagged.entries = entries;
    config.tagged.ways = ways;
    config.tagged.historyBits = history.lengthBits;
    config.history = history;
    return config;
}

IndirectConfig
cascadedConfig(unsigned stage1_entries, unsigned stage2_ways)
{
    IndirectConfig config;
    config.structure = IndirectStructure::Cascaded;
    config.cascaded.stage1Entries = stage1_entries;
    config.cascaded.stage2.ways = stage2_ways;
    config.history = patternHistory(9);
    return config;
}

IndirectConfig
ittageConfig()
{
    IndirectConfig config;
    config.structure = IndirectStructure::Ittage;
    // The longest component consumes 32 history bits.
    config.history = patternHistory(32);
    return config;
}

IndirectConfig
oracleConfig()
{
    IndirectConfig config;
    config.structure = IndirectStructure::Oracle;
    config.history = patternHistory(1);
    return config;
}

double
reductionOver(uint64_t baseline_cycles, const SharedTrace &trace,
              const IndirectConfig &config, const CoreParams &params)
{
    const CoreResult result = runTiming(trace, config, params);
    return execTimeReduction(baseline_cycles, result.cycles);
}

} // namespace tpred
