/**
 * @file
 * Preset configurations matching the paper's experiments, shared by
 * the bench binaries, examples and integration tests.
 */

#ifndef TPRED_HARNESS_PAPER_TABLES_HH
#define TPRED_HARNESS_PAPER_TABLES_HH

#include <string>

#include "harness/experiment.hh"

namespace tpred
{

/** BTB-only baseline (Table 1's machine). */
IndirectConfig baselineConfig();

/** BTB with the Calder/Grunwald 2-bit update strategy (Table 2). */
FrontendConfig twoBitBtbFrontend();

/** Global pattern history of @p bits (sections 3.1, 4.2, 4.3). */
HistorySpec patternHistory(unsigned bits = 9);

/**
 * Global path history (section 3.1): @p filter selects which control
 * instructions are recorded, @p bits_per_target how many target bits
 * each contributes, @p addr_bit_offset which target bit the recording
 * starts at (Table 5's "address bit selection").
 */
HistorySpec pathGlobal(PathFilter filter, unsigned length_bits = 9,
                       unsigned bits_per_target = 1,
                       unsigned addr_bit_offset = 2);

/** Per-address path history (section 3.1). */
HistorySpec pathPerAddress(unsigned length_bits = 9,
                           unsigned bits_per_target = 1,
                           unsigned addr_bit_offset = 2);

/** 512-entry tagless target cache, GAg(h) indexing (Table 4). */
IndirectConfig taglessGAg(unsigned history_bits = 9);

/** 512-entry tagless target cache, GAs(h,a) indexing (Table 4). */
IndirectConfig taglessGAs(unsigned history_bits, unsigned addr_bits);

/**
 * 512-entry tagless target cache, gshare indexing — the scheme the
 * paper adopts for all subsequent tagless experiments.
 */
IndirectConfig taglessGshare(const HistorySpec &history = patternHistory(),
                             unsigned entry_bits = 9);

/**
 * 256-entry tagged target cache (Tables 7-9, Figures 12-13).
 * @param scheme Set-index/tag derivation.
 * @param ways Set associativity.
 * @param history History source and length.
 */
IndirectConfig taggedConfig(TaggedIndexScheme scheme, unsigned ways,
                            const HistorySpec &history = patternHistory(),
                            unsigned entries = 256);

/** Cascaded two-stage predictor (DESIGN.md extension). */
IndirectConfig cascadedConfig(unsigned stage1_entries = 128,
                              unsigned stage2_ways = 4);

/**
 * ITTAGE-style predictor (DESIGN.md extension): geometric history
 * lengths over a 32-bit global pattern history.
 */
IndirectConfig ittageConfig();

/** Oracle indirect predictor (upper bound). */
IndirectConfig oracleConfig();

/**
 * Exec-time reduction of @p config over the BTB-only baseline on the
 * same trace: the paper's headline timing metric.
 * @param baseline_cycles From a prior runTiming with baselineConfig().
 */
double reductionOver(uint64_t baseline_cycles, const SharedTrace &trace,
                     const IndirectConfig &config,
                     const CoreParams &params = {});

} // namespace tpred

#endif // TPRED_HARNESS_PAPER_TABLES_HH
