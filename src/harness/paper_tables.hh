/**
 * @file
 * Preset configurations matching the paper's experiments, shared by
 * the bench binaries, examples and integration tests.
 */

#ifndef TPRED_HARNESS_PAPER_TABLES_HH
#define TPRED_HARNESS_PAPER_TABLES_HH

#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace tpred
{

/** BTB-only baseline (Table 1's machine). */
IndirectConfig baselineConfig();

/** BTB with the Calder/Grunwald 2-bit update strategy (Table 2). */
FrontendConfig twoBitBtbFrontend();

/** Nano-BTB-only front end: 16x4 = 64 entries, no second level. */
FrontendConfig smallBtbFrontend();

/**
 * Two-level BTB front end modeled on the Arm geometries of arXiv
 * 2412.05413: 64-entry L1 + 8K-entry L2, 2-cycle bubble on an
 * L2-supplied redirect (bpred/btb_hierarchy.hh).
 */
FrontendConfig twoLevelBtbFrontend();

/** Global pattern history of @p bits (sections 3.1, 4.2, 4.3). */
HistorySpec patternHistory(unsigned bits = 9);

/**
 * Global path history (section 3.1): @p filter selects which control
 * instructions are recorded, @p bits_per_target how many target bits
 * each contributes, @p addr_bit_offset which target bit the recording
 * starts at (Table 5's "address bit selection").
 */
HistorySpec pathGlobal(PathFilter filter, unsigned length_bits = 9,
                       unsigned bits_per_target = 1,
                       unsigned addr_bit_offset = 2);

/** Per-address path history (section 3.1). */
HistorySpec pathPerAddress(unsigned length_bits = 9,
                           unsigned bits_per_target = 1,
                           unsigned addr_bit_offset = 2);

/** 512-entry tagless target cache, GAg(h) indexing (Table 4). */
IndirectConfig taglessGAg(unsigned history_bits = 9);

/** 512-entry tagless target cache, GAs(h,a) indexing (Table 4). */
IndirectConfig taglessGAs(unsigned history_bits, unsigned addr_bits);

/**
 * 512-entry tagless target cache, gshare indexing — the scheme the
 * paper adopts for all subsequent tagless experiments.
 */
IndirectConfig taglessGshare(const HistorySpec &history = patternHistory(),
                             unsigned entry_bits = 9);

/**
 * 256-entry tagged target cache (Tables 7-9, Figures 12-13).
 * @param scheme Set-index/tag derivation.
 * @param ways Set associativity.
 * @param history History source and length.
 */
IndirectConfig taggedConfig(TaggedIndexScheme scheme, unsigned ways,
                            const HistorySpec &history = patternHistory(),
                            unsigned entries = 256);

/** Cascaded two-stage predictor (DESIGN.md extension). */
IndirectConfig cascadedConfig(unsigned stage1_entries = 128,
                              unsigned stage2_ways = 4);

/**
 * ITTAGE-style predictor (DESIGN.md extension): geometric history
 * lengths over a 32-bit global pattern history.
 */
IndirectConfig ittageConfig();

/** Oracle indirect predictor (upper bound). */
IndirectConfig oracleConfig();

/**
 * Exec-time reduction of @p config over the BTB-only baseline on the
 * same trace: the paper's headline timing metric.
 * @param baseline_cycles From a prior runTiming with baselineConfig().
 */
double reductionOver(uint64_t baseline_cycles, const SharedTrace &trace,
                     const IndirectConfig &config,
                     const CoreParams &params = {});

/** How a paper-table driver executes its experiment grid. */
enum class ExecMode : uint8_t
{
    Serial,    ///< legacy path: one cell after another, calling thread
    Parallel,  ///< cells sharded across a ParallelRunner
};

/** Options shared by every paper-table render function. */
struct TableOptions
{
    size_t ops = kDefaultAccuracyOps;   ///< instructions per trace
    ExecMode mode = ExecMode::Parallel;
    unsigned threads = 0;               ///< 0 = defaultJobs()
};

/** The paper's headline pair (sections 4.2-4.4 report these two). */
const std::vector<std::string> &headlineWorkloads();

/**
 * Paper-table drivers.  Each records its traces through the shared
 * trace cache, evaluates its (workload x config) grid serially or
 * through the parallel runner — bit-identical output either way, with
 * cells keyed by grid index — and returns the rendered text the
 * corresponding bench binary prints.
 */
std::string renderTable1(const TableOptions &opt);   ///< BTB baseline
std::string renderTable2(const TableOptions &opt);   ///< 2-bit strategy
std::string renderTable4(const TableOptions &opt);   ///< tagless pattern
std::string renderTable5(const TableOptions &opt);   ///< path addr bits
std::string renderTable6(const TableOptions &opt);   ///< bits per target
std::string renderTable7(const TableOptions &opt);   ///< tagged indexing
std::string renderTable8(const TableOptions &opt);   ///< tagged path
std::string renderTable9(const TableOptions &opt);   ///< history length
std::string renderFig1213(const TableOptions &opt);  ///< tagless v tagged

/** Workload axis of the BTB-pressure grid (SPEC-like vs server). */
const std::vector<std::string> &btbPressureWorkloads();

/**
 * BTB-pressure grid (hierarchy x workload): target-cache variants and
 * BTB-miss fetch stalls under the three hierarchy presets, across
 * SPECint95-like and server-shaped workloads.
 */
std::string renderBtbPressure(const TableOptions &opt);

} // namespace tpred

#endif // TPRED_HARNESS_PAPER_TABLES_HH
