#include "harness/parallel_runner.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "harness/run_options.hh"

namespace tpred
{

namespace
{

std::atomic<unsigned> g_default_jobs{0};

unsigned
envJobs()
{
    if (const char *env = std::getenv("TPRED_JOBS");
        env != nullptr && *env != '\0')
        return parseJobsValue(env, "TPRED_JOBS");
    return 0;
}

} // namespace

unsigned
defaultJobs()
{
    const unsigned overridden = g_default_jobs.load();
    if (overridden > 0)
        return overridden;
    static const unsigned from_env = envJobs();
    if (from_env > 0)
        return from_env;
    return ThreadPool::hardwareThreads();
}

void
setDefaultJobs(unsigned jobs)
{
    g_default_jobs.store(jobs);
}

ParallelRunner::ParallelRunner(unsigned threads)
    : threads_(threads > 0 ? threads : defaultJobs())
{
    if (threads_ > 1)
        pool_ = std::make_unique<ThreadPool>(threads_);
}

ParallelRunner::~ParallelRunner() = default;

void
ParallelRunner::forEach(size_t count,
                        const std::function<void(size_t)> &job) const
{
    // Deterministic by construction: batch/job totals depend only on
    // the work requested, never on how it is scheduled.
    static const obs::Counter batches =
        obs::globalMetrics().counter("runner.batches");
    static const obs::Counter jobs =
        obs::globalMetrics().counter("runner.jobs");
    batches.inc();
    jobs.inc(count);

    if (!pool_) {
        for (size_t i = 0; i < count; ++i)
            job(i);
        return;
    }
    std::mutex error_mutex;
    std::exception_ptr first_error;
    for (size_t i = 0; i < count; ++i) {
        pool_->submit([&job, &error_mutex, &first_error, i] {
            try {
                job(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        });
    }
    pool_->wait();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace tpred
