/**
 * @file
 * Parallel experiment engine: shards independent (workload x seed x
 * config) jobs across a work-stealing thread pool with deterministic
 * result ordering — results are keyed by job index, never by
 * completion order, so a parallel run is bit-identical to a serial
 * one.  See docs/parallelism.md.
 */

#ifndef TPRED_HARNESS_PARALLEL_RUNNER_HH
#define TPRED_HARNESS_PARALLEL_RUNNER_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "harness/thread_pool.hh"

namespace tpred
{

/**
 * Process-wide default worker count used when a runner is constructed
 * with 0 threads: setDefaultJobs() if called, else the TPRED_JOBS
 * environment variable, else the hardware concurrency.
 */
unsigned defaultJobs();

/** Overrides defaultJobs(); 0 restores the automatic value. */
void setDefaultJobs(unsigned jobs);

/**
 * Runs an indexed batch of independent jobs across a thread pool.
 *
 * Determinism contract: every job must be a pure function of its
 * index (plus immutable shared inputs such as cached traces), and
 * results are stored at their job's index, so output is independent
 * of thread count and scheduling.  With one thread, jobs run inline
 * on the calling thread with no pool involved.
 */
class ParallelRunner
{
  public:
    /** @param threads Worker count; 0 means defaultJobs(). */
    explicit ParallelRunner(unsigned threads = 0);
    ~ParallelRunner();

    ParallelRunner(const ParallelRunner &) = delete;
    ParallelRunner &operator=(const ParallelRunner &) = delete;

    unsigned threads() const { return threads_; }

    /**
     * Runs job(i) for every i in [0, count) and blocks until all
     * finish.  The first exception thrown by a job is rethrown here
     * after the batch drains.
     */
    void forEach(size_t count,
                 const std::function<void(size_t)> &job) const;

    /**
     * forEach() collecting job(i) into a vector keyed by index.
     * T must be default-constructible.
     */
    template <typename T>
    std::vector<T>
    map(size_t count, const std::function<T(size_t)> &job) const
    {
        std::vector<T> results(count);
        forEach(count, [&](size_t i) { results[i] = job(i); });
        return results;
    }

  private:
    unsigned threads_;
    std::unique_ptr<ThreadPool> pool_;  ///< null when running inline
};

} // namespace tpred

#endif // TPRED_HARNESS_PARALLEL_RUNNER_HH
