#include "harness/run_options.hh"

#include <atomic>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "corpus/corpus.hh"
#include "harness/experiment.hh"
#include "harness/parallel_runner.hh"
#include "harness/trace_cache.hh"
#include "obs/metrics.hh"

namespace tpred
{

namespace
{

/** -1 = follow TPRED_VERBOSE; 0/1 = explicit override. */
std::atomic<int> g_verbose{-1};

[[noreturn]] void
die(const std::string &message)
{
    std::fprintf(stderr, "%s\n", message.c_str());
    std::exit(2);
}

bool
envTruthy(const char *value)
{
    return value != nullptr && *value != '\0' &&
           std::strcmp(value, "0") != 0;
}

} // namespace

unsigned
parseJobsValue(const char *text, const char *what)
{
    if (text == nullptr || *text == '\0')
        die(std::string(what) + ": empty worker-thread count");
    unsigned long value = 0;
    for (const char *p = text; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            die(std::string(what) + ": malformed worker-thread "
                                    "count '" +
                text + "' (expect a non-negative integer)");
        value = value * 10 + static_cast<unsigned long>(*p - '0');
        if (value > UINT_MAX)
            die(std::string(what) + ": worker-thread count '" + text +
                "' is out of range");
    }
    return static_cast<unsigned>(value);
}

RunOptions
RunOptions::fromEnvAndArgv(int &argc, char **argv, size_t fallback_ops,
                           bool positional_ops)
{
    RunOptions opt;
    opt.ops = fallback_ops;

    // Environment first; argv below overrides.
    try {
        if (const char *env = std::getenv("TPRED_OPS"))
            opt.ops = parseOps(env, "TPRED_OPS");
    } catch (const std::exception &e) {
        die(e.what());
    }
    if (const char *env = std::getenv("TPRED_JOBS"))
        opt.jobs = parseJobsValue(env, "TPRED_JOBS");
    if (const char *env = std::getenv("TPRED_CORPUS_DIR"))
        if (*env != '\0')
            opt.corpusDir = env;
    if (const char *env = std::getenv("TPRED_REPORT"))
        if (*env != '\0')
            opt.reportPath = env;
    opt.verbose = envTruthy(std::getenv("TPRED_VERBOSE"));

    // Consume recognized flags anywhere in argv; keep the rest in
    // order for the tool-specific parser.
    const auto value_of = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc)
            die(std::string(flag) + ": missing argument");
        return argv[++i];
    };
    int kept = 1;
    try {
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strcmp(arg, "--ops") == 0)
                opt.ops = parseOps(value_of(i, "--ops"), "--ops");
            else if (std::strcmp(arg, "--jobs") == 0)
                opt.jobs =
                    parseJobsValue(value_of(i, "--jobs"), "--jobs");
            else if (std::strcmp(arg, "--corpus") == 0)
                opt.corpusDir = value_of(i, "--corpus");
            else if (std::strcmp(arg, "--report") == 0)
                opt.reportPath = value_of(i, "--report");
            else if (std::strcmp(arg, "--verbose") == 0)
                opt.verbose = true;
            else
                argv[kept++] = argv[i];
        }
    } catch (const std::exception &e) {
        die(e.what());
    }
    argc = kept;
    argv[argc] = nullptr;

    // Bench convention: a leading positional argument is the
    // instruction count, and it must parse — "2m" or "-3" die loudly
    // (resolveOps()'s contract), never run with a silent default.
    if (positional_ops && argc > 1) {
        try {
            opt.ops = parseOps(argv[1], "argv[1]");
        } catch (const std::exception &e) {
            die(e.what());
        }
        for (int i = 2; i < argc; ++i)
            argv[i - 1] = argv[i];
        argv[--argc] = nullptr;
    }
    return opt;
}

void
RunOptions::apply() const
{
    setDefaultJobs(jobs);
    setVerboseLogging(verbose);
    if (!corpusDir.empty())
        globalTraceCache().attachCorpus(std::make_shared<CorpusManager>(
            corpusDir, &obs::globalMetrics()));
}

bool
verboseLogging()
{
    const int overridden = g_verbose.load(std::memory_order_relaxed);
    if (overridden >= 0)
        return overridden != 0;
    static const bool from_env =
        envTruthy(std::getenv("TPRED_VERBOSE"));
    return from_env;
}

void
setVerboseLogging(bool enabled)
{
    g_verbose.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

} // namespace tpred
