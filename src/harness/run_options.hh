/**
 * @file
 * One place for the option vocabulary every tpred binary shares.
 *
 * Before this existed, the knobs lived in four env vars parsed in
 * four places (TPRED_JOBS in parallel_runner.cc, TPRED_OPS in
 * experiment.cc, TPRED_CORPUS_DIR and TPRED_VERBOSE in
 * trace_cache.cc) plus per-tool argv parsing.  RunOptions parses the
 * whole set once — env first, argv overriding — with resolveOps()'s
 * fail-loud contract: a malformed value prints to stderr and exits
 * with status 2, never a silent fallback.
 *
 * Recognized argv (consumed; tool-specific flags are left in place):
 *
 *   N (argv[1])       instruction count (benches' positional arg)
 *   --ops N           instruction count
 *   --jobs N          worker threads (0 = hardware concurrency)
 *   --corpus DIR      persistent trace corpus directory
 *   --report FILE     write a tpred-run-report/1 JSON file
 *   --verbose         log cache/corpus traffic to stderr
 *
 * Environment: TPRED_OPS, TPRED_JOBS, TPRED_CORPUS_DIR, TPRED_REPORT,
 * TPRED_VERBOSE.
 */

#ifndef TPRED_HARNESS_RUN_OPTIONS_HH
#define TPRED_HARNESS_RUN_OPTIONS_HH

#include <cstddef>
#include <string>

namespace tpred
{

struct RunOptions
{
    size_t ops = 0;          ///< resolved instruction budget
    unsigned jobs = 0;       ///< 0 = automatic (hardware concurrency)
    std::string corpusDir;   ///< empty = no corpus requested
    std::string reportPath;  ///< empty = no report requested
    bool verbose = false;

    /**
     * Parses the shared vocabulary from the environment and argv.
     *
     * Recognized flags (and, when @p positional_ops, a numeric
     * argv[1]) are removed from argv/argc so a tool-specific parser
     * sees only what is left.  Precedence: argv over environment
     * over @p fallback_ops.  Malformed values (non-numeric ops or
     * jobs, missing flag argument) print to stderr and exit 2.
     *
     * @param positional_ops Treat a non-flag argv[1] as the
     *        instruction count (bench convention).  Disable for
     *        tools whose argv[1] is a subcommand (tpredcorpus).
     */
    static RunOptions fromEnvAndArgv(int &argc, char **argv,
                                     size_t fallback_ops,
                                     bool positional_ops = true);

    /**
     * Applies the process-wide effects: default job count, verbose
     * logging, and (when corpusDir is set) attaching a CorpusManager
     * to the global trace cache.
     * @throws std::runtime_error when the corpus dir cannot be made.
     */
    void apply() const;
};

/**
 * Whether verbose cache/corpus traffic logging is enabled: set
 * explicitly via setVerboseLogging() / RunOptions::apply(), else the
 * TPRED_VERBOSE environment variable (any value but "" and "0").
 */
bool verboseLogging();

/** Overrides the TPRED_VERBOSE-derived default. */
void setVerboseLogging(bool enabled);

/**
 * Strictly parses a worker-thread count (0 = automatic allowed).
 * Prints to stderr and exits 2 on malformed input — shared by
 * RunOptions and the TPRED_JOBS fallback in defaultJobs().
 * @param what Label used in the error message ("--jobs", "TPRED_JOBS").
 */
unsigned parseJobsValue(const char *text, const char *what);

} // namespace tpred

#endif // TPRED_HARNESS_RUN_OPTIONS_HH
