#include "harness/shard_replay.hh"

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <span>

#include "common/state_io.hh"
#include "harness/thread_pool.hh"
#include "obs/metrics.hh"

namespace tpred
{

namespace
{

// ---- Metrics ------------------------------------------------------
// The deterministic pair is incremented identically by the streaming
// and the sharded entry points, so a sharded replay is
// counter-indistinguishable from a continuous one (asserted by
// tests/test_shard_replay.cc).  Window/warm-up/checkpoint counts
// depend on segment granularity and shard count, hence Runtime.

struct ShardMetrics
{
    obs::Counter accuracyRuns;
    obs::Counter timingRuns;
    obs::Counter opsReplayed;
    obs::Counter windowsOpened;
    obs::Counter checkpoints;
    obs::Counter checkpointBytes;
    obs::Counter warmupOps;
    obs::Counter proofMismatches;
};

const ShardMetrics &
shardMetrics()
{
    static const ShardMetrics m{
        obs::globalMetrics().counter("shard.accuracy_runs"),
        obs::globalMetrics().counter("shard.timing_runs"),
        obs::globalMetrics().counter("shard.ops_replayed"),
        obs::globalMetrics().counter("shard.windows_opened",
                                     obs::MetricKind::Runtime),
        obs::globalMetrics().counter("shard.checkpoints",
                                     obs::MetricKind::Runtime),
        obs::globalMetrics().counter("shard.checkpoint_bytes",
                                     obs::MetricKind::Runtime),
        obs::globalMetrics().counter("shard.warmup_ops",
                                     obs::MetricKind::Runtime),
        obs::globalMetrics().counter("shard.proof_mismatches",
                                     obs::MetricKind::Runtime),
    };
    return m;
}

// ---- Replay state bundles -----------------------------------------

/** Accuracy-path state: front end + borrowed predictor/tracker. */
struct AccuracyRig
{
    PredictorStack stack;
    FrontendPredictor frontend;

    AccuracyRig(const IndirectConfig &config, const FrontendConfig &fe)
        : stack(buildStack(config)),
          frontend(fe, stack.predictor.get(), stack.tracker.get())
    {
    }

    void
    save(StateWriter &w) const
    {
        frontend.saveState(w);
        if (stack.predictor) {
            stack.predictor->saveState(w);
            stack.tracker->saveState(w);
        }
    }

    void
    restore(StateReader &r)
    {
        frontend.restoreState(r);
        if (stack.predictor) {
            stack.predictor->restoreState(r);
            stack.tracker->restoreState(r);
        }
        r.expectEnd();
    }
};

/** Timing-path state: the accuracy rig plus the core model. */
struct TimingRig
{
    PredictorStack stack;
    FrontendPredictor frontend;
    CoreModel core;

    TimingRig(const IndirectConfig &config, const FrontendConfig &fe,
              const CoreParams &params)
        : stack(buildStack(config)),
          frontend(fe, stack.predictor.get(), stack.tracker.get()),
          core(params)
    {
    }

    void
    save(StateWriter &w) const
    {
        core.saveState(w);
        frontend.saveState(w);
        if (stack.predictor) {
            stack.predictor->saveState(w);
            stack.tracker->saveState(w);
        }
    }

    void
    restore(StateReader &r)
    {
        core.restoreState(r);
        frontend.restoreState(r);
        if (stack.predictor) {
            stack.predictor->restoreState(r);
            stack.tracker->restoreState(r);
        }
        r.expectEnd();
    }
};

template <typename Rig>
std::vector<uint8_t>
snapshot(const Rig &rig)
{
    StateWriter w;
    rig.save(w);
    return w.take();
}

/** Byte-exact comparison of a live state against a serial snapshot. */
template <typename Rig>
bool
matches(const Rig &rig, const std::vector<uint8_t> &expected)
{
    const bool equal = snapshot(rig) == expected;
    if (!equal)
        shardMetrics().proofMismatches.inc();
    return equal;
}

// ---- Shard geometry -----------------------------------------------

struct ShardPlan
{
    std::vector<uint64_t> bounds;  ///< b_0=0 .. b_S=totalOps
    std::vector<uint64_t> sites;   ///< checkpoint site per shard
    std::vector<uint64_t> points;  ///< serial capture set, ascending
};

ShardPlan
planShards(const SegmentedTrace &trace, unsigned shards)
{
    const uint64_t total = trace.totalOps();
    const unsigned s = std::max(1u, shards);
    ShardPlan plan;
    plan.bounds.resize(s + 1);
    for (unsigned k = 0; k <= s; ++k)
        plan.bounds[k] = total * k / s;
    plan.sites.resize(s);
    for (unsigned k = 0; k < s; ++k) {
        // The last segment boundary at or before b_k: where a
        // checkpoint can pair with a window that starts decoding
        // exactly there.
        plan.sites[k] =
            trace.record(trace.segmentContaining(plan.bounds[k]))
                .firstOp;
    }
    plan.points = plan.sites;
    plan.points.insert(plan.points.end(), plan.bounds.begin(),
                       plan.bounds.end() - 1);
    std::sort(plan.points.begin(), plan.points.end());
    plan.points.erase(
        std::unique(plan.points.begin(), plan.points.end()),
        plan.points.end());
    return plan;
}

// ---- Accuracy-range replayer --------------------------------------

/**
 * Replays global ops [from, to) through @p frontend via the branch-
 * index fast path, one segment window at a time, invoking
 * @p capture(pos) with the state positioned exactly *before* op @p pos
 * for every pos in @p points (ascending, each in [from, to]).
 */
void
replayAccuracyRange(const SegmentedTrace &trace,
                    FrontendPredictor &frontend, uint64_t from,
                    uint64_t to, std::span<const uint64_t> points,
                    const std::function<void(uint64_t)> &capture)
{
    size_t pi = 0;
    uint64_t consumed = from;
    const auto capture_upto = [&](uint64_t limit) {
        while (pi < points.size() && points[pi] <= limit) {
            frontend.skipNonBranches(points[pi] - consumed);
            consumed = points[pi];
            capture(points[pi]);
            ++pi;
        }
    };

    if (to > from) {
        // Windows are consumed in ascending order, so the next one
        // can be mapped+validated in the background while this one
        // feeds the frontend (bit-identical either way; the shard
        // checkpoint proofs enforce it end to end).
        SegmentPrefetcher prefetch(trace);
        for (size_t i = trace.segmentContaining(from);
             i < trace.segmentCount() && trace.record(i).firstOp < to;
             ++i) {
            const uint64_t base = trace.record(i).firstOp;
            const auto segment = prefetch.fetch(i);
            shardMetrics().windowsOpened.inc();
            segment->forEachBranch(
                [&](const MicroOp &op, size_t pos) {
                    const uint64_t g = base + pos;
                    if (g < consumed || g >= to)
                        return;  // outside [from, to)
                    capture_upto(g);
                    frontend.skipNonBranches(g - consumed);
                    frontend.onInstruction(op);
                    consumed = g + 1;
                });
        }
    }
    capture_upto(to);
    frontend.skipNonBranches(to - consumed);
}

unsigned
poolThreads(const ShardOptions &opts, unsigned shards)
{
    if (opts.threads != 0)
        return opts.threads;
    return std::max(1u,
                    std::min(shards, ThreadPool::hardwareThreads()));
}

} // namespace

FrontendStats
runAccuracyStreaming(const std::shared_ptr<const SegmentedTrace> &trace,
                     const IndirectConfig &config,
                     const FrontendConfig &fe)
{
    const ShardMetrics &m = shardMetrics();
    m.accuracyRuns.inc();
    m.opsReplayed.inc(trace->totalOps());

    AccuracyRig rig(config, fe);
    replayAccuracyRange(*trace, rig.frontend, 0, trace->totalOps(), {},
                        [](uint64_t) {});
    creditBtbCounters(rig.frontend.btb().hstats());
    return rig.frontend.stats();
}

CoreResult
runTimingStreaming(const std::shared_ptr<const SegmentedTrace> &trace,
                   const IndirectConfig &config,
                   const CoreParams &params, const FrontendConfig &fe)
{
    const ShardMetrics &m = shardMetrics();
    m.timingRuns.inc();
    m.opsReplayed.inc(trace->totalOps());

    TimingRig rig(config, fe, params);
    SegmentedReplay replay(trace, 0,
                           [&m] { m.windowsOpened.inc(); });
    rig.core.beginSession();
    rig.core.runSession(replay, rig.frontend, trace->totalOps(),
                        UINT64_MAX);
    const CoreResult result = rig.core.endSession(rig.frontend);
    creditBtbCounters(rig.frontend.btb().hstats());
    return result;
}

ShardedAccuracyResult
runAccuracySharded(const std::shared_ptr<const SegmentedTrace> &trace,
                   const IndirectConfig &config,
                   const ShardOptions &opts, const FrontendConfig &fe)
{
    const ShardMetrics &m = shardMetrics();
    m.accuracyRuns.inc();
    m.opsReplayed.inc(trace->totalOps());

    const uint64_t total = trace->totalOps();
    const ShardPlan plan = planShards(*trace, opts.shards);
    const unsigned shards =
        static_cast<unsigned>(plan.sites.size());

    // Serial checkpoint pass: the only full-trace walk.  Snapshots
    // land keyed by op position; proof positions and checkpoint sites
    // that coincide share one blob.
    std::map<uint64_t, std::vector<uint8_t>> blobs;
    AccuracyRig serial(config, fe);
    std::vector<uint64_t> points = plan.points;
    points.push_back(total);  // final proof, after the last op
    points.erase(std::unique(points.begin(), points.end()),
                 points.end());
    replayAccuracyRange(*trace, serial.frontend, 0, total, points,
                        [&](uint64_t pos) {
                            blobs[pos] = snapshot(serial);
                        });

    ShardedAccuracyResult out;
    // The serial checkpoint pass replays the whole trace exactly once;
    // it is the counted pass.  Shard fan-out rigs below never credit.
    creditBtbCounters(serial.frontend.btb().hstats());
    out.serial = serial.frontend.stats();
    out.shards.resize(shards);
    for (const auto &[pos, blob] : blobs)
        out.checkpointBytes += blob.size();
    m.checkpoints.inc(blobs.size());
    m.checkpointBytes.inc(out.checkpointBytes);

    // Shard fan-out: each task restores its site checkpoint, warms up
    // to b_k, replays its region, and byte-compares both edges.
    ThreadPool pool(poolThreads(opts, shards));
    FrontendStats final_stats;
    for (unsigned k = 0; k < shards; ++k) {
        ShardProof &proof = out.shards[k];
        proof.checkpointOp = plan.sites[k];
        proof.beginOp = plan.bounds[k];
        proof.endOp = plan.bounds[k + 1];
        proof.warmupOps = proof.beginOp - proof.checkpointOp;
        m.warmupOps.inc(proof.warmupOps);
        const bool last = k + 1 == shards;
        pool.submit([&, k, last] {
            ShardProof &p = out.shards[k];
            try {
                AccuracyRig shard(config, fe);
                StateReader r(blobs.at(p.checkpointOp));
                shard.restore(r);
                const uint64_t end = last ? total : p.endOp;
                const std::array<uint64_t, 2> edges{p.beginOp, end};
                int edge = 0;
                replayAccuracyRange(
                    *trace, shard.frontend, p.checkpointOp, end, edges,
                    [&](uint64_t pos) {
                        const bool ok = matches(shard, blobs.at(pos));
                        (edge++ == 0 ? p.entryMatched
                                     : p.exitMatched) = ok;
                    });
                if (last)
                    final_stats = shard.frontend.stats();
            } catch (const std::exception &e) {
                p.error = e.what();
            }
        });
    }
    pool.wait();
    out.stats = final_stats;
    return out;
}

ShardedTimingResult
runTimingSharded(const std::shared_ptr<const SegmentedTrace> &trace,
                 const IndirectConfig &config, const ShardOptions &opts,
                 const CoreParams &params, const FrontendConfig &fe)
{
    const ShardMetrics &m = shardMetrics();
    m.timingRuns.inc();
    m.opsReplayed.inc(trace->totalOps());

    const uint64_t total = trace->totalOps();
    const ShardPlan plan = planShards(*trace, opts.shards);
    const unsigned shards =
        static_cast<unsigned>(plan.sites.size());

    // Serial checkpoint pass: one continuous session, suspended at
    // each capture point via the exact-op-boundary stop, then run to
    // completion for the final proof snapshot.
    std::map<uint64_t, std::vector<uint8_t>> blobs;
    TimingRig serial(config, fe, params);
    SegmentedReplay replay(trace, 0,
                           [&m] { m.windowsOpened.inc(); });
    serial.core.beginSession();
    for (uint64_t pos : plan.points) {
        if (pos > 0)
            serial.core.runSession(replay, serial.frontend, total,
                                   pos);
        blobs[pos] = snapshot(serial);
    }
    serial.core.runSession(replay, serial.frontend, total, UINT64_MAX);
    blobs[total] = snapshot(serial);

    ShardedTimingResult out;
    // Counted pass: the serial checkpoint replay (shards never credit).
    creditBtbCounters(serial.frontend.btb().hstats());
    out.serial = serial.core.endSession(serial.frontend);
    out.shards.resize(shards);
    for (const auto &[pos, blob] : blobs)
        out.checkpointBytes += blob.size();
    m.checkpoints.inc(blobs.size());
    m.checkpointBytes.inc(out.checkpointBytes);

    ThreadPool pool(poolThreads(opts, shards));
    CoreResult final_result;
    for (unsigned k = 0; k < shards; ++k) {
        ShardProof &proof = out.shards[k];
        proof.checkpointOp = plan.sites[k];
        proof.beginOp = plan.bounds[k];
        proof.endOp = plan.bounds[k + 1];
        proof.warmupOps = proof.beginOp - proof.checkpointOp;
        m.warmupOps.inc(proof.warmupOps);
        const bool last = k + 1 == shards;
        pool.submit([&, k, last] {
            ShardProof &p = out.shards[k];
            try {
                TimingRig shard(config, fe, params);
                StateReader r(blobs.at(p.checkpointOp));
                shard.restore(r);
                SegmentedReplay source(
                    trace, p.checkpointOp,
                    [&m] { m.windowsOpened.inc(); });
                if (p.beginOp > p.checkpointOp) {
                    shard.core.runSession(source, shard.frontend,
                                          total, p.beginOp);
                }
                p.entryMatched =
                    matches(shard, blobs.at(p.beginOp));
                if (last) {
                    shard.core.runSession(source, shard.frontend,
                                          total, UINT64_MAX);
                    p.exitMatched = matches(shard, blobs.at(total));
                    final_result = shard.core.endSession(
                        shard.frontend, /*count_metrics=*/false);
                } else {
                    if (p.endOp > p.beginOp) {
                        shard.core.runSession(source, shard.frontend,
                                              total, p.endOp);
                    }
                    p.exitMatched =
                        matches(shard, blobs.at(p.endOp));
                }
            } catch (const std::exception &e) {
                p.error = e.what();
            }
        });
    }
    pool.wait();
    out.result = final_result;
    return out;
}

BranchStream
extractBranchStream(const SegmentedTrace &trace)
{
    if (trace.totalOps() > UINT32_MAX)
        throw std::length_error(
            "extractBranchStream: BranchStream positions are 32-bit; "
            "trace has " + std::to_string(trace.totalOps()) + " ops");
    BranchStreamBuilder out;
    out.opCount = trace.totalOps();
    out.reserve(trace.totalBranches());

    // Segments are consumed strictly in order, so segment i+1 can be
    // mapped, validated and decoded while segment i is being
    // extracted — same bytes, same order, just overlapped with the
    // extraction work (see SegmentPrefetcher).
    SegmentPrefetcher prefetch(trace);
    for (size_t i = 0; i < trace.segmentCount(); ++i) {
        const uint32_t base =
            static_cast<uint32_t>(trace.record(i).firstOp);
        const auto segment = prefetch.fetch(i);
        shardMetrics().windowsOpened.inc();
        const BranchStream part = BranchStream::extract(*segment);
        for (size_t j = 0; j < part.size(); ++j)
            out.pos.push_back(base + part.pos[j]);
        out.pc.insert(out.pc.end(), part.pc.begin(), part.pc.end());
        out.target.insert(out.target.end(), part.target.begin(),
                          part.target.end());
        out.fallthrough.insert(out.fallthrough.end(),
                               part.fallthrough.begin(),
                               part.fallthrough.end());
        out.kind.insert(out.kind.end(), part.kind.begin(),
                        part.kind.end());
        out.taken.insert(out.taken.end(), part.taken.begin(),
                         part.taken.end());
    }
    return std::move(out).finish();
}

} // namespace tpred
