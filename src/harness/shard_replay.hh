/**
 * @file
 * Streaming and sharded replay over segmented trace containers.
 *
 * Streaming replay (runAccuracyStreaming / runTimingStreaming) walks
 * a SegmentedTrace one mapped window at a time, so a trace of any
 * length replays at O(segment size) peak memory.
 *
 * Sharded replay splits one trace's replay into S contiguous regions
 * at boundaries b_k = floor(totalOps * k / S) and runs them on the
 * ThreadPool.  Exactness — not approximation — comes from explicit
 * checkpoints:
 *
 *  1. A serial streaming pass replays the trace once, serializing the
 *     complete replay state (front end + indirect predictor + history
 *     tracker, plus the core model on the timing path) at each shard's
 *     *checkpoint site* — the last segment boundary at or before b_k —
 *     and proof snapshots at every b_k and at the end of the trace.
 *  2. Each shard restores its site checkpoint into a fresh predictor
 *     stack, replays the short warm-up window [site_k, b_k) from its
 *     own segment windows, then its region [b_k, b_{k+1}).  At both
 *     edges the shard's state is re-serialized and byte-compared
 *     against the serial pass's snapshot at the same op position: the
 *     differential proof that sharded replay is bit-identical to the
 *     continuous serial replay (docs/parallelism.md gives the
 *     exactness argument).
 *
 * The returned stats/results come from the final shard's own replay,
 * so the bit-identity tests (tests/test_shard_replay.cc) compare two
 * genuinely independent computations.
 */

#ifndef TPRED_HARNESS_SHARD_REPLAY_HH
#define TPRED_HARNESS_SHARD_REPLAY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corpus/segmented_trace.hh"
#include "harness/experiment.hh"
#include "trace/branch_stream.hh"

namespace tpred
{

/** How to shard a replay. */
struct ShardOptions
{
    unsigned shards = 1;   ///< number of contiguous regions S
    unsigned threads = 0;  ///< pool size; 0 = min(S, hardware)
};

/** What one shard did, and whether its differential proof held. */
struct ShardProof
{
    uint64_t checkpointOp = 0;  ///< restored-from segment boundary
    uint64_t beginOp = 0;       ///< b_k, start of the timed region
    uint64_t endOp = 0;         ///< b_{k+1}
    uint64_t warmupOps = 0;     ///< beginOp - checkpointOp
    bool entryMatched = false;  ///< warm-up reproduced serial @ b_k
    bool exitMatched = false;   ///< region end matched serial @ b_{k+1}
    std::string error;          ///< non-empty when the task failed

    bool ok() const { return entryMatched && exitMatched && error.empty(); }
};

/** Result of a sharded accuracy replay. */
struct ShardedAccuracyResult
{
    FrontendStats stats;    ///< from the final shard's replay
    FrontendStats serial;   ///< from the serial checkpoint pass
    std::vector<ShardProof> shards;
    uint64_t checkpointBytes = 0;  ///< total serialized state

    /** Every shard's boundary snapshots byte-matched the serial pass. */
    bool
    verified() const
    {
        for (const ShardProof &p : shards)
            if (!p.ok())
                return false;
        return !shards.empty();
    }
};

/** Result of a sharded timing replay. */
struct ShardedTimingResult
{
    CoreResult result;   ///< from the final shard's replay
    CoreResult serial;   ///< from the serial checkpoint pass
    std::vector<ShardProof> shards;
    uint64_t checkpointBytes = 0;

    bool
    verified() const
    {
        for (const ShardProof &p : shards)
            if (!p.ok())
                return false;
        return !shards.empty();
    }
};

/**
 * Accuracy replay of the whole segmented trace, one segment window
 * resident at a time.  Bit-identical to runAccuracy() on the same ops.
 */
FrontendStats
runAccuracyStreaming(const std::shared_ptr<const SegmentedTrace> &trace,
                     const IndirectConfig &config,
                     const FrontendConfig &fe = {});

/**
 * Timing replay of the whole segmented trace through the core model,
 * one segment window resident at a time.  Bit-identical to
 * runTiming() on the same ops.
 */
CoreResult
runTimingStreaming(const std::shared_ptr<const SegmentedTrace> &trace,
                   const IndirectConfig &config,
                   const CoreParams &params = {},
                   const FrontendConfig &fe = {});

/** Sharded accuracy replay with differential checkpoint proofs. */
ShardedAccuracyResult
runAccuracySharded(const std::shared_ptr<const SegmentedTrace> &trace,
                   const IndirectConfig &config,
                   const ShardOptions &opts,
                   const FrontendConfig &fe = {});

/** Sharded timing replay with differential checkpoint proofs. */
ShardedTimingResult
runTimingSharded(const std::shared_ptr<const SegmentedTrace> &trace,
                 const IndirectConfig &config, const ShardOptions &opts,
                 const CoreParams &params = {},
                 const FrontendConfig &fe = {});

/**
 * Extracts the dense branch stream of a segmented trace one window at
 * a time — O(branches) memory instead of O(ops) — so the fused sweep
 * kernel (harness/sweep_kernel.hh) can ride on segmented containers.
 * Identical to BranchStream::extract on the equivalent resident trace.
 */
BranchStream extractBranchStream(const SegmentedTrace &trace);

} // namespace tpred

#endif // TPRED_HARNESS_SHARD_REPLAY_HH
