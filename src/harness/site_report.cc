#include "harness/site_report.hh"

#include <algorithm>
#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"

namespace tpred
{

SiteReport
analyzeSites(const SharedTrace &trace, const IndirectConfig &config,
             const FrontendConfig &fe)
{
    PredictorStack stack = buildStack(config);
    FrontendPredictor frontend(fe, stack.predictor.get(),
                               stack.tracker.get());

    struct Accum
    {
        uint64_t executions = 0;
        uint64_t misses = 0;
        std::unordered_set<uint64_t> targets;
    };
    std::unordered_map<uint64_t, Accum> sites;

    SiteReport report;
    // Branch-index fast path: non-branch ops only bump the frontend's
    // instruction counter and never appear in the report.
    size_t consumed = 0;
    trace.compact().forEachBranch([&](const MicroOp &op, size_t pos) {
        frontend.skipNonBranches(pos - consumed);
        consumed = pos + 1;
        PredictionOutcome outcome = frontend.onInstruction(op);
        if (!isIndirectNonReturn(op.branch))
            return;
        Accum &accum = sites[op.pc];
        ++accum.executions;
        accum.targets.insert(op.nextPc);
        ++report.totalIndirect;
        if (!outcome.correct) {
            ++accum.misses;
            ++report.totalMisses;
        }
    });
    frontend.skipNonBranches(trace.size() - consumed);

    report.sites.reserve(sites.size());
    for (const auto &[pc, accum] : sites) {
        SiteRecord record;
        record.pc = pc;
        record.executions = accum.executions;
        record.mispredictions = accum.misses;
        record.distinctTargets = accum.targets.size();
        report.sites.push_back(record);
    }
    std::sort(report.sites.begin(), report.sites.end(),
              [](const SiteRecord &a, const SiteRecord &b) {
                  return a.mispredictions > b.mispredictions;
              });
    return report;
}

std::string
SiteReport::render(size_t top_n) const
{
    Table table;
    table.setHeader({"site", "executions", "targets", "misses",
                     "miss rate", "% of all misses"});
    const size_t n = std::min(top_n, sites.size());
    for (size_t i = 0; i < n; ++i) {
        const SiteRecord &site = sites[i];
        char pc_hex[32];
        std::snprintf(pc_hex, sizeof(pc_hex), "0x%llx",
                      static_cast<unsigned long long>(site.pc));
        table.addRow({pc_hex, formatCount(site.executions),
                      std::to_string(site.distinctTargets),
                      formatCount(site.mispredictions),
                      formatPercent(site.missRate(), 1),
                      formatPercent(
                          totalMisses
                              ? static_cast<double>(
                                    site.mispredictions) /
                                    static_cast<double>(totalMisses)
                              : 0.0,
                          1)});
    }
    return table.render();
}

} // namespace tpred
