/**
 * @file
 * Per-site misprediction analysis: which static indirect jumps cost
 * the mispredictions, how polymorphic they are, and how a predictor
 * configuration fares on each — the drill-down behind the aggregate
 * rates of the paper's tables.
 */

#ifndef TPRED_HARNESS_SITE_REPORT_HH
#define TPRED_HARNESS_SITE_REPORT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "harness/experiment.hh"

namespace tpred
{

/** Accuracy record of one static indirect jump site. */
struct SiteRecord
{
    uint64_t pc = 0;
    uint64_t executions = 0;
    uint64_t mispredictions = 0;
    size_t distinctTargets = 0;

    double
    missRate() const
    {
        return executions ? static_cast<double>(mispredictions) /
                                static_cast<double>(executions)
                          : 0.0;
    }
};

/** Full per-site analysis result. */
struct SiteReport
{
    std::vector<SiteRecord> sites;   ///< sorted by mispredictions, desc
    uint64_t totalIndirect = 0;
    uint64_t totalMisses = 0;

    /** Renders the top @p top_n sites as an aligned table. */
    std::string render(size_t top_n = 10) const;
};

/**
 * Replays @p trace through a front end built from @p config and
 * attributes every indirect-jump misprediction to its static site.
 */
SiteReport analyzeSites(const SharedTrace &trace,
                        const IndirectConfig &config,
                        const FrontendConfig &fe = {});

} // namespace tpred

#endif // TPRED_HARNESS_SITE_REPORT_HH
