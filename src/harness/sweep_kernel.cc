#include "harness/sweep_kernel.hh"

#include <cstdint>
#include <optional>

#include "bpred/btb.hh"
#include "bpred/gshare.hh"
#include "bpred/ras.hh"
#include "bpred/tournament.hh"
#include "obs/metrics.hh"
#include "trace/branch_stream.hh"

namespace tpred
{

namespace
{

/** Per-config state the fusion cannot share. */
struct Member
{
    std::unique_ptr<IndirectPredictor> predictor;  ///< null for None
    size_t tracker = SIZE_MAX;  ///< index into the deduped trackers
    uint64_t history = 0;       ///< fetch-time value of the last probe
    RatioStat indirect;         ///< next-PC outcomes at indirect jumps
};

} // namespace

std::vector<std::vector<size_t>>
groupByHistory(std::span<const IndirectConfig> configs)
{
    std::vector<std::vector<size_t>> groups;
    std::vector<HistorySpec> specs;
    for (size_t i = 0; i < configs.size(); ++i) {
        size_t g = specs.size();
        for (size_t k = 0; k < specs.size(); ++k) {
            if (specs[k] == configs[i].history) {
                g = k;
                break;
            }
        }
        if (g == specs.size()) {
            specs.push_back(configs[i].history);
            groups.emplace_back();
        }
        groups[g].push_back(i);
    }
    return groups;
}

std::vector<FrontendStats>
runSweep(const SharedTrace &trace,
         std::span<const IndirectConfig> configs,
         const FrontendConfig &fe)
{
    static const obs::Counter streams_built =
        obs::globalMetrics().counter("sweep.streams_built");
    if (configs.empty())
        return {};
    const BranchStream &stream =
        trace.compact().branchStream([] { streams_built.inc(); });
    return runSweep(stream, configs, fe);
}

std::vector<FrontendStats>
runSweep(const BranchStream &stream,
         std::span<const IndirectConfig> configs,
         const FrontendConfig &fe)
{
    static const obs::Counter batches =
        obs::globalMetrics().counter("sweep.batches");
    static const obs::Counter swept_configs =
        obs::globalMetrics().counter("sweep.configs");
    static const obs::Counter history_groups =
        obs::globalMetrics().counter("sweep.history_groups");
    static const obs::Counter branches_fused =
        obs::globalMetrics().counter("sweep.branches");
    static const obs::Timer phase =
        obs::globalMetrics().timer("phase.sweep");

    if (configs.empty())
        return {};

    obs::ScopedTimer timed(phase);
    batches.inc();
    swept_configs.inc(configs.size());
    branches_fused.inc(stream.size());

    // --- Batch state ----------------------------------------------
    // One tracker per distinct HistorySpec; members point into the
    // deduped list.  Configs without an indirect predictor carry no
    // tracker, exactly like buildStack().
    std::vector<std::unique_ptr<HistoryTracker>> trackers;
    std::vector<Member> members(configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        PredictorStack stack = buildStack(configs[i]);
        members[i].predictor = std::move(stack.predictor);
        if (!members[i].predictor)
            continue;
        size_t t = trackers.size();
        for (size_t k = 0; k < trackers.size(); ++k) {
            if (trackers[k]->spec() == configs[i].history) {
                t = k;
                break;
            }
        }
        if (t == trackers.size())
            trackers.push_back(std::move(stack.tracker));
        members[i].tracker = t;
    }
    history_groups.inc(trackers.size());

    // --- Shared architectural core --------------------------------
    // Trained only with architectural outcomes, so its trajectory is
    // independent of any member's predictions: one instance stands in
    // for the per-config copies runAccuracy() would build.
    Btb btb(fe.btb);
    GShare gshare(fe.gshareIndexBits);
    TournamentPredictor tournament(fe.tournament);
    PatternHistory ghr(fe.gshareHistoryBits);
    ReturnAddressStack ras(fe.rasDepth);
    const bool use_tournament =
        fe.direction == DirectionScheme::Tournament;

    // Accumulators for the classes whose outcomes are config-
    // independent; per-member divergence exists only at indirect
    // jumps and calls.
    RatioStat shared_non_indirect;  ///< allBranches minus indirect
    RatioStat cond_direction;
    RatioStat cond_branches;
    RatioStat uncond_direct;
    RatioStat returns;
    RatioStat btb_hits;

    const size_t n = stream.size();
    for (size_t i = 0; i < n; ++i) {
        const MicroOp op = stream.opAt(i);
        const uint64_t pc = stream.pc[i];
        const uint64_t next_pc = stream.target[i];
        const uint64_t fall = stream.fallthrough[i];
        const auto kind = static_cast<BranchKind>(stream.kind[i]);
        const bool taken = stream.taken[i] != 0;

        const std::optional<BtbPrediction> btb_pred = btb.lookup(pc);
        btb_hits.record(btb_pred.has_value());

        switch (kind) {
          case BranchKind::CondDirect: {
            const bool dir = use_tournament
                                 ? tournament.predict(pc, ghr.value())
                                 : gshare.predict(pc, ghr.value());
            uint64_t predicted = fall;
            if (dir && btb_pred)
                predicted = btb_pred->target;
            const bool correct = predicted == next_pc;
            shared_non_indirect.record(correct);
            cond_direction.record(dir == taken);
            cond_branches.record(correct);
            break;
          }

          case BranchKind::UncondDirect:
          case BranchKind::Call: {
            const uint64_t predicted =
                btb_pred ? btb_pred->target : fall;
            const bool correct = predicted == next_pc;
            shared_non_indirect.record(correct);
            uncond_direct.record(correct);
            break;
          }

          case BranchKind::Return: {
            const uint64_t predicted = ras.pop();
            const bool correct = predicted == next_pc;
            shared_non_indirect.record(correct);
            returns.record(correct);
            break;
          }

          case BranchKind::IndirectJump:
          case BranchKind::IndirectCall: {
            // The only per-member work on the whole path.  Fetch-time
            // history is read before any tracker observes this op,
            // matching the per-config ordering.
            for (Member &m : members) {
                uint64_t predicted = fall;
                m.history = 0;
                if (m.predictor) {
                    m.history = trackers[m.tracker]->valueFor(pc);
                    if (btb_pred) {
                        m.predictor->prime(op);
                        predicted =
                            m.predictor->predict(pc, m.history)
                                .value_or(btb_pred->target);
                    }
                } else if (btb_pred) {
                    predicted = btb_pred->target;
                }
                m.indirect.record(predicted == next_pc);
            }
            break;
          }

          case BranchKind::None:
            break;  // forEachBranch never yields these
        }

        if (kind == BranchKind::Call ||
            kind == BranchKind::IndirectCall) {
            ras.push(fall);
        }

        // --- Training (architectural, hence shared) ---------------
        if (kind == BranchKind::CondDirect) {
            if (use_tournament)
                tournament.update(pc, ghr.value(), taken);
            else
                gshare.update(pc, ghr.value(), taken);
            ghr.update(taken);
        }
        btb.update(op);
        if (isIndirectNonReturn(kind)) {
            for (Member &m : members) {
                if (m.predictor)
                    m.predictor->update(pc, m.history, next_pc);
            }
        }
        for (auto &tracker : trackers)
            tracker->observe(op);
    }

    // --- Compose per-config statistics ----------------------------
    std::vector<FrontendStats> out(configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        FrontendStats &s = out[i];
        s.instructions = stream.opCount;
        s.condDirection = cond_direction;
        s.condBranches = cond_branches;
        s.uncondDirect = uncond_direct;
        s.returns = returns;
        s.btbHits = btb_hits;
        s.indirectJumps = members[i].indirect;
        s.allBranches = shared_non_indirect;
        s.allBranches.merge(members[i].indirect);
    }
    return out;
}

} // namespace tpred
