#include "harness/sweep_kernel.hh"

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>

#include "bpred/btb_hierarchy.hh"
#include "bpred/gshare.hh"
#include "bpred/ras.hh"
#include "bpred/tournament.hh"
#include "common/state_io.hh"
#include "harness/batched_predictors.hh"
#include "obs/metrics.hh"
#include "trace/branch_stream.hh"

namespace tpred
{

std::vector<std::vector<size_t>>
groupByHistory(std::span<const IndirectConfig> configs)
{
    std::vector<std::vector<size_t>> groups;
    std::vector<HistorySpec> specs;
    for (size_t i = 0; i < configs.size(); ++i) {
        const size_t g = findOrAppendHistorySpec(specs,
                                                 configs[i].history);
        if (g == groups.size())
            groups.emplace_back();
        groups[g].push_back(i);
    }
    return groups;
}

std::vector<FrontendStats>
runSweep(const SharedTrace &trace,
         std::span<const IndirectConfig> configs,
         const FrontendConfig &fe)
{
    static const obs::Counter streams_built =
        obs::globalMetrics().counter("sweep.streams_built");
    if (configs.empty())
        return {};
    const BranchStream &stream =
        trace.compact().branchStream([] { streams_built.inc(); });
    return runSweep(stream, configs, fe);
}

std::vector<FrontendStats>
runSweep(const BranchStream &stream,
         std::span<const IndirectConfig> configs,
         const FrontendConfig &fe)
{
    static const obs::Counter batches =
        obs::globalMetrics().counter("sweep.batches");
    static const obs::Counter swept_configs =
        obs::globalMetrics().counter("sweep.configs");
    static const obs::Counter history_groups =
        obs::globalMetrics().counter("sweep.history_groups");
    static const obs::Counter branches_fused =
        obs::globalMetrics().counter("sweep.branches");
    static const obs::Timer phase =
        obs::globalMetrics().timer("phase.sweep");

    if (configs.empty())
        return {};

    obs::ScopedTimer timed(phase);
    batches.inc();
    swept_configs.inc(configs.size());
    branches_fused.inc(stream.size());

    // --- Batch state ----------------------------------------------
    // SoA family groups with deduplicated trackers; the dense live
    // lists are built once here, so the hot loop never re-tests
    // "does this member have a predictor".
    BatchedPredictors batch(configs);
    history_groups.inc(batch.trackerCount());

    // --- Shared architectural core --------------------------------
    // Trained only with architectural outcomes, so its trajectory is
    // independent of any member's predictions: one instance stands in
    // for the per-config copies runAccuracy() would build.
    std::unique_ptr<BtbHierarchy> btb = makeBtbHierarchy(fe.btb);
    GShare gshare(fe.gshareIndexBits);
    TournamentPredictor tournament(fe.tournament);
    PatternHistory ghr(fe.gshareHistoryBits);
    ReturnAddressStack ras(fe.rasDepth);
    const bool use_tournament =
        fe.direction == DirectionScheme::Tournament;

    // Accumulators for the classes whose outcomes are config-
    // independent; per-member divergence exists only at indirect
    // jumps and calls.
    RatioStat shared_non_indirect;  ///< allBranches minus indirect
    RatioStat cond_direction;
    RatioStat cond_branches;
    RatioStat uncond_direct;
    RatioStat returns;
    RatioStat btb_hits;

    const size_t n = stream.size();
    for (size_t i = 0; i < n; ++i) {
        const MicroOp op = stream.opAt(i);
        const uint64_t pc = stream.pc[i];
        const uint64_t next_pc = stream.target[i];
        const uint64_t fall = stream.fallthrough[i];
        const auto kind = static_cast<BranchKind>(stream.kind[i]);
        const bool taken = stream.taken[i] != 0;

        const std::optional<BtbPrediction> btb_pred = btb->lookup(pc).pred;
        btb_hits.record(btb_pred.has_value());

        switch (kind) {
          case BranchKind::CondDirect: {
            const bool dir = use_tournament
                                 ? tournament.predict(pc, ghr.value())
                                 : gshare.predict(pc, ghr.value());
            uint64_t predicted = fall;
            if (dir && btb_pred)
                predicted = btb_pred->target;
            const bool correct = predicted == next_pc;
            shared_non_indirect.record(correct);
            cond_direction.record(dir == taken);
            cond_branches.record(correct);
            break;
          }

          case BranchKind::UncondDirect:
          case BranchKind::Call: {
            const uint64_t predicted =
                btb_pred ? btb_pred->target : fall;
            const bool correct = predicted == next_pc;
            shared_non_indirect.record(correct);
            uncond_direct.record(correct);
            break;
          }

          case BranchKind::Return: {
            const uint64_t predicted = ras.pop();
            const bool correct = predicted == next_pc;
            shared_non_indirect.record(correct);
            returns.record(correct);
            break;
          }

          case BranchKind::IndirectJump:
          case BranchKind::IndirectCall: {
            // The only per-member work on the whole path: SoA family
            // loops, histories read before any tracker observes this
            // op, matching the per-config ordering.
            batch.predictAll(op, btb_pred.has_value(),
                             btb_pred ? btb_pred->target : 0);
            batch.recordOutcomes(next_pc);
            break;
          }

          case BranchKind::None:
            break;  // forEachBranch never yields these
        }

        if (kind == BranchKind::Call ||
            kind == BranchKind::IndirectCall) {
            ras.push(fall);
        }

        // --- Training (architectural, hence shared) ---------------
        if (kind == BranchKind::CondDirect) {
            if (use_tournament)
                tournament.update(pc, ghr.value(), taken);
            else
                gshare.update(pc, ghr.value(), taken);
            ghr.update(taken);
        }
        btb->update(op);
        if (isIndirectNonReturn(kind))
            batch.updateAll(next_pc);
        batch.observeTrackers(op);
    }

    // One counted pass over the stream, whatever the batch size.
    creditBtbCounters(btb->hstats());

    // --- Compose per-config statistics ----------------------------
    std::vector<FrontendStats> out(configs.size());
    for (size_t i = 0; i < configs.size(); ++i) {
        FrontendStats &s = out[i];
        s.instructions = stream.opCount;
        s.condDirection = cond_direction;
        s.condBranches = cond_branches;
        s.uncondDirect = uncond_direct;
        s.returns = returns;
        s.btbHits = btb_hits;
        s.indirectJumps = batch.indirectStats(i);
        s.allBranches = shared_non_indirect;
        s.allBranches.merge(batch.indirectStats(i));
    }
    return out;
}

namespace
{

/**
 * Lead-relative stats for a batch member: every shared-class count is
 * the lead's own, indirectJumps is the member's, and allBranches is
 * recomposed (totals are equal by construction — both saw the same
 * branches).
 */
FrontendStats
memberStats(const FrontendStats &lead, const RatioStat &member_indirect)
{
    FrontendStats s = lead;
    s.allBranches.setCounts(s.allBranches.hits() -
                                s.indirectJumps.hits() +
                                member_indirect.hits(),
                            s.allBranches.total());
    s.indirectJumps = member_indirect;
    return s;
}

} // namespace

std::vector<CoreResult>
runTimingSweep(const SharedTrace &trace,
               std::span<const IndirectConfig> configs,
               const CoreParams &params, const FrontendConfig &fe)
{
    static const obs::Counter streams_built =
        obs::globalMetrics().counter("sweep.streams_built");
    static const obs::Counter timing_forks =
        obs::globalMetrics().counter("sweep.timing_forks");
    static const obs::Counter shared_cycles =
        obs::globalMetrics().counter("sweep.shared_cycles");
    static const obs::Counter member_cycles =
        obs::globalMetrics().counter("sweep.member_cycles");
    static const obs::Counter timing_runs =
        obs::globalMetrics().counter("experiment.timing_runs");
    static const obs::Counter replayed = obs::globalMetrics().counter(
        "experiment.instructions_replayed");
    static const obs::Counter cycles_simulated =
        obs::globalMetrics().counter("core.cycles_simulated");
    static const obs::Counter instructions_retired =
        obs::globalMetrics().counter("core.instructions_retired");
    static const obs::Timer phase =
        obs::globalMetrics().timer("phase.sweep_timing");

    std::vector<CoreResult> out(configs.size());
    if (configs.empty())
        return out;

    // Partition: stateful-probe structures (ITTAGE, oracle) cannot be
    // fused and run the plain per-config path, which does its own
    // metric crediting.
    std::vector<size_t> batched;
    for (size_t i = 0; i < configs.size(); ++i) {
        if (BatchedPredictors::timingBatchable(configs[i]))
            batched.push_back(i);
        else
            out[i] = runTiming(trace, configs[i], params, fe);
    }
    if (batched.empty())
        return out;

    obs::ScopedTimer timed(phase);
    // Counter parity with N per-config runTiming() calls.
    timing_runs.inc(batched.size());
    replayed.inc(trace.size() * batched.size());

    std::vector<IndirectConfig> bcfgs;
    bcfgs.reserve(batched.size());
    for (size_t i : batched)
        bcfgs.push_back(configs[i]);

    const uint64_t n = trace.size();
    const BranchStream &stream =
        trace.compact().branchStream([] { streams_built.inc(); });

    // The batch maintains every member's predictor state — including
    // member 0's, redundantly with the lead rig below, which is what
    // makes the lead's prediction at a boundary readable without a
    // (mutating) probe of the lead's own scalar predictor.
    BatchedPredictors batch(bcfgs);

    // Lead rig: member 0 as a normal per-config core + front end.
    PredictorStack leadStack = buildStack(bcfgs[0]);
    FrontendPredictor leadFe(fe, leadStack.predictor.get(),
                             leadStack.tracker.get());
    CoreModel leadCore(params);
    CompactReplay replay = trace.replay();
    leadCore.beginSession();

    std::vector<bool> forked(bcfgs.size(), false);
    std::vector<CoreResult> forkResults(bcfgs.size());

    // Serializes member k (lead core + front end, member predictor +
    // tracker — all pre-branch state), restores it into a fresh
    // per-config rig, and runs that rig to completion from op @p p.
    auto forkMember = [&](size_t k, uint64_t p) {
        timing_forks.inc();
        const uint64_t inherited = leadCore.cycles();
        shared_cycles.inc(inherited);

        PredictorStack stack = buildStack(bcfgs[k]);
        FrontendPredictor forkFe(fe, stack.predictor.get(),
                                 stack.tracker.get());
        CoreModel forkCore(params);
        forkCore.forkFrom(leadCore);

        StateWriter w;
        leadFe.saveState(w);
        if (batch.hasPredictor(k)) {
            batch.savePredictorState(k, w);
            batch.saveTrackerState(k, w);
        }
        StateReader r(w.bytes());
        forkFe.restoreState(r);
        if (stack.predictor)
            stack.predictor->restoreState(r);
        if (batch.hasPredictor(k))
            stack.tracker->restoreState(r);
        r.expectEnd();
        forkFe.setStats(
            memberStats(leadFe.stats(), batch.indirectStats(k)));

        CompactReplay rp = trace.replayAt(p);
        forkCore.runSession(rp, forkFe, n, UINT64_MAX);
        forkResults[k] = forkCore.endSession(forkFe, true);
        member_cycles.inc(forkResults[k].cycles - inherited);
        forked[k] = true;
    };

    std::vector<size_t> diverged;
    for (size_t j = 0; j < stream.size(); ++j) {
        const MicroOp op = stream.opAt(j);
        const auto kind = static_cast<BranchKind>(stream.kind[j]);
        if (!isIndirectNonReturn(kind)) {
            // Batch trackers follow the branch stream directly; the
            // lead's own tracker advances inside its rig.
            batch.observeTrackers(op);
            continue;
        }

        // Suspend the lead exactly before it fetches this op: its
        // front end now holds the pre-branch state every per-config
        // run would hold here.
        const uint64_t p = stream.pos[j];
        const bool suspended = leadCore.runSession(replay, leadFe, n, p);
        assert(suspended && "indirect branch beyond session end");
        (void)suspended;

        const uint64_t next_pc = stream.target[j];
        const std::optional<BtbPrediction> btb_pred =
            leadFe.btb().peek(op.pc).pred;
        batch.computePredictions(op, btb_pred.has_value(),
                                 btb_pred ? btb_pred->target : 0);

        if (btb_pred) {
            // Divergence is possible only on a BTB hit: on a miss
            // every config predicts the fall-through.
            const bool lead_correct = batch.prediction(0) == next_pc;
            diverged.clear();
            for (size_t k : batch.live()) {
                if (k != 0 &&
                    (batch.prediction(k) == next_pc) != lead_correct)
                    diverged.push_back(k);
            }
            for (size_t k : diverged) {
                forkMember(k, p);
                batch.retire(k);
            }
        }

        batch.recordOutcomes(next_pc);
        batch.commitPredictions();
        batch.updateAll(next_pc);
        batch.observeTrackers(op);
    }

    // Drain the lead to the end of the trace.
    leadCore.runSession(replay, leadFe, n, UINT64_MAX);
    const CoreResult lead = leadCore.endSession(leadFe, true);
    // The lead's probe stream is the one counted pass; divergence
    // forks are verification-style replays and never credit.
    creditBtbCounters(leadFe.btb().hstats());

    for (size_t k = 0; k < bcfgs.size(); ++k) {
        CoreResult res;
        if (k == 0) {
            res = lead;
        } else if (forked[k]) {
            res = forkResults[k];
        } else {
            // Never diverged: the member's whole trajectory is the
            // lead's.  Cycles, stalls and dcache carry over; only the
            // indirect outcome counts are its own (and equal the
            // lead's hit-for-hit, since correctness never differed).
            res = lead;
            res.frontend =
                memberStats(lead.frontend, batch.indirectStats(k));
            // The per-config path would have credited this member's
            // core run; keep the deterministic counters identical.
            cycles_simulated.inc(res.cycles);
            instructions_retired.inc(res.instructions);
        }
        out[batched[k]] = res;
    }
    return out;
}

} // namespace tpred
