/**
 * @file
 * Fused multi-config sweep kernel.
 *
 * Every paper table and ablation evaluates N IndirectConfigs against
 * the *same* trace.  runAccuracy() pays a full branch-column decode
 * and re-derives identical front-end state per config; for Table 9's
 * grid that is ten redundant passes per workload.  runSweep() fuses
 * the batch into one pass over the trace's cached BranchStream:
 *
 *  - The architectural front end (BTB, direction predictor, global
 *    history register, return address stack) is trained exclusively
 *    with architectural outcomes carried by the trace — never with
 *    predictions — so its state trajectory is identical for every
 *    config sharing one FrontendConfig.  The kernel keeps ONE shared
 *    front-end core per batch instead of N.
 *  - History trackers are deduplicated by HistorySpec equality and
 *    advanced once per spec group per branch.
 *  - Per-config state reduces to the indirect predictor itself plus
 *    one RatioStat, touched only at indirect jumps/calls — a small
 *    minority of branches — with the members' state laid out
 *    contiguously in batch order.
 *
 * The returned FrontendStats are bit-identical to running each config
 * through runAccuracy() separately: shared accumulators cover the
 * classes whose outcomes cannot differ across members, and
 * allBranches is composed as shared-non-indirect + member-indirect
 * via RatioStat::merge (pure counter addition, order-free).
 *
 * Batching rules (when callers must fall back to separate batches):
 * all members of one runSweep() call share one FrontendConfig —
 * grids that vary the front end (Table 2's 2-bit BTB column,
 * ablation 6's tournament machine) issue one batch per front-end
 * variant, down to a batch of one, which degenerates to exactly the
 * per-config path.  Timing experiments (runTiming / the reduction
 * tables) never fuse: the core model consumes per-config wrong-path
 * fetch state.  See docs/sweep_kernel.md.
 */

#ifndef TPRED_HARNESS_SWEEP_KERNEL_HH
#define TPRED_HARNESS_SWEEP_KERNEL_HH

#include <cstddef>
#include <span>
#include <vector>

#include "harness/experiment.hh"

namespace tpred
{

/**
 * Evaluates every config against @p trace in one fused pass.
 *
 * @param trace   The shared trace; its BranchStream is built lazily
 *                on first use and cached for all configs and threads.
 * @param configs The batch; histories may differ (trackers are
 *                grouped internally by HistorySpec).
 * @param fe      Front-end sizes shared by the whole batch.
 * @return Per-config statistics, in batch order, bit-identical to
 *         runAccuracy(trace, configs[i], fe) for each i.
 */
std::vector<FrontendStats> runSweep(const SharedTrace &trace,
                                    std::span<const IndirectConfig> configs,
                                    const FrontendConfig &fe = {});

/**
 * Same fused kernel over an already-extracted branch stream — the
 * entry point for segmented containers, whose dense stream is built
 * one window at a time by extractBranchStream
 * (harness/shard_replay.hh) instead of from a resident trace.
 * stream.opCount supplies the per-config instruction totals.
 */
std::vector<FrontendStats>
runSweep(const BranchStream &stream,
         std::span<const IndirectConfig> configs,
         const FrontendConfig &fe = {});

/**
 * Partitions config indices into groups of equal HistorySpec, first-
 * seen order — the (workload x config-group) unit the paper-table
 * drivers parallelize over.
 */
std::vector<std::vector<size_t>>
groupByHistory(std::span<const IndirectConfig> configs);

} // namespace tpred

#endif // TPRED_HARNESS_SWEEP_KERNEL_HH
