/**
 * @file
 * Fused multi-config sweep kernel.
 *
 * Every paper table and ablation evaluates N IndirectConfigs against
 * the *same* trace.  runAccuracy() pays a full branch-column decode
 * and re-derives identical front-end state per config; for Table 9's
 * grid that is ten redundant passes per workload.  runSweep() fuses
 * the batch into one pass over the trace's cached BranchStream:
 *
 *  - The architectural front end (BTB, direction predictor, global
 *    history register, return address stack) is trained exclusively
 *    with architectural outcomes carried by the trace — never with
 *    predictions — so its state trajectory is identical for every
 *    config sharing one FrontendConfig.  The kernel keeps ONE shared
 *    front-end core per batch instead of N.
 *  - Per-member predictor state lives in structure-of-arrays family
 *    groups (harness/batched_predictors.hh): lookups and updates are
 *    tight devirtualized loops over contiguous columns, with one
 *    history computation per distinct HistorySpec per branch.
 *  - Per-config divergence exists only at indirect jumps/calls — a
 *    small minority of branches.
 *
 * The returned FrontendStats are bit-identical to running each config
 * through runAccuracy() separately: shared accumulators cover the
 * classes whose outcomes cannot differ across members, and
 * allBranches is composed as shared-non-indirect + member-indirect
 * via RatioStat::merge (pure counter addition, order-free).
 *
 * Timing sweeps fuse too (runTimingSweep): one shared CoreModel
 * trajectory carries the whole batch, and a member is *forked* onto
 * its own core — via the sharded-replay StateWriter/StateReader
 * checkpoints — at the first branch where its prediction correctness
 * diverges from the lead config's (copy-on-divergence; forked members
 * continue independently and never rejoin).  Correctness is the only
 * coupling between the front end and the core, and the architectural
 * front-end trajectory is config-independent, so members agreeing
 * with the lead share its cycles exactly; see docs/sweep_kernel.md
 * for the exactness argument.
 *
 * Batching rules (when callers must fall back to separate batches):
 * all members of one batch share one FrontendConfig — grids that vary
 * the front end (Table 2's 2-bit BTB column, ablation 6's tournament
 * machine) issue one batch per front-end variant, down to a batch of
 * one, which degenerates to exactly the per-config path.  Timing
 * batches additionally exclude ITTAGE and oracle members (stateful
 * probes — BatchedPredictors::timingBatchable); runTimingSweep routes
 * those configs through the per-config runTiming() path internally.
 */

#ifndef TPRED_HARNESS_SWEEP_KERNEL_HH
#define TPRED_HARNESS_SWEEP_KERNEL_HH

#include <cstddef>
#include <span>
#include <vector>

#include "harness/experiment.hh"

namespace tpred
{

/**
 * Evaluates every config against @p trace in one fused pass.
 *
 * @param trace   The shared trace; its BranchStream is built lazily
 *                on first use and cached for all configs and threads.
 * @param configs The batch; histories may differ (trackers are
 *                grouped internally by HistorySpec).
 * @param fe      Front-end sizes shared by the whole batch.
 * @return Per-config statistics, in batch order, bit-identical to
 *         runAccuracy(trace, configs[i], fe) for each i.
 */
std::vector<FrontendStats> runSweep(const SharedTrace &trace,
                                    std::span<const IndirectConfig> configs,
                                    const FrontendConfig &fe = {});

/**
 * Same fused kernel over an already-extracted branch stream — the
 * entry point for segmented containers, whose dense stream is built
 * one window at a time by extractBranchStream
 * (harness/shard_replay.hh) instead of from a resident trace.
 * stream.opCount supplies the per-config instruction totals.
 */
std::vector<FrontendStats>
runSweep(const BranchStream &stream,
         std::span<const IndirectConfig> configs,
         const FrontendConfig &fe = {});

/**
 * Fused timing sweep: evaluates every config's timing run against
 * @p trace with one shared core trajectory plus copy-on-divergence
 * forks.
 *
 * The lead (first timing-batchable config) runs a normal per-config
 * core/front-end rig, suspended at every indirect branch via the
 * resumable-session API.  At each suspension the batch probes every
 * member's prediction purely (the lead's BTB is peeked, not looked
 * up); a member whose correctness differs from the lead's is
 * serialized — lead core + front end, member predictor + tracker, all
 * with pre-branch state — restored into a fresh per-config rig, and
 * run to completion on its own core from that exact op boundary.
 * Members that never diverge inherit the lead's cycles, stall
 * breakdown and dcache stats wholesale, with only indirectJumps /
 * allBranches recomposed from their own outcome counts.
 *
 * ITTAGE and oracle configs cannot be purely probed and take the
 * per-config runTiming() path internally (same results, no sharing).
 *
 * @return Per-config results, in batch order, bit-identical to
 *         runTiming(trace, configs[i], params, fe) for each i —
 *         cycles, penalty breakdown, stats and the deterministic
 *         core.* counters all match.
 */
std::vector<CoreResult>
runTimingSweep(const SharedTrace &trace,
               std::span<const IndirectConfig> configs,
               const CoreParams &params = {},
               const FrontendConfig &fe = {});

/**
 * Partitions config indices into groups of equal HistorySpec, first-
 * seen order — the (workload x config-group) unit the paper-table
 * drivers parallelize over.
 */
std::vector<std::vector<size_t>>
groupByHistory(std::span<const IndirectConfig> configs);

} // namespace tpred

#endif // TPRED_HARNESS_SWEEP_KERNEL_HH
