#include "harness/thread_pool.hh"

#include <algorithm>

namespace tpred
{

namespace
{

/** Pool (and worker index) the current thread belongs to, if any. */
thread_local const ThreadPool *current_pool = nullptr;
thread_local size_t current_worker = 0;

} // namespace

unsigned
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads)
    : submits_(obs::globalMetrics().counter(
          "pool.submits", obs::MetricKind::Runtime)),
      tasksExecuted_(obs::globalMetrics().counter(
          "pool.tasks_executed", obs::MetricKind::Runtime)),
      steals_(obs::globalMetrics().counter(
          "pool.steals", obs::MetricKind::Runtime)),
      idle_(obs::globalMetrics().timer("pool.idle"))
{
    const unsigned count = std::max(1u, threads);
    queues_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(done_mutex_);
        ++unfinished_;
    }
    // queued_ rises before the task is visible in a deque so a worker
    // that pops it can decrement without underflow.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++queued_;
    }
    if (current_pool == this) {
        // Submitted from a worker: push to its own deque, LIFO end, so
        // nested work runs depth-first and stays cache-warm.
        WorkerQueue &queue = *queues_[current_worker];
        std::lock_guard<std::mutex> lock(queue.mutex);
        queue.tasks.push_front(std::move(task));
    } else {
        const size_t target =
            next_queue_.fetch_add(1, std::memory_order_relaxed) %
            queues_.size();
        WorkerQueue &queue = *queues_[target];
        std::lock_guard<std::mutex> lock(queue.mutex);
        queue.tasks.push_back(std::move(task));
    }
    submits_.inc();
    cv_.notify_one();
}

bool
ThreadPool::tryTake(size_t index, std::function<void()> &task)
{
    {
        WorkerQueue &own = *queues_[index];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.front());
            own.tasks.pop_front();
            return true;
        }
    }
    for (size_t step = 1; step < queues_.size(); ++step) {
        WorkerQueue &victim = *queues_[(index + step) % queues_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            task = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            steals_.inc();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(size_t index)
{
    current_pool = this;
    current_worker = index;
    for (;;) {
        std::function<void()> task;
        if (!tryTake(index, task)) {
            obs::ScopedTimer idle(idle_);
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
            if (stop_ && queued_ == 0)
                return;
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --queued_;
        }
        task();
        tasksExecuted_.inc();
        {
            std::lock_guard<std::mutex> lock(done_mutex_);
            if (--unfinished_ == 0)
                done_cv_.notify_all();
        }
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

} // namespace tpred
