/**
 * @file
 * Small work-stealing thread pool backing the parallel experiment
 * engine.  Each worker owns a deque: submit() distributes external
 * tasks round-robin across the deques (a task submitted from inside a
 * worker goes to that worker's own deque, depth-first), workers pop
 * from the front of their own deque and steal from the back of a
 * sibling's when theirs runs dry.
 */

#ifndef TPRED_HARNESS_THREAD_POOL_HH
#define TPRED_HARNESS_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace tpred
{

/**
 * Fixed-size pool of worker threads with per-worker work-stealing
 * deques.  Tasks must not throw: the pool executes them verbatim, so
 * an escaping exception terminates the process (ParallelRunner wraps
 * jobs in a catch-all before they reach the pool).
 */
class ThreadPool
{
  public:
    /** Spawns @p threads workers (minimum 1). */
    explicit ThreadPool(unsigned threads);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueues @p task for execution; returns immediately. */
    void submit(std::function<void()> task);

    /** Blocks until every task submitted so far has finished. */
    void wait();

    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** std::thread::hardware_concurrency() with a floor of 1. */
    static unsigned hardwareThreads();

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(size_t index);

    /** Pops from worker @p index's deque, else steals from a sibling. */
    bool tryTake(size_t index, std::function<void()> &task);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::atomic<size_t> next_queue_{0};  ///< round-robin submit target

    std::mutex mutex_;            ///< guards queued_ and stop_
    std::condition_variable cv_;  ///< wakes idle workers
    size_t queued_ = 0;           ///< tasks sitting in some deque
    bool stop_ = false;

    std::mutex done_mutex_;            ///< guards unfinished_
    std::condition_variable done_cv_;  ///< wakes wait()
    size_t unfinished_ = 0;            ///< submitted, not yet completed

    // Runtime metrics (scheduling dependent — see obs/metrics.hh).
    obs::Counter submits_;
    obs::Counter tasksExecuted_;
    obs::Counter steals_;
    obs::Timer idle_;
};

} // namespace tpred

#endif // TPRED_HARNESS_THREAD_POOL_HH
