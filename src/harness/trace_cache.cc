#include "harness/trace_cache.hh"

#include <cstdio>
#include <cstdlib>

#include "corpus/corpus.hh"
#include "harness/run_options.hh"

namespace tpred
{

namespace
{

void
logTraffic(const char *event, const std::string &workload, size_t ops,
           uint64_t seed)
{
    if (verboseLogging())
        std::fprintf(stderr, "tpred-cache: %s %s ops=%zu seed=%llu\n",
                     event, workload.c_str(), ops,
                     static_cast<unsigned long long>(seed));
}

} // namespace

TraceCache::TraceCache(obs::MetricsRegistry *metrics)
    : owned_(metrics == nullptr
                 ? std::make_unique<obs::MetricsRegistry>()
                 : nullptr),
      metrics_(metrics != nullptr ? metrics : owned_.get()),
      hits_(metrics_->counter("trace_cache.hits")),
      misses_(metrics_->counter("trace_cache.misses")),
      corpusHits_(metrics_->counter("trace_cache.corpus_hits")),
      recordings_(metrics_->counter("trace_cache.recordings")),
      bytesInserted_(metrics_->counter("trace_cache.bytes_inserted")),
      streamHits_(metrics_->counter("trace_cache.stream_hits")),
      streamMisses_(metrics_->counter("trace_cache.stream_misses")),
      streamCorpusHits_(
          metrics_->counter("trace_cache.stream_corpus_hits")),
      streamExtractions_(
          metrics_->counter("trace_cache.stream_extractions"))
{
}

size_t
TraceCache::hashKey(std::string_view workload, uint64_t seed,
                    size_t ops)
{
    // FNV-1a over the name, then splitmix-style mixing of the
    // numeric fields — cheap, and computed exactly once per get().
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : workload) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    for (uint64_t v : {seed, static_cast<uint64_t>(ops)}) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
    }
    return static_cast<size_t>(h);
}

SharedTrace
TraceCache::acquire(const std::string &workload, size_t ops,
                    uint64_t seed)
{
    std::shared_ptr<CorpusManager> corpus = this->corpus();
    if (corpus) {
        const CorpusKey key{workload, seed, ops};
        std::string name;
        if (auto trace = corpus->load(key, &name)) {
            corpusHits_.inc();
            bytesInserted_.inc(trace->residentBytes());
            logTraffic("corpus-hit", workload, ops, seed);
            // Warm runs also get the derived branch stream for free:
            // adopting the stored container into the trace's lazy
            // stream cache lets branchStream() consumers (runSweep,
            // runTimingSweep) skip the extraction pass entirely.
            if (auto stream = corpus->loadStream(key))
                trace->adoptBranchStream(*stream);
            return SharedTrace(std::move(trace),
                               name.empty() ? workload : name);
        }
    }

    recordings_.inc();
    logTraffic("generate", workload, ops, seed);
    SharedTrace trace = recordWorkload(workload, ops, seed);
    bytesInserted_.inc(trace.compact().residentBytes());

    if (corpus) {
        // Best effort: a full disk must not fail the experiment.
        try {
            corpus->store(CorpusKey{workload, seed, ops},
                          trace.compact(), trace.name());
            logTraffic("corpus-store", workload, ops, seed);
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "tpred-cache: corpus store failed: %s\n",
                         e.what());
        }
    }
    return trace;
}

SharedTrace
TraceCache::get(std::string_view workload, size_t ops, uint64_t seed)
{
    const KeyRef ref{workload, seed, ops,
                     hashKey(workload, seed, ops)};
    std::promise<SharedTrace> promise;
    std::shared_future<SharedTrace> future;
    bool recorder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = memo_.find(ref);
        if (it != memo_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            memo_.emplace(Key{std::string(workload), seed, ops,
                              ref.hash},
                          future);
            recorder = true;
        }
    }
    if (recorder) {
        misses_.inc();
        try {
            promise.set_value(
                acquire(std::string(workload), ops, seed));
        } catch (...) {
            // Un-memoize so a later retry isn't poisoned, then let the
            // waiters (and this caller, via get()) see the exception.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = memo_.find(ref);
                if (it != memo_.end())
                    memo_.erase(it);
            }
            promise.set_exception(std::current_exception());
        }
    } else {
        hits_.inc();
        logTraffic("memo-hit", std::string(workload), ops, seed);
    }
    return future.get();
}

std::shared_ptr<const BranchStream>
TraceCache::acquireStream(const std::string &workload, size_t ops,
                          uint64_t seed)
{
    std::shared_ptr<CorpusManager> corpus = this->corpus();
    const CorpusKey key{workload, seed, ops};
    if (corpus) {
        if (auto stream = corpus->loadStream(key)) {
            streamCorpusHits_.inc();
            logTraffic("stream-corpus-hit", workload, ops, seed);
            return stream;
        }
    }

    // No stored stream: extract from the trace (which may itself be
    // served from the corpus or memo).  The copy shares the trace's
    // column backing, so it stays valid past clear().
    streamExtractions_.inc();
    logTraffic("stream-extract", workload, ops, seed);
    SharedTrace trace = get(workload, ops, seed);
    auto stream = std::make_shared<const BranchStream>(
        trace.compact().branchStream());

    if (corpus) {
        // Best effort: a full disk must not fail the experiment.
        try {
            corpus->storeStream(key, *stream, trace.name());
            logTraffic("stream-store", workload, ops, seed);
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "tpred-cache: stream store failed: %s\n",
                         e.what());
        }
    }
    return stream;
}

std::shared_ptr<const BranchStream>
TraceCache::getStream(std::string_view workload, size_t ops,
                      uint64_t seed)
{
    const KeyRef ref{workload, seed, ops,
                     hashKey(workload, seed, ops)};
    std::promise<std::shared_ptr<const BranchStream>> promise;
    std::shared_future<std::shared_ptr<const BranchStream>> future;
    bool resolver = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = streamMemo_.find(ref);
        if (it != streamMemo_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            streamMemo_.emplace(Key{std::string(workload), seed, ops,
                                    ref.hash},
                                future);
            resolver = true;
        }
    }
    if (resolver) {
        streamMisses_.inc();
        try {
            promise.set_value(
                acquireStream(std::string(workload), ops, seed));
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = streamMemo_.find(ref);
                if (it != streamMemo_.end())
                    streamMemo_.erase(it);
            }
            promise.set_exception(std::current_exception());
        }
    } else {
        streamHits_.inc();
        logTraffic("stream-memo-hit", std::string(workload), ops,
                   seed);
    }
    return future.get();
}

void
TraceCache::attachCorpus(std::shared_ptr<CorpusManager> corpus)
{
    std::lock_guard<std::mutex> lock(mutex_);
    corpus_ = std::move(corpus);
}

std::shared_ptr<CorpusManager>
TraceCache::corpus() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return corpus_;
}

size_t
TraceCache::recordings() const
{
    const obs::MetricsSnapshot snap = metrics_->snapshot();
    const auto it = snap.counters.find("trace_cache.recordings");
    return it != snap.counters.end() ? it->second : 0;
}

size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return memo_.size();
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    memo_.clear();
    streamMemo_.clear();
}

TraceCache &
globalTraceCache()
{
    static TraceCache cache{&obs::globalMetrics()};
    static const bool attached = [] {
        const char *dir = std::getenv("TPRED_CORPUS_DIR");
        if (dir == nullptr || *dir == '\0')
            return false;
        try {
            cache.attachCorpus(std::make_shared<CorpusManager>(
                dir, &obs::globalMetrics()));
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "tpred-cache: ignoring TPRED_CORPUS_DIR: "
                         "%s\n",
                         e.what());
            return false;
        }
        return true;
    }();
    (void)attached;
    return cache;
}

SharedTrace
cachedTrace(std::string_view workload, size_t ops, uint64_t seed)
{
    return globalTraceCache().get(workload, ops, seed);
}

std::shared_ptr<const BranchStream>
cachedBranchStream(std::string_view workload, size_t ops,
                   uint64_t seed)
{
    return globalTraceCache().getStream(workload, ops, seed);
}

} // namespace tpred
