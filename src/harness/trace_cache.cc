#include "harness/trace_cache.hh"

namespace tpred
{

size_t
TraceCache::hashKey(std::string_view workload, uint64_t seed,
                    size_t ops)
{
    // FNV-1a over the name, then splitmix-style mixing of the
    // numeric fields — cheap, and computed exactly once per get().
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : workload) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    for (uint64_t v : {seed, static_cast<uint64_t>(ops)}) {
        h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 0xff51afd7ed558ccdull;
        h ^= h >> 33;
    }
    return static_cast<size_t>(h);
}

SharedTrace
TraceCache::get(std::string_view workload, size_t ops, uint64_t seed)
{
    const KeyRef ref{workload, seed, ops,
                     hashKey(workload, seed, ops)};
    std::promise<SharedTrace> promise;
    std::shared_future<SharedTrace> future;
    bool recorder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = memo_.find(ref);
        if (it != memo_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            memo_.emplace(Key{std::string(workload), seed, ops,
                              ref.hash},
                          future);
            recorder = true;
        }
    }
    if (recorder) {
        recordings_.fetch_add(1);
        try {
            promise.set_value(
                recordWorkload(std::string(workload), ops, seed));
        } catch (...) {
            // Un-memoize so a later retry isn't poisoned, then let the
            // waiters (and this caller, via get()) see the exception.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                auto it = memo_.find(ref);
                if (it != memo_.end())
                    memo_.erase(it);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return memo_.size();
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    memo_.clear();
}

TraceCache &
globalTraceCache()
{
    static TraceCache cache;
    return cache;
}

SharedTrace
cachedTrace(std::string_view workload, size_t ops, uint64_t seed)
{
    return globalTraceCache().get(workload, ops, seed);
}

} // namespace tpred
