#include "harness/trace_cache.hh"

namespace tpred
{

SharedTrace
TraceCache::get(const std::string &workload, size_t ops, uint64_t seed)
{
    const Key key{workload, seed, ops};
    std::promise<SharedTrace> promise;
    std::shared_future<SharedTrace> future;
    bool recorder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = memo_.find(key);
        if (it != memo_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            memo_.emplace(key, future);
            recorder = true;
        }
    }
    if (recorder) {
        recordings_.fetch_add(1);
        try {
            promise.set_value(recordWorkload(workload, ops, seed));
        } catch (...) {
            // Un-memoize so a later retry isn't poisoned, then let the
            // waiters (and this caller, via get()) see the exception.
            {
                std::lock_guard<std::mutex> lock(mutex_);
                memo_.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return memo_.size();
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    memo_.clear();
}

TraceCache &
globalTraceCache()
{
    static TraceCache cache;
    return cache;
}

SharedTrace
cachedTrace(const std::string &workload, size_t ops, uint64_t seed)
{
    return globalTraceCache().get(workload, ops, seed);
}

} // namespace tpred
