/**
 * @file
 * Shared immutable trace cache: memoizes recordWorkload() so each
 * (workload, seed, ops) trace is generated exactly once per process,
 * even under concurrent access, and every consumer shares the same
 * underlying op storage.  This is what makes the parallel experiment
 * engine cheap — a table sweeping 25 configs over one trace records
 * that trace once, not 25 times.  See docs/parallelism.md.
 */

#ifndef TPRED_HARNESS_TRACE_CACHE_HH
#define TPRED_HARNESS_TRACE_CACHE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <tuple>

#include "harness/experiment.hh"

namespace tpred
{

/**
 * Mutex-guarded memo from (workload, seed, ops) to a recorded
 * SharedTrace.
 *
 * Thread safety: get() may be called concurrently from any number of
 * threads.  The first caller for a key claims it under the mutex and
 * records the trace outside it; later callers for the same key block
 * on a shared future instead of re-recording.  Cached traces stay
 * alive until clear(); SharedTrace handles already handed out remain
 * valid past clear() because the op storage is reference-counted.
 */
class TraceCache
{
  public:
    /** Returns the memoized trace, recording it on first request. */
    SharedTrace get(const std::string &workload, size_t ops,
                    uint64_t seed = 1);

    /** Number of traces actually recorded (i.e. cache misses). */
    size_t recordings() const { return recordings_.load(); }

    /** Number of traces currently memoized. */
    size_t size() const;

    /** Drops every memoized trace (handed-out handles stay valid). */
    void clear();

  private:
    using Key = std::tuple<std::string, uint64_t, size_t>;

    mutable std::mutex mutex_;
    std::map<Key, std::shared_future<SharedTrace>> memo_;
    std::atomic<size_t> recordings_{0};
};

/** Process-wide cache shared by the harness and bench drivers. */
TraceCache &globalTraceCache();

/** Shorthand for globalTraceCache().get(...). */
SharedTrace cachedTrace(const std::string &workload, size_t ops,
                        uint64_t seed = 1);

} // namespace tpred

#endif // TPRED_HARNESS_TRACE_CACHE_HH
