/**
 * @file
 * Shared immutable trace cache: memoizes recordWorkload() so each
 * (workload, seed, ops) trace is generated exactly once per process,
 * even under concurrent access, and every consumer shares the same
 * underlying columnar storage.  This is what makes the parallel
 * experiment engine cheap — a table sweeping 25 configs over one
 * trace records that trace once, not 25 times.  See
 * docs/parallelism.md.
 */

#ifndef TPRED_HARNESS_TRACE_CACHE_HH
#define TPRED_HARNESS_TRACE_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "harness/experiment.hh"
#include "obs/metrics.hh"

namespace tpred
{

class CorpusManager;

/**
 * Mutex-guarded memo from (workload, seed, ops) to a recorded
 * SharedTrace.
 *
 * The memo is an unordered_map whose key carries its hash,
 * precomputed once per get() from a string_view — a lookup for an
 * already-cached trace allocates nothing and compares strings at most
 * once per probed bucket entry.
 *
 * Thread safety: get() may be called concurrently from any number of
 * threads.  The first caller for a key claims it under the mutex and
 * records the trace outside it; later callers for the same key block
 * on a shared future instead of re-recording.  Cached traces stay
 * alive until clear(); SharedTrace handles already handed out remain
 * valid past clear() because the storage is reference-counted.
 *
 * Second-level cache: when a CorpusManager is attached (explicitly or
 * via $TPRED_CORPUS_DIR for the global cache), a memo miss first
 * tries the on-disk corpus — a validated hit is adopted zero-copy
 * without running the workload generator, and a freshly generated
 * trace is persisted back (best effort) for future processes.
 *
 * Branch-stream tier: getStream() resolves the dense BranchStream
 * for a key through three levels — stream memo, then the corpus's
 * ".tpbs" stream container (zero-copy mmap, no CompactTrace decode
 * at all), then extraction from the (possibly itself corpus-served)
 * trace, persisting the extraction back for future warm runs.  A
 * corpus trace hit additionally adopts any stored stream into the
 * trace's lazy stream cache, so trace.branchStream() consumers
 * (runSweep, runTimingSweep) skip extraction on warm runs too.
 */
class TraceCache
{
  public:
    /**
     * @param metrics Registry the "trace_cache.*" counters report
     *        into; nullptr gives this cache a private registry (so
     *        tests see per-instance counts).  The global cache uses
     *        obs::globalMetrics() so run reports include it.
     */
    explicit TraceCache(obs::MetricsRegistry *metrics = nullptr);

    /** Returns the memoized trace, recording it on first request. */
    SharedTrace get(std::string_view workload, size_t ops,
                    uint64_t seed = 1);

    /**
     * Returns the dense branch stream for (workload, ops, seed):
     * memo -> stream corpus (zero-copy, skipping trace decode
     * entirely) -> extraction from get()'s trace.  Accuracy-only
     * consumers (fused sweeps, the autotuner) should prefer this
     * over get(): on a warm corpus it never touches the
     * CompactTrace.
     */
    std::shared_ptr<const BranchStream>
    getStream(std::string_view workload, size_t ops, uint64_t seed = 1);

    /** Registry holding this cache's "trace_cache.*" counters. */
    obs::MetricsRegistry &metricsRegistry() const { return *metrics_; }

    /**
     * Attaches (or detaches, with nullptr) the second-level disk
     * corpus consulted on memo misses.
     */
    void attachCorpus(std::shared_ptr<CorpusManager> corpus);

    /** The attached corpus, or nullptr. */
    std::shared_ptr<CorpusManager> corpus() const;

    /** Number of traces actually generated (not served from disk). */
    size_t recordings() const;

    /** Number of traces currently memoized. */
    size_t size() const;

    /** Drops every memoized trace (handed-out handles stay valid). */
    void clear();

  private:
    struct Key
    {
        std::string workload;
        uint64_t seed;
        size_t ops;
        size_t hash;  ///< precomputed over the three fields above
    };

    /** Borrowed-string probe key; same hash, no allocation. */
    struct KeyRef
    {
        std::string_view workload;
        uint64_t seed;
        size_t ops;
        size_t hash;
    };

    static size_t hashKey(std::string_view workload, uint64_t seed,
                          size_t ops);

    struct KeyHash
    {
        using is_transparent = void;
        size_t operator()(const Key &k) const { return k.hash; }
        size_t operator()(const KeyRef &k) const { return k.hash; }
    };

    struct KeyEqual
    {
        using is_transparent = void;

        static bool
        eq(std::string_view wa, uint64_t sa, size_t oa,
           std::string_view wb, uint64_t sb, size_t ob)
        {
            return sa == sb && oa == ob && wa == wb;
        }

        bool
        operator()(const Key &a, const Key &b) const
        {
            return eq(a.workload, a.seed, a.ops, b.workload, b.seed,
                      b.ops);
        }
        bool
        operator()(const KeyRef &a, const Key &b) const
        {
            return eq(a.workload, a.seed, a.ops, b.workload, b.seed,
                      b.ops);
        }
        bool
        operator()(const Key &a, const KeyRef &b) const
        {
            return eq(a.workload, a.seed, a.ops, b.workload, b.seed,
                      b.ops);
        }
    };

    /** Memo-miss path: corpus load, else generate (and persist). */
    SharedTrace acquire(const std::string &workload, size_t ops,
                        uint64_t seed);

    /** Stream-memo-miss path: stream corpus, else extract+persist. */
    std::shared_ptr<const BranchStream>
    acquireStream(const std::string &workload, size_t ops,
                  uint64_t seed);

    mutable std::mutex mutex_;
    std::unordered_map<Key, std::shared_future<SharedTrace>, KeyHash,
                       KeyEqual>
        memo_;
    std::unordered_map<
        Key, std::shared_future<std::shared_ptr<const BranchStream>>,
        KeyHash, KeyEqual>
        streamMemo_;
    std::shared_ptr<CorpusManager> corpus_;

    std::unique_ptr<obs::MetricsRegistry> owned_;  ///< when unshared
    obs::MetricsRegistry *metrics_;
    obs::Counter hits_;
    obs::Counter misses_;
    obs::Counter corpusHits_;
    obs::Counter recordings_;
    obs::Counter bytesInserted_;
    obs::Counter streamHits_;
    obs::Counter streamMisses_;
    obs::Counter streamCorpusHits_;
    obs::Counter streamExtractions_;
};

/**
 * Process-wide cache shared by the harness and bench drivers.  On
 * first use, if $TPRED_CORPUS_DIR names a directory, a CorpusManager
 * over it is attached as the second-level cache; set $TPRED_VERBOSE
 * to log hit/miss/store traffic on stderr.
 */
TraceCache &globalTraceCache();

/** Shorthand for globalTraceCache().get(...). */
SharedTrace cachedTrace(std::string_view workload, size_t ops,
                        uint64_t seed = 1);

/** Shorthand for globalTraceCache().getStream(...). */
std::shared_ptr<const BranchStream>
cachedBranchStream(std::string_view workload, size_t ops,
                   uint64_t seed = 1);

} // namespace tpred

#endif // TPRED_HARNESS_TRACE_CACHE_HH
