#include "obs/metrics.hh"

#include <array>
#include <atomic>
#include <chrono>
#include <ctime>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace tpred::obs
{

namespace detail
{

/**
 * The registry's whole mutable state, ref-counted: the registry holds
 * one reference and every handle holds another.  A handle that
 * outlives its registry therefore keeps writing into this (detached)
 * block instead of freed memory — the mutex and shard vector stay
 * valid, and the increments are simply never snapshotted.
 */
struct RegistryState
{
    struct Slot
    {
        std::string name;
        MetricsRegistry::SlotUse use;
        MetricKind kind;
    };

    struct Shard
    {
        std::array<std::atomic<uint64_t>, MetricsRegistry::kMaxSlots>
            cells{};
    };

    const uint64_t uid;  ///< process-unique, keys the TLS shard cache

    mutable std::mutex mutex;
    std::vector<Slot> slots;  ///< indexed by cell; timers span 3
    std::unordered_map<std::string, uint32_t> byName;
    std::vector<std::shared_ptr<Shard>> shards;
    std::array<std::atomic<uint64_t>, MetricsRegistry::kMaxSlots>
        gauges{};

    explicit RegistryState(uint64_t id) : uid(id)
    {
        slots.reserve(64);
    }
};

} // namespace detail

namespace
{

using detail::RegistryState;

std::atomic<uint64_t> g_next_registry_uid{1};

/**
 * Per-thread cache of (registry uid -> shard).  The list is tiny —
 * one entry per registry this thread ever touched — so a linear scan
 * beats a hash.
 */
struct TlsShardCache
{
    std::vector<std::pair<uint64_t, std::shared_ptr<void>>> entries;
};

thread_local TlsShardCache tls_shards;

/** This thread's shard for @p state (allocating on first use). */
RegistryState::Shard &
localShard(RegistryState &state)
{
    for (auto &entry : tls_shards.entries)
        if (entry.first == state.uid)
            return *static_cast<RegistryState::Shard *>(
                entry.second.get());
    auto shard = std::make_shared<RegistryState::Shard>();
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        state.shards.push_back(shard);
    }
    tls_shards.entries.emplace_back(state.uid, shard);
    return *shard;
}

/** Hot path behind the handle types: one relaxed fetch_add. */
void
addCell(RegistryState &state, uint32_t slot, uint64_t delta)
{
    localShard(state).cells[slot].fetch_add(delta,
                                            std::memory_order_relaxed);
}

uint64_t
wallNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

uint64_t
cpuNowNs()
{
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0;
    return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<uint64_t>(ts.tv_nsec);
}

} // namespace

// ---------------------------------------------------------------
// Handles
// ---------------------------------------------------------------

void
Counter::inc(uint64_t delta) const
{
    if (state_ != nullptr)
        addCell(*state_, slot_, delta);
}

void
Gauge::set(uint64_t value) const
{
    if (state_ != nullptr)
        state_->gauges[slot_].store(value, std::memory_order_relaxed);
}

void
Gauge::setMax(uint64_t value) const
{
    if (state_ == nullptr)
        return;
    std::atomic<uint64_t> &cell = state_->gauges[slot_];
    uint64_t seen = cell.load(std::memory_order_relaxed);
    while (seen < value &&
           !cell.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

void
Timer::record(uint64_t wall_ns, uint64_t cpu_ns) const
{
    if (state_ == nullptr)
        return;
    addCell(*state_, slot_, 1);
    addCell(*state_, slot_ + 1, wall_ns);
    addCell(*state_, slot_ + 2, cpu_ns);
}

ScopedTimer::ScopedTimer(Timer timer)
    : timer_(std::move(timer)), wallStart_(wallNowNs()),
      cpuStart_(cpuNowNs())
{
}

ScopedTimer::~ScopedTimer()
{
    const uint64_t wall = wallNowNs() - wallStart_;
    const uint64_t cpu = cpuNowNs() - cpuStart_;
    timer_.record(wall, cpu);
}

// ---------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------

MetricsRegistry::MetricsRegistry()
    : state_(std::make_shared<RegistryState>(
          g_next_registry_uid.fetch_add(1,
                                        std::memory_order_relaxed)))
{
}

MetricsRegistry::~MetricsRegistry() = default;

uint32_t
MetricsRegistry::registerSlots(std::string_view name, SlotUse use,
                               MetricKind kind, uint32_t cells)
{
    RegistryState &st = *state_;
    std::lock_guard<std::mutex> lock(st.mutex);
    const auto it = st.byName.find(std::string(name));
    if (it != st.byName.end()) {
        const RegistryState::Slot &slot = st.slots[it->second];
        if (slot.use != use || slot.kind != kind)
            throw std::logic_error("metric '" + std::string(name) +
                                   "' re-registered as a different "
                                   "type");
        return it->second;
    }
    if (st.slots.size() + cells > kMaxSlots)
        throw std::length_error(
            "metrics registry full (kMaxSlots cells)");
    const auto base = static_cast<uint32_t>(st.slots.size());
    st.slots.push_back(
        RegistryState::Slot{std::string(name), use, kind});
    for (uint32_t i = 1; i < cells; ++i)
        st.slots.push_back(
            RegistryState::Slot{"", use, kind});  // continuation cells
    st.byName.emplace(std::string(name), base);
    return base;
}

Counter
MetricsRegistry::counter(std::string_view name, MetricKind kind)
{
    return Counter(state_,
                   registerSlots(name, SlotUse::Counter, kind, 1));
}

Gauge
MetricsRegistry::gauge(std::string_view name)
{
    return Gauge(state_, registerSlots(name, SlotUse::Gauge,
                                       MetricKind::Runtime, 1));
}

Timer
MetricsRegistry::timer(std::string_view name)
{
    return Timer(state_, registerSlots(name, SlotUse::TimerBase,
                                       MetricKind::Runtime, 3));
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    const RegistryState &st = *state_;
    std::lock_guard<std::mutex> lock(st.mutex);
    std::vector<uint64_t> sums(st.slots.size(), 0);
    for (const auto &shard : st.shards)
        for (size_t i = 0; i < st.slots.size(); ++i)
            sums[i] += shard->cells[i].load(std::memory_order_relaxed);

    MetricsSnapshot snap;
    for (size_t i = 0; i < st.slots.size(); ++i) {
        const RegistryState::Slot &slot = st.slots[i];
        if (slot.name.empty())
            continue;  // continuation cell of a timer
        switch (slot.use) {
          case SlotUse::Counter:
            (slot.kind == MetricKind::Deterministic ? snap.counters
                                                    : snap.runtime)
                [slot.name] = sums[i];
            break;
          case SlotUse::Gauge:
            snap.gauges[slot.name] =
                st.gauges[i].load(std::memory_order_relaxed);
            break;
          case SlotUse::TimerBase:
            snap.timers[slot.name] =
                TimerValue{sums[i], sums[i + 1], sums[i + 2]};
            break;
        }
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    RegistryState &st = *state_;
    std::lock_guard<std::mutex> lock(st.mutex);
    for (const auto &shard : st.shards)
        for (auto &cell : shard->cells)
            cell.store(0, std::memory_order_relaxed);
    for (auto &cell : st.gauges)
        cell.store(0, std::memory_order_relaxed);
}

MetricsRegistry &
globalMetrics()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsSnapshot
snapshotDelta(const MetricsSnapshot &a, const MetricsSnapshot &b)
{
    MetricsSnapshot d;
    auto diff = [](const std::map<std::string, uint64_t> &before,
                   const std::map<std::string, uint64_t> &after) {
        std::map<std::string, uint64_t> out;
        for (const auto &[name, value] : after) {
            const auto it = before.find(name);
            out[name] = value - (it != before.end() ? it->second : 0);
        }
        return out;
    };
    d.counters = diff(a.counters, b.counters);
    d.runtime = diff(a.runtime, b.runtime);
    d.gauges = b.gauges;
    for (const auto &[name, value] : b.timers) {
        const auto it = a.timers.find(name);
        TimerValue prev =
            it != a.timers.end() ? it->second : TimerValue{};
        d.timers[name] = TimerValue{value.count - prev.count,
                                    value.wallNs - prev.wallNs,
                                    value.cpuNs - prev.cpuNs};
    }
    return d;
}

} // namespace tpred::obs
