/**
 * @file
 * Lightweight process metrics registry: named monotonic counters,
 * gauges, and wall/CPU timers with thread-local sharding.
 *
 * This is the one observability surface every layer reports through
 * (thread pool, trace cache, corpus, experiment harness, core model)
 * instead of each keeping its own ad-hoc atomic-counter struct.  A
 * RunReport (run_report.hh) serializes a snapshot of the registry —
 * together with config and result tables — to deterministic JSON.
 *
 * Design rules:
 *
 *  - No locks on hot paths.  A handle increment is one relaxed
 *    fetch_add on a thread-local shard cell; registration (cold) and
 *    aggregation (end of run) take the registry mutex.
 *  - Deterministic vs runtime metrics are distinct kinds.  A
 *    Deterministic counter must reach the same value no matter how
 *    work is scheduled (serial vs `--jobs N`); a Runtime metric
 *    (steal counts, idle time, every timer) may not.  Reports keep
 *    the two in separate sections so determinism can be diffed.
 *  - Counters are monotonic; reset() exists for test isolation only.
 *
 * See docs/observability.md.
 */

#ifndef TPRED_OBS_METRICS_HH
#define TPRED_OBS_METRICS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace tpred::obs
{

class MetricsRegistry;

namespace detail
{
/** Shared registry state; handles co-own it (see MetricsRegistry). */
struct RegistryState;
} // namespace detail

/** How a metric behaves across schedules (see file comment). */
enum class MetricKind : uint8_t
{
    Deterministic,  ///< same value serial vs parallel, run to run
    Runtime,        ///< scheduling/timing dependent (informational)
};

/** Cheap copyable handle to one named monotonic counter. */
class Counter
{
  public:
    Counter() = default;

    /** Adds @p delta; lock-free, safe from any thread. */
    void inc(uint64_t delta = 1) const;

  private:
    friend class MetricsRegistry;
    Counter(std::shared_ptr<detail::RegistryState> state, uint32_t slot)
        : state_(std::move(state)), slot_(slot)
    {
    }
    std::shared_ptr<detail::RegistryState> state_;
    uint32_t slot_ = 0;
};

/** Handle to a last-write-wins (or running-max) gauge. */
class Gauge
{
  public:
    Gauge() = default;

    /** Stores @p value (last write wins). */
    void set(uint64_t value) const;

    /** Raises the gauge to @p value if it is higher. */
    void setMax(uint64_t value) const;

  private:
    friend class MetricsRegistry;
    Gauge(std::shared_ptr<detail::RegistryState> state, uint32_t slot)
        : state_(std::move(state)), slot_(slot)
    {
    }
    std::shared_ptr<detail::RegistryState> state_;
    uint32_t slot_ = 0;
};

/**
 * Handle to a named timer accumulating {count, wall ns, CPU ns}.
 * Timers are always Runtime metrics.  Use ScopedTimer to record a
 * scope; record() exists for manual (and deterministic-test) use.
 */
class Timer
{
  public:
    Timer() = default;

    /** Adds one sample of @p wall_ns / @p cpu_ns. */
    void record(uint64_t wall_ns, uint64_t cpu_ns = 0) const;

  private:
    friend class MetricsRegistry;
    friend class ScopedTimer;
    Timer(std::shared_ptr<detail::RegistryState> state, uint32_t slot)
        : state_(std::move(state)), slot_(slot)
    {
    }
    std::shared_ptr<detail::RegistryState> state_;
    uint32_t slot_ = 0;  ///< base of three consecutive cells
};

/**
 * RAII scope that records elapsed wall and thread-CPU time into a
 * Timer on destruction.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer timer);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Timer timer_;
    uint64_t wallStart_;
    uint64_t cpuStart_;
};

/** Aggregated value of one timer. */
struct TimerValue
{
    uint64_t count = 0;
    uint64_t wallNs = 0;
    uint64_t cpuNs = 0;
};

/** Point-in-time aggregation of a registry (sorted by name). */
struct MetricsSnapshot
{
    std::map<std::string, uint64_t> counters;  ///< Deterministic kind
    std::map<std::string, uint64_t> runtime;   ///< Runtime kind
    std::map<std::string, uint64_t> gauges;
    std::map<std::string, TimerValue> timers;
};

/**
 * Registry of named metrics.
 *
 * Registration is idempotent: counter("x") returns a handle to the
 * same slot every time (use and kind are fixed by the first
 * registration; a mismatched re-registration throws).  Handles co-own
 * the registry's state block, so a handle that outlives its registry
 * keeps writing into a detached block nobody will ever snapshot —
 * harmless by construction, never a dangling pointer.
 *
 * Thread safety: all methods may be called concurrently.  Handle
 * operations never take the registry mutex; each thread accumulates
 * into its own shard and snapshot() sums the shards.
 */
class MetricsRegistry
{
  public:
    /** Capacity in cells (a timer takes three). */
    static constexpr size_t kMaxSlots = 512;

    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Registers (or finds) a monotonic counter. */
    Counter counter(std::string_view name,
                    MetricKind kind = MetricKind::Deterministic);

    /** Registers (or finds) a gauge. */
    Gauge gauge(std::string_view name);

    /** Registers (or finds) a timer (always Runtime). */
    Timer timer(std::string_view name);

    /** Sums every shard into a sorted snapshot. */
    MetricsSnapshot snapshot() const;

    /**
     * Zeroes every cell.  Counters are meant to be monotonic over a
     * process; this exists so tests (and golden-report generation)
     * can isolate themselves from earlier activity.
     */
    void reset();

  private:
    friend struct detail::RegistryState;

    enum class SlotUse : uint8_t { Counter, Gauge, TimerBase };

    uint32_t registerSlots(std::string_view name, SlotUse use,
                           MetricKind kind, uint32_t cells);

    std::shared_ptr<detail::RegistryState> state_;
};

/** Process-wide registry every production component reports into. */
MetricsRegistry &globalMetrics();

/**
 * Difference of two snapshots of the same registry (b - a,
 * per-metric; metrics absent from @p a count as zero).  Gauges are
 * taken from @p b unchanged.
 */
MetricsSnapshot snapshotDelta(const MetricsSnapshot &a,
                              const MetricsSnapshot &b);

} // namespace tpred::obs

#endif // TPRED_OBS_METRICS_HH
