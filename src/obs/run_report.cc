#include "obs/run_report.hh"

#include <sys/resource.h>

#include <cstdio>
#include <stdexcept>

namespace tpred::obs
{

namespace
{

/** JSON string escape (quotes, backslash, control characters). */
std::string
quoted(std::string_view text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
fixed(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

/** Emits a {key -> pre-rendered JSON token} map at @p indent. */
void
emitObject(std::string &out,
           const std::map<std::string, std::string> &members,
           const std::string &indent)
{
    if (members.empty()) {
        out += "{}";
        return;
    }
    out += "{\n";
    size_t i = 0;
    for (const auto &[key, token] : members) {
        out += indent + "  " + quoted(key) + ": " + token;
        out += ++i < members.size() ? ",\n" : "\n";
    }
    out += indent + "}";
}

std::map<std::string, std::string>
tokenized(const std::map<std::string, uint64_t> &values)
{
    std::map<std::string, std::string> out;
    for (const auto &[key, value] : values)
        out[key] = std::to_string(value);
    return out;
}

} // namespace

RunReport::RunReport(std::string tool, std::string schema)
    : tool_(std::move(tool)), schema_(std::move(schema))
{
}

void
RunReport::setConfig(std::string_view key, std::string_view value)
{
    config_[std::string(key)] = quoted(value);
}

void
RunReport::setConfig(std::string_view key, uint64_t value)
{
    config_[std::string(key)] = std::to_string(value);
}

void
RunReport::setConfig(std::string_view key, bool value)
{
    config_[std::string(key)] = value ? "true" : "false";
}

void
RunReport::addTable(std::string_view name, std::string_view text)
{
    tables_[std::string(name)] = quoted(text);
}

void
RunReport::addWorkloadValue(std::string_view workload,
                            std::string_view key, double value,
                            int precision)
{
    workloads_[std::string(workload)][std::string(key)] =
        fixed(value, precision);
}

void
RunReport::addWorkloadValue(std::string_view workload,
                            std::string_view key, uint64_t value)
{
    workloads_[std::string(workload)][std::string(key)] =
        std::to_string(value);
}

void
RunReport::setRuntimeInfo(std::string_view key, std::string_view value)
{
    runtimeInfo_[std::string(key)] = quoted(value);
}

void
RunReport::setRuntimeInfo(std::string_view key, uint64_t value)
{
    runtimeInfo_[std::string(key)] = std::to_string(value);
}

void
RunReport::capture(const MetricsSnapshot &snap)
{
    for (const auto &[name, value] : snap.counters)
        metrics_[name] = value;
    for (const auto &[name, value] : snap.runtime)
        runtimeCounters_[name] = value;
    for (const auto &[name, value] : snap.gauges)
        gauges_[name] = value;
    for (const auto &[name, value] : snap.timers)
        timers_[name] = value;
}

void
RunReport::captureProcess(MetricsRegistry &reg)
{
    capture(reg.snapshot());
    peakRssBytes_ = peakRssBytes();
#if defined(__VERSION__)
    setRuntimeInfo("compiler", __VERSION__);
#endif
#if defined(NDEBUG)
    setRuntimeInfo("assertions", "off");
#else
    setRuntimeInfo("assertions", "on");
#endif
}

std::string
RunReport::toJson() const
{
    std::string out;
    out.reserve(4096);
    out += "{\n";
    out += "  \"schema\": " + quoted(schema_) + ",\n";
    out += "  \"tool\": " + quoted(tool_) + ",\n";

    out += "  \"config\": ";
    emitObject(out, config_, "  ");
    out += ",\n";

    out += "  \"metrics\": ";
    emitObject(out, tokenized(metrics_), "  ");
    out += ",\n";

    out += "  \"tables\": ";
    emitObject(out, tables_, "  ");
    out += ",\n";

    out += "  \"workloads\": ";
    {
        std::map<std::string, std::string> rows;
        for (const auto &[workload, lanes] : workloads_) {
            std::string row;
            emitObject(row, lanes, "    ");
            rows[workload] = row;
        }
        emitObject(out, rows, "  ");
    }
    out += ",\n";

    out += "  \"runtime\": {\n";
    out += "    \"counters\": ";
    emitObject(out, tokenized(runtimeCounters_), "    ");
    out += ",\n";
    out += "    \"gauges\": ";
    emitObject(out, tokenized(gauges_), "    ");
    out += ",\n";
    out += "    \"timers\": ";
    {
        std::map<std::string, std::string> rows;
        for (const auto &[name, value] : timers_) {
            rows[name] = "{\"count\": " + std::to_string(value.count) +
                         ", \"wall_ns\": " +
                         std::to_string(value.wallNs) +
                         ", \"cpu_ns\": " + std::to_string(value.cpuNs) +
                         "}";
        }
        emitObject(out, rows, "    ");
    }
    out += ",\n";
    out += "    \"info\": ";
    emitObject(out, runtimeInfo_, "    ");
    out += ",\n";
    out += "    \"resources\": {\"peak_rss_bytes\": " +
           std::to_string(peakRssBytes_) + "}\n";
    out += "  }\n";
    out += "}\n";
    return out;
}

void
RunReport::write(const std::string &path) const
{
    const std::string json = toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        throw std::runtime_error("run report: cannot open '" + path +
                                 "' for writing");
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const int close_rc = std::fclose(f);
    if (written != json.size() || close_rc != 0)
        throw std::runtime_error("run report: short write to '" +
                                 path + "'");
}

uint64_t
peakRssBytes()
{
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

} // namespace tpred::obs
