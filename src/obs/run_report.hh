/**
 * @file
 * Structured run reports: serializes one experiment run — tool and
 * config description, result tables, per-workload bench lanes, and a
 * MetricsRegistry snapshot — to deterministic JSON.
 *
 * Schema (tpred-run-report/1): every report has the same six
 * top-level sections, always present, keys emitted sorted:
 *
 *   {
 *     "schema":    "tpred-run-report/1",
 *     "tool":      "<binary name>",
 *     "config":    { semantic options: workload, ops, predictor... },
 *     "metrics":   { deterministic counters — identical for serial
 *                    and parallel runs of the same experiment },
 *     "tables":    { table name -> rendered text },
 *     "workloads": { workload -> { lane -> number } (bench lanes) },
 *     "runtime":   { scheduling/timing data: runtime counters,
 *                    gauges, timers, jobs, build info, peak RSS }
 *   }
 *
 * Determinism contract: two runs of the same tool with the same
 * semantic config produce byte-identical JSON outside the "runtime"
 * section and any key matching *_ns / *_mops / *_seconds.
 * tools/report_lint.py validates the schema, masks those volatile
 * fields, and diffs reports; tools/bench_compare.py reads the
 * "workloads" section.  See docs/observability.md.
 */

#ifndef TPRED_OBS_RUN_REPORT_HH
#define TPRED_OBS_RUN_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.hh"

namespace tpred::obs
{

/** Current value of the report "schema" field. */
inline constexpr const char *kRunReportSchema = "tpred-run-report/1";

class RunReport
{
  public:
    /**
     * @param tool Emitting binary's name ("tpredsim", bench name).
     * @param schema Value of the "schema" field.  Defaults to the run
     *        report schema; derived document kinds sharing the same
     *        six-section shape (the autotuner's tpred-tune-report/1)
     *        pass their own identifier.
     */
    explicit RunReport(std::string tool,
                       std::string schema = kRunReportSchema);

    /** Adds one semantic config entry (deterministic section). */
    void setConfig(std::string_view key, std::string_view value);
    void setConfig(std::string_view key, uint64_t value);
    void setConfig(std::string_view key, bool value);

    /** Keeps string literals off the bool overload. */
    void setConfig(std::string_view key, const char *value)
    {
        setConfig(key, std::string_view(value));
    }

    /** Adds a rendered result table (deterministic section). */
    void addTable(std::string_view name, std::string_view text);

    /** Adds one per-workload bench lane value (fixed precision). */
    void addWorkloadValue(std::string_view workload,
                          std::string_view key, double value,
                          int precision = 2);
    void addWorkloadValue(std::string_view workload,
                          std::string_view key, uint64_t value);

    /** Adds one runtime-info entry (jobs, build flavor, ...). */
    void setRuntimeInfo(std::string_view key, std::string_view value);
    void setRuntimeInfo(std::string_view key, uint64_t value);

    /**
     * Captures @p snap into the report: deterministic counters into
     * "metrics", runtime counters / gauges / timers into "runtime".
     */
    void capture(const MetricsSnapshot &snap);

    /** capture(reg.snapshot()), plus peak-RSS and build info. */
    void captureProcess(MetricsRegistry &reg = globalMetrics());

    /** Deterministic serialization (sorted keys, 2-space indent). */
    std::string toJson() const;

    /**
     * Writes toJson() to @p path.
     * @throws std::runtime_error when the file cannot be written.
     */
    void write(const std::string &path) const;

  private:
    std::string tool_;
    std::string schema_;
    std::map<std::string, std::string> config_;   ///< key -> JSON token
    std::map<std::string, std::string> tables_;
    std::map<std::string, std::map<std::string, std::string>>
        workloads_;
    std::map<std::string, uint64_t> metrics_;
    std::map<std::string, uint64_t> runtimeCounters_;
    std::map<std::string, uint64_t> gauges_;
    std::map<std::string, TimerValue> timers_;
    std::map<std::string, std::string> runtimeInfo_;
    uint64_t peakRssBytes_ = 0;
};

/** Current peak resident set size of this process, in bytes. */
uint64_t peakRssBytes();

} // namespace tpred::obs

#endif // TPRED_OBS_RUN_REPORT_HH
