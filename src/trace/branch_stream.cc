#include "trace/branch_stream.hh"

#include "trace/compact_trace.hh"

namespace tpred
{

BranchStream
BranchStream::extract(const CompactTrace &trace)
{
    BranchStream stream;
    stream.opCount = trace.size();
    const size_t branches = trace.branchPositions().size();
    stream.pos.reserve(branches);
    stream.pc.reserve(branches);
    stream.target.reserve(branches);
    stream.fallthrough.reserve(branches);
    stream.kind.reserve(branches);
    stream.taken.reserve(branches);
    trace.forEachBranch([&stream](const MicroOp &op, size_t pos) {
        stream.pos.push_back(static_cast<uint32_t>(pos));
        stream.pc.push_back(op.pc);
        stream.target.push_back(op.nextPc);
        stream.fallthrough.push_back(op.fallthrough);
        stream.kind.push_back(static_cast<uint8_t>(op.branch));
        stream.taken.push_back(op.taken ? 1 : 0);
    });
    return stream;
}

} // namespace tpred
