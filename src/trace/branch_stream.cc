#include "trace/branch_stream.hh"

#include <algorithm>
#include <utility>

#include "trace/compact_trace.hh"

namespace tpred
{

BranchStream
BranchStream::extract(const CompactTrace &trace)
{
    BranchStreamBuilder builder;
    builder.opCount = trace.size();
    builder.reserve(trace.branchPositions().size());
    trace.forEachBranch([&builder](const MicroOp &op, size_t pos) {
        builder.append(pos, op);
    });
    return std::move(builder).finish();
}

BranchStream
BranchStream::fromColumns(const BranchStreamColumns &cols,
                          std::shared_ptr<const void> backing)
{
    BranchStream stream;
    stream.opCount = cols.opCount;
    stream.pos = cols.pos;
    stream.pc = cols.pc;
    stream.target = cols.target;
    stream.fallthrough = cols.fallthrough;
    stream.kind = cols.kind;
    stream.taken = cols.taken;
    stream.backing_ = std::move(backing);
    return stream;
}

BranchStreamColumns
BranchStream::columns() const
{
    BranchStreamColumns cols;
    cols.opCount = opCount;
    cols.pos = pos;
    cols.pc = pc;
    cols.target = target;
    cols.fallthrough = fallthrough;
    cols.kind = kind;
    cols.taken = taken;
    return cols;
}

bool
operator==(const BranchStream &a, const BranchStream &b)
{
    return a.opCount == b.opCount &&
           std::ranges::equal(a.pos, b.pos) &&
           std::ranges::equal(a.pc, b.pc) &&
           std::ranges::equal(a.target, b.target) &&
           std::ranges::equal(a.fallthrough, b.fallthrough) &&
           std::ranges::equal(a.kind, b.kind) &&
           std::ranges::equal(a.taken, b.taken);
}

void
BranchStreamBuilder::reserve(size_t branches)
{
    pos.reserve(branches);
    pc.reserve(branches);
    target.reserve(branches);
    fallthrough.reserve(branches);
    kind.reserve(branches);
    taken.reserve(branches);
}

BranchStream
BranchStreamBuilder::finish() &&
{
    struct Owned
    {
        std::vector<uint32_t> pos;
        std::vector<uint64_t> pc;
        std::vector<uint64_t> target;
        std::vector<uint64_t> fallthrough;
        std::vector<uint8_t> kind;
        std::vector<uint8_t> taken;
    };
    auto owned = std::make_shared<Owned>();
    owned->pos = std::move(pos);
    owned->pc = std::move(pc);
    owned->target = std::move(target);
    owned->fallthrough = std::move(fallthrough);
    owned->kind = std::move(kind);
    owned->taken = std::move(taken);

    BranchStreamColumns cols;
    cols.opCount = opCount;
    cols.pos = owned->pos;
    cols.pc = owned->pc;
    cols.target = owned->target;
    cols.fallthrough = owned->fallthrough;
    cols.kind = owned->kind;
    cols.taken = owned->taken;
    return BranchStream::fromColumns(cols, std::move(owned));
}

} // namespace tpred
