/**
 * @file
 * Dense branch stream: a structure-of-arrays projection of just the
 * control-transfer ops of a CompactTrace.
 *
 * Accuracy experiments only touch predictor state at branches; every
 * op in between contributes exactly one instruction to the counters.
 * The compact columns already expose that through forEachBranch, but
 * each sweep configuration replaying the same trace still pays the
 * column decode again.  A BranchStream is that decode done once: the
 * (position, pc, target, fallthrough, kind, taken) tuples of every
 * branch, laid out as parallel arrays a fused multi-config sweep
 * kernel (harness/sweep_kernel.hh) can iterate with plain loads.
 *
 * Extraction goes through CompactTrace::forEachBranch, so traces that
 * fail the encode-time fast-scan preconditions feed the extractor
 * through the same block-decode fallback the legacy path uses — fused
 * and per-config replays agree on hostile traces by construction.
 *
 * The stream stores every field the accuracy path reads from a branch
 * MicroOp (BTB training consumes pc/fallthrough/kind/taken/nextPc;
 * history trackers consume pc/kind/taken/nextPc; the indirect
 * predictors consume pc/history/nextPc).  memAddr, selector and the
 * register fields are never read on that path and are not stored;
 * opAt() reconstructs a MicroOp with those fields defaulted.
 */

#ifndef TPRED_TRACE_BRANCH_STREAM_HH
#define TPRED_TRACE_BRANCH_STREAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/micro_op.hh"

namespace tpred
{

class CompactTrace;

/** SoA view of the control-transfer ops of one trace. */
struct BranchStream
{
    uint64_t opCount = 0;  ///< total ops in the source trace

    std::vector<uint32_t> pos;          ///< op index within the trace
    std::vector<uint64_t> pc;           ///< fetch address
    std::vector<uint64_t> target;       ///< resolved nextPc
    std::vector<uint64_t> fallthrough;  ///< pc + 4 (or override)
    std::vector<uint8_t> kind;          ///< BranchKind
    std::vector<uint8_t> taken;         ///< architectural outcome

    /** Number of branches in the stream. */
    size_t size() const { return pos.size(); }

    /**
     * Reconstructs branch @p i as a MicroOp carrying every field the
     * accuracy path reads; memAddr/selector/registers are defaulted.
     */
    MicroOp
    opAt(size_t i) const
    {
        MicroOp op;
        op.pc = pc[i];
        op.nextPc = target[i];
        op.fallthrough = fallthrough[i];
        op.cls = InstClass::Branch;
        op.branch = static_cast<BranchKind>(kind[i]);
        op.taken = taken[i] != 0;
        return op;
    }

    /**
     * Extracts the stream from @p trace via forEachBranch — the fast
     * O(branches) scan on coherent traces, the block-decode fallback
     * on hostile ones, identical results either way.
     */
    static BranchStream extract(const CompactTrace &trace);
};

} // namespace tpred

#endif // TPRED_TRACE_BRANCH_STREAM_HH
