/**
 * @file
 * Dense branch stream: a structure-of-arrays projection of just the
 * control-transfer ops of a CompactTrace.
 *
 * Accuracy experiments only touch predictor state at branches; every
 * op in between contributes exactly one instruction to the counters.
 * The compact columns already expose that through forEachBranch, but
 * each sweep configuration replaying the same trace still pays the
 * column decode again.  A BranchStream is that decode done once: the
 * (position, pc, target, fallthrough, kind, taken) tuples of every
 * branch, laid out as parallel arrays a fused multi-config sweep
 * kernel (harness/sweep_kernel.hh) can iterate with plain loads.
 *
 * Extraction goes through CompactTrace::forEachBranch, so traces that
 * fail the encode-time fast-scan preconditions feed the extractor
 * through the same block-decode fallback the legacy path uses — fused
 * and per-config replays agree on hostile traces by construction.
 *
 * The stream stores every field the accuracy path reads from a branch
 * MicroOp (BTB training consumes pc/fallthrough/kind/taken/nextPc;
 * history trackers consume pc/kind/taken/nextPc; the indirect
 * predictors consume pc/history/nextPc).  memAddr, selector and the
 * register fields are never read on that path and are not stored;
 * opAt() reconstructs a MicroOp with those fields defaulted.
 *
 * Like CompactTrace, the columns are read-only spans over one of two
 * backings with a single consumer-facing layout:
 *
 *  - **owned** — BranchStreamBuilder::finish() moves freshly built
 *    vectors into a heap block shared by every copy of the stream;
 *  - **borrowed** — fromColumns() views caller-provided memory, e.g.
 *    an mmap'd "TPBS" corpus container (trace/stream_io.hh), kept
 *    alive by an opaque shared backing handle.  A warm corpus load
 *    is therefore zero-copy: no extraction, no deserialization.
 *
 * Copies are cheap (spans plus one shared_ptr) and share the backing.
 */

#ifndef TPRED_TRACE_BRANCH_STREAM_HH
#define TPRED_TRACE_BRANCH_STREAM_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "trace/micro_op.hh"

namespace tpred
{

class CompactTrace;

/**
 * Read-only views of every column of a BranchStream — the exchange
 * format between the stream and its serialized container
 * (trace/stream_io.hh), mirroring CompactColumns.
 */
struct BranchStreamColumns
{
    uint64_t opCount = 0;               ///< total ops in the source trace

    std::span<const uint32_t> pos;          ///< op index within the trace
    std::span<const uint64_t> pc;           ///< fetch address
    std::span<const uint64_t> target;       ///< resolved nextPc
    std::span<const uint64_t> fallthrough;  ///< pc + 4 (or override)
    std::span<const uint8_t> kind;          ///< BranchKind
    std::span<const uint8_t> taken;         ///< architectural outcome
};

/** SoA view of the control-transfer ops of one trace. */
struct BranchStream
{
    uint64_t opCount = 0;  ///< total ops in the source trace

    std::span<const uint32_t> pos;          ///< op index within the trace
    std::span<const uint64_t> pc;           ///< fetch address
    std::span<const uint64_t> target;       ///< resolved nextPc
    std::span<const uint64_t> fallthrough;  ///< pc + 4 (or override)
    std::span<const uint8_t> kind;          ///< BranchKind
    std::span<const uint8_t> taken;         ///< architectural outcome

    /** Number of branches in the stream. */
    size_t size() const { return pos.size(); }

    /** Bytes the column payloads occupy (owned or mapped). */
    size_t
    residentBytes() const
    {
        return pos.size_bytes() + pc.size_bytes() + target.size_bytes() +
               fallthrough.size_bytes() + kind.size_bytes() +
               taken.size_bytes();
    }

    /**
     * Reconstructs branch @p i as a MicroOp carrying every field the
     * accuracy path reads; memAddr/selector/registers are defaulted.
     */
    MicroOp
    opAt(size_t i) const
    {
        MicroOp op;
        op.pc = pc[i];
        op.nextPc = target[i];
        op.fallthrough = fallthrough[i];
        op.cls = InstClass::Branch;
        op.branch = static_cast<BranchKind>(kind[i]);
        op.taken = taken[i] != 0;
        return op;
    }

    /**
     * Extracts the stream from @p trace via forEachBranch — the fast
     * O(branches) scan on coherent traces, the block-decode fallback
     * on hostile ones, identical results either way.
     */
    static BranchStream extract(const CompactTrace &trace);

    /**
     * Adopts already-extracted columns without copying them.  The
     * spans in @p cols must stay valid for the lifetime of
     * @p backing (a MappedFile, a shared buffer, ...), which every
     * copy of the returned stream holds until destroyed.  This is
     * the zero-copy corpus load path (stream_io.hh validates files
     * before handing them here; no re-validation is performed).
     */
    static BranchStream fromColumns(const BranchStreamColumns &cols,
                                    std::shared_ptr<const void> backing);

    /** The column views (serialization, diagnostics). */
    BranchStreamColumns columns() const;

    /** Element-wise equality of every column (tests, proofs). */
    friend bool operator==(const BranchStream &a, const BranchStream &b);

  private:
    std::shared_ptr<const void> backing_;  ///< column keep-alive handle
};

/**
 * Mutable staging area for building a BranchStream one branch at a
 * time (extract(), the segmented concatenator in shard_replay.cc).
 * finish() freezes the vectors behind a shared heap block and binds
 * the stream's spans to them.
 */
struct BranchStreamBuilder
{
    uint64_t opCount = 0;

    std::vector<uint32_t> pos;
    std::vector<uint64_t> pc;
    std::vector<uint64_t> target;
    std::vector<uint64_t> fallthrough;
    std::vector<uint8_t> kind;
    std::vector<uint8_t> taken;

    /** Pre-sizes every column for @p branches entries. */
    void reserve(size_t branches);

    /** Appends one branch op observed at trace position @p at. */
    void
    append(size_t at, const MicroOp &op)
    {
        pos.push_back(static_cast<uint32_t>(at));
        pc.push_back(op.pc);
        target.push_back(op.nextPc);
        fallthrough.push_back(op.fallthrough);
        kind.push_back(static_cast<uint8_t>(op.branch));
        taken.push_back(op.taken ? 1 : 0);
    }

    /** Freezes the columns into an immutable owned stream. */
    BranchStream finish() &&;
};

} // namespace tpred

#endif // TPRED_TRACE_BRANCH_STREAM_HH
