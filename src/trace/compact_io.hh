/**
 * @file
 * Serialized container for CompactTrace — the byte layout shared by
 * trace_io v2 files and the persistent corpus (src/corpus/).
 *
 * The container preserves the columnar encoding verbatim: a fixed
 * header (magic, version, op count, stream name), a section table
 * with one CRC32C-checked record per column, the 8-byte-aligned
 * column payloads, and a footer carrying the file length and a total
 * CRC32C.  Because the payload *is* the in-memory column layout,
 * loading is zero-copy: openCompactContainer() validates the
 * structure and returns a CompactTrace whose column spans point
 * straight into the provided bytes (an mmap'd file, a read buffer),
 * with no per-op deserialization pass.  See docs/trace_format.md for
 * the byte-level layout.
 *
 * Every structural defect — wrong magic, version skew, truncation,
 * checksum mismatch, inconsistent section table — throws a
 * CompactFormatError naming the offending input, so callers can
 * quarantine bad files instead of trusting them.
 */

#ifndef TPRED_TRACE_COMPACT_IO_HH
#define TPRED_TRACE_COMPACT_IO_HH

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "trace/compact_trace.hh"

namespace tpred
{

/** Container magic "TPCC" and footer magic "TPCF" (little-endian). */
constexpr uint32_t kCompactMagic = 0x43435054;
constexpr uint32_t kCompactFooterMagic = 0x46435054;

/**
 * Bump on any incompatible layout change.  Version 2 added the
 * segmented-container flag; the plain (unsegmented) layout is
 * byte-identical to version 1, so readers accept both.
 */
constexpr uint32_t kCompactVersion = 2;

/** Oldest container version openCompactContainer still reads. */
constexpr uint32_t kCompactMinVersion = 1;

/**
 * Header flag: the envelope holds fixed-size CompactTrace segments
 * plus a segment index instead of one monolithic section payload
 * (segmented_io.hh).  Plain openCompactContainer() refuses such
 * files; SegmentedTrace (corpus/segmented_trace.hh) reads them via
 * windowed mappings.
 */
constexpr uint32_t kCompactFlagSegmented = 1u << 1;

/** A malformed, truncated or corrupt container. */
class CompactFormatError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Serializes @p trace (with its stream @p name) into a self-contained
 * container image.  Deterministic: the same trace and name always
 * produce the same bytes.
 */
std::vector<uint8_t> serializeCompactTrace(const CompactTrace &trace,
                                           std::string_view name);

struct CompactOpenOptions
{
    /**
     * Verify the per-section and whole-file CRC32C checksums (one
     * sequential pass over the bytes).  Structural validation —
     * magic, version, bounds, footer length — always happens.
     */
    bool verifyChecksums = true;
};

/**
 * Opens a container image in place.
 *
 * @param bytes   The complete container.
 * @param backing Keep-alive handle for the memory behind @p bytes
 *                (MappedFile, shared buffer, ...); held by the
 *                returned trace.
 * @param name_out Receives the recorded stream name.
 * @param whence  Human-readable origin (file path) for error messages.
 * @return A CompactTrace viewing @p bytes — zero-copy.
 * @throws CompactFormatError on any structural or checksum defect.
 */
CompactTrace openCompactContainer(std::span<const uint8_t> bytes,
                                  std::shared_ptr<const void> backing,
                                  std::string &name_out,
                                  const std::string &whence,
                                  const CompactOpenOptions &opts = {});

/** Cheap header/footer summary of a container (corpus `ls`). */
struct CompactContainerInfo
{
    std::string name;        ///< recorded stream name
    uint64_t opCount = 0;
    uint64_t branchCount = 0;
    uint32_t version = 0;
    uint32_t totalCrc = 0;   ///< footer CRC32C of the whole image
    uint64_t fileBytes = 0;
    bool fastBranchScan = false;
};

/**
 * Structurally validates @p bytes and reports the header summary
 * WITHOUT verifying payload checksums (that is what `tpredcorpus
 * verify` / openCompactContainer are for).
 * @throws CompactFormatError when the structure is unusable.
 */
CompactContainerInfo peekCompactContainer(std::span<const uint8_t> bytes,
                                          const std::string &whence);

} // namespace tpred

#endif // TPRED_TRACE_COMPACT_IO_HH
