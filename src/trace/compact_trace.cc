#include "trace/compact_trace.hh"

#include <algorithm>
#include <stdexcept>
#include <type_traits>

namespace tpred
{

namespace
{

/** Zigzag-maps a signed 64-bit delta to an unsigned varint payload. */
inline uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

inline int64_t
zigzagDecode(uint64_t v)
{
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/** LEB128 append. */
inline void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

/** LEB128 read; advances @p at. */
inline uint64_t
getVarint(std::span<const uint8_t> in, size_t &at)
{
    uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
        const uint8_t byte = in[at++];
        v |= static_cast<uint64_t>(byte & 0x7F) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
    }
}

/** Wrapping pc delta: decode must invert encode even across 2^64. */
inline uint64_t
wrapDelta(uint64_t value, uint64_t base)
{
    return value - base;  // mod 2^64
}

} // namespace

void
CompactTrace::bindOwned()
{
    const OwnedColumns &o = *owned_;
    flags_ = o.flags;
    regBytes_ = o.regBytes;
    regEscapes_ = o.regEscapes;
    targetDeltas_ = o.targetDeltas;
    discontPos_ = o.discontPos;
    discontPc_ = o.discontPc;
    memPos_ = o.memPos;
    memDeltas_ = o.memDeltas;
    selPos_ = o.selPos;
    selVals_ = o.selVals;
    fallPos_ = o.fallPos;
    fallVals_ = o.fallVals;
    branchPos_ = o.branchPos;
}

CompactTrace
CompactTrace::fromColumns(const CompactColumns &cols,
                          std::shared_ptr<const void> backing)
{
    CompactTrace t;
    t.count_ = cols.count;
    t.fastBranchScan_ = cols.fastBranchScan;
    t.flags_ = cols.flags;
    t.regBytes_ = cols.regBytes;
    t.regEscapes_ = cols.regEscapes;
    t.targetDeltas_ = cols.targetDeltas;
    t.discontPos_ = cols.discontPos;
    t.discontPc_ = cols.discontPc;
    t.memPos_ = cols.memPos;
    t.memDeltas_ = cols.memDeltas;
    t.selPos_ = cols.selPos;
    t.selVals_ = cols.selVals;
    t.fallPos_ = cols.fallPos;
    t.fallVals_ = cols.fallVals;
    t.branchPos_ = cols.branchPos;
    t.backing_ = std::move(backing);
    return t;
}

CompactColumns
CompactTrace::columns() const
{
    CompactColumns cols;
    cols.count = count_;
    cols.fastBranchScan = fastBranchScan_;
    cols.flags = flags_;
    cols.regBytes = regBytes_;
    cols.regEscapes = regEscapes_;
    cols.targetDeltas = targetDeltas_;
    cols.discontPos = discontPos_;
    cols.discontPc = discontPc_;
    cols.memPos = memPos_;
    cols.memDeltas = memDeltas_;
    cols.selPos = selPos_;
    cols.selVals = selVals_;
    cols.fallPos = fallPos_;
    cols.fallVals = fallVals_;
    cols.branchPos = branchPos_;
    return cols;
}

CompactTrace
CompactTrace::encode(const std::vector<MicroOp> &ops)
{
    if (ops.size() >= UINT32_MAX)
        throw std::length_error("CompactTrace: trace too long");

    CompactTrace t;
    t.count_ = ops.size();
    t.owned_ = std::make_unique<OwnedColumns>();
    OwnedColumns &o = *t.owned_;
    o.flags.reserve(ops.size());
    o.regBytes.reserve(ops.size() * 3);

    uint64_t expected_pc = 0;
    uint64_t prev_mem = 0;
    // forEachBranch O(branches) preconditions, disproven as we go.
    bool redirect_off_branch = false;
    bool mem_at_branch = false;
    auto reg_byte = [&o](RegIndex reg) -> uint8_t {
        const int32_t biased = static_cast<int32_t>(reg) + 1;
        if (biased >= 0 && biased < kRegEscape)
            return static_cast<uint8_t>(biased);
        o.regEscapes.push_back(reg);
        return kRegEscape;
    };

    for (size_t i = 0; i < ops.size(); ++i) {
        const MicroOp &op = ops[i];
        const uint32_t pos = static_cast<uint32_t>(i);

        uint8_t flags =
            static_cast<uint8_t>(
                (static_cast<uint8_t>(op.cls) << kClsShift)) |
            static_cast<uint8_t>(
                (static_cast<uint8_t>(op.branch) << kBranchShift));
        if (op.taken)
            flags |= kTakenBit;

        if (op.pc != expected_pc) {
            o.discontPos.push_back(pos);
            o.discontPc.push_back(op.pc);
        }
        const uint64_t fall = op.pc + 4;
        if (op.nextPc != fall) {
            flags |= kRedirectBit;
            putVarint(o.targetDeltas,
                      zigzagEncode(static_cast<int64_t>(
                          wrapDelta(op.nextPc, fall))));
            if (op.branch == BranchKind::None)
                redirect_off_branch = true;
        }
        if (op.fallthrough != fall) {
            o.fallPos.push_back(pos);
            o.fallVals.push_back(op.fallthrough);
        }
        if (op.memAddr != 0) {
            o.memPos.push_back(pos);
            putVarint(o.memDeltas,
                      zigzagEncode(static_cast<int64_t>(
                          wrapDelta(op.memAddr, prev_mem))));
            prev_mem = op.memAddr;
            if (op.branch != BranchKind::None)
                mem_at_branch = true;
        }
        if (op.selector != 0) {
            o.selPos.push_back(pos);
            putVarint(o.selVals, op.selector);
        }
        if (op.branch != BranchKind::None)
            o.branchPos.push_back(pos);

        o.flags.push_back(flags);
        o.regBytes.push_back(reg_byte(op.dstReg));
        o.regBytes.push_back(reg_byte(op.srcRegs[0]));
        o.regBytes.push_back(reg_byte(op.srcRegs[1]));

        expected_pc = op.nextPc;
    }

    o.flags.shrink_to_fit();
    o.regBytes.shrink_to_fit();
    o.regEscapes.shrink_to_fit();
    o.targetDeltas.shrink_to_fit();
    o.memDeltas.shrink_to_fit();
    o.selVals.shrink_to_fit();
    o.branchPos.shrink_to_fit();
    t.fastBranchScan_ = !redirect_off_branch && !mem_at_branch &&
                        o.regEscapes.empty() && o.fallPos.empty();
    t.bindOwned();
    return t;
}

void
CompactTrace::forEachBranchImpl(BranchFn fn, void *ctx) const
{
    if (!fastBranchScan_) {
        // General path: block-decode every op and pick the branches.
        MicroOp buf[kReplayBlock];
        Cursor cur = cursor();
        size_t branch_idx = 0;
        size_t base = 0;
        size_t n;
        while ((n = cur.fill(buf, kReplayBlock)) != 0) {
            const size_t end = base + n;
            while (branch_idx < branchPos_.size() &&
                   branchPos_[branch_idx] < end) {
                const size_t pos = branchPos_[branch_idx];
                fn(ctx, buf[pos - base], pos);
                ++branch_idx;
            }
            base = end;
        }
        return;
    }

    // O(branches) scan.  Invariants established by encode(): every
    // redirect sits at a branch position, so a gap of g ops between
    // branches advances the pc chain by exactly 4g (reset by the
    // sparse discontinuity column); no branch carries a memAddr, so
    // the memory-delta stream is never consumed; there are no
    // register escapes or fallthrough overrides, so flags_ and
    // regBytes_ are pure position-indexed lookups.
    const size_t num_discont = discontPos_.size();
    const size_t num_sel = selPos_.size();
    uint64_t chain_pc = 0;  ///< pc of op `chain_at` if no discont since
    size_t chain_at = 0;
    size_t target_byte = 0;
    size_t discont_idx = 0;
    size_t sel_idx = 0;
    size_t sel_byte = 0;
    MicroOp op;

    for (const uint32_t pos : branchPos_) {
        while (discont_idx < num_discont &&
               discontPos_[discont_idx] <= pos) {
            chain_pc = discontPc_[discont_idx];
            chain_at = discontPos_[discont_idx];
            ++discont_idx;
        }
        const uint64_t pc = chain_pc + 4 * (uint64_t{pos} - chain_at);
        const uint64_t fall = pc + 4;
        const uint8_t flags = flags_[pos];

        uint64_t next_pc = fall;
        if (flags & kRedirectBit) {
            next_pc = fall + static_cast<uint64_t>(zigzagDecode(
                                 getVarint(targetDeltas_, target_byte)));
        }

        // Selector entries between branches (possible only for
        // hand-built coherent traces) are skipped byte-wise; the
        // values are absolute, so nothing needs decoding.
        while (sel_idx < num_sel && selPos_[sel_idx] < pos) {
            while (selVals_[sel_byte] & 0x80)
                ++sel_byte;
            ++sel_byte;
            ++sel_idx;
        }
        op.selector = 0;
        if (sel_idx < num_sel && selPos_[sel_idx] == pos) {
            op.selector = getVarint(selVals_, sel_byte);
            ++sel_idx;
        }

        op.pc = pc;
        op.nextPc = next_pc;
        op.fallthrough = fall;
        op.memAddr = 0;
        op.cls = static_cast<InstClass>((flags >> kClsShift) & 0x7);
        op.branch =
            static_cast<BranchKind>((flags >> kBranchShift) & 0x7);
        op.taken = (flags & kTakenBit) != 0;
        const uint8_t *regs = &regBytes_[size_t{pos} * 3];
        op.dstReg =
            static_cast<RegIndex>(static_cast<int32_t>(regs[0]) - 1);
        op.srcRegs[0] =
            static_cast<RegIndex>(static_cast<int32_t>(regs[1]) - 1);
        op.srcRegs[1] =
            static_cast<RegIndex>(static_cast<int32_t>(regs[2]) - 1);

        fn(ctx, op, pos);

        chain_pc = next_pc;
        chain_at = size_t{pos} + 1;
    }
}

size_t
CompactTrace::Cursor::fill(MicroOp *buf, size_t cap)
{
    const CompactTrace &t = *trace_;
    const size_t end = std::min(t.count_, pos_ + cap);
    size_t produced = 0;

    for (; pos_ < end; ++pos_, ++produced) {
        const uint8_t flags = t.flags_[pos_];
        MicroOp &op = buf[produced];

        uint64_t pc = expectedPc_;
        if (discontIdx_ < t.discontPos_.size() &&
            t.discontPos_[discontIdx_] == pos_) {
            pc = t.discontPc_[discontIdx_++];
        }
        const uint64_t fall = pc + 4;

        uint64_t next_pc = fall;
        if (flags & kRedirectBit) {
            next_pc = fall + static_cast<uint64_t>(zigzagDecode(
                                 getVarint(t.targetDeltas_,
                                           targetByte_)));
        }

        op.pc = pc;
        op.nextPc = next_pc;
        op.fallthrough = fall;
        if (fallIdx_ < t.fallPos_.size() &&
            t.fallPos_[fallIdx_] == pos_) {
            op.fallthrough = t.fallVals_[fallIdx_++];
        }

        op.memAddr = 0;
        if (memIdx_ < t.memPos_.size() && t.memPos_[memIdx_] == pos_) {
            prevMemAddr_ += static_cast<uint64_t>(
                zigzagDecode(getVarint(t.memDeltas_, memByte_)));
            op.memAddr = prevMemAddr_;
            ++memIdx_;
        }

        op.selector = 0;
        if (selIdx_ < t.selPos_.size() && t.selPos_[selIdx_] == pos_) {
            op.selector = getVarint(t.selVals_, selByte_);
            ++selIdx_;
        }

        op.cls = static_cast<InstClass>((flags >> kClsShift) & 0x7);
        op.branch =
            static_cast<BranchKind>((flags >> kBranchShift) & 0x7);
        op.taken = (flags & kTakenBit) != 0;

        const uint8_t *regs = &t.regBytes_[pos_ * 3];
        auto decode_reg = [&](uint8_t byte) -> RegIndex {
            if (byte == kRegEscape)
                return t.regEscapes_[escIdx_++];
            return static_cast<RegIndex>(static_cast<int32_t>(byte) - 1);
        };
        op.dstReg = decode_reg(regs[0]);
        op.srcRegs[0] = decode_reg(regs[1]);
        op.srcRegs[1] = decode_reg(regs[2]);

        expectedPc_ = next_pc;
    }
    return produced;
}

std::vector<MicroOp>
CompactTrace::decodeAll() const
{
    std::vector<MicroOp> ops(count_);
    Cursor cur = cursor();
    size_t at = 0;
    size_t n;
    while (at < count_ &&
           (n = cur.fill(ops.data() + at, count_ - at)) != 0) {
        at += n;
    }
    return ops;
}

const BranchStream &
CompactTrace::branchStream(const std::function<void()> &on_build) const
{
    StreamBox &box = *streamBox_;
    std::call_once(box.once, [&] {
        box.stream = BranchStream::extract(*this);
        box.built.store(true, std::memory_order_release);
        if (on_build)
            on_build();
    });
    return box.stream;
}

bool
CompactTrace::adoptBranchStream(BranchStream stream) const
{
    StreamBox &box = *streamBox_;
    bool adopted = false;
    std::call_once(box.once, [&] {
        box.stream = std::move(stream);
        box.built.store(true, std::memory_order_release);
        adopted = true;
    });
    return adopted;
}

bool
CompactTrace::branchStreamBuilt() const
{
    return streamBox_->built.load(std::memory_order_acquire);
}

size_t
CompactTrace::residentBytes() const
{
    auto bytes = [](const auto &v) { return v.size_bytes(); };
    return sizeof(*this) + bytes(flags_) + bytes(regBytes_) +
           bytes(regEscapes_) + bytes(targetDeltas_) +
           bytes(discontPos_) + bytes(discontPc_) + bytes(memPos_) +
           bytes(memDeltas_) + bytes(selPos_) + bytes(selVals_) +
           bytes(fallPos_) + bytes(fallVals_) + bytes(branchPos_);
}

} // namespace tpred
