/**
 * @file
 * Columnar compact trace storage.
 *
 * A recorded trace of N MicroOps costs N * sizeof(MicroOp) = 56 N
 * bytes as a vector — ~112 MB for a default 2M-op recording — yet
 * almost every field is redundant: instruction streams are coherent
 * (each op starts where the previous one resolved), fallthrough is
 * always pc + 4, most successor addresses *are* the fallthrough,
 * memory addresses and dispatch selectors are populated only on a
 * minority of ops, and register indices fit in a byte.
 *
 * CompactTrace exploits that with a structure-of-arrays encoding:
 *
 *  - one flags byte per op packs InstClass (3 bits), BranchKind
 *    (3 bits), the taken bit, and a "redirect" bit that marks
 *    nextPc != pc + 4;
 *  - redirect targets are stored as zigzag varints of nextPc - (pc+4)
 *    — branch displacements are small, so 1-3 bytes cover most;
 *  - pc itself is never stored: it is chained from the previous op's
 *    nextPc, with a sparse (position, pc) side array for the rare
 *    stream discontinuity (position 0 seeds the chain);
 *  - fallthrough is dropped entirely (reconstructed as pc + 4, with a
 *    sparse side array for hand-built ops that violate the invariant);
 *  - memAddr and selector live in sparse position-indexed columns
 *    touched only where non-zero, memAddr delta-varint coded against
 *    the previous memory address;
 *  - dstReg/srcRegs are biased to one byte each with a two's-
 *    complement i16 escape column for out-of-range values.
 *
 * Decoding is a branch-light forward scan that materializes ops in
 * blocks of kReplayBlock into a caller-owned buffer — no virtual call
 * and no 56-byte copy per op on the hot path.  A precomputed index of
 * control-transfer positions additionally lets accuracy experiments
 * decode *only* the branches and account for the ops in between
 * arithmetically (see forEachBranch and docs/trace_format.md).
 *
 * Storage is accessed through read-only spans, so a trace can be
 * backed two ways with one decoder:
 *
 *  - **owned** — encode() materializes heap vectors (behind a stable
 *    unique_ptr, so moves never invalidate the spans);
 *  - **borrowed** — fromColumns() views caller-provided memory, e.g.
 *    an mmap'd corpus file (src/corpus/), kept alive by an opaque
 *    shared backing handle.  Decode then runs zero-copy straight out
 *    of the page cache with no deserialization pass.
 *
 * The encoding is lossless for arbitrary MicroOp sequences; for
 * coherent generated workloads it is ~8-10x smaller than the vector.
 */

#ifndef TPRED_TRACE_COMPACT_TRACE_HH
#define TPRED_TRACE_COMPACT_TRACE_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "trace/branch_stream.hh"
#include "trace/micro_op.hh"

namespace tpred
{

/** Ops materialized per refill on the batch replay path. */
constexpr size_t kReplayBlock = 256;

/**
 * Read-only views of every column of a CompactTrace, in one flat
 * struct — the exchange format between the trace and its serialized
 * container (trace/compact_io.hh): writers iterate the spans,
 * loaders fill them in from mapped or buffered file sections.
 */
struct CompactColumns
{
    size_t count = 0;            ///< number of encoded ops
    bool fastBranchScan = false; ///< O(branches) scan applicable

    std::span<const uint8_t> flags;         ///< 1 byte per op
    std::span<const uint8_t> regBytes;      ///< 3 bytes per op
    std::span<const int16_t> regEscapes;    ///< out-of-range regs
    std::span<const uint8_t> targetDeltas;  ///< varint redirect deltas
    std::span<const uint32_t> discontPos;   ///< pc-chain breaks
    std::span<const uint64_t> discontPc;
    std::span<const uint32_t> memPos;       ///< ops with memAddr != 0
    std::span<const uint8_t> memDeltas;     ///< varint mem deltas
    std::span<const uint32_t> selPos;       ///< ops with selector != 0
    std::span<const uint8_t> selVals;       ///< varint selectors
    std::span<const uint32_t> fallPos;      ///< fallthrough overrides
    std::span<const uint64_t> fallVals;
    std::span<const uint32_t> branchPos;    ///< control-transfer index
};

class CompactTrace
{
  public:
    /** Empty trace. */
    CompactTrace() = default;

    CompactTrace(CompactTrace &&) = default;
    CompactTrace &operator=(CompactTrace &&) = default;

    /** Losslessly encodes @p ops (any sequence, coherent or not). */
    static CompactTrace encode(const std::vector<MicroOp> &ops);

    /**
     * Adopts already-encoded columns without copying them.  The spans
     * in @p cols must stay valid for the lifetime of @p backing (an
     * opaque keep-alive handle: a MappedFile, a file buffer, ...),
     * which the trace holds until destroyed.  This is the zero-copy
     * load path: decode cursors read straight from the viewed memory.
     *
     * The caller is responsible for the columns being internally
     * consistent (compact_io validates files before handing them
     * here); no re-validation is performed.
     */
    static CompactTrace fromColumns(const CompactColumns &cols,
                                    std::shared_ptr<const void> backing);

    /** The column views (serialization, diagnostics). */
    CompactColumns columns() const;

    /** Number of encoded ops. */
    size_t size() const { return count_; }

    /** True when forEachBranch may take the O(branches) scan. */
    bool fastBranchScan() const { return fastBranchScan_; }

    /** Positions of control-transfer ops, ascending (branch index). */
    std::span<const uint32_t> branchPositions() const
    {
        return branchPos_;
    }

    /** Bytes resident in the columnar encoding. */
    size_t residentBytes() const;

    /** Bytes the same trace costs as a std::vector<MicroOp>. */
    static size_t legacyBytes(size_t ops) { return ops * sizeof(MicroOp); }

    /**
     * Sequential block decoder.  Obtain via cursor(); refill a
     * caller-owned buffer with fill().  The cursor borrows the trace,
     * which must outlive it.
     */
    class Cursor
    {
      public:
        /**
         * Decodes up to @p cap ops into @p buf.
         * @return the number of ops produced; 0 at end of trace.
         */
        size_t fill(MicroOp *buf, size_t cap);

        /** Index of the next op fill() would produce. */
        size_t position() const { return pos_; }

      private:
        friend class CompactTrace;
        explicit Cursor(const CompactTrace &trace) : trace_(&trace) {}

        const CompactTrace *trace_;
        size_t pos_ = 0;       ///< next op index
        size_t targetByte_ = 0; ///< cursor into targetDeltas_
        size_t discontIdx_ = 0;
        size_t memIdx_ = 0;
        size_t memByte_ = 0;   ///< cursor into memDeltas_
        size_t selIdx_ = 0;
        size_t selByte_ = 0;   ///< cursor into selVals_
        size_t fallIdx_ = 0;
        size_t escIdx_ = 0;    ///< cursor into regEscapes_
        uint64_t expectedPc_ = 0;
        uint64_t prevMemAddr_ = 0;
    };

    Cursor cursor() const { return Cursor(*this); }

    /**
     * Devirtualized batch replay: decodes the whole trace in
     * kReplayBlock chunks through a stack buffer and invokes
     * fn(const MicroOp &) for every op, in order.
     */
    template <typename Fn>
    void
    forEachOp(Fn &&fn) const
    {
        MicroOp buf[kReplayBlock];
        Cursor cur = cursor();
        size_t n;
        while ((n = cur.fill(buf, kReplayBlock)) != 0) {
            for (size_t i = 0; i < n; ++i)
                fn(static_cast<const MicroOp &>(buf[i]));
        }
    }

    /**
     * Branch-index fast path: invokes fn(const MicroOp &, size_t
     * position) for control-transfer ops only, in order.  Non-branch
     * ops are skipped in bulk — the caller accounts for them from the
     * position gaps (only branches touch predictor state; a skipped
     * op contributes exactly one instruction to the counters).
     *
     * On coherent traces (no register escapes, no fallthrough
     * overrides, redirects only at branches, no memory address on a
     * branch — everything the workload generators emit) this runs in
     * O(branches), not O(ops): a branch's flags and registers are
     * fixed-stride columns addressed by position, and the pc chain
     * across a gap of g redirect-free ops is just +4g.  Hand-built
     * traces that violate a precondition fall back to a full
     * block-decode scan with identical results.
     */
    template <typename Fn>
    void
    forEachBranch(Fn &&fn) const
    {
        using F = std::remove_reference_t<Fn>;
        forEachBranchImpl(
            [](void *ctx, const MicroOp &op, size_t pos) {
                (*static_cast<F *>(ctx))(op, pos);
            },
            const_cast<void *>(
                static_cast<const void *>(std::addressof(fn))));
    }

    /** Full decode into a fresh vector (compatibility / tooling). */
    std::vector<MicroOp> decodeAll() const;

    /**
     * The dense branch stream of this trace, extracted lazily on
     * first request and cached for the trace's lifetime — all sweep
     * configurations and all threads share one extraction.
     *
     * Thread safety: concurrent callers race only on a call_once;
     * exactly one performs the extraction.  @p on_build, when given,
     * runs inside that once-block (after the build), so callers can
     * count builds deterministically regardless of scheduling.
     */
    const BranchStream &
    branchStream(const std::function<void()> &on_build = {}) const;

    /**
     * Seeds the lazy stream cache with an already-materialized stream
     * — the zero-copy corpus adoption path: a validated mmap'd TPBS
     * container (trace/stream_io.hh) becomes this trace's stream and
     * branchStream() never pays the extraction.  Copies of @p stream
     * are cheap (spans plus a shared backing handle).
     *
     * @return true when this call populated the cache; false when a
     *         stream was already built or adopted (the existing one
     *         wins — both are bit-identical by the container proofs).
     */
    bool adoptBranchStream(BranchStream stream) const;

    /** True when branchStream() has already been built (tests). */
    bool branchStreamBuilt() const;

  private:
    // Flags byte layout.
    static constexpr uint8_t kClsShift = 0;      // bits 0-2
    static constexpr uint8_t kBranchShift = 3;   // bits 3-5
    static constexpr uint8_t kTakenBit = 1u << 6;
    static constexpr uint8_t kRedirectBit = 1u << 7;

    // Register byte: kNoReg..253 biased by +1; 0xFF = escape column.
    static constexpr uint8_t kRegEscape = 0xFF;

    /**
     * Heap storage for encode()-built traces.  Held behind a
     * unique_ptr so the column spans stay valid across moves of the
     * owning CompactTrace; absent entirely for view-backed traces.
     */
    struct OwnedColumns
    {
        std::vector<uint8_t> flags;
        std::vector<uint8_t> regBytes;
        std::vector<int16_t> regEscapes;
        std::vector<uint8_t> targetDeltas;
        std::vector<uint32_t> discontPos;
        std::vector<uint64_t> discontPc;
        std::vector<uint32_t> memPos;
        std::vector<uint8_t> memDeltas;
        std::vector<uint32_t> selPos;
        std::vector<uint8_t> selVals;
        std::vector<uint32_t> fallPos;
        std::vector<uint64_t> fallVals;
        std::vector<uint32_t> branchPos;
    };

    /** Points the column spans at the owned vectors. */
    void bindOwned();

    /** Type-erased callback behind the forEachBranch template. */
    using BranchFn = void (*)(void *ctx, const MicroOp &op, size_t pos);
    void forEachBranchImpl(BranchFn fn, void *ctx) const;

    size_t count_ = 0;
    /// encode() verdict: true when the O(branches) scan is applicable.
    bool fastBranchScan_ = false;

    // Decode always reads through these spans, whether the bytes live
    // in owned_ or in the memory backing_ keeps alive.
    std::span<const uint8_t> flags_;        ///< 1 byte per op
    std::span<const uint8_t> regBytes_;     ///< 3 bytes per op (dst, s0, s1)
    std::span<const int16_t> regEscapes_;   ///< out-of-range regs, in order
    std::span<const uint8_t> targetDeltas_; ///< varint zigzag(nextPc-(pc+4))
    std::span<const uint32_t> discontPos_;  ///< ops where pc != chained pc
    std::span<const uint64_t> discontPc_;
    std::span<const uint32_t> memPos_;      ///< ops with memAddr != 0
    std::span<const uint8_t> memDeltas_;    ///< varint zigzag vs. previous
    std::span<const uint32_t> selPos_;      ///< ops with selector != 0
    std::span<const uint8_t> selVals_;      ///< varint selector values
    std::span<const uint32_t> fallPos_;     ///< ops w/ fallthrough != pc+4
    std::span<const uint64_t> fallVals_;
    std::span<const uint32_t> branchPos_;   ///< control-transfer index

    std::unique_ptr<OwnedColumns> owned_;   ///< encode()-built storage
    std::shared_ptr<const void> backing_;   ///< borrowed-view keep-alive

    /**
     * Once-per-trace lazy BranchStream cache.  std::once_flag and
     * std::atomic are immovable, so the box lives behind a shared_ptr
     * the (movable) trace carries; every handle to the same trace
     * shares one extraction.
     */
    struct StreamBox
    {
        std::once_flag once;
        std::atomic<bool> built{false};
        BranchStream stream;
    };
    mutable std::shared_ptr<StreamBox> streamBox_ =
        std::make_shared<StreamBox>();
};

/**
 * Non-virtual replay source over a CompactTrace: the devirtualized
 * drop-in for the TraceSource pull loop.  next() is an inline bounds
 * check plus copy from an internal block buffer; the decoder runs
 * once per kReplayBlock ops.  The trace must outlive the source.
 */
class CompactReplay
{
  public:
    explicit CompactReplay(const CompactTrace &trace)
        : cursor_(trace.cursor())
    {
    }

    /**
     * Replay positioned at op @p start: the first next() produces op
     * @p start.  The sequential decoder has no random access — the
     * preceding ops are block-decoded and discarded — so this is for
     * infrequent repositioning (forked timing members, shard restarts),
     * not per-op seeking.
     */
    CompactReplay(const CompactTrace &trace, size_t start)
        : cursor_(trace.cursor())
    {
        size_t skipped = 0;
        while (skipped < start) {
            const size_t want =
                std::min(kReplayBlock, start - skipped);
            const size_t got = cursor_.fill(buf_, want);
            if (got == 0)
                break;  // start beyond end: replay is exhausted
            skipped += got;
        }
    }

    bool
    next(MicroOp &op)
    {
        if (pos_ == count_) {
            count_ = cursor_.fill(buf_, kReplayBlock);
            pos_ = 0;
            if (count_ == 0)
                return false;
        }
        op = buf_[pos_++];
        return true;
    }

  private:
    CompactTrace::Cursor cursor_;
    size_t pos_ = 0;
    size_t count_ = 0;
    MicroOp buf_[kReplayBlock];
};

} // namespace tpred

#endif // TPRED_TRACE_COMPACT_TRACE_HH
