/**
 * @file
 * Dynamic instruction record exchanged between the workload generators,
 * the predictor stack and the timing model.
 *
 * The paper's experiments are trace-driven (section 4.1); a MicroOp is one
 * entry of such a trace: the architectural outcome of one instruction,
 * including the resolved next-PC for branches.
 */

#ifndef TPRED_TRACE_MICRO_OP_HH
#define TPRED_TRACE_MICRO_OP_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tpred
{

/**
 * Instruction classes of the simulated HPS machine (paper Table 3).
 * Every functional unit can execute any class; the class selects the
 * execution latency.
 */
enum class InstClass : uint8_t
{
    Integer,    ///< INT add, sub and logic ops
    FpAdd,      ///< FP add, sub, convert
    Mul,        ///< FP and INT multiply
    Div,        ///< FP and INT divide
    Load,       ///< memory load
    Store,      ///< memory store
    BitField,   ///< shift and bit testing
    Branch,     ///< control instructions
};

/** Number of InstClass values; used to size latency tables. */
constexpr size_t kNumInstClasses = 8;

/**
 * Control-transfer taxonomy from the paper's introduction.  The paper's
 * four-way direct/indirect x conditional/unconditional classification is
 * refined with call/return so the return address stack and the Call/Ret
 * path-history filter can identify those instructions.
 */
enum class BranchKind : uint8_t
{
    None,           ///< not a control instruction
    CondDirect,     ///< conditional direct branch
    UncondDirect,   ///< unconditional direct jump
    IndirectJump,   ///< unconditional indirect jump (incl. jump tables)
    Call,           ///< direct call (pushes return address)
    IndirectCall,   ///< indirect call (function pointer / vtable)
    Return,         ///< return (pops return address)
};

/** True for the kinds the target cache is responsible for predicting. */
constexpr bool
isIndirectNonReturn(BranchKind kind)
{
    return kind == BranchKind::IndirectJump ||
           kind == BranchKind::IndirectCall;
}

/** True for any control-transfer kind (Control path-history filter). */
constexpr bool
isControl(BranchKind kind)
{
    return kind != BranchKind::None;
}

/** Printable name of a branch kind. */
std::string_view branchKindName(BranchKind kind);

/** Printable name of an instruction class. */
std::string_view instClassName(InstClass cls);

/** Register index type; the machine models 64 architectural registers. */
using RegIndex = int16_t;
constexpr RegIndex kNoReg = -1;
constexpr unsigned kNumArchRegs = 64;

/**
 * One dynamic instruction.
 *
 * For branches, @c taken / @c nextPc carry the architecturally resolved
 * outcome; the front end must not look at them before the instruction
 * "executes" (the harness enforces prediction-before-peek ordering).
 */
struct MicroOp
{
    uint64_t pc = 0;           ///< fetch address
    uint64_t nextPc = 0;       ///< resolved successor address
    uint64_t fallthrough = 0;  ///< pc + 4 (word-aligned ISA)
    uint64_t memAddr = 0;      ///< effective address (Load/Store only)
    uint64_t selector = 0;     ///< dispatch value of an indirect jump
                               ///< (case-block variable; used by the CBT)
    InstClass cls = InstClass::Integer;
    BranchKind branch = BranchKind::None;
    bool taken = false;        ///< CondDirect outcome; true for other CTIs
    RegIndex dstReg = kNoReg;
    std::array<RegIndex, 2> srcRegs{kNoReg, kNoReg};

    bool isBranch() const { return branch != BranchKind::None; }
    bool isIndirect() const
    {
        return branch == BranchKind::IndirectJump ||
               branch == BranchKind::IndirectCall ||
               branch == BranchKind::Return;
    }
};

} // namespace tpred

#endif // TPRED_TRACE_MICRO_OP_HH
