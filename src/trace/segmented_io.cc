#include "trace/segmented_io.hh"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.hh"

namespace tpred
{

namespace
{

// The envelope records, shared with the plain container
// (compact_io.cc); duplicated here because the segmented layout
// reinterprets two header fields (sectionCount = segment count,
// totalCrc = metadata-only CRC) and the plain reader deliberately
// keeps its records private.

struct FileHeader
{
    uint32_t magic;
    uint32_t version;
    uint64_t opCount;
    uint32_t flags;
    uint32_t nameLen;
    uint32_t sectionCount;  ///< segmented: number of segments
    uint32_t headerCrc;     ///< CRC32C of the 28 bytes preceding it
};
static_assert(sizeof(FileHeader) == 32);

struct Footer
{
    uint32_t magic;
    uint32_t totalCrc;      ///< segmented: metadata CRC (header+name,
                            ///< then index bytes)
    uint64_t fileLen;
    uint64_t reserved;
};
static_assert(sizeof(Footer) == 24);

constexpr uint32_t kFlagFastBranchScan = 1u << 0;
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxSegments = 1u << 24;

inline uint64_t
align8(uint64_t at)
{
    return (at + 7) & ~uint64_t{7};
}

[[noreturn]] void
fail(const std::string &whence, const std::string &what)
{
    throw CompactFormatError(whence + ": " + what);
}

uint32_t
metadataCrc(std::span<const uint8_t> header_name,
            std::span<const uint8_t> index)
{
    uint32_t crc = crc32cUpdate(0, header_name.data(),
                                header_name.size());
    return crc32cUpdate(crc, index.data(), index.size());
}

} // namespace

uint64_t
segmentedHeaderMaxBytes()
{
    return sizeof(FileHeader) + kMaxNameLen;
}

SegmentedHeaderInfo
parseSegmentedHeader(std::span<const uint8_t> head,
                     const std::string &whence)
{
    if (head.size() < sizeof(FileHeader))
        fail(whence, "truncated container (" +
                         std::to_string(head.size()) + " bytes)");
    FileHeader h;
    std::memcpy(&h, head.data(), sizeof(h));
    if (h.magic != kCompactMagic)
        fail(whence, "not a compact trace container (bad magic)");
    if (h.version < 2 || h.version > kCompactVersion)
        fail(whence, "unsupported segmented container version " +
                         std::to_string(h.version));
    if (crc32c(head.data(), offsetof(FileHeader, headerCrc)) !=
        h.headerCrc)
        fail(whence, "header checksum mismatch");
    if (!(h.flags & kCompactFlagSegmented))
        fail(whence, "not a segmented container (plain layout; use "
                     "openCompactContainer)");
    if (h.nameLen > kMaxNameLen)
        fail(whence, "implausible stream name length");
    if (h.sectionCount == 0 || h.sectionCount > kMaxSegments)
        fail(whence, "implausible segment count " +
                         std::to_string(h.sectionCount));
    if (head.size() < sizeof(FileHeader) + h.nameLen)
        fail(whence, "truncated stream name");

    SegmentedHeaderInfo info;
    info.name.assign(
        reinterpret_cast<const char *>(head.data()) + sizeof(FileHeader),
        h.nameLen);
    info.totalOps = h.opCount;
    info.version = h.version;
    info.segmentCount = h.sectionCount;
    info.fastBranchScan = (h.flags & kFlagFastBranchScan) != 0;
    info.headerNameBytes = sizeof(FileHeader) + h.nameLen;
    info.firstSegmentOffset = align8(info.headerNameBytes);
    return info;
}

uint64_t
segmentedTailBytes(uint32_t segment_count)
{
    return sizeof(Footer) +
           uint64_t{segment_count} * sizeof(SegmentRecord);
}

std::vector<SegmentRecord>
parseSegmentedTail(std::span<const uint8_t> tail,
                   std::span<const uint8_t> header_name,
                   const SegmentedHeaderInfo &header, uint64_t file_len,
                   const std::string &whence)
{
    const uint64_t index_bytes =
        uint64_t{header.segmentCount} * sizeof(SegmentRecord);
    if (tail.size() != index_bytes + sizeof(Footer))
        fail(whence, "segment index/footer size mismatch");
    if (header.firstSegmentOffset + tail.size() > file_len)
        fail(whence, "truncated segmented container");

    Footer footer;
    std::memcpy(&footer, tail.data() + index_bytes, sizeof(footer));
    if (footer.magic != kCompactFooterMagic)
        fail(whence, "missing container footer (truncated file?)");
    if (footer.fileLen != file_len)
        fail(whence, "length mismatch: footer records " +
                         std::to_string(footer.fileLen) +
                         " bytes, file has " +
                         std::to_string(file_len));
    if (metadataCrc(header_name, tail.first(index_bytes)) !=
        footer.totalCrc)
        fail(whence, "segment index checksum mismatch (corrupt "
                     "metadata)");
    // The reserved word sits outside the metadata CRC (which covers
    // header + index only); reject any damage to it explicitly.
    if (footer.reserved != 0)
        fail(whence, "nonzero reserved footer field");

    std::vector<SegmentRecord> segments(header.segmentCount);
    std::memcpy(segments.data(), tail.data(), index_bytes);

    const uint64_t index_offset = file_len - tail.size();
    uint64_t next_offset = header.firstSegmentOffset;
    uint64_t next_op = 0;
    uint64_t next_branch = 0;
    for (size_t i = 0; i < segments.size(); ++i) {
        const SegmentRecord &rec = segments[i];
        const std::string label = "segment " + std::to_string(i);
        if (rec.offset != next_offset)
            fail(whence, label + " offset out of sequence");
        if (rec.byteLen == 0 || rec.byteLen % 8 != 0 ||
            rec.offset + rec.byteLen < rec.offset ||
            rec.offset + rec.byteLen > index_offset)
            fail(whence, label + " payload out of bounds");
        if (rec.opCount == 0)
            fail(whence, label + " is empty");
        if (rec.firstOp != next_op)
            fail(whence, label + " op index out of sequence");
        if (rec.firstBranch != next_branch)
            fail(whence, label + " branch index out of sequence");
        next_offset = rec.offset + rec.byteLen;
        next_op += rec.opCount;
        next_branch += rec.branchCount;
    }
    if (next_offset != index_offset)
        fail(whence, "segment payloads do not fill the container");
    if (next_op != header.totalOps)
        fail(whence, "segment op counts do not sum to the header op "
                     "count");
    return segments;
}

// ---------------------------------------------------------------------
// SegmentedFileWriter

SegmentedFileWriter::SegmentedFileWriter(std::string path,
                                         std::string_view name)
    : path_(std::move(path)),
      tempPath_(path_ + ".tmp." + std::to_string(getpid())),
      name_(name)
{
    if (name_.size() > kMaxNameLen)
        fail(path_, "stream name too long");
    file_ = std::fopen(tempPath_.c_str(), "wb");
    if (!file_)
        fail(tempPath_, std::string("cannot create: ") +
                            std::strerror(errno));

    // Placeholder header (rewritten by finish()) + name + padding.
    headerName_.resize(sizeof(FileHeader) + name_.size(), 0);
    std::memcpy(headerName_.data() + sizeof(FileHeader), name_.data(),
                name_.size());
    writeOffset_ = align8(headerName_.size());
    std::vector<uint8_t> prefix(writeOffset_, 0);
    std::memcpy(prefix.data() + sizeof(FileHeader), name_.data(),
                name_.size());
    if (std::fwrite(prefix.data(), 1, prefix.size(), file_) !=
        prefix.size())
        fail(tempPath_, "short write");
}

SegmentedFileWriter::~SegmentedFileWriter()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
    if (!finished_)
        ::unlink(tempPath_.c_str());
}

void
SegmentedFileWriter::addSegment(const CompactTrace &segment)
{
    if (finished_ || !file_)
        fail(path_, "addSegment after finish");
    if (segment.size() == 0)
        fail(path_, "cannot add an empty segment");
    if (index_.size() >= kMaxSegments)
        fail(path_, "too many segments");

    // Segments do not repeat the stream name; the envelope carries it.
    const std::vector<uint8_t> image =
        serializeCompactTrace(segment, "");

    SegmentRecord rec;
    rec.offset = writeOffset_;
    rec.byteLen = image.size();
    rec.opCount = segment.size();
    rec.branchCount = segment.branchPositions().size();
    rec.firstOp = totalOps_;
    rec.firstBranch = totalBranches_;
    rec.crc = crc32c(image.data(), image.size());

    if (std::fwrite(image.data(), 1, image.size(), file_) !=
        image.size())
        fail(tempPath_, "short write");

    index_.push_back(rec);
    writeOffset_ += image.size();
    totalOps_ += segment.size();
    totalBranches_ += rec.branchCount;
    allFastScan_ = allFastScan_ && segment.fastBranchScan();
}

void
SegmentedFileWriter::finish()
{
    if (finished_ || !file_)
        fail(path_, "finish called twice");
    if (index_.empty())
        fail(path_, "segmented container needs at least one segment");

    const uint64_t index_bytes = index_.size() * sizeof(SegmentRecord);
    const uint64_t file_len =
        writeOffset_ + index_bytes + sizeof(Footer);

    FileHeader header{};
    header.magic = kCompactMagic;
    header.version = kCompactVersion;
    header.opCount = totalOps_;
    header.flags = kCompactFlagSegmented |
                   (allFastScan_ ? kFlagFastBranchScan : 0);
    header.nameLen = static_cast<uint32_t>(name_.size());
    header.sectionCount = static_cast<uint32_t>(index_.size());
    std::memcpy(headerName_.data(), &header, sizeof(header));
    header.headerCrc =
        crc32c(headerName_.data(), offsetof(FileHeader, headerCrc));
    std::memcpy(headerName_.data(), &header, sizeof(header));

    const auto *index_raw =
        reinterpret_cast<const uint8_t *>(index_.data());
    Footer footer{};
    footer.magic = kCompactFooterMagic;
    footer.totalCrc = metadataCrc(
        headerName_, std::span<const uint8_t>(index_raw, index_bytes));
    footer.fileLen = file_len;

    if (std::fwrite(index_raw, 1, index_bytes, file_) != index_bytes ||
        std::fwrite(&footer, 1, sizeof(footer), file_) !=
            sizeof(footer))
        fail(tempPath_, "short write");

    // Rewrite the header now that the counts are known.
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(headerName_.data(), 1, sizeof(FileHeader), file_) !=
            sizeof(FileHeader))
        fail(tempPath_, "header rewrite failed");

    if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0)
        fail(tempPath_, "flush failed");
    std::fclose(file_);
    file_ = nullptr;

    if (std::rename(tempPath_.c_str(), path_.c_str()) != 0)
        fail(path_, std::string("rename failed: ") +
                        std::strerror(errno));
    finished_ = true;
}

std::vector<CompactTrace>
segmentCompactTrace(const CompactTrace &trace, size_t segment_ops)
{
    if (segment_ops == 0)
        throw std::invalid_argument("segment_ops must be positive");
    std::vector<CompactTrace> segments;
    std::vector<MicroOp> chunk;
    chunk.reserve(std::min(segment_ops, trace.size()));
    MicroOp buf[kReplayBlock];
    CompactTrace::Cursor cur = trace.cursor();
    size_t n;
    while ((n = cur.fill(buf, kReplayBlock)) != 0) {
        size_t at = 0;
        while (at < n) {
            const size_t take =
                std::min(n - at, segment_ops - chunk.size());
            chunk.insert(chunk.end(), buf + at, buf + at + take);
            at += take;
            if (chunk.size() == segment_ops) {
                segments.push_back(CompactTrace::encode(chunk));
                chunk.clear();
            }
        }
    }
    if (!chunk.empty())
        segments.push_back(CompactTrace::encode(chunk));
    return segments;
}

void
writeSegmentedTraceFile(const std::string &path,
                        const CompactTrace &trace, std::string_view name,
                        size_t segment_ops)
{
    SegmentedFileWriter writer(path, name);
    for (CompactTrace &seg : segmentCompactTrace(trace, segment_ops))
        writer.addSegment(seg);
    writer.finish();
}

} // namespace tpred
