/**
 * @file
 * Segmented "TPCC" container: fixed-size CompactTrace segments inside
 * the existing envelope, each a complete, individually-CRC32C'd plain
 * container image, plus a segment index carrying per-segment op and
 * branch-stream offsets.  See docs/trace_format.md for the byte
 * layout.
 *
 * The point of the format is *streaming*: a corpus trace no longer
 * needs to be fully resident to replay.  A reader maps one segment
 * window at a time (corpus/segmented_trace.hh), so peak memory is
 * O(segment size), not O(trace size), and the per-segment
 * firstOp/firstBranch index records give sharded replay its exact
 * checkpoint boundaries (harness/shard_replay.hh).
 *
 * File layout (all little-endian, 8-byte aligned):
 *
 *   FileHeader     32 B   magic TPCC, version 2, opCount = total ops,
 *                         flags = kCompactFlagSegmented (| fast-scan
 *                         when every segment supports it),
 *                         sectionCount = segment count, headerCrc
 *   name           nameLen B, then padding to 8
 *   segment 0      a complete serializeCompactTrace() image
 *   ...            (each image length is already a multiple of 8)
 *   segment N-1
 *   index          N x SegmentRecord (56 B each)
 *   Footer         24 B   magic TPCF, totalCrc = METADATA CRC (header
 *                         + name bytes, then index bytes; segment
 *                         payloads carry their own CRCs), fileLen
 *
 * The index lives at the *end* so SegmentedFileWriter can stream
 * segments to disk as they are produced; only the 32-byte header is
 * rewritten at finish().  Readers locate it from the footer:
 * indexOffset = fileLen - 24 - segmentCount * 56.
 */

#ifndef TPRED_TRACE_SEGMENTED_IO_HH
#define TPRED_TRACE_SEGMENTED_IO_HH

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/compact_io.hh"
#include "trace/compact_trace.hh"

namespace tpred
{

/** One entry of the segment index. */
struct SegmentRecord
{
    uint64_t offset = 0;       ///< absolute file offset of the image
    uint64_t byteLen = 0;      ///< image length (multiple of 8)
    uint64_t opCount = 0;      ///< ops encoded in this segment
    uint64_t branchCount = 0;  ///< control-transfer ops in this segment
    uint64_t firstOp = 0;      ///< global index of the segment's op 0
    uint64_t firstBranch = 0;  ///< global index of its first branch
    uint32_t crc = 0;          ///< CRC32C of the image bytes
    uint32_t reserved = 0;
};
static_assert(sizeof(SegmentRecord) == 56);

/** Parsed segmented-container header (fixed part + name). */
struct SegmentedHeaderInfo
{
    std::string name;            ///< recorded stream name
    uint64_t totalOps = 0;
    uint32_t version = 0;
    uint32_t segmentCount = 0;
    bool fastBranchScan = false;
    uint64_t firstSegmentOffset = 0; ///< align8(32 + nameLen)
    uint64_t headerNameBytes = 0;    ///< 32 + nameLen (metadata CRC)
};

/** Bytes of file head that always suffice for parseSegmentedHeader. */
uint64_t segmentedHeaderMaxBytes();

/**
 * Parses and validates the header + name at the start of a segmented
 * container.  @p head must hold at least the first
 * min(fileLen, segmentedHeaderMaxBytes()) bytes of the file.
 * @throws CompactFormatError when the bytes are not a segmented
 *         container (including a well-formed *plain* container).
 */
SegmentedHeaderInfo parseSegmentedHeader(std::span<const uint8_t> head,
                                         const std::string &whence);

/** Index + footer length for @p segment_count segments. */
uint64_t segmentedTailBytes(uint32_t segment_count);

/**
 * Parses and validates the segment index + footer at the end of the
 * file: footer magic and length, the metadata CRC over header-name
 * and index bytes, and per-record structure (8-aligned monotone
 * offsets within bounds, cumulative firstOp/firstBranch consistency,
 * op total matching the header).  Segment *payload* CRCs are NOT
 * checked here — verify each image via openCompactContainer when the
 * window is mapped.
 *
 * @param tail        The last segmentedTailBytes(segmentCount) bytes.
 * @param header_name The first header.headerNameBytes bytes.
 * @param header      Result of parseSegmentedHeader on the same file.
 * @param file_len    Total file length.
 */
std::vector<SegmentRecord>
parseSegmentedTail(std::span<const uint8_t> tail,
                   std::span<const uint8_t> header_name,
                   const SegmentedHeaderInfo &header, uint64_t file_len,
                   const std::string &whence);

/**
 * Streaming writer: segments go to a temp file as they are added;
 * finish() appends the index + footer, rewrites the header with the
 * final counts, fsyncs and atomically renames onto @p path.  If the
 * writer is destroyed unfinished, the temp file is removed.
 */
class SegmentedFileWriter
{
  public:
    SegmentedFileWriter(std::string path, std::string_view name);
    ~SegmentedFileWriter();

    SegmentedFileWriter(const SegmentedFileWriter &) = delete;
    SegmentedFileWriter &operator=(const SegmentedFileWriter &) = delete;

    /** Serializes and appends one segment; order defines op order. */
    void addSegment(const CompactTrace &segment);

    /** Finalizes the file; no further addSegment() calls allowed. */
    void finish();

    uint64_t totalOps() const { return totalOps_; }
    uint64_t totalBranches() const { return totalBranches_; }
    uint64_t segmentCount() const
    {
        return static_cast<uint64_t>(index_.size());
    }

  private:
    std::string path_;
    std::string tempPath_;
    std::string name_;
    std::FILE *file_ = nullptr;
    std::vector<SegmentRecord> index_;
    std::vector<uint8_t> headerName_; ///< header + name image
    uint64_t writeOffset_ = 0;
    uint64_t totalOps_ = 0;
    uint64_t totalBranches_ = 0;
    bool allFastScan_ = true;
    bool finished_ = false;
};

/**
 * Splits @p trace into consecutive segments of @p segment_ops ops
 * (the last may be shorter).  Each segment re-encodes its slice, so
 * decoding segment k reproduces ops [k*segment_ops, ...) bit-exactly.
 */
std::vector<CompactTrace> segmentCompactTrace(const CompactTrace &trace,
                                              size_t segment_ops);

/**
 * Convenience: writes @p trace to @p path as a segmented container
 * with @p segment_ops ops per segment.
 */
void writeSegmentedTraceFile(const std::string &path,
                             const CompactTrace &trace,
                             std::string_view name, size_t segment_ops);

} // namespace tpred

#endif // TPRED_TRACE_SEGMENTED_IO_HH
