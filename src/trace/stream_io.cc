#include "trace/stream_io.hh"

#include <array>
#include <cstring>

#include "common/crc32c.hh"

namespace tpred
{

namespace
{

// On-disk records.  All fields little-endian; the structs are laid
// out so natural alignment matches the packed layout exactly.  The
// shapes deliberately mirror compact_io.cc so the two containers
// share one mental model (and one corruption-handling discipline).

struct FileHeader
{
    uint32_t magic;
    uint32_t version;
    uint64_t opCount;       ///< ops in the *source* trace
    uint32_t flags;         ///< reserved, zero
    uint32_t nameLen;
    uint32_t sectionCount;
    uint32_t headerCrc;     ///< CRC32C of the 28 bytes preceding it
};
static_assert(sizeof(FileHeader) == 32);

struct SectionRecord
{
    uint32_t id;
    uint32_t elemSize;
    uint64_t offset;        ///< absolute, 8-byte aligned
    uint64_t byteLen;
    uint32_t crc;           ///< CRC32C of the payload bytes
    uint32_t reserved;
};
static_assert(sizeof(SectionRecord) == 32);

struct Footer
{
    uint32_t magic;
    uint32_t totalCrc;      ///< CRC32C of everything before the footer
    uint64_t fileLen;
    uint64_t reserved;
};
static_assert(sizeof(Footer) == 24);

constexpr uint32_t kMaxNameLen = 4096;

/** One column section, in fixed file order. */
struct SectionSpec
{
    uint32_t id;
    uint32_t elemSize;
};

enum : uint32_t
{
    kSecPos = 1,
    kSecPc,
    kSecTarget,
    kSecFallthrough,
    kSecKind,
    kSecTaken,
    kNumSections = kSecTaken,
};

constexpr std::array<SectionSpec, kNumSections> kSections = {{
    {kSecPos, 4},
    {kSecPc, 8},
    {kSecTarget, 8},
    {kSecFallthrough, 8},
    {kSecKind, 1},
    {kSecTaken, 1},
}};

inline size_t
align8(size_t at)
{
    return (at + 7) & ~size_t{7};
}

[[noreturn]] void
fail(const std::string &whence, const std::string &what)
{
    throw CompactFormatError(whence + ": " + what);
}

/** The column payloads of @p c in kSections order. */
std::array<std::span<const uint8_t>, kNumSections>
payloadsOf(const BranchStreamColumns &c)
{
    auto raw = [](const auto &span) {
        return std::span<const uint8_t>(
            reinterpret_cast<const uint8_t *>(span.data()),
            span.size_bytes());
    };
    return {raw(c.pos),  raw(c.pc),   raw(c.target),
            raw(c.fallthrough), raw(c.kind), raw(c.taken)};
}

/**
 * Shared structural validation: parses and checks the header, name,
 * section table and footer; optionally verifies all CRCs.  Returns
 * the parsed records; section payload spans are bounds-checked
 * against the image.
 */
struct ParsedContainer
{
    FileHeader header;
    std::string name;
    std::array<SectionRecord, kNumSections> sections;
    Footer footer;
};

ParsedContainer
parseContainer(std::span<const uint8_t> bytes, const std::string &whence,
               bool verify_checksums)
{
    ParsedContainer p;
    if (bytes.size() < sizeof(FileHeader) + sizeof(Footer))
        fail(whence, "truncated stream container (" +
                         std::to_string(bytes.size()) + " bytes)");

    std::memcpy(&p.header, bytes.data(), sizeof(FileHeader));
    if (p.header.magic != kStreamMagic)
        fail(whence, "not a branch-stream container (bad magic)");
    if (p.header.version < kStreamMinVersion ||
        p.header.version > kStreamVersion)
        fail(whence, "unsupported stream container version " +
                         std::to_string(p.header.version) +
                         " (supported: " +
                         std::to_string(kStreamMinVersion) + ".." +
                         std::to_string(kStreamVersion) + ")");
    if (crc32c(bytes.data(), offsetof(FileHeader, headerCrc)) !=
        p.header.headerCrc)
        fail(whence, "header checksum mismatch");
    if (p.header.nameLen > kMaxNameLen)
        fail(whence, "implausible stream name length");
    if (p.header.sectionCount != kNumSections)
        fail(whence, "unexpected section count " +
                         std::to_string(p.header.sectionCount));

    const size_t name_end = sizeof(FileHeader) + p.header.nameLen;
    const size_t table_off = align8(name_end);
    const size_t table_end =
        table_off + kNumSections * sizeof(SectionRecord);
    if (table_end + sizeof(Footer) > bytes.size())
        fail(whence, "truncated section table");
    p.name.assign(
        reinterpret_cast<const char *>(bytes.data()) +
            sizeof(FileHeader),
        p.header.nameLen);

    const size_t footer_off = bytes.size() - sizeof(Footer);
    std::memcpy(&p.footer, bytes.data() + footer_off, sizeof(Footer));
    if (p.footer.magic != kStreamFooterMagic)
        fail(whence, "missing container footer (truncated file?)");
    if (p.footer.fileLen != bytes.size())
        fail(whence, "length mismatch: footer records " +
                         std::to_string(p.footer.fileLen) +
                         " bytes, file has " +
                         std::to_string(bytes.size()));
    if (verify_checksums &&
        crc32c(bytes.data(), footer_off) != p.footer.totalCrc)
        fail(whence, "whole-file checksum mismatch (corrupt data)");

    std::memcpy(p.sections.data(), bytes.data() + table_off,
                kNumSections * sizeof(SectionRecord));
    for (size_t i = 0; i < kNumSections; ++i) {
        const SectionRecord &rec = p.sections[i];
        const SectionSpec &spec = kSections[i];
        const std::string label =
            "section " + std::to_string(spec.id);
        if (rec.id != spec.id)
            fail(whence, label + " has unexpected id " +
                             std::to_string(rec.id));
        if (rec.elemSize != spec.elemSize)
            fail(whence, label + " has unexpected element size");
        if (rec.byteLen % rec.elemSize != 0)
            fail(whence, label + " length not a multiple of its "
                                 "element size");
        if (rec.byteLen > 0 &&
            (rec.offset % 8 != 0 || rec.offset < table_end ||
             rec.offset + rec.byteLen < rec.offset ||
             rec.offset + rec.byteLen > footer_off))
            fail(whence, label + " payload out of bounds");
        if (verify_checksums &&
            crc32c(bytes.data() + rec.offset, rec.byteLen) != rec.crc)
            fail(whence, label + " checksum mismatch (corrupt data)");
    }

    // Cross-section consistency: all six columns are parallel arrays
    // with one entry per branch.
    const uint64_t branches = p.sections[kSecPos - 1].byteLen / 4;
    for (size_t i = 0; i < kNumSections; ++i) {
        if (p.sections[i].byteLen / kSections[i].elemSize != branches)
            fail(whence, "section " + std::to_string(kSections[i].id) +
                             " disagrees with the branch count");
    }
    if (branches > p.header.opCount)
        fail(whence, "more branches than ops in the source trace");
    return p;
}

} // namespace

std::vector<uint8_t>
serializeBranchStream(const BranchStream &stream, std::string_view name)
{
    const BranchStreamColumns cols = stream.columns();
    const auto payloads = payloadsOf(cols);

    // Lay out: header, name, section table, 8-aligned payloads, footer.
    const size_t table_off =
        align8(sizeof(FileHeader) + name.size());
    size_t at = table_off + kNumSections * sizeof(SectionRecord);
    std::array<size_t, kNumSections> offsets;
    for (size_t i = 0; i < kNumSections; ++i) {
        at = align8(at);
        offsets[i] = at;
        at += payloads[i].size();
    }
    const size_t footer_off = align8(at);
    std::vector<uint8_t> out(footer_off + sizeof(Footer), 0);

    FileHeader header{};
    header.magic = kStreamMagic;
    header.version = kStreamVersion;
    header.opCount = cols.opCount;
    header.flags = 0;
    header.nameLen = static_cast<uint32_t>(name.size());
    header.sectionCount = kNumSections;
    std::memcpy(out.data(), &header, sizeof(header));
    header.headerCrc =
        crc32c(out.data(), offsetof(FileHeader, headerCrc));
    std::memcpy(out.data(), &header, sizeof(header));
    std::memcpy(out.data() + sizeof(FileHeader), name.data(),
                name.size());

    for (size_t i = 0; i < kNumSections; ++i) {
        SectionRecord rec{};
        rec.id = kSections[i].id;
        rec.elemSize = kSections[i].elemSize;
        rec.offset = offsets[i];
        rec.byteLen = payloads[i].size();
        if (!payloads[i].empty())
            std::memcpy(out.data() + offsets[i], payloads[i].data(),
                        payloads[i].size());
        rec.crc = crc32c(out.data() + offsets[i], payloads[i].size());
        std::memcpy(out.data() + table_off + i * sizeof(SectionRecord),
                    &rec, sizeof(rec));
    }

    Footer footer{};
    footer.magic = kStreamFooterMagic;
    footer.totalCrc = crc32c(out.data(), footer_off);
    footer.fileLen = out.size();
    std::memcpy(out.data() + footer_off, &footer, sizeof(footer));
    return out;
}

BranchStream
openBranchStreamContainer(std::span<const uint8_t> bytes,
                          std::shared_ptr<const void> backing,
                          std::string &name_out,
                          const std::string &whence,
                          const CompactOpenOptions &opts)
{
    const ParsedContainer p =
        parseContainer(bytes, whence, opts.verifyChecksums);

    auto view = [&](uint32_t id, auto tag) {
        using T = decltype(tag);
        const SectionRecord &rec = p.sections[id - 1];
        return std::span<const T>(
            reinterpret_cast<const T *>(bytes.data() + rec.offset),
            rec.byteLen / sizeof(T));
    };

    BranchStreamColumns cols;
    cols.opCount = p.header.opCount;
    cols.pos = view(kSecPos, uint32_t{});
    cols.pc = view(kSecPc, uint64_t{});
    cols.target = view(kSecTarget, uint64_t{});
    cols.fallthrough = view(kSecFallthrough, uint64_t{});
    cols.kind = view(kSecKind, uint8_t{});
    cols.taken = view(kSecTaken, uint8_t{});

    name_out = p.name;
    return BranchStream::fromColumns(cols, std::move(backing));
}

StreamContainerInfo
peekBranchStreamContainer(std::span<const uint8_t> bytes,
                          const std::string &whence)
{
    const ParsedContainer p = parseContainer(bytes, whence, false);
    StreamContainerInfo info;
    info.name = p.name;
    info.opCount = p.header.opCount;
    info.branchCount = p.sections[kSecPos - 1].byteLen / 4;
    info.version = p.header.version;
    info.totalCrc = p.footer.totalCrc;
    info.fileBytes = bytes.size();
    return info;
}

} // namespace tpred
