/**
 * @file
 * Serialized container for BranchStream — the "TPBS" byte layout the
 * persistent corpus (src/corpus/) stores alongside each trace.
 *
 * A BranchStream is rebuilt from the full CompactTrace on every
 * process launch even when the trace itself comes out of the corpus
 * warm; on sweep-heavy runs (tpredtune's ~1350-config spaces) that
 * extraction pass dominates warm-start latency.  TPBS persists the
 * extraction: a fixed header (magic, version, op count, stream
 * name), a section table with one CRC32C-checked record per column
 * (pos/pc/target/fallthrough/kind/taken), the 8-byte-aligned column
 * payloads, and a footer carrying the file length and a total
 * CRC32C — structurally the same discipline as the TPCC/TPCS trace
 * containers.  Because the payload *is* the in-memory column layout,
 * loading is zero-copy: openBranchStreamContainer() validates the
 * structure and returns a BranchStream whose column spans point
 * straight into the provided bytes, with no per-branch
 * deserialization pass.  See docs/trace_format.md for the
 * byte-level layout.
 *
 * Every structural defect — wrong magic, version skew, truncation,
 * checksum mismatch, inconsistent section table — throws a
 * CompactFormatError naming the offending input, so callers can
 * quarantine bad files instead of trusting them.
 */

#ifndef TPRED_TRACE_STREAM_IO_HH
#define TPRED_TRACE_STREAM_IO_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/branch_stream.hh"
#include "trace/compact_io.hh"

namespace tpred
{

/** Container magic "TPBS" and footer magic "TPBF" (little-endian). */
constexpr uint32_t kStreamMagic = 0x53425054;
constexpr uint32_t kStreamFooterMagic = 0x46425054;

/** Bump on any incompatible layout change. */
constexpr uint32_t kStreamVersion = 1;

/** Oldest container version openBranchStreamContainer still reads. */
constexpr uint32_t kStreamMinVersion = 1;

/**
 * Serializes @p stream (with its stream @p name) into a
 * self-contained container image.  Deterministic: the same stream
 * and name always produce the same bytes.
 */
std::vector<uint8_t> serializeBranchStream(const BranchStream &stream,
                                           std::string_view name);

/**
 * Opens a container image in place.
 *
 * @param bytes   The complete container.
 * @param backing Keep-alive handle for the memory behind @p bytes
 *                (MappedFile, shared buffer, ...); held by the
 *                returned stream.
 * @param name_out Receives the recorded stream name.
 * @param whence  Human-readable origin (file path) for error messages.
 * @return A BranchStream viewing @p bytes — zero-copy.
 * @throws CompactFormatError on any structural or checksum defect.
 */
BranchStream openBranchStreamContainer(
    std::span<const uint8_t> bytes, std::shared_ptr<const void> backing,
    std::string &name_out, const std::string &whence,
    const CompactOpenOptions &opts = {});

/** Cheap header/footer summary of a stream container (corpus `ls`). */
struct StreamContainerInfo
{
    std::string name;        ///< recorded stream name
    uint64_t opCount = 0;    ///< ops in the source trace
    uint64_t branchCount = 0;
    uint32_t version = 0;
    uint32_t totalCrc = 0;   ///< footer CRC32C of the whole image
    uint64_t fileBytes = 0;
};

/**
 * Structurally validates @p bytes and reports the header summary
 * WITHOUT verifying payload checksums (that is what `tpredcorpus
 * verify` / openBranchStreamContainer are for).
 * @throws CompactFormatError when the structure is unusable.
 */
StreamContainerInfo peekBranchStreamContainer(
    std::span<const uint8_t> bytes, const std::string &whence);

} // namespace tpred

#endif // TPRED_TRACE_STREAM_IO_HH
