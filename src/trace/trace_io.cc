#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace tpred
{

namespace
{

template <typename T>
void
put(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
get(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!in)
        throw std::runtime_error("trace file truncated");
    return value;
}

} // namespace

void
writeTrace(std::ostream &out, const std::vector<MicroOp> &ops,
           const std::string &name)
{
    put(out, kTraceMagic);
    put(out, kTraceVersion);
    put(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(),
              static_cast<std::streamsize>(name.size()));
    put(out, static_cast<uint64_t>(ops.size()));
    for (const MicroOp &op : ops) {
        put(out, op.pc);
        put(out, op.nextPc);
        put(out, op.memAddr);
        put(out, op.selector);
        put(out, static_cast<uint8_t>(op.cls));
        put(out, static_cast<uint8_t>(op.branch));
        put(out, static_cast<uint8_t>(op.taken ? 1 : 0));
        put(out, op.dstReg);
        put(out, op.srcRegs[0]);
        put(out, op.srcRegs[1]);
    }
    if (!out)
        throw std::runtime_error("trace write failed");
}

std::vector<MicroOp>
readTrace(std::istream &in, std::string &name_out)
{
    if (get<uint32_t>(in) != kTraceMagic)
        throw std::runtime_error("not a tpred trace file");
    const uint32_t version = get<uint32_t>(in);
    if (version != kTraceVersion)
        throw std::runtime_error("unsupported trace version " +
                                 std::to_string(version));
    const uint32_t name_len = get<uint32_t>(in);
    if (name_len > 4096)
        throw std::runtime_error("implausible trace name length");
    name_out.resize(name_len);
    in.read(name_out.data(), name_len);
    if (!in)
        throw std::runtime_error("trace file truncated");

    const uint64_t count = get<uint64_t>(in);
    std::vector<MicroOp> ops;
    ops.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        MicroOp op;
        op.pc = get<uint64_t>(in);
        op.nextPc = get<uint64_t>(in);
        op.memAddr = get<uint64_t>(in);
        op.selector = get<uint64_t>(in);
        op.cls = static_cast<InstClass>(get<uint8_t>(in));
        op.branch = static_cast<BranchKind>(get<uint8_t>(in));
        op.taken = get<uint8_t>(in) != 0;
        op.dstReg = get<int16_t>(in);
        op.srcRegs[0] = get<int16_t>(in);
        op.srcRegs[1] = get<int16_t>(in);
        op.fallthrough = op.pc + 4;
        ops.push_back(op);
    }
    return ops;
}

void
saveTraceFile(const std::string &path, const std::vector<MicroOp> &ops,
              const std::string &name)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("cannot open " + path +
                                 " for writing");
    writeTrace(out, ops, name);
}

std::vector<MicroOp>
loadTraceFile(const std::string &path, std::string &name_out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    return readTrace(in, name_out);
}

} // namespace tpred
