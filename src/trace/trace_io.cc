#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "trace/compact_io.hh"

namespace tpred
{

namespace
{

template <typename T>
void
put(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

/** Bounds-checked little-endian reads from an in-memory image. */
class BufferReader
{
  public:
    BufferReader(std::span<const uint8_t> bytes, std::string whence)
        : bytes_(bytes), whence_(std::move(whence))
    {
    }

    template <typename T>
    T
    get()
    {
        T value{};
        copy(&value, sizeof(T));
        return value;
    }

    std::string
    getString(size_t len)
    {
        std::string s(len, '\0');
        copy(s.data(), len);
        return s;
    }

    std::span<const uint8_t>
    rest() const
    {
        return bytes_.subspan(at_);
    }

  private:
    void
    copy(void *dst, size_t len)
    {
        if (bytes_.size() - at_ < len)
            throw std::runtime_error(whence_ + ": trace file truncated");
        std::memcpy(dst, bytes_.data() + at_, len);
        at_ += len;
    }

    std::span<const uint8_t> bytes_;
    size_t at_ = 0;
    std::string whence_;
};

/** Slurps the remainder of @p in into one contiguous buffer. */
std::shared_ptr<std::vector<uint8_t>>
slurp(std::istream &in)
{
    auto buffer = std::make_shared<std::vector<uint8_t>>();
    char chunk[1 << 16];
    while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
        buffer->insert(buffer->end(), chunk, chunk + in.gcount());
        if (!in)
            break;
    }
    return buffer;
}

/** Parses the legacy v1 record stream (positioned after the version). */
std::vector<MicroOp>
parseV1(BufferReader &reader, std::string &name_out,
        const std::string &whence)
{
    const uint32_t name_len = reader.get<uint32_t>();
    if (name_len > 4096)
        throw std::runtime_error(whence +
                                 ": implausible trace name length");
    name_out = reader.getString(name_len);

    const uint64_t count = reader.get<uint64_t>();
    std::vector<MicroOp> ops;
    ops.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        MicroOp op;
        op.pc = reader.get<uint64_t>();
        op.nextPc = reader.get<uint64_t>();
        op.memAddr = reader.get<uint64_t>();
        op.selector = reader.get<uint64_t>();
        op.cls = static_cast<InstClass>(reader.get<uint8_t>());
        op.branch = static_cast<BranchKind>(reader.get<uint8_t>());
        op.taken = reader.get<uint8_t>() != 0;
        op.dstReg = reader.get<int16_t>();
        op.srcRegs[0] = reader.get<int16_t>();
        op.srcRegs[1] = reader.get<int16_t>();
        op.fallthrough = op.pc + 4;
        ops.push_back(op);
    }
    return ops;
}

/**
 * Shared load path: dispatches on the version preamble.  @p backing
 * keeps the buffer alive for zero-copy v2 adoption.
 */
CompactTrace
parseTrace(std::shared_ptr<std::vector<uint8_t>> buffer,
           std::string &name_out, const std::string &whence)
{
    BufferReader reader(*buffer, whence);
    if (reader.get<uint32_t>() != kTraceMagic)
        throw std::runtime_error(whence + ": not a tpred trace file");
    const uint32_t version = reader.get<uint32_t>();
    if (version == kTraceVersionLegacy) {
        // v1 has no columnar image to adopt: decode, then encode.
        return CompactTrace::encode(
            parseV1(reader, name_out, whence));
    }
    if (version != kTraceVersion)
        throw std::runtime_error(
            whence + ": unsupported trace file version " +
            std::to_string(version) + " (expected " +
            std::to_string(kTraceVersionLegacy) + " or " +
            std::to_string(kTraceVersion) + ")");
    return openCompactContainer(reader.rest(), std::move(buffer),
                                name_out, whence);
}

} // namespace

void
writeTrace(std::ostream &out, const CompactTrace &trace,
           const std::string &name)
{
    put(out, kTraceMagic);
    put(out, kTraceVersion);
    const std::vector<uint8_t> image =
        serializeCompactTrace(trace, name);
    out.write(reinterpret_cast<const char *>(image.data()),
              static_cast<std::streamsize>(image.size()));
    if (!out)
        throw std::runtime_error("trace write failed");
}

void
writeTrace(std::ostream &out, const std::vector<MicroOp> &ops,
           const std::string &name)
{
    writeTrace(out, CompactTrace::encode(ops), name);
}

void
writeTraceV1(std::ostream &out, const std::vector<MicroOp> &ops,
             const std::string &name)
{
    put(out, kTraceMagic);
    put(out, kTraceVersionLegacy);
    put(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(),
              static_cast<std::streamsize>(name.size()));
    put(out, static_cast<uint64_t>(ops.size()));
    for (const MicroOp &op : ops) {
        put(out, op.pc);
        put(out, op.nextPc);
        put(out, op.memAddr);
        put(out, op.selector);
        put(out, static_cast<uint8_t>(op.cls));
        put(out, static_cast<uint8_t>(op.branch));
        put(out, static_cast<uint8_t>(op.taken ? 1 : 0));
        put(out, op.dstReg);
        put(out, op.srcRegs[0]);
        put(out, op.srcRegs[1]);
    }
    if (!out)
        throw std::runtime_error("trace write failed");
}

CompactTrace
readCompactTrace(std::istream &in, std::string &name_out)
{
    return parseTrace(slurp(in), name_out, "trace stream");
}

std::vector<MicroOp>
readTrace(std::istream &in, std::string &name_out)
{
    return readCompactTrace(in, name_out).decodeAll();
}

void
saveTraceFile(const std::string &path, const CompactTrace &trace,
              const std::string &name)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("cannot open " + path +
                                 " for writing");
    writeTrace(out, trace, name);
}

void
saveTraceFile(const std::string &path, const std::vector<MicroOp> &ops,
              const std::string &name)
{
    saveTraceFile(path, CompactTrace::encode(ops), name);
}

CompactTrace
loadCompactTraceFile(const std::string &path, std::string &name_out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    return parseTrace(slurp(in), name_out, path);
}

std::vector<MicroOp>
loadTraceFile(const std::string &path, std::string &name_out)
{
    return loadCompactTraceFile(path, name_out).decodeAll();
}

} // namespace tpred
