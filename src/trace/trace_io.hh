/**
 * @file
 * Binary trace serialization.
 *
 * Lets users capture a workload's dynamic instruction stream once and
 * replay it across experiments or ship it alongside results — the
 * moral equivalent of the paper's trace files.  The format is a fixed
 * little-endian record per MicroOp behind a magic/version header.
 */

#ifndef TPRED_TRACE_TRACE_IO_HH
#define TPRED_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/micro_op.hh"

namespace tpred
{

/** Magic bytes identifying a trace file ("TPRT" + version). */
constexpr uint32_t kTraceMagic = 0x54505254;
constexpr uint32_t kTraceVersion = 1;

/**
 * Writes @p ops to @p out.
 * @throws std::runtime_error on stream failure.
 */
void writeTrace(std::ostream &out, const std::vector<MicroOp> &ops,
                const std::string &name);

/**
 * Reads a trace written by writeTrace().
 * @param name_out Receives the recorded stream name.
 * @throws std::runtime_error on bad magic, version or truncation.
 */
std::vector<MicroOp> readTrace(std::istream &in, std::string &name_out);

/** File-path convenience wrappers. */
void saveTraceFile(const std::string &path,
                   const std::vector<MicroOp> &ops,
                   const std::string &name);
std::vector<MicroOp> loadTraceFile(const std::string &path,
                                   std::string &name_out);

} // namespace tpred

#endif // TPRED_TRACE_TRACE_IO_HH
