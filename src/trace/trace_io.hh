/**
 * @file
 * Binary trace serialization.
 *
 * Lets users capture a workload's dynamic instruction stream once and
 * replay it across experiments or ship it alongside results — the
 * moral equivalent of the paper's trace files.
 *
 * Two format versions share the "TPRT" magic:
 *
 *  - **v1** (legacy) — one fixed little-endian record per MicroOp.
 *    Still fully readable; new files are no longer written this way.
 *  - **v2** — the magic/version preamble followed by a serialized
 *    CompactTrace container (trace/compact_io.hh): the columnar
 *    encoding goes to disk verbatim, with per-section CRC32C
 *    integrity checking, and loads back with **no MicroOp
 *    round-trip** — the ~8-10x on-disk size win matches the
 *    in-memory one.
 *
 * All loads are buffered: a file is read in a single pass into
 * memory and parsed from there (never one istream read per record),
 * and every parse error names the offending input.
 */

#ifndef TPRED_TRACE_TRACE_IO_HH
#define TPRED_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/compact_trace.hh"
#include "trace/micro_op.hh"

namespace tpred
{

/** Magic bytes identifying a trace file ("TPRT"). */
constexpr uint32_t kTraceMagic = 0x54505254;

/** Current version: compact-container payload. */
constexpr uint32_t kTraceVersion = 2;

/** Legacy per-record version; readable, never written by default. */
constexpr uint32_t kTraceVersionLegacy = 1;

/**
 * Writes @p trace to @p out as a v2 file — the columnar encoding is
 * serialized directly, without materializing MicroOps.
 * @throws std::runtime_error on stream failure.
 */
void writeTrace(std::ostream &out, const CompactTrace &trace,
                const std::string &name);

/** Convenience overload: encodes @p ops, then writes v2. */
void writeTrace(std::ostream &out, const std::vector<MicroOp> &ops,
                const std::string &name);

/**
 * Writes the legacy v1 record-per-op format (compatibility testing;
 * prefer the v2 writers above).
 */
void writeTraceV1(std::ostream &out, const std::vector<MicroOp> &ops,
                  const std::string &name);

/**
 * Reads a v1 or v2 trace into its columnar form.  For v2 input the
 * columns are adopted from the file image directly — no per-op
 * decode.  The whole stream is consumed in one buffered read.
 * @param name_out Receives the recorded stream name.
 * @throws std::runtime_error on bad magic, version or corruption.
 */
CompactTrace readCompactTrace(std::istream &in, std::string &name_out);

/** Reads a v1 or v2 trace as a MicroOp vector (tooling). */
std::vector<MicroOp> readTrace(std::istream &in, std::string &name_out);

/** File-path convenience wrappers; errors name @p path. */
void saveTraceFile(const std::string &path, const CompactTrace &trace,
                   const std::string &name);
void saveTraceFile(const std::string &path,
                   const std::vector<MicroOp> &ops,
                   const std::string &name);
CompactTrace loadCompactTraceFile(const std::string &path,
                                  std::string &name_out);
std::vector<MicroOp> loadTraceFile(const std::string &path,
                                   std::string &name_out);

} // namespace tpred

#endif // TPRED_TRACE_TRACE_IO_HH
