/**
 * @file
 * Pull interface for dynamic instruction streams.
 */

#ifndef TPRED_TRACE_TRACE_SOURCE_HH
#define TPRED_TRACE_TRACE_SOURCE_HH

#include <string>
#include <vector>

#include "trace/micro_op.hh"

namespace tpred
{

/**
 * A producer of dynamic MicroOps.  Workload generators implement this;
 * consumers (statistics, prediction harness, timing model) pull from it.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produces the next dynamic instruction.
     * @param op Receives the instruction when available.
     * @return false at end of trace (op is left untouched).
     */
    virtual bool next(MicroOp &op) = 0;

    /** Human-readable stream name (benchmark name for workloads). */
    virtual std::string name() const = 0;
};

/**
 * Replays a pre-recorded vector of MicroOps.  Used by unit tests and by
 * experiments that run several predictor configurations over the exact
 * same dynamic stream.
 */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<MicroOp> ops,
                               std::string name = "vector")
        : ops_(std::move(ops)), name_(std::move(name))
    {
    }

    bool
    next(MicroOp &op) override
    {
        if (pos_ >= ops_.size())
            return false;
        op = ops_[pos_++];
        return true;
    }

    std::string name() const override { return name_; }

    /** Rewinds to the beginning of the recorded stream. */
    void rewind() { pos_ = 0; }

    size_t size() const { return ops_.size(); }

  private:
    std::vector<MicroOp> ops_;
    std::string name_;
    size_t pos_ = 0;
};

/**
 * Records the full stream into memory while passing it through, so a
 * workload can be generated once and replayed across configurations.
 */
std::vector<MicroOp> drainTrace(TraceSource &source, size_t max_ops);

} // namespace tpred

#endif // TPRED_TRACE_TRACE_SOURCE_HH
