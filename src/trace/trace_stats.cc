#include "trace/trace_stats.hh"

#include "trace/trace_source.hh"

namespace tpred
{

std::string_view
branchKindName(BranchKind kind)
{
    switch (kind) {
      case BranchKind::None: return "none";
      case BranchKind::CondDirect: return "cond-direct";
      case BranchKind::UncondDirect: return "uncond-direct";
      case BranchKind::IndirectJump: return "indirect-jump";
      case BranchKind::Call: return "call";
      case BranchKind::IndirectCall: return "indirect-call";
      case BranchKind::Return: return "return";
    }
    return "?";
}

std::string_view
instClassName(InstClass cls)
{
    switch (cls) {
      case InstClass::Integer: return "Integer";
      case InstClass::FpAdd: return "FP Add";
      case InstClass::Mul: return "FP/INT Mul";
      case InstClass::Div: return "FP/INT Div";
      case InstClass::Load: return "Load";
      case InstClass::Store: return "Store";
      case InstClass::BitField: return "Bit Field";
      case InstClass::Branch: return "Branch";
    }
    return "?";
}

void
TraceCounts::observe(const MicroOp &op)
{
    ++instructions;
    if (op.isBranch())
        ++branches;
    switch (op.branch) {
      case BranchKind::CondDirect:
        ++condBranches;
        break;
      case BranchKind::IndirectJump:
      case BranchKind::IndirectCall:
        ++indirectJumps;
        break;
      case BranchKind::Return:
        ++returns;
        break;
      case BranchKind::Call:
        ++calls;
        break;
      default:
        break;
    }
    if (op.cls == InstClass::Load)
        ++loads;
    else if (op.cls == InstClass::Store)
        ++stores;
}

void
TargetProfiler::observe(const MicroOp &op)
{
    if (!isIndirectNonReturn(op.branch))
        return;
    auto &site = sites_[op.pc];
    site.targets.insert(op.nextPc);
    ++site.dynCount;
    ++dynamicJumps_;
}

Histogram
TargetProfiler::buildHistogram() const
{
    Histogram hist(kOverflowBucket);
    for (const auto &[pc, site] : sites_)
        hist.add(site.targets.size(), site.dynCount);
    return hist;
}

size_t
TargetProfiler::targetsOfSite(uint64_t pc) const
{
    auto it = sites_.find(pc);
    return it == sites_.end() ? 0 : it->second.targets.size();
}

std::vector<MicroOp>
drainTrace(TraceSource &source, size_t max_ops)
{
    std::vector<MicroOp> ops;
    ops.reserve(max_ops);
    MicroOp op;
    while (ops.size() < max_ops && source.next(op))
        ops.push_back(op);
    return ops;
}

TraceProfile
profileTrace(TraceSource &source, size_t max_ops)
{
    TraceProfile profile;
    MicroOp op;
    while (profile.counts.instructions < max_ops && source.next(op)) {
        profile.counts.observe(op);
        profile.targets.observe(op);
    }
    return profile;
}

} // namespace tpred
