/**
 * @file
 * Trace-level statistics: instruction/branch counts (paper Table 1) and
 * the per-indirect-jump target profile (paper Figures 1-8).
 */

#ifndef TPRED_TRACE_TRACE_STATS_HH
#define TPRED_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/histogram.hh"
#include "trace/micro_op.hh"

namespace tpred
{

class TraceSource;

/**
 * Aggregate counts over a dynamic instruction stream, matching the
 * columns of the paper's Table 1.
 */
struct TraceCounts
{
    uint64_t instructions = 0;
    uint64_t branches = 0;          ///< all control instructions
    uint64_t condBranches = 0;
    uint64_t indirectJumps = 0;     ///< IndirectJump + IndirectCall
    uint64_t returns = 0;
    uint64_t calls = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;

    /** Folds one instruction into the counts. */
    void observe(const MicroOp &op);
};

/**
 * Tracks, per static indirect jump, the set of distinct dynamic targets,
 * and builds the paper's Figures 1-8: for each dynamic indirect jump,
 * how many distinct targets does its static jump site exhibit over the
 * whole run?
 *
 * The paper plots the distribution by *static* site weighted by dynamic
 * execution count, bucketed 1..29 with a ">=30" overflow bucket.
 */
class TargetProfiler
{
  public:
    static constexpr size_t kOverflowBucket = 30;

    /** Folds one instruction into the profile (non-indirect ops ignored).
     *  Returns are excluded: the paper handles them with the RAS. */
    void observe(const MicroOp &op);

    /** Number of static indirect jump sites seen. */
    size_t staticSites() const { return sites_.size(); }

    /** Total dynamic indirect jumps profiled. */
    uint64_t dynamicJumps() const { return dynamicJumps_; }

    /**
     * Builds the figure: histogram over "distinct targets of the site",
     * weighted by each site's dynamic execution count.
     */
    Histogram buildHistogram() const;

    /** Distinct target count for a given static site (0 if unseen). */
    size_t targetsOfSite(uint64_t pc) const;

  private:
    struct SiteInfo
    {
        std::unordered_set<uint64_t> targets;
        uint64_t dynCount = 0;
    };
    std::unordered_map<uint64_t, SiteInfo> sites_;
    uint64_t dynamicJumps_ = 0;
};

/**
 * Runs a source to completion (or @p max_ops), collecting counts and the
 * target profile in one pass.
 */
struct TraceProfile
{
    TraceCounts counts;
    TargetProfiler targets;
};

TraceProfile profileTrace(TraceSource &source, size_t max_ops);

} // namespace tpred

#endif // TPRED_TRACE_TRACE_STATS_HH
