#include "tune/config_space.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <unordered_set>

#include "harness/paper_tables.hh"

namespace tpred::tune
{

namespace
{

/** Appends @p config to @p space with its derived id/hash/budget. */
void
add(ConfigSpace &space, const IndirectConfig &config)
{
    TuneCandidate c;
    c.config = config;
    c.storageBits = storageBitsOf(config);
    c.id = candidateId(config);
    c.hash = candidateHash(c.id);
    space.candidates.push_back(std::move(c));
}

/**
 * Appends @p config running under @p frontend.  The BTB hierarchy is
 * part of the candidate: its bits join the storage budget and its
 * describe() tag joins the id (distinct hierarchies must not collide).
 */
void
add(ConfigSpace &space, const IndirectConfig &config,
    const FrontendConfig &frontend)
{
    TuneCandidate c;
    c.config = config;
    c.frontend = frontend;
    c.frontendKey = frontend.btb.describe();
    c.storageBits =
        storageBitsOf(config) + frontend.btb.storageBits();
    c.id = candidateId(config) + "@" + c.frontendKey;
    c.hash = candidateHash(c.id);
    space.candidates.push_back(std::move(c));
}

/** Tagged config with every axis explicit (sets stay powers of two). */
IndirectConfig
taggedPoint(TaggedIndexScheme scheme, unsigned entries, unsigned ways,
            unsigned tag_bits, const HistorySpec &history)
{
    IndirectConfig config = taggedConfig(scheme, ways, history, entries);
    config.tagged.tagBits = tag_bits;
    return config;
}

/** Cascaded config with explicit stage-2 geometry. */
IndirectConfig
cascadedPoint(unsigned stage1_entries, unsigned stage2_entries,
              unsigned stage2_ways, const HistorySpec &history)
{
    IndirectConfig config = cascadedConfig(stage1_entries, stage2_ways);
    config.cascaded.stage2.entries = stage2_entries;
    config.cascaded.stage2.historyBits = history.lengthBits;
    config.history = history;
    return config;
}

/** The path-history axis shared by the larger spaces. */
std::vector<HistorySpec>
pathHistories(std::initializer_list<unsigned> lengths,
              std::initializer_list<unsigned> bits_per_target,
              bool per_address)
{
    std::vector<HistorySpec> out;
    for (unsigned len : lengths) {
        for (unsigned bpt : bits_per_target) {
            out.push_back(pathGlobal(PathFilter::Control, len, bpt));
            out.push_back(pathGlobal(PathFilter::IndJmp, len, bpt));
            if (per_address)
                out.push_back(pathPerAddress(len, bpt));
        }
    }
    return out;
}

/** smoke: a couple dozen configs across three families — large enough
 *  to exercise promotion, small enough for CLI smoke tests. */
void
enumerateSmoke(ConfigSpace &space)
{
    for (unsigned entry_bits : {7u, 9u, 11u})
        for (unsigned hist : {6u, 9u})
            add(space, taglessGshare(patternHistory(hist), entry_bits));
    for (unsigned entries : {128u, 256u})
        for (unsigned ways : {2u, 4u})
            for (unsigned tag : {8u, 16u})
                add(space, taggedPoint(TaggedIndexScheme::HistoryXor,
                                       entries, ways, tag,
                                       patternHistory(9)));
    for (unsigned stage1 : {64u, 128u})
        add(space, cascadedPoint(stage1, 256, 4, patternHistory(9)));
    for (unsigned entry_bits : {8u, 10u})
        for (unsigned len : {6u, 9u})
            add(space, taglessGshare(
                           pathGlobal(PathFilter::IndJmp, len, 2),
                           entry_bits));
}

/** tiny: cheap enough that tests can run it exhaustively. */
void
enumerateTiny(ConfigSpace &space)
{
    for (unsigned entry_bits : {6u, 7u, 8u, 9u})
        for (unsigned hist : {6u, 9u})
            add(space, taglessGshare(patternHistory(hist), entry_bits));
    for (unsigned ways : {2u, 4u})
        for (unsigned tag : {8u, 16u})
            add(space, taggedPoint(TaggedIndexScheme::HistoryXor, 256,
                                   ways, tag, patternHistory(9)));
    add(space, cascadedPoint(128, 256, 4, patternHistory(9)));
    add(space, ittageConfig());
}

/** bench: the bench/tune_search grid (~1 hundred configs). */
void
enumerateBench(ConfigSpace &space)
{
    for (unsigned entry_bits : {6u, 7u, 8u, 9u, 10u, 11u})
        for (unsigned hist : {4u, 6u, 8u, 9u, 10u, 12u})
            add(space, taglessGshare(patternHistory(hist), entry_bits));
    for (auto scheme : {TaggedIndexScheme::Address,
                        TaggedIndexScheme::HistoryXor})
        for (unsigned entries : {128u, 256u, 512u})
            for (unsigned ways : {2u, 4u})
                for (unsigned tag : {8u, 16u})
                    for (unsigned hist : {6u, 9u, 12u})
                        add(space, taggedPoint(scheme, entries, ways,
                                               tag,
                                               patternHistory(hist)));
    for (unsigned stage1 : {64u, 128u, 256u})
        for (unsigned ways : {2u, 4u})
            add(space, cascadedPoint(stage1, 256, ways,
                                     patternHistory(9)));
    add(space, ittageConfig());
}

/** standard: the full axes product, >= 1000 configs. */
void
enumerateStandard(ConfigSpace &space)
{
    const std::initializer_list<unsigned> patterns = {4u, 6u, 8u, 9u,
                                                      10u, 12u, 14u,
                                                      16u};
    // Tagless: gshare over pattern and path histories, plus GAg.
    for (unsigned entry_bits : {6u, 7u, 8u, 9u, 10u, 11u, 12u}) {
        for (unsigned hist : patterns)
            add(space, taglessGshare(patternHistory(hist), entry_bits));
        for (const HistorySpec &h :
             pathHistories({6u, 9u, 12u}, {1u, 2u}, true))
            add(space, taglessGshare(h, entry_bits));
        add(space, taglessGAg(entry_bits));
    }
    // Tagged: scheme x entries x ways x tag width x pattern history.
    for (auto scheme : {TaggedIndexScheme::Address,
                        TaggedIndexScheme::HistoryConcat,
                        TaggedIndexScheme::HistoryXor})
        for (unsigned entries : {64u, 128u, 256u, 512u, 1024u})
            for (unsigned ways : {1u, 2u, 4u, 8u})
                for (unsigned tag : {8u, 12u, 16u})
                    for (unsigned hist : {4u, 6u, 9u, 12u, 14u, 16u})
                        add(space, taggedPoint(scheme, entries, ways,
                                               tag,
                                               patternHistory(hist)));
    // Tagged with path history (the paper's Table 8 axis).
    for (unsigned entries : {256u, 512u})
        for (const HistorySpec &h :
             pathHistories({6u, 9u, 12u}, {1u, 2u}, false))
            add(space, taggedPoint(TaggedIndexScheme::HistoryXor,
                                   entries, 4, 16, h));
    // Cascaded: stage-1 filter size x stage-2 geometry x history.
    for (unsigned stage1 : {64u, 128u, 256u})
        for (unsigned s2_entries : {128u, 256u, 512u})
            for (unsigned ways : {2u, 4u})
                for (unsigned hist : {6u, 9u, 12u})
                    add(space, cascadedPoint(stage1, s2_entries, ways,
                                             patternHistory(hist)));
    add(space, ittageConfig());
}

/**
 * btb: the BTB hierarchy geometry as a search axis (docs/
 * btb_hierarchy.md).  One- and two-level front ends crossed with
 * representative indirect predictors; the budget charges the whole
 * front end, so the frontier answers "is a second BTB level worth its
 * bits here, and with how much L1 in front of it?".
 */
void
enumerateBtb(ConfigSpace &space)
{
    std::vector<FrontendConfig> frontends;
    frontends.push_back({});                    // paper's 1K, 1 level
    frontends.push_back(smallBtbFrontend());    // starved 64-entry L1
    // missPenalty stays at the realistic default: it prices fetch
    // bubbles in the timing model, which accuracy rungs never see —
    // varying it here would only enumerate indistinguishable points.
    for (unsigned l1_sets : {16u, 32u}) {
        for (unsigned l2_sets : {512u, 1024u}) {
            FrontendConfig fe = twoLevelBtbFrontend();
            fe.btb.l1.sets = l1_sets;
            fe.btb.l2.sets = l2_sets;
            frontends.push_back(fe);
        }
    }
    for (const FrontendConfig &fe : frontends) {
        add(space, taglessGshare(patternHistory(9), 9), fe);
        add(space, taggedPoint(TaggedIndexScheme::HistoryXor, 256, 4,
                               16, patternHistory(9)),
            fe);
        add(space, cascadedPoint(128, 256, 4, patternHistory(9)), fe);
    }
}

} // namespace

const std::vector<std::string> &
spaceNames()
{
    static const std::vector<std::string> names = {
        "smoke", "tiny", "bench", "standard", "btb"};
    return names;
}

bool
isSpaceName(std::string_view name)
{
    const auto &names = spaceNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

uint64_t
candidateHash(std::string_view id)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : id) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
candidateId(const IndirectConfig &config)
{
    std::string id = config.describe();
    // describe() omits the tag width; it is a tuning axis here, so the
    // id must carry it or distinct candidates would collide.
    if (config.structure == IndirectStructure::Tagged)
        id += "/t" + std::to_string(config.tagged.tagBits);
    else if (config.structure == IndirectStructure::Cascaded)
        id += "/t" + std::to_string(config.cascaded.stage2.tagBits);
    return id;
}

uint64_t
storageBitsOf(const IndirectConfig &config)
{
    const PredictorStack stack = buildStack(config);
    return stack.predictor ? stack.predictor->costBits() : 0;
}

ConfigSpace
enumerateSpace(std::string_view name, size_t cap)
{
    ConfigSpace space;
    space.name = std::string(name);
    if (name == "smoke")
        enumerateSmoke(space);
    else if (name == "tiny")
        enumerateTiny(space);
    else if (name == "bench")
        enumerateBench(space);
    else if (name == "standard")
        enumerateStandard(space);
    else if (name == "btb")
        enumerateBtb(space);
    else
        throw std::invalid_argument("unknown config space: " +
                                    std::string(name));

    std::unordered_set<std::string_view> ids;
    ids.reserve(space.candidates.size());
    for (const TuneCandidate &c : space.candidates) {
        if (!ids.insert(c.id).second)
            throw std::logic_error("config space '" + space.name +
                                   "' enumerates duplicate id: " + c.id);
    }

    space.enumerated = space.candidates.size();
    if (space.candidates.size() > cap) {
        // Deterministic subsample: keep the cap candidates with the
        // smallest (hash, id), then restore enumeration order.  The
        // selection is seeded by the configs themselves, never by
        // wall clock or iteration scheduling.
        std::vector<size_t> order(space.candidates.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) {
                      const TuneCandidate &ca = space.candidates[a];
                      const TuneCandidate &cb = space.candidates[b];
                      if (ca.hash != cb.hash)
                          return ca.hash < cb.hash;
                      return ca.id < cb.id;
                  });
        order.resize(cap);
        std::sort(order.begin(), order.end());
        std::vector<TuneCandidate> kept;
        kept.reserve(cap);
        for (size_t i : order)
            kept.push_back(std::move(space.candidates[i]));
        space.candidates = std::move(kept);
        std::fprintf(stderr,
                     "tune: space '%s' truncated to %zu of %zu configs "
                     "(hash-seeded subsample; raise the cap to search "
                     "the full space)\n",
                     space.name.c_str(), space.candidates.size(),
                     space.enumerated);
    }
    return space;
}

} // namespace tpred::tune
