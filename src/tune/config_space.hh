/**
 * @file
 * Deterministic config-space enumerator for the autotuner.
 *
 * A "space" is a named, ordered set of candidate predictor
 * configurations spanning (predictor family x table geometry x
 * history kind/length x tag width/associativity), each carrying its
 * storage budget in bits (IndirectPredictor::costBits()) and a unique
 * canonical id.  The paper hand-picks a few dozen of these points for
 * Tables 4-9; the preset spaces here enumerate the same axes by the
 * hundreds to thousands so the successive-halving engine
 * (tune/successive_halving.hh) can search them.
 *
 * Determinism rules:
 *
 *  - Enumeration order is fixed by construction (nested loops over
 *    literal axis values), never by wall clock or address order.
 *  - Every candidate id is unique within its space; enumerateSpace()
 *    throws if a preset ever collides.
 *  - When a space exceeds the hard cap, the survivors are selected by
 *    ascending (config hash, id) — a deterministic pseudo-random
 *    subsample seeded by the configs themselves — the truncation is
 *    reported loudly on stderr, and the dropped count is preserved so
 *    reports can surface it (no silent coverage loss).
 */

#ifndef TPRED_TUNE_CONFIG_SPACE_HH
#define TPRED_TUNE_CONFIG_SPACE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "harness/experiment.hh"

namespace tpred::tune
{

/** One point of a config space. */
struct TuneCandidate
{
    IndirectConfig config;
    /**
     * Front end the candidate runs under.  Most spaces tune the
     * indirect predictor alone and leave this default; the "btb" space
     * makes the BTB hierarchy geometry itself a search axis.
     */
    FrontendConfig frontend{};
    /**
     * Batch key for the front end: candidates sharing a key may be
     * fused into one sweep (empty = the default front end).  When
     * non-empty, storageBits also includes the BTB hierarchy's bits,
     * since the hierarchy is then part of what is being bought.
     */
    std::string frontendKey;
    uint64_t storageBits = 0;  ///< predictor costBits() (+ BTB bits)
    uint64_t hash = 0;         ///< FNV-1a of id (rung-membership seed)
    std::string id;            ///< unique canonical description
};

/** A named, enumerated, possibly capped candidate set. */
struct ConfigSpace
{
    std::string name;
    std::vector<TuneCandidate> candidates;
    size_t enumerated = 0;  ///< size before the cap was applied

    /** Candidates dropped by the cap (0 when the space fit). */
    size_t
    truncated() const
    {
        return enumerated - candidates.size();
    }
};

/** Hard cap applied by default; see enumerateSpace(). */
inline constexpr size_t kDefaultSpaceCap = 4096;

/**
 * Preset space names, in documentation order:
 *   smoke    — a couple dozen configs; CLI smoke tests
 *   tiny     — ~1 dozen; cheap enough for exhaustive differentials
 *   bench    — ~1 hundred; the bench/tune_search grid
 *   standard — >= 1000 configs across all families (the default)
 *   btb      — BTB hierarchy geometry x indirect predictor: one- and
 *              two-level front ends (docs/btb_hierarchy.md) crossed
 *              with representative target predictors
 */
const std::vector<std::string> &spaceNames();

/** True when @p name is a preset space. */
bool isSpaceName(std::string_view name);

/**
 * Enumerates the preset space @p name.
 *
 * @param cap Hard candidate cap; when exceeded, a deterministic
 *        hash-seeded subsample of exactly @p cap candidates survives
 *        (enumeration order preserved) and the truncation is logged
 *        to stderr.
 * @throws std::invalid_argument for an unknown name.
 * @throws std::logic_error if a preset enumerates duplicate ids.
 */
ConfigSpace enumerateSpace(std::string_view name,
                           size_t cap = kDefaultSpaceCap);

/** FNV-1a 64-bit hash of @p id — the candidate's deterministic seed. */
uint64_t candidateHash(std::string_view id);

/**
 * Canonical unique id of @p config: IndirectConfig::describe() plus
 * the geometry describe() omits (tagged/cascaded tag width).
 */
std::string candidateId(const IndirectConfig &config);

/** Storage budget of @p config in bits (builds the predictor once). */
uint64_t storageBitsOf(const IndirectConfig &config);

} // namespace tpred::tune

#endif // TPRED_TUNE_CONFIG_SPACE_HH
