#include "tune/pareto.hh"

#include <algorithm>

namespace tpred::tune
{

int
compareMissRate(uint64_t a_misses, uint64_t a_total,
                uint64_t b_misses, uint64_t b_total)
{
    // A zero total means no indirect jumps executed: rate 0 by
    // definition.  Cross multiplication alone would make 0/0 compare
    // equal to everything (both products vanish), so guard it.
    if (a_total == 0 || b_total == 0) {
        const bool a_zero = a_total == 0 || a_misses == 0;
        const bool b_zero = b_total == 0 || b_misses == 0;
        if (a_zero && b_zero)
            return 0;
        return a_zero ? -1 : 1;
    }
    // a/b < c/d  <=>  a*d < c*b for non-negative rationals; the
    // products stay exact in 128 bits (counts are < 2^64).
    const unsigned __int128 lhs =
        static_cast<unsigned __int128>(a_misses) * b_total;
    const unsigned __int128 rhs =
        static_cast<unsigned __int128>(b_misses) * a_total;
    if (lhs < rhs)
        return -1;
    return lhs > rhs ? 1 : 0;
}

bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    if (a.storageBits > b.storageBits)
        return false;
    const int rate = compareMissRate(a.misses, a.total, b.misses, b.total);
    if (rate > 0)
        return false;
    return a.storageBits < b.storageBits || rate < 0;
}

std::vector<ParetoPoint>
paretoFrontier(std::vector<ParetoPoint> points)
{
    // Canonical order first: ascending storage, then ascending miss
    // rate, then ascending id.  Sorting before the sweep is what makes
    // the result permutation-invariant and the tie-breaks total.
    std::sort(points.begin(), points.end(),
              [](const ParetoPoint &a, const ParetoPoint &b) {
                  if (a.storageBits != b.storageBits)
                      return a.storageBits < b.storageBits;
                  const int rate = compareMissRate(a.misses, a.total,
                                                   b.misses, b.total);
                  if (rate != 0)
                      return rate < 0;
                  return a.id < b.id;
              });

    std::vector<ParetoPoint> frontier;
    for (const ParetoPoint &p : points) {
        if (!frontier.empty()) {
            const ParetoPoint &best = frontier.back();
            // Same budget: only the first (lowest rate, smallest id)
            // of the group survives.  Higher budget: must strictly
            // improve on the best rate seen so far.
            if (best.storageBits == p.storageBits)
                continue;
            if (compareMissRate(p.misses, p.total, best.misses,
                                best.total) >= 0)
                continue;
        }
        frontier.push_back(p);
    }
    return frontier;
}

bool
onFrontier(const std::vector<ParetoPoint> &frontier, const ParetoPoint &p)
{
    return std::any_of(frontier.begin(), frontier.end(),
                       [&](const ParetoPoint &f) { return f.id == p.id; });
}

} // namespace tpred::tune
