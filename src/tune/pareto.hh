/**
 * @file
 * Accuracy-per-bit Pareto frontiers for the autotuner (docs/autotuner.md).
 *
 * A tuning run reduces every candidate to a point in the plane the
 * paper's section 4.2 cost accounting implies: predictor storage in
 * bits on one axis, indirect misprediction rate on the other.  The
 * frontier is the set of non-dominated points — no other point has
 * both no-more storage and a no-worse miss rate with at least one
 * strict improvement.
 *
 * Determinism rules (what the byte-identical-report contract rests on):
 *
 *  - Miss rates are compared as exact rationals (misses/total via
 *    128-bit cross multiplication), never as doubles, so ordering can
 *    not depend on rounding.
 *  - The frontier is invariant under input permutation: points are
 *    canonically sorted before the dominance sweep.
 *  - Ties are broken explicitly: among points with identical
 *    (storageBits, miss rate), the lexicographically smallest
 *    candidate id survives and the rest are treated as dominated.
 */

#ifndef TPRED_TUNE_PARETO_HH
#define TPRED_TUNE_PARETO_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tpred::tune
{

/** One candidate's (storage, accuracy) summary on one workload class. */
struct ParetoPoint
{
    size_t candidate = 0;     ///< index into the ConfigSpace
    uint64_t storageBits = 0; ///< predictor costBits()
    uint64_t misses = 0;      ///< indirect-jump mispredictions
    uint64_t total = 0;       ///< indirect jumps executed
    std::string id;           ///< the candidate's unique id

    /** Reporting only — ordering always uses the exact rational. */
    double
    missRate() const
    {
        return total != 0
                   ? static_cast<double>(misses) /
                         static_cast<double>(total)
                   : 0.0;
    }
};

/**
 * Exact three-way comparison of two miss rates as rationals:
 * negative when a's rate is lower, 0 when equal, positive when
 * higher.  A zero total compares as rate 0 (cross multiplication
 * handles it naturally: 0/0 == 0/t == 0).
 */
int compareMissRate(uint64_t a_misses, uint64_t a_total,
                    uint64_t b_misses, uint64_t b_total);

/**
 * True when @p a dominates @p b: a.storageBits <= b.storageBits and
 * a's miss rate <= b's, with at least one strict.  Points with equal
 * (bits, rate) do not dominate each other here; the frontier's
 * id tie-break handles them.
 */
bool dominates(const ParetoPoint &a, const ParetoPoint &b);

/**
 * The non-dominated subset of @p points, sorted by ascending
 * storageBits (and hence strictly descending miss rate).
 *
 * Invariant under permutation of the input; among duplicate
 * (storageBits, rate) points only the smallest id survives.
 */
std::vector<ParetoPoint> paretoFrontier(std::vector<ParetoPoint> points);

/** True when @p p has a frontier entry with the same candidate id. */
bool onFrontier(const std::vector<ParetoPoint> &frontier,
                const ParetoPoint &p);

} // namespace tpred::tune

#endif // TPRED_TUNE_PARETO_HH
