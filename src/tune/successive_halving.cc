#include "tune/successive_halving.hh"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "harness/parallel_runner.hh"
#include "harness/paper_tables.hh"
#include "harness/sweep_kernel.hh"
#include "harness/trace_cache.hh"
#include "obs/metrics.hh"
#include "workloads/workload.hh"

namespace tpred::tune
{

namespace
{

struct TuneCounters
{
    obs::Counter rungs;
    obs::Counter evals;
    obs::Counter promotions;
    obs::Counter fullEvals;
    obs::Counter frontierSize;
    obs::Timer phase;
};

TuneCounters &
counters()
{
    static TuneCounters c = {
        obs::globalMetrics().counter("tune.rungs"),
        obs::globalMetrics().counter("tune.evals"),
        obs::globalMetrics().counter("tune.promotions"),
        obs::globalMetrics().counter("tune.full_evals"),
        obs::globalMetrics().counter("tune.frontier_size"),
        obs::globalMetrics().timer("phase.tune"),
    };
    return c;
}

std::vector<std::string>
resolveWorkloads(const TuneOptions &opt)
{
    std::vector<std::string> names =
        opt.workloads.empty() ? headlineWorkloads() : opt.workloads;
    const auto &known = allWorkloadNames();
    for (const std::string &name : names) {
        if (std::find(known.begin(), known.end(), name) == known.end())
            throw std::invalid_argument("unknown workload: " + name);
    }
    return names;
}

void
validate(const TuneOptions &opt)
{
    if (opt.rungs == 0)
        throw std::invalid_argument("tune: rungs must be >= 1");
    if (opt.eta < 2)
        throw std::invalid_argument("tune: eta must be >= 2");
    if (opt.fullOps == 0)
        throw std::invalid_argument("tune: fullOps must be > 0");
    if (opt.minSurvivors == 0)
        throw std::invalid_argument("tune: minSurvivors must be >= 1");
}

/** Per-candidate evaluation at one rung, aligned with the workloads. */
struct RungEval
{
    std::vector<WorkloadEval> perWorkload;
    uint64_t aggMisses = 0;
    uint64_t aggTotal = 0;
};

/**
 * Evaluates @p members (candidate indices) on every workload's
 * @p ops -instruction prefix: one fused runSweep() per (workload x
 * history-group) job, results keyed by job index.
 */
std::vector<RungEval>
evaluateRung(const ConfigSpace &space,
             const std::vector<size_t> &members,
             const std::vector<std::string> &workloads, size_t ops,
             uint64_t seed)
{
    // Accuracy-only rungs never need the full CompactTrace: the
    // branch-stream tier serves the dense stream straight from the
    // corpus (zero-copy) on warm runs, skipping trace decode and
    // extraction entirely.
    const ParallelRunner runner;
    using SharedStream = std::shared_ptr<const BranchStream>;
    const std::vector<SharedStream> streams =
        runner.map<SharedStream>(workloads.size(), [&](size_t w) {
            return cachedBranchStream(workloads[w], ops, seed);
        });

    // A fused sweep shares one BTB hierarchy and one history spec, so
    // partition by front end first (the "btb" space's axis; empty key
    // = the default front end), then by history group within each.
    struct SweepJob
    {
        const FrontendConfig *fe = nullptr;
        std::vector<size_t> members;  ///< indices into @p members
    };
    std::vector<SweepJob> jobs;
    {
        std::map<std::string, std::vector<size_t>> by_frontend;
        for (size_t i = 0; i < members.size(); ++i)
            by_frontend[space.candidates[members[i]].frontendKey]
                .push_back(i);
        for (const auto &[key, indices] : by_frontend) {
            std::vector<IndirectConfig> sub;
            sub.reserve(indices.size());
            for (size_t i : indices)
                sub.push_back(space.candidates[members[i]].config);
            for (const std::vector<size_t> &group :
                 groupByHistory(sub)) {
                SweepJob job;
                job.fe = &space.candidates[members[indices[group
                                                             .front()]]]
                              .frontend;
                job.members.reserve(group.size());
                for (size_t g : group)
                    job.members.push_back(indices[g]);
                jobs.push_back(std::move(job));
            }
        }
    }

    const size_t job_count = workloads.size() * jobs.size();
    const auto parts = runner.map<std::vector<FrontendStats>>(
        job_count, [&](size_t j) {
            const BranchStream &stream = *streams[j / jobs.size()];
            const SweepJob &job = jobs[j % jobs.size()];
            std::vector<IndirectConfig> batch;
            batch.reserve(job.members.size());
            for (size_t i : job.members)
                batch.push_back(space.candidates[members[i]].config);
            return runSweep(stream, batch, *job.fe);
        });

    std::vector<RungEval> evals(members.size());
    for (RungEval &e : evals)
        e.perWorkload.resize(workloads.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        for (size_t g = 0; g < jobs.size(); ++g) {
            const std::vector<FrontendStats> &stats =
                parts[w * jobs.size() + g];
            for (size_t k = 0; k < jobs[g].members.size(); ++k) {
                const FrontendStats &s = stats[k];
                WorkloadEval &cell =
                    evals[jobs[g].members[k]].perWorkload[w];
                cell.misses = s.indirectJumps.misses();
                cell.total = s.indirectJumps.total();
                cell.instructions = s.instructions;
            }
        }
    }
    for (RungEval &e : evals) {
        for (const WorkloadEval &cell : e.perWorkload) {
            e.aggMisses += cell.misses;
            e.aggTotal += cell.total;
        }
    }
    return evals;
}

/**
 * The members to promote: the top ceil(n/eta) (floored at
 * minSurvivors) by ascending aggregate miss rate, ties broken by
 * ascending (storageBits, id) — PLUS every storage budget's leader
 * (the lowest-rate member at each distinct storageBits).  A tuner
 * ranking by accuracy alone would starve the cheap end of the
 * eventual Pareto frontier; carrying each budget's leader keeps the
 * frontier's support alive through every rung at the cost of a few
 * extra survivors.  Returned in ascending candidate order so the
 * next rung's batch order is canonical.
 */
std::vector<size_t>
promote(const ConfigSpace &space, const std::vector<size_t> &members,
        const std::vector<RungEval> &evals, const TuneOptions &opt)
{
    const size_t n = members.size();
    const size_t keep =
        std::min(n, std::max<size_t>(opt.minSurvivors,
                                     (n + opt.eta - 1) / opt.eta));
    const auto better = [&](size_t a, size_t b) {
        const int rate = compareMissRate(evals[a].aggMisses,
                                         evals[a].aggTotal,
                                         evals[b].aggMisses,
                                         evals[b].aggTotal);
        if (rate != 0)
            return rate < 0;
        const TuneCandidate &ca = space.candidates[members[a]];
        const TuneCandidate &cb = space.candidates[members[b]];
        if (ca.storageBits != cb.storageBits)
            return ca.storageBits < cb.storageBits;
        return ca.id < cb.id;
    };
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), better);

    std::vector<size_t> kept;
    kept.reserve(keep);
    for (size_t i = 0; i < keep; ++i)
        kept.push_back(members[order[i]]);
    // Budget leaders: the best member at each distinct storageBits.
    std::map<uint64_t, size_t> leaders;
    for (size_t i = 0; i < n; ++i) {
        const uint64_t bits = space.candidates[members[i]].storageBits;
        const auto it = leaders.find(bits);
        if (it == leaders.end() || better(i, it->second))
            leaders[bits] = i;
    }
    for (const auto &[bits, i] : leaders)
        kept.push_back(members[i]);
    std::sort(kept.begin(), kept.end());
    kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
    return kept;
}

ParetoPoint
pointOf(const ConfigSpace &space, size_t candidate, uint64_t misses,
        uint64_t total)
{
    const TuneCandidate &c = space.candidates[candidate];
    ParetoPoint p;
    p.candidate = candidate;
    p.storageBits = c.storageBits;
    p.misses = misses;
    p.total = total;
    p.id = c.id;
    return p;
}

} // namespace

std::vector<size_t>
rungSchedule(const TuneOptions &opt)
{
    std::vector<size_t> schedule(opt.rungs);
    for (unsigned r = 0; r < opt.rungs; ++r) {
        size_t ops = opt.fullOps;
        for (unsigned d = 0; d + r + 1 < opt.rungs; ++d) {
            ops /= opt.eta;
            if (ops == 0)
                break;
        }
        schedule[r] =
            std::min(opt.fullOps, std::max(opt.minRungOps, ops));
    }
    schedule.back() = opt.fullOps;
    return schedule;
}

TuneResult
runSuccessiveHalving(const ConfigSpace &space, const TuneOptions &opt)
{
    validate(opt);
    TuneCounters &ctr = counters();
    const obs::ScopedTimer timer(ctr.phase);

    TuneResult result;
    result.workloads = resolveWorkloads(opt);
    result.schedule = rungSchedule(opt);
    result.exhaustiveEvals = static_cast<uint64_t>(
        space.candidates.size() * result.workloads.size());

    std::vector<size_t> members(space.candidates.size());
    for (size_t i = 0; i < members.size(); ++i)
        members[i] = i;

    for (size_t r = 0; r < result.schedule.size(); ++r) {
        const size_t ops = result.schedule[r];
        const bool last = r + 1 == result.schedule.size();
        const std::vector<RungEval> evals = evaluateRung(
            space, members, result.workloads, ops, opt.seed);
        ctr.rungs.inc();
        ctr.evals.inc(members.size() * result.workloads.size());
        result.evals += members.size() * result.workloads.size();

        RungRecord record;
        record.ops = ops;
        record.population = members.size();
        if (last) {
            record.promoted = 0;
            result.rungs.push_back(record);
            result.fullEvals = static_cast<uint64_t>(
                members.size() * result.workloads.size());
            ctr.fullEvals.inc(result.fullEvals);
            result.finalists.reserve(members.size());
            for (size_t i = 0; i < members.size(); ++i) {
                FinalistResult fin;
                fin.candidate = members[i];
                fin.perWorkload = evals[i].perWorkload;
                fin.aggMisses = evals[i].aggMisses;
                fin.aggTotal = evals[i].aggTotal;
                result.finalists.push_back(std::move(fin));
            }
            break;
        }
        const std::vector<size_t> kept =
            promote(space, members, evals, opt);
        record.promoted = kept.size();
        result.rungs.push_back(record);
        ctr.promotions.inc(kept.size());
        members = kept;
    }

    // Frontiers: aggregate and per workload class, over the
    // full-budget evaluations only.
    std::vector<ParetoPoint> agg;
    agg.reserve(result.finalists.size());
    for (const FinalistResult &fin : result.finalists)
        agg.push_back(pointOf(space, fin.candidate, fin.aggMisses,
                              fin.aggTotal));
    result.aggregateFrontier = paretoFrontier(std::move(agg));
    ctr.frontierSize.inc(result.aggregateFrontier.size());

    result.workloadFrontiers.resize(result.workloads.size());
    for (size_t w = 0; w < result.workloads.size(); ++w) {
        std::vector<ParetoPoint> points;
        points.reserve(result.finalists.size());
        for (const FinalistResult &fin : result.finalists)
            points.push_back(pointOf(space, fin.candidate,
                                     fin.perWorkload[w].misses,
                                     fin.perWorkload[w].total));
        result.workloadFrontiers[w] = paretoFrontier(std::move(points));
    }
    return result;
}

TuneResult
runExhaustive(const ConfigSpace &space, const TuneOptions &opt)
{
    TuneOptions one = opt;
    one.rungs = 1;
    return runSuccessiveHalving(space, one);
}

} // namespace tpred::tune
