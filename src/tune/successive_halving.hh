/**
 * @file
 * Successive-halving search engine over a ConfigSpace.
 *
 * The classic multi-armed-bandit budget schedule applied to predictor
 * tuning: rung r evaluates the surviving candidates on a short trace
 * prefix (fullOps / eta^(R-1-r) instructions), ranks them by
 * aggregate indirect miss rate, and promotes roughly the top 1/eta —
 * plus each storage budget's leader, so the cheap end of the eventual
 * Pareto frontier survives a ranking that accuracy alone would starve
 * — to the next rung; only the final rung's survivors pay for
 * full-trace replay.  Cheap rungs are fused runSweep() batches over cached
 * BranchStreams, sharded as (workload x history-group) jobs across
 * the PR-1 thread pool, so one rung costs a handful of trace passes
 * no matter how many hundreds of configs it holds.
 *
 * Determinism contract (the report byte-identity tests rest on it):
 *
 *  - Workload traces are deterministic per (name, ops, seed), and a
 *    rung-r prefix trace is recorded through the shared TraceCache
 *    exactly like any paper table's.
 *  - Ranking compares miss rates as exact rationals; ties break by
 *    ascending (storageBits, id) — a total order seeded by the
 *    configs themselves, never wall clock or scheduling.
 *  - Jobs are keyed by index through ParallelRunner, so results are
 *    bit-identical for --jobs 1 and --jobs N.
 *
 * Deterministic counters (obs registry): tune.rungs, tune.evals,
 * tune.promotions, tune.full_evals, tune.frontier_size.
 */

#ifndef TPRED_TUNE_SUCCESSIVE_HALVING_HH
#define TPRED_TUNE_SUCCESSIVE_HALVING_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tune/config_space.hh"
#include "tune/pareto.hh"

namespace tpred::tune
{

/** Search parameters. */
struct TuneOptions
{
    size_t fullOps = kDefaultAccuracyOps;  ///< final-rung trace length
    unsigned rungs = 4;        ///< rung count (1 = exhaustive)
    unsigned eta = 4;          ///< budget growth / promotion divisor
    size_t minSurvivors = 8;   ///< promotion floor per rung
    size_t minRungOps = 2000;  ///< shortest prefix worth replaying
    uint64_t seed = 1;         ///< workload seed
    /** Workload classes searched; empty = headlineWorkloads(). */
    std::vector<std::string> workloads;
};

/** One rung of the search trajectory. */
struct RungRecord
{
    size_t ops = 0;         ///< trace prefix length of this rung
    size_t population = 0;  ///< candidates evaluated
    size_t promoted = 0;    ///< candidates passed to the next rung
};

/** Per-workload accuracy of one candidate at the full budget. */
struct WorkloadEval
{
    uint64_t misses = 0;
    uint64_t total = 0;
    uint64_t instructions = 0;
};

/** One final-rung survivor with its full-budget evaluations. */
struct FinalistResult
{
    size_t candidate = 0;                  ///< index into the space
    std::vector<WorkloadEval> perWorkload; ///< aligned with workloads
    uint64_t aggMisses = 0;                ///< summed over workloads
    uint64_t aggTotal = 0;
};

/** Everything a search produces. */
struct TuneResult
{
    std::vector<std::string> workloads;  ///< resolved workload list
    std::vector<size_t> schedule;        ///< rung trace lengths
    std::vector<RungRecord> rungs;       ///< trajectory, rung order
    std::vector<FinalistResult> finalists;  ///< ascending candidate
    std::vector<ParetoPoint> aggregateFrontier;
    /** Per-workload frontiers, aligned with workloads. */
    std::vector<std::vector<ParetoPoint>> workloadFrontiers;

    uint64_t evals = 0;      ///< (candidate x workload) sweeps, all rungs
    uint64_t fullEvals = 0;  ///< final-rung (candidate x workload)
    uint64_t exhaustiveEvals = 0;  ///< space size x workloads

    /** Full evaluations an exhaustive search would have paid extra. */
    uint64_t
    evalsSaved() const
    {
        return exhaustiveEvals - fullEvals;
    }
};

/**
 * The rung trace lengths @p opt implies: fullOps / eta^(R-1-r),
 * clamped below by minRungOps (and by fullOps itself), last rung
 * always exactly fullOps.
 */
std::vector<size_t> rungSchedule(const TuneOptions &opt);

/**
 * Runs the successive-halving search over @p space.
 * @throws std::invalid_argument for unknown workload names or
 *         degenerate options (rungs == 0, eta < 2, fullOps == 0).
 */
TuneResult runSuccessiveHalving(const ConfigSpace &space,
                                const TuneOptions &opt);

/**
 * Exhaustive reference: every candidate at the full budget (a
 * one-rung schedule), same ranking, frontier and report shape.
 */
TuneResult runExhaustive(const ConfigSpace &space,
                         const TuneOptions &opt);

} // namespace tpred::tune

#endif // TPRED_TUNE_SUCCESSIVE_HALVING_HH
