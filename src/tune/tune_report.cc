#include "tune/tune_report.hh"

#include "common/stats.hh"
#include "common/table.hh"

namespace tpred::tune
{

std::string
renderRungTable(const TuneResult &result)
{
    Table table;
    table.setHeader({"rung", "prefix ops", "population", "promoted"});
    for (size_t r = 0; r < result.rungs.size(); ++r) {
        const RungRecord &record = result.rungs[r];
        const bool last = r + 1 == result.rungs.size();
        table.addRow({std::to_string(r),
                      formatCount(record.ops),
                      std::to_string(record.population),
                      last ? "-" : std::to_string(record.promoted)});
    }
    return table.render();
}

std::string
renderFrontierTable(const std::vector<ParetoPoint> &frontier)
{
    Table table;
    table.setHeader({"storage bits", "miss rate", "config"});
    for (const ParetoPoint &p : frontier)
        table.addRow({std::to_string(p.storageBits),
                      formatPercent(p.missRate(), 2), p.id});
    return table.render();
}

obs::RunReport
makeTuneReport(const std::string &tool, const ConfigSpace &space,
               const TuneOptions &opt, const TuneResult &result)
{
    obs::RunReport report(tool, kTuneReportSchema);
    report.setConfig("space", space.name);
    report.setConfig("space_configs",
                     static_cast<uint64_t>(space.candidates.size()));
    report.setConfig("space_enumerated",
                     static_cast<uint64_t>(space.enumerated));
    report.setConfig("space_truncated",
                     static_cast<uint64_t>(space.truncated()));
    report.setConfig("rungs", static_cast<uint64_t>(opt.rungs));
    report.setConfig("eta", static_cast<uint64_t>(opt.eta));
    report.setConfig("min_survivors",
                     static_cast<uint64_t>(opt.minSurvivors));
    report.setConfig("ops", static_cast<uint64_t>(opt.fullOps));
    report.setConfig("seed", opt.seed);
    std::string names;
    for (const std::string &w : result.workloads) {
        if (!names.empty())
            names += ",";
        names += w;
    }
    report.setConfig("workloads", names);
    report.setConfig("evals", result.evals);
    report.setConfig("full_evals", result.fullEvals);
    report.setConfig("exhaustive_evals", result.exhaustiveEvals);
    report.setConfig("evals_saved", result.evalsSaved());

    report.addTable("rungs", renderRungTable(result));
    report.addTable("frontier_aggregate",
                    renderFrontierTable(result.aggregateFrontier));
    for (size_t w = 0; w < result.workloads.size(); ++w)
        report.addTable("frontier_" + result.workloads[w],
                        renderFrontierTable(result.workloadFrontiers[w]));

    const auto lanes = [&report](const std::string &key,
                                 const std::vector<ParetoPoint> &f) {
        report.addWorkloadValue(
            key, "frontier_size", static_cast<uint64_t>(f.size()));
        if (!f.empty()) {
            // The frontier is sorted by ascending storage, hence
            // strictly descending miss rate: back() is the most
            // accurate point, front() the cheapest.
            report.addWorkloadValue(key, "best_miss_rate",
                                    f.back().missRate(), 6);
            report.addWorkloadValue(key, "best_storage_bits",
                                    f.back().storageBits);
            report.addWorkloadValue(key, "min_storage_bits",
                                    f.front().storageBits);
        }
    };
    lanes("aggregate", result.aggregateFrontier);
    for (size_t w = 0; w < result.workloads.size(); ++w)
        lanes(result.workloads[w], result.workloadFrontiers[w]);
    return report;
}

} // namespace tpred::tune
