/**
 * @file
 * tpred-tune-report/1: the autotuner's structured run report.
 *
 * Same six-section shape as tpred-run-report/1 (obs/run_report.hh) —
 * tools/report_lint.py validates, masks and diffs both — with the
 * tune-specific content in fixed places:
 *
 *   config:   space name/size/truncation, rung schedule, eta,
 *             promotion floor, workload list, seed, and the
 *             evaluations-saved-vs-exhaustive accounting
 *   metrics:  the deterministic tune.* counters (tune.rungs,
 *             tune.evals, tune.promotions, tune.full_evals,
 *             tune.frontier_size) captured from the registry
 *   tables:   "rungs" (the search trajectory: population, prefix
 *             length, promotions per rung), "frontier_aggregate" and
 *             one "frontier_<workload>" per workload class
 *   workloads: per-class lanes (frontier_size, best_miss_rate,
 *             best_storage_bits)
 *
 * Byte-identity contract: two searches of the same space with the
 * same options produce identical JSON outside the "runtime" section,
 * for any --jobs value.
 */

#ifndef TPRED_TUNE_TUNE_REPORT_HH
#define TPRED_TUNE_TUNE_REPORT_HH

#include <string>

#include "obs/run_report.hh"
#include "tune/successive_halving.hh"

namespace tpred::tune
{

/** Value of the "schema" field of an autotuner report. */
inline constexpr const char *kTuneReportSchema = "tpred-tune-report/1";

/** The search-trajectory table ("rungs"). */
std::string renderRungTable(const TuneResult &result);

/** One frontier table: budget, candidate id, miss rate per point. */
std::string renderFrontierTable(const std::vector<ParetoPoint> &frontier);

/**
 * Builds the deterministic sections of a tpred-tune-report/1.  The
 * caller still runs captureProcess() (for metrics/runtime) before
 * write() — exactly like every other report emitter.
 */
obs::RunReport makeTuneReport(const std::string &tool,
                              const ConfigSpace &space,
                              const TuneOptions &opt,
                              const TuneResult &result);

} // namespace tpred::tune

#endif // TPRED_TUNE_TUNE_REPORT_HH
