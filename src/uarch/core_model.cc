#include "uarch/core_model.hh"

#include <array>

#include "obs/metrics.hh"
#include "uarch/fu_pool.hh"

namespace tpred
{

CoreModel::CoreModel(const CoreParams &params)
    : params_(params),
      dcache_(params.dcache)
{
}

bool
CoreModel::sourcesReady(const InFlight &entry, uint64_t base_seq,
                        uint64_t cycle) const
{
    for (uint64_t src_seq : entry.srcSeq) {
        if (src_seq == 0 || src_seq < base_seq)
            continue;  // no producer, or the producer already retired
        const InFlight &producer = window_[src_seq - base_seq];
        if (!producer.issued || producer.doneCycle > cycle)
            return false;
    }
    return true;
}

CoreResult
CoreModel::run(TraceSource &trace, FrontendPredictor &frontend,
               uint64_t max_instrs)
{
    return runImpl(trace, frontend, max_instrs);
}

CoreResult
CoreModel::run(CompactReplay &trace, FrontendPredictor &frontend,
               uint64_t max_instrs)
{
    return runImpl(trace, frontend, max_instrs);
}

template <typename Source>
CoreResult
CoreModel::runImpl(Source &trace, FrontendPredictor &frontend,
                   uint64_t max_instrs)
{
    static const obs::Timer phase =
        obs::globalMetrics().timer("phase.core_run");
    obs::ScopedTimer timed(phase);

    CoreResult result;
    window_.clear();

    // Sequence number of the last writer of each register; 0 = value
    // available since before the window.
    std::array<uint64_t, kNumArchRegs> last_writer{};

    uint64_t cycle = 0;
    uint64_t next_seq = 1;
    uint64_t fetch_allowed = 0;    ///< earliest cycle fetch may resume
    bool redirect_pending = false; ///< unresolved mispredicted branch
    BranchKind stall_kind = BranchKind::None; ///< who blocked fetch
    bool trace_ended = false;

    while (result.instructions < max_instrs &&
           (!trace_ended || !window_.empty())) {
        // ---- Retire: in order, up to width per cycle. ---------------
        unsigned retired = 0;
        while (!window_.empty() && retired < params_.width) {
            const InFlight &head = window_.front();
            if (!head.issued || head.doneCycle > cycle)
                break;
            // A retiring writer's value is ready by construction; drop
            // its writer record if it is still the latest.
            if (head.op.dstReg != kNoReg &&
                last_writer[head.op.dstReg] == head.seq) {
                last_writer[head.op.dstReg] = 0;
            }
            window_.pop_front();
            ++result.instructions;
            ++retired;
        }

        // ---- Issue/execute: oldest-first, up to fuCount per cycle. --
        unsigned issued = 0;
        const uint64_t issue_base =
            window_.empty() ? next_seq : window_.front().seq;
        for (auto &entry : window_) {
            if (issued >= params_.fuCount)
                break;
            if (entry.issued)
                continue;
            if (!sourcesReady(entry, issue_base, cycle))
                continue;
            entry.issued = true;
            unsigned latency = executionLatency(entry.op.cls);
            if (entry.op.cls == InstClass::Load ||
                entry.op.cls == InstClass::Store) {
                latency += dcache_.access(
                    entry.op.memAddr,
                    entry.op.cls == InstClass::Store);
            }
            entry.doneCycle = cycle + latency;
            ++issued;
            if (entry.mispredicted) {
                // Checkpoint repair: correct-path fetch restarts the
                // cycle after the branch resolves.
                fetch_allowed = entry.doneCycle + 1;
                redirect_pending = false;
            }
        }

        // ---- Fetch/dispatch: up to width, stopping at taken CTIs. ---
        const bool fetch_blocked =
            redirect_pending || cycle < fetch_allowed;
        if (fetch_blocked && stall_kind != BranchKind::None && !trace_ended) {
            ++result.stallCyclesByKind[static_cast<size_t>(stall_kind)];
        }
        if (!trace_ended && !fetch_blocked) {
            stall_kind = BranchKind::None;
            unsigned fetched = 0;
            while (fetched < params_.width &&
                   window_.size() < params_.window) {
                MicroOp op;
                if (!trace.next(op)) {
                    trace_ended = true;
                    break;
                }
                PredictionOutcome outcome = frontend.onInstruction(op);

                InFlight entry;
                entry.op = op;
                entry.seq = next_seq++;
                for (unsigned s = 0; s < 2; ++s) {
                    const RegIndex reg = op.srcRegs[s];
                    entry.srcSeq[s] =
                        reg == kNoReg ? 0 : last_writer[reg];
                }
                if (op.dstReg != kNoReg)
                    last_writer[op.dstReg] = entry.seq;
                entry.mispredicted = op.isBranch() && !outcome.correct;
                window_.push_back(entry);
                ++fetched;

                if (entry.mispredicted) {
                    // Wrong-path fetch until this branch executes.
                    redirect_pending = true;
                    stall_kind = op.branch;
                    break;
                }
                if (op.isBranch() && op.taken)
                    break;  // one taken control transfer per fetch group
            }
        }

        ++cycle;
    }

    result.cycles = cycle;
    result.frontend = frontend.stats();
    result.dcache = dcache_.stats();

    // Once per run, not per cycle — the simulation loop stays clean.
    static const obs::Counter cycles_simulated =
        obs::globalMetrics().counter("core.cycles_simulated");
    static const obs::Counter instructions_retired =
        obs::globalMetrics().counter("core.instructions_retired");
    cycles_simulated.inc(result.cycles);
    instructions_retired.inc(result.instructions);
    return result;
}

} // namespace tpred
