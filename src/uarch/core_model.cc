#include "uarch/core_model.hh"

#include "common/state_io.hh"

namespace tpred
{

CoreModel::CoreModel(const CoreParams &params)
    : params_(params),
      dcache_(params.dcache)
{
}

bool
CoreModel::sourcesReady(const InFlight &entry, uint64_t base_seq,
                        uint64_t cycle) const
{
    for (uint64_t src_seq : entry.srcSeq) {
        if (src_seq == 0 || src_seq < base_seq)
            continue;  // no producer, or the producer already retired
        const InFlight &producer = window_[src_seq - base_seq];
        if (!producer.issued || producer.doneCycle > cycle)
            return false;
    }
    return true;
}

CoreResult
CoreModel::run(TraceSource &trace, FrontendPredictor &frontend,
               uint64_t max_instrs)
{
    beginSession();
    runSession(trace, frontend, max_instrs, UINT64_MAX);
    return endSession(frontend);
}

CoreResult
CoreModel::run(CompactReplay &trace, FrontendPredictor &frontend,
               uint64_t max_instrs)
{
    beginSession();
    runSession(trace, frontend, max_instrs, UINT64_MAX);
    return endSession(frontend);
}

void
CoreModel::beginSession()
{
    window_.clear();
    lastWriter_.fill(0);
    stallByKind_.fill(0);
    instructions_ = 0;
    cycle_ = 0;
    nextSeq_ = 1;
    fetchAllowed_ = 0;
    totalFetched_ = 0;
    fetched_ = 0;
    redirectPending_ = false;
    inFetch_ = false;
    stallKind_ = BranchKind::None;
    btbStallPending_ = false;
    btbMissStall_ = 0;
    traceEnded_ = false;
}

CoreResult
CoreModel::endSession(FrontendPredictor &frontend, bool count_metrics)
{
    CoreResult result;
    result.cycles = cycle_;
    result.instructions = instructions_;
    result.stallCyclesByKind = stallByKind_;
    result.btbMissStallCycles = btbMissStall_;
    result.frontend = frontend.stats();
    result.dcache = dcache_.stats();

    if (count_metrics) {
        // Once per run, not per cycle — the simulation loop stays
        // clean.
        static const obs::Counter cycles_simulated =
            obs::globalMetrics().counter("core.cycles_simulated");
        static const obs::Counter instructions_retired =
            obs::globalMetrics().counter("core.instructions_retired");
        cycles_simulated.inc(result.cycles);
        instructions_retired.inc(result.instructions);
    }
    return result;
}

namespace
{

void
saveOp(StateWriter &w, const MicroOp &op)
{
    w.u64(op.pc);
    w.u64(op.nextPc);
    w.u64(op.fallthrough);
    w.u64(op.memAddr);
    w.u64(op.selector);
    w.u8(static_cast<uint8_t>(op.cls));
    w.u8(static_cast<uint8_t>(op.branch));
    w.b(op.taken);
    w.i16(op.dstReg);
    w.i16(op.srcRegs[0]);
    w.i16(op.srcRegs[1]);
}

MicroOp
restoreOp(StateReader &r)
{
    MicroOp op;
    op.pc = r.u64();
    op.nextPc = r.u64();
    op.fallthrough = r.u64();
    op.memAddr = r.u64();
    op.selector = r.u64();
    op.cls = static_cast<InstClass>(r.u8());
    op.branch = static_cast<BranchKind>(r.u8());
    op.taken = r.b();
    op.dstReg = r.i16();
    op.srcRegs[0] = r.i16();
    op.srcRegs[1] = r.i16();
    return op;
}

} // namespace

void
CoreModel::saveState(StateWriter &w) const
{
    dcache_.saveState(w);
    for (uint64_t seq : lastWriter_)
        w.u64(seq);
    for (uint64_t cycles : stallByKind_)
        w.u64(cycles);
    w.u64(btbMissStall_);
    w.u64(instructions_);
    w.u64(cycle_);
    w.u64(nextSeq_);
    w.u64(fetchAllowed_);
    w.u64(totalFetched_);
    w.u32(fetched_);
    w.b(redirectPending_);
    w.b(inFetch_);
    w.u8(static_cast<uint8_t>(stallKind_));
    w.b(btbStallPending_);
    w.b(traceEnded_);
    w.u64(window_.size());
    for (const InFlight &entry : window_) {
        saveOp(w, entry.op);
        w.u64(entry.seq);
        w.u64(entry.srcSeq[0]);
        w.u64(entry.srcSeq[1]);
        w.u64(entry.doneCycle);
        w.b(entry.issued);
        w.b(entry.mispredicted);
    }
}

void
CoreModel::restoreState(StateReader &r)
{
    dcache_.restoreState(r);
    for (uint64_t &seq : lastWriter_)
        seq = r.u64();
    for (uint64_t &cycles : stallByKind_)
        cycles = r.u64();
    btbMissStall_ = r.u64();
    instructions_ = r.u64();
    cycle_ = r.u64();
    nextSeq_ = r.u64();
    fetchAllowed_ = r.u64();
    totalFetched_ = r.u64();
    fetched_ = r.u32();
    redirectPending_ = r.b();
    inFetch_ = r.b();
    stallKind_ = static_cast<BranchKind>(r.u8());
    btbStallPending_ = r.b();
    traceEnded_ = r.b();
    const uint64_t window_size = r.u64();
    window_.clear();
    for (uint64_t i = 0; i < window_size; ++i) {
        InFlight entry;
        entry.op = restoreOp(r);
        entry.seq = r.u64();
        entry.srcSeq[0] = r.u64();
        entry.srcSeq[1] = r.u64();
        entry.doneCycle = r.u64();
        entry.issued = r.b();
        entry.mispredicted = r.b();
        window_.push_back(entry);
    }
}

void
CoreModel::forkFrom(const CoreModel &other)
{
    StateWriter w;
    other.saveState(w);
    StateReader r(w.bytes());
    restoreState(r);
    r.expectEnd();
}

} // namespace tpred
