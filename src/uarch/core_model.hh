/**
 * @file
 * Wide-issue out-of-order timing model in the style of the paper's HPS
 * machine (section 4.1): Tomasulo-scheduled execution, checkpointing
 * per branch — "once a branch misprediction is determined, instructions
 * from the correct path are fetched in the next cycle" — a perfect
 * instruction cache, and a 16 KB data cache.
 *
 * The model is trace-driven: the front end is consulted for every
 * instruction and a misprediction stalls fetch until the branch
 * executes (wrong-path instructions are never injected; their cost is
 * the fetch bubble, the first-order effect the paper measures).
 *
 * Two driving styles share one simulation body:
 *  - run(): simulate a whole trace in one call (the classic API);
 *  - beginSession() / runSession() / endSession(): a resumable
 *    session that can suspend at an exact fetched-op boundary, have
 *    its complete microarchitectural state serialized (saveState /
 *    restoreState), and be continued — possibly in another thread
 *    from another windowed view of the same trace — with bit-identical
 *    results.  This is the timing-model half of the sharded-replay
 *    checkpoints (docs/parallelism.md).
 */

#ifndef TPRED_UARCH_CORE_MODEL_HH
#define TPRED_UARCH_CORE_MODEL_HH

#include <array>
#include <cstdint>
#include <deque>

#include "core/frontend_predictor.hh"
#include "obs/metrics.hh"
#include "trace/compact_trace.hh"
#include "trace/trace_source.hh"
#include "uarch/dcache.hh"
#include "uarch/fu_pool.hh"

namespace tpred
{

class StateWriter;
class StateReader;

/** Machine parameters (paper section 4.1 and DESIGN.md section 5). */
struct CoreParams
{
    unsigned width = 8;     ///< fetch / issue / retire bandwidth
    unsigned window = 128;  ///< max instructions in flight
    unsigned fuCount = 8;   ///< universal functional units
    DCacheConfig dcache{};
};

/** Result of one timing run. */
struct CoreResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    FrontendStats frontend;
    DCacheStats dcache;

    /**
     * Fetch-stall cycles attributed to the mispredicted branch kind
     * that caused them (indexed by BranchKind) — the decomposition of
     * where execution time goes, and hence of what a better indirect
     * predictor can recover.
     */
    std::array<uint64_t, 7> stallCyclesByKind{};

    /**
     * Fetch-stall cycles from L1-BTB misses serviced by L2 — the
     * bubble a two-level hierarchy charges for a *correctly* predicted
     * but late redirect (bpred/btb_hierarchy.hh).  Disjoint from
     * stallCyclesByKind: a mispredicted branch's stall is always
     * attributed to its kind, never here (mispredict wins).
     */
    uint64_t btbMissStallCycles = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Stall cycles caused by indirect (non-return) mispredictions. */
    uint64_t
    indirectStallCycles() const
    {
        return stallCyclesByKind[static_cast<size_t>(
                   BranchKind::IndirectJump)] +
               stallCyclesByKind[static_cast<size_t>(
                   BranchKind::IndirectCall)];
    }
};

/**
 * Cycle-driven core.  One instance runs one trace against one front
 * end; construct fresh per experiment (or restoreState() into it).
 */
class CoreModel
{
  public:
    explicit CoreModel(const CoreParams &params);

    /**
     * Simulates until @p max_instrs retire (or the trace ends) and
     * returns cycle/IPC/accuracy results.
     */
    CoreResult run(TraceSource &trace, FrontendPredictor &frontend,
                   uint64_t max_instrs);

    /**
     * Devirtualized overload: fetches through the non-virtual
     * CompactReplay block decoder instead of a TraceSource vtable
     * dispatch per instruction.  Same simulation, same bits.
     */
    CoreResult run(CompactReplay &trace, FrontendPredictor &frontend,
                   uint64_t max_instrs);

    /** Resets all session state; call once before runSession(). */
    void beginSession();

    /**
     * Advances the simulation, fetching ops from @p trace, until one
     * of:
     *  - @p stop_after_fetched ops (counted across the whole session)
     *    have been fetched — returns true, the session is *suspended*
     *    mid-cycle at an exact op boundary and a later runSession()
     *    (after saveState()/restoreState(), with a Source positioned
     *    at op @p stop_after_fetched) continues bit-identically;
     *  - @p max_instrs instructions have retired, or the trace ended
     *    and the window drained — returns false, the session is
     *    complete and endSession() yields the result.
     *
     * @p Source needs only `bool next(MicroOp&)`.
     */
    template <typename Source>
    bool
    runSession(Source &trace, FrontendPredictor &frontend,
               uint64_t max_instrs, uint64_t stop_after_fetched)
    {
        static const obs::Timer phase =
            obs::globalMetrics().timer("phase.core_run");
        obs::ScopedTimer timed(phase);

        for (;;) {
            if (!inFetch_) {
                if (!(instructions_ < max_instrs &&
                      (!traceEnded_ || !window_.empty())))
                    return false;

                // ---- Retire: in order, up to width per cycle. -------
                unsigned retired = 0;
                while (!window_.empty() && retired < params_.width) {
                    const InFlight &head = window_.front();
                    if (!head.issued || head.doneCycle > cycle_)
                        break;
                    // A retiring writer's value is ready by
                    // construction; drop its writer record if it is
                    // still the latest.
                    if (head.op.dstReg != kNoReg &&
                        lastWriter_[head.op.dstReg] == head.seq) {
                        lastWriter_[head.op.dstReg] = 0;
                    }
                    window_.pop_front();
                    ++instructions_;
                    ++retired;
                }

                // ---- Issue/execute: oldest-first, <= fuCount/cycle. -
                unsigned issued = 0;
                const uint64_t issue_base =
                    window_.empty() ? nextSeq_ : window_.front().seq;
                for (auto &entry : window_) {
                    if (issued >= params_.fuCount)
                        break;
                    if (entry.issued)
                        continue;
                    if (!sourcesReady(entry, issue_base, cycle_))
                        continue;
                    entry.issued = true;
                    unsigned latency = executionLatency(entry.op.cls);
                    if (entry.op.cls == InstClass::Load ||
                        entry.op.cls == InstClass::Store) {
                        latency += dcache_.access(
                            entry.op.memAddr,
                            entry.op.cls == InstClass::Store);
                    }
                    entry.doneCycle = cycle_ + latency;
                    ++issued;
                    if (entry.mispredicted) {
                        // Checkpoint repair: correct-path fetch
                        // restarts the cycle after the branch resolves.
                        fetchAllowed_ = entry.doneCycle + 1;
                        redirectPending_ = false;
                    }
                }

                const bool fetch_blocked =
                    redirectPending_ || cycle_ < fetchAllowed_;
                if (fetch_blocked && !traceEnded_) {
                    if (stallKind_ != BranchKind::None)
                        ++stallByKind_[static_cast<size_t>(stallKind_)];
                    else if (btbStallPending_)
                        ++btbMissStall_;
                }
                if (!traceEnded_ && !fetch_blocked) {
                    stallKind_ = BranchKind::None;
                    btbStallPending_ = false;
                    fetched_ = 0;
                    inFetch_ = true;
                }
            }

            // ---- Fetch/dispatch: <= width, stopping at taken CTIs.
            // This stage is individually resumable: a suspension
            // leaves inFetch_/fetched_ set so the next runSession()
            // re-enters the same fetch group mid-cycle.
            if (inFetch_) {
                while (fetched_ < params_.width &&
                       window_.size() < params_.window) {
                    if (totalFetched_ == stop_after_fetched)
                        return true;  // suspended at an op boundary
                    MicroOp op;
                    if (!trace.next(op)) {
                        traceEnded_ = true;
                        break;
                    }
                    ++totalFetched_;
                    PredictionOutcome outcome =
                        frontend.onInstruction(op);

                    InFlight entry;
                    entry.op = op;
                    entry.seq = nextSeq_++;
                    for (unsigned s = 0; s < 2; ++s) {
                        const RegIndex reg = op.srcRegs[s];
                        entry.srcSeq[s] =
                            reg == kNoReg ? 0 : lastWriter_[reg];
                    }
                    if (op.dstReg != kNoReg)
                        lastWriter_[op.dstReg] = entry.seq;
                    entry.mispredicted =
                        op.isBranch() && !outcome.correct;
                    window_.push_back(entry);
                    ++fetched_;

                    if (entry.mispredicted) {
                        // Wrong-path fetch until this branch executes.
                        redirectPending_ = true;
                        stallKind_ = op.branch;
                        break;
                    }
                    if (outcome.fetchBubbleCycles > 0) {
                        // Correct but L2-supplied redirect: fetch
                        // resumes after the BTB-miss bubble.  The
                        // mispredict path above wins when both apply —
                        // its checkpoint repair dominates the bubble.
                        const uint64_t resume =
                            cycle_ + 1 + outcome.fetchBubbleCycles;
                        if (resume > fetchAllowed_)
                            fetchAllowed_ = resume;
                        btbStallPending_ = true;
                        break;
                    }
                    if (op.isBranch() && op.taken)
                        break;  // one taken control transfer per group
                }
                inFetch_ = false;
            }

            ++cycle_;
        }
    }

    /**
     * Finishes a session: packages cycles, stats and stall breakdown.
     * @p count_metrics gates the global core.cycles_simulated /
     * core.instructions_retired counters — sharded-replay warm-up and
     * verification passes pass false so the deterministic counters
     * stay identical to a continuous run.
     */
    CoreResult endSession(FrontendPredictor &frontend,
                          bool count_metrics = true);

    /** Ops fetched from the source(s) so far in this session. */
    uint64_t totalFetched() const { return totalFetched_; }

    /** Cycles simulated so far in this session (fork accounting). */
    uint64_t cycles() const { return cycle_; }

    /**
     * Serializes the complete session state — cycle counters, window
     * contents, register writer map, fetch/stall flags and the data
     * cache.  The front end is checkpointed separately by the caller.
     */
    void saveState(StateWriter &w) const;

    /** Restores a saveState() snapshot; params must match. */
    void restoreState(StateReader &r);

    /**
     * Clones another core's complete session state into this one via an
     * in-memory saveState()/restoreState() round trip — the
     * fork-from-checkpoint entry point of the copy-on-divergence timing
     * sweep (harness/sweep_kernel.cc).  Params must match @p other's.
     */
    void forkFrom(const CoreModel &other);

  private:
    struct InFlight
    {
        MicroOp op;
        uint64_t seq = 0;
        uint64_t srcSeq[2] = {0, 0};  ///< producing seq, 0 = ready
        uint64_t doneCycle = 0;
        bool issued = false;
        bool mispredicted = false;
    };

    bool sourcesReady(const InFlight &entry, uint64_t base_seq,
                      uint64_t cycle) const;

    CoreParams params_;
    DCache dcache_;
    std::deque<InFlight> window_;

    // ---- Resumable session state ------------------------------------
    /// Sequence number of the last writer of each register; 0 = value
    /// available since before the window.
    std::array<uint64_t, kNumArchRegs> lastWriter_{};
    std::array<uint64_t, 7> stallByKind_{};
    uint64_t instructions_ = 0;  ///< retired so far
    uint64_t cycle_ = 0;
    uint64_t nextSeq_ = 1;
    uint64_t fetchAllowed_ = 0;    ///< earliest cycle fetch may resume
    uint64_t totalFetched_ = 0;    ///< ops consumed from the source(s)
    unsigned fetched_ = 0;         ///< ops fetched in the current group
    bool redirectPending_ = false; ///< unresolved mispredicted branch
    bool inFetch_ = false;         ///< suspended inside a fetch group
    BranchKind stallKind_ = BranchKind::None; ///< who blocked fetch
    bool btbStallPending_ = false; ///< blocked by a BTB-miss bubble
    uint64_t btbMissStall_ = 0;    ///< cycles lost to BTB-miss bubbles
    bool traceEnded_ = false;
};

} // namespace tpred

#endif // TPRED_UARCH_CORE_MODEL_HH
