/**
 * @file
 * Wide-issue out-of-order timing model in the style of the paper's HPS
 * machine (section 4.1): Tomasulo-scheduled execution, checkpointing
 * per branch — "once a branch misprediction is determined, instructions
 * from the correct path are fetched in the next cycle" — a perfect
 * instruction cache, and a 16 KB data cache.
 *
 * The model is trace-driven: the front end is consulted for every
 * instruction and a misprediction stalls fetch until the branch
 * executes (wrong-path instructions are never injected; their cost is
 * the fetch bubble, the first-order effect the paper measures).
 */

#ifndef TPRED_UARCH_CORE_MODEL_HH
#define TPRED_UARCH_CORE_MODEL_HH

#include <array>
#include <cstdint>
#include <deque>

#include "core/frontend_predictor.hh"
#include "trace/compact_trace.hh"
#include "trace/trace_source.hh"
#include "uarch/dcache.hh"

namespace tpred
{

/** Machine parameters (paper section 4.1 and DESIGN.md section 5). */
struct CoreParams
{
    unsigned width = 8;     ///< fetch / issue / retire bandwidth
    unsigned window = 128;  ///< max instructions in flight
    unsigned fuCount = 8;   ///< universal functional units
    DCacheConfig dcache{};
};

/** Result of one timing run. */
struct CoreResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    FrontendStats frontend;
    DCacheStats dcache;

    /**
     * Fetch-stall cycles attributed to the mispredicted branch kind
     * that caused them (indexed by BranchKind) — the decomposition of
     * where execution time goes, and hence of what a better indirect
     * predictor can recover.
     */
    std::array<uint64_t, 7> stallCyclesByKind{};

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Stall cycles caused by indirect (non-return) mispredictions. */
    uint64_t
    indirectStallCycles() const
    {
        return stallCyclesByKind[static_cast<size_t>(
                   BranchKind::IndirectJump)] +
               stallCyclesByKind[static_cast<size_t>(
                   BranchKind::IndirectCall)];
    }
};

/**
 * Cycle-driven core.  One instance runs one trace against one front
 * end; construct fresh per experiment.
 */
class CoreModel
{
  public:
    explicit CoreModel(const CoreParams &params);

    /**
     * Simulates until @p max_instrs retire (or the trace ends) and
     * returns cycle/IPC/accuracy results.
     */
    CoreResult run(TraceSource &trace, FrontendPredictor &frontend,
                   uint64_t max_instrs);

    /**
     * Devirtualized overload: fetches through the non-virtual
     * CompactReplay block decoder instead of a TraceSource vtable
     * dispatch per instruction.  Same simulation, same bits.
     */
    CoreResult run(CompactReplay &trace, FrontendPredictor &frontend,
                   uint64_t max_instrs);

  private:
    /** Shared simulation body; Source needs only bool next(MicroOp&). */
    template <typename Source>
    CoreResult runImpl(Source &trace, FrontendPredictor &frontend,
                       uint64_t max_instrs);

    struct InFlight
    {
        MicroOp op;
        uint64_t seq = 0;
        uint64_t srcSeq[2] = {0, 0};  ///< producing seq, 0 = ready
        uint64_t doneCycle = 0;
        bool issued = false;
        bool mispredicted = false;
    };

    bool sourcesReady(const InFlight &entry, uint64_t base_seq,
                      uint64_t cycle) const;

    CoreParams params_;
    DCache dcache_;
    std::deque<InFlight> window_;
};

} // namespace tpred

#endif // TPRED_UARCH_CORE_MODEL_HH
