#include "uarch/dcache.hh"

#include <cassert>

#include "common/bits.hh"
#include "common/state_io.hh"

namespace tpred
{

DCache::DCache(const DCacheConfig &config)
    : config_(config),
      setBits_(floorLog2(config.sets())),
      offsetBits_(floorLog2(config.lineBytes)),
      lines_(config.sets() * config.ways)
{
    assert(isPowerOfTwo(config.sets()));
    assert(isPowerOfTwo(config.lineBytes));
}

unsigned
DCache::access(uint64_t addr, bool is_store)
{
    (void)is_store;  // write-allocate: stores behave like loads here
    const uint64_t set = bits(addr >> offsetBits_, 0, setBits_);
    const uint64_t tag = addr >> (offsetBits_ + setBits_);
    Line *base = &lines_[set * config_.ways];

    for (unsigned w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUsed = ++useClock_;
            ++stats_.hits;
            return config_.hitLatency;
        }
    }

    // Miss: fill the LRU way.
    Line *victim = base;
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUsed < victim->lastUsed)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUsed = ++useClock_;
    ++stats_.misses;
    return config_.hitLatency + config_.missLatency;
}

void
DCache::saveState(StateWriter &w) const
{
    w.u64(useClock_);
    w.u64(stats_.hits);
    w.u64(stats_.misses);
    for (const Line &line : lines_) {
        w.b(line.valid);
        w.u64(line.tag);
        w.u64(line.lastUsed);
    }
}

void
DCache::restoreState(StateReader &r)
{
    useClock_ = r.u64();
    stats_.hits = r.u64();
    stats_.misses = r.u64();
    for (Line &line : lines_) {
        line.valid = r.b();
        line.tag = r.u64();
        line.lastUsed = r.u64();
    }
}

} // namespace tpred
