/**
 * @file
 * Data cache model: the paper's 16 KB D-cache with a 20-cycle memory
 * latency (section 4.1; the instruction cache is perfect and needs no
 * model).
 */

#ifndef TPRED_UARCH_DCACHE_HH
#define TPRED_UARCH_DCACHE_HH

#include <cstdint>
#include <vector>

namespace tpred
{

class StateWriter;
class StateReader;

/** D-cache geometry and timing. */
struct DCacheConfig
{
    unsigned sizeBytes = 16 * 1024;
    unsigned lineBytes = 32;
    unsigned ways = 4;
    unsigned hitLatency = 1;   ///< added on top of the FU latency
    unsigned missLatency = 20; ///< the paper's memory latency

    unsigned sets() const { return sizeBytes / (lineBytes * ways); }
};

/** Hit/miss counters. */
struct DCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;

    double
    missRate() const
    {
        const uint64_t total = hits + misses;
        return total ? static_cast<double>(misses) / total : 0.0;
    }
};

/**
 * Set-associative, LRU, write-allocate data cache.  Returns access
 * latency; fills happen immediately (no MSHR model — the paper's
 * machine predates non-blocking-cache studies and the experiments are
 * about the front end).
 */
class DCache
{
  public:
    explicit DCache(const DCacheConfig &config);

    /** Performs one access and returns its latency in cycles. */
    unsigned access(uint64_t addr, bool is_store);

    const DCacheStats &stats() const { return stats_; }
    const DCacheConfig &config() const { return config_; }

    /** Serializes lines, LRU clock and hit/miss counters. */
    void saveState(StateWriter &w) const;

    /** Restores a saveState() snapshot; geometry must match. */
    void restoreState(StateReader &r);

  private:
    struct Line
    {
        bool valid = false;
        uint64_t tag = 0;
        uint64_t lastUsed = 0;
    };

    DCacheConfig config_;
    unsigned setBits_;
    unsigned offsetBits_;
    std::vector<Line> lines_;
    DCacheStats stats_;
    uint64_t useClock_ = 0;
};

} // namespace tpred

#endif // TPRED_UARCH_DCACHE_HH
