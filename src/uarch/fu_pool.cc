#include "uarch/fu_pool.hh"

namespace tpred
{

namespace
{

// InstClass order: Integer, FpAdd, Mul, Div, Load, Store, BitField,
// Branch.  Load latency here is the execute stage only; the data-cache
// model adds hit/miss time on top.
constexpr std::array<unsigned, kNumInstClasses> kLatencies = {
    1, 3, 3, 8, 1, 1, 1, 1,
};

} // namespace

unsigned
executionLatency(InstClass cls)
{
    return kLatencies[static_cast<size_t>(cls)];
}

const std::array<unsigned, kNumInstClasses> &
latencyTable()
{
    return kLatencies;
}

} // namespace tpred
