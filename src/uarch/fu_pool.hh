/**
 * @file
 * Functional-unit latencies (paper Table 3).
 *
 * "Each functional unit can execute instructions from any of the
 * instruction classes" — so the pool is modelled as a count of
 * identical units plus a per-class latency table.  The OCR of Table 3
 * is partially garbled; the assumed values below are the standard
 * latencies of the era and are called out in DESIGN.md section 5.
 */

#ifndef TPRED_UARCH_FU_POOL_HH
#define TPRED_UARCH_FU_POOL_HH

#include <array>
#include <cstdint>

#include "trace/micro_op.hh"

namespace tpred
{

/** Execution latency of one instruction class, in cycles. */
unsigned executionLatency(InstClass cls);

/** Per-class latency table in InstClass order (for reporting). */
const std::array<unsigned, kNumInstClasses> &latencyTable();

} // namespace tpred

#endif // TPRED_UARCH_FU_POOL_HH
