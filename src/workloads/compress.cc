/**
 * @file
 * compress analogue: an LZW-style coder.  Dominated by conditional
 * branches (hash-probe loops over semi-random text); indirect jumps are
 * rare and come from two small dispatch sites (code-size escalation and
 * output-path selection) with only a handful of targets — matching
 * Figure 1's "1-2 targets" profile and Table 1's tiny indirect count.
 */

#include "workloads/workload.hh"

#include <array>

namespace tpred
{

namespace
{

class CompressWorkload final : public Workload
{
  public:
    explicit CompressWorkload(uint64_t seed)
        : Workload("compress", seed)
    {
        mainLoopPc_ = layout_.alloc(12);
        hashLoopPc_ = layout_.alloc(16);
        notFoundPc_ = layout_.alloc(20);
        outputFnPc_ = layout_.alloc(6);
        for (auto &pc : outputHandlerPc_)
            pc = layout_.alloc(16);
        sizeCheckPc_ = layout_.alloc(8);
        for (auto &pc : sizeHandlerPc_)
            pc = layout_.alloc(10);

        // Markov text source: each symbol biases its successor.
        for (auto &row : markov_)
            for (auto &p : row)
                p = rng_.below(kAlphabet);
    }

  private:
    static constexpr unsigned kAlphabet = 16;
    static constexpr unsigned kNumOutputPaths = 3;
    static constexpr unsigned kNumSizePaths = 2;
    static constexpr uint64_t kHashTable = kDataBase;
    static constexpr uint64_t kHashSpan = 256 * 1024;

    uint8_t
    nextSymbol()
    {
        // 70% Markov-predicted successor, 30% uniform noise.
        if (rng_.chance(0.7))
            symbol_ = static_cast<uint8_t>(
                markov_[symbol_][rng_.below(3)]);
        else
            symbol_ = static_cast<uint8_t>(rng_.below(kAlphabet));
        return symbol_;
    }

    void
    step() override
    {
        const uint8_t sym = nextSymbol();

        // Main loop: read a symbol, compute the hash.
        emit_.setPc(mainLoopPc_);
        emit_.intOps(1);
        emit_.load(kDataBase + 0x80000 + (pos_ & 0xffff));
        emit_.op(InstClass::BitField);
        emit_.op(InstClass::Mul);  // hash multiply
        emit_.jump(hashLoopPc_);

        // Hash-probe loop: 1..4 probes, collision odds data-dependent
        // but biased — most probes hit on the first try.
        const unsigned probes =
            1 + static_cast<unsigned>(rng_.geometric(0.15, 4) - 1);
        for (unsigned i = 0; i < probes; ++i) {
            emit_.load(kHashTable + ((pos_ * 31 + sym + i * 7) * 8) %
                                        kHashSpan);
            emit_.intOps(1);
            // Taken = collision, reprobe.
            emit_.condBranch(hashLoopPc_, i + 1 < probes);
        }

        const bool found = rng_.chance(hitRate_);
        emit_.condBranch(notFoundPc_, !found);
        if (found) {
            // String extends: cheap path on the fall-through.
            emit_.intOps(3);
            emit_.store(kHashTable + (pos_ % 4096) * 8);
            emit_.jump(mainLoopPc_);
        } else {
            // New table entry: emit a code through the output routine.
            emit_.intOps(2);
            emit_.store(kHashTable + (pos_ % 4096) * 8 + 8);
            emit_.call(outputFnPc_);
            emitOutput();
            emit_.intOps(1);
            // Table-full check escalates the code size occasionally.
            ++entries_;
            const bool escalate = (entries_ & 0x3ff) == 0;
            emit_.condBranch(sizeCheckPc_, escalate);
            if (escalate) {
                emit_.intOps(1);
                const unsigned path = (codeBits_++ & 1);
                emit_.indirectJump(sizeHandlerPc_[path], path);
                emit_.aluMix(4, kHashTable, kHashSpan);
                emit_.jump(mainLoopPc_);
            } else {
                emit_.jump(mainLoopPc_);
            }
            // Dictionary slowly fills; flushes reset the hit rate.
            hitRate_ = hitRate_ < 0.93 ? hitRate_ + 0.0005 : 0.75;
        }
        ++pos_;
    }

    /** Output routine: small switch on the buffering state. */
    void
    emitOutput()
    {
        emit_.setPc(outputFnPc_);
        emit_.intOps(1);
        // Buffer-flush paths fire periodically: mostly the fast path,
        // a flush every 8th code, a rare sync every 32nd — periodic,
        // so history-friendly but not last-target-friendly.
        const unsigned path = (outCount_ % 32 == 31)
                                  ? 2u
                                  : (outCount_ % 8 == 7 ? 1u : 0u);
        ++outCount_;
        emit_.indirectJump(outputHandlerPc_[path], path);
        emit_.aluMix(3, kDataBase + 0xC0000, 0x8000);
        emit_.store(kDataBase + 0xC0000 + (outCount_ & 0xfff) * 4);
        emit_.ret();
    }

    std::array<std::array<uint8_t, 3>, kAlphabet> markov_{};
    uint8_t symbol_ = 0;
    uint64_t pos_ = 0;
    uint64_t entries_ = 0;
    uint64_t outCount_ = 0;
    unsigned codeBits_ = 9;
    double hitRate_ = 0.75;

    uint64_t mainLoopPc_ = 0;
    uint64_t hashLoopPc_ = 0;
    uint64_t notFoundPc_ = 0;
    uint64_t outputFnPc_ = 0;
    std::array<uint64_t, kNumOutputPaths> outputHandlerPc_{};
    uint64_t sizeCheckPc_ = 0;
    std::array<uint64_t, kNumSizePaths> sizeHandlerPc_{};
};

const detail::WorkloadRegistrar registered{{
    "compress",
    "LZW coder: conditional-branch heavy, two tiny dispatch sites",
    0, true,
    [](uint64_t seed) -> std::unique_ptr<Workload> {
        return std::make_unique<CompressWorkload>(seed);
    }}};

} // namespace

} // namespace tpred
