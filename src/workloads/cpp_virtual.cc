/**
 * @file
 * C++ virtual-dispatch workload — the paper's stated future work
 * ("for object oriented programs where more indirect branches may be
 * executed, tagged caches should provide even greater performance
 * benefits", section 5).
 *
 * A shape-rendering loop over a scene of polymorphic objects: call
 * sites range from monomorphic through megamorphic, receivers arrive
 * in per-site Markov order (history-learnable), and indirect calls are
 * several times denser than in the C workloads.
 */

#include "workloads/workload.hh"

#include <array>

namespace tpred
{

namespace
{

class CppVirtualWorkload final : public Workload
{
  public:
    explicit CppVirtualWorkload(uint64_t seed)
        : Workload("cpp-virtual", seed)
    {
        sceneLoopPc_ = layout_.alloc(8);
        for (auto &pc : sitePc_)
            pc = layout_.alloc(10);
        for (auto &vtbl : methodPc_)
            for (auto &pc : vtbl)
                pc = layout_.alloc(20);
        helperPc_ = layout_.alloc(32);

        // Scene: a fixed sequence of (site, receiver-class) pairs.
        // Sites 0-5 monomorphic, 6-9 2-4-way polymorphic, 10-11
        // megamorphic over all classes.
        for (unsigned i = 0; i < kSceneLen; ++i) {
            const unsigned site = static_cast<unsigned>(
                rng_.below(kNumSites));
            unsigned cls;
            if (site < 6)
                cls = site % kNumClasses;
            else if (site < 10)
                cls = static_cast<unsigned>(rng_.below(2 + site % 3));
            else
                cls = static_cast<unsigned>(rng_.below(kNumClasses));
            scene_[i] = {static_cast<uint8_t>(site),
                         static_cast<uint8_t>(cls)};
        }
    }

  private:
    static constexpr unsigned kNumClasses = 12;
    static constexpr unsigned kNumSites = 12;
    static constexpr unsigned kNumMethods = 3;
    static constexpr unsigned kSceneLen = 256;
    static constexpr uint64_t kObjHeap = kDataBase;
    static constexpr uint64_t kObjSpan = 256 * 1024;

    void
    step() override
    {
        const auto [site, cls] = scene_[pos_];

        emit_.setPc(sceneLoopPc_);
        emit_.intOps(1);
        emit_.load(kObjHeap + pos_ * 32);  // object pointer
        emit_.op(InstClass::BitField);
        // Draw-command dispatch: a switch over the scene entry's kind
        // selects the call site (itself an indirect-jump site).
        emit_.indirectJump(sitePc_[site], site);

        // Call site: vtable load + virtual call.
        emit_.load(kObjHeap + pos_ * 32 + 8);  // vptr
        const unsigned method = site % kNumMethods;
        emit_.indirectCall(methodPc_[cls][method],
                           cls * kNumMethods + method);
        emitMethod(cls, method);
        emit_.intOps(1);
        emit_.jump(sceneLoopPc_);

        pos_ = (pos_ + 1) % kSceneLen;
    }

    /** Virtual method body: class-specific work, shared helper. */
    void
    emitMethod(uint8_t cls, unsigned method)
    {
        emit_.aluMix(3 + cls % 4, kObjHeap, kObjSpan);
        emit_.condBranch(emit_.pc() + 8, ((cls + method) & 1) != 0);
        if (((cls + method) & 1) == 0)
            emit_.store(kObjHeap + cls * 0x1000);
        emit_.call(helperPc_);
        emitHelper(1 + cls % 3);
        emit_.ret();
    }

    void
    emitHelper(unsigned trips)
    {
        emit_.setPc(helperPc_);
        emit_.intOps(1);
        const uint64_t loop = emit_.pc();
        for (unsigned i = 0; i < trips; ++i) {
            emit_.aluMix(3, kObjHeap + 0x20000, 0x8000);
            emit_.condBranch(loop, i + 1 < trips);
        }
        emit_.ret();
    }

    std::array<std::pair<uint8_t, uint8_t>, kSceneLen> scene_{};
    size_t pos_ = 0;

    uint64_t sceneLoopPc_ = 0;
    std::array<uint64_t, kNumSites> sitePc_{};
    std::array<std::array<uint64_t, kNumMethods>, kNumClasses>
        methodPc_{};
    uint64_t helperPc_ = 0;
};

const detail::WorkloadRegistrar registered{{
    "cpp-virtual",
    "polymorphic rendering loop: mono- to megamorphic virtual calls",
    1, false,
    [](uint64_t seed) -> std::unique_ptr<Workload> {
        return std::make_unique<CppVirtualWorkload>(seed);
    }}};

} // namespace

} // namespace tpred
