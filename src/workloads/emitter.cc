#include "workloads/emitter.hh"

#include <cassert>

namespace tpred
{

Emitter::Emitter(uint64_t seed)
    : rng_(seed ^ 0xe5a11e5ull)
{
    recentWrites_.fill(1);
    callStack_.reserve(64);
}

RegIndex
Emitter::pickSrc()
{
    // Bias toward the most recent writes: short dependency distances
    // dominate real integer code.
    unsigned back = rng_.geometric(0.55, recentWrites_.size()) - 1;
    unsigned idx = (recentHead_ + recentWrites_.size() - 1 - back) %
                   recentWrites_.size();
    return recentWrites_[idx];
}

RegIndex
Emitter::pickDst()
{
    RegIndex dst = nextDst_;
    nextDst_ = dst + 1;
    if (nextDst_ >= static_cast<RegIndex>(kNumArchRegs))
        nextDst_ = 8;  // r0..r7 reserved as long-lived values
    recentWrites_[recentHead_] = dst;
    recentHead_ = (recentHead_ + 1) % recentWrites_.size();
    return dst;
}

MicroOp
Emitter::makeOp(InstClass cls)
{
    MicroOp op;
    op.pc = pc_;
    op.fallthrough = pc_ + 4;
    op.nextPc = pc_ + 4;
    op.cls = cls;
    op.srcRegs[0] = pickSrc();
    // Second source on roughly half of the ops.
    op.srcRegs[1] = rng_.chance(0.5) ? pickSrc() : kNoReg;
    if (cls != InstClass::Store && cls != InstClass::Branch)
        op.dstReg = pickDst();
    return op;
}

void
Emitter::op(InstClass cls, uint64_t mem_addr)
{
    assert(cls != InstClass::Branch && "use the control-flow helpers");
    MicroOp uop = makeOp(cls);
    uop.memAddr = mem_addr;
    queue_.push_back(uop);
    pc_ += 4;
}

void
Emitter::intOps(unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        op(InstClass::Integer);
}

void
Emitter::aluMix(unsigned n, uint64_t data_base, uint64_t data_span)
{
    for (unsigned i = 0; i < n; ++i) {
        double draw = rng_.uniform();
        if (draw < 0.45) {
            op(InstClass::Integer);
        } else if (draw < 0.60) {
            op(InstClass::BitField);
        } else if (draw < 0.66) {
            op(InstClass::Mul);
        } else if (draw < 0.88) {
            load(dataAddr(data_base, data_span));
        } else {
            store(dataAddr(data_base, data_span));
        }
    }
}

uint64_t
Emitter::dataAddr(uint64_t data_base, uint64_t data_span)
{
    if (data_span == 0)
        data_span = 1;
    // Spatially local access stream: mostly near the current cursor
    // (same or neighbouring cache line), with occasional jumps to a new
    // region — yielding era-realistic data-cache hit rates.
    if (rng_.chance(0.04))
        memCursor_ = rng_.below(data_span);
    const uint64_t offset =
        (memCursor_ + rng_.below(64)) % data_span;
    return data_base + (offset & ~7ull);
}

void
Emitter::finishBranch(MicroOp &op, BranchKind kind, uint64_t next_pc,
                      bool taken)
{
    op.branch = kind;
    op.taken = taken;
    op.nextPc = next_pc;
    queue_.push_back(op);
    pc_ = next_pc;
}

void
Emitter::condBranch(uint64_t taken_target, bool taken)
{
    MicroOp op = makeOp(InstClass::Branch);
    finishBranch(op, BranchKind::CondDirect,
                 taken ? taken_target : op.fallthrough, taken);
}

void
Emitter::jump(uint64_t target)
{
    MicroOp op = makeOp(InstClass::Branch);
    finishBranch(op, BranchKind::UncondDirect, target, true);
}

void
Emitter::indirectJump(uint64_t target, uint64_t selector)
{
    MicroOp op = makeOp(InstClass::Branch);
    op.selector = selector;
    finishBranch(op, BranchKind::IndirectJump, target, true);
}

void
Emitter::call(uint64_t target)
{
    MicroOp op = makeOp(InstClass::Branch);
    callStack_.push_back(op.fallthrough);
    finishBranch(op, BranchKind::Call, target, true);
}

void
Emitter::indirectCall(uint64_t target, uint64_t selector)
{
    MicroOp op = makeOp(InstClass::Branch);
    op.selector = selector;
    callStack_.push_back(op.fallthrough);
    finishBranch(op, BranchKind::IndirectCall, target, true);
}

void
Emitter::ret()
{
    assert(!callStack_.empty() && "return without a matching call");
    uint64_t return_to = callStack_.back();
    callStack_.pop_back();
    MicroOp op = makeOp(InstClass::Branch);
    finishBranch(op, BranchKind::Return, return_to, true);
}

bool
Emitter::pop(MicroOp &op)
{
    if (queue_.empty())
        return false;
    op = queue_.front();
    queue_.pop_front();
    return true;
}

} // namespace tpred
