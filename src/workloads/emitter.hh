/**
 * @file
 * Instruction-emission helpers for the synthetic workload generators.
 *
 * A workload describes its execution (loops, switch dispatch, calls)
 * through the Emitter, which synthesizes the bookkeeping a trace needs:
 * program counters, register operands with realistic dependency
 * distances, and a coherent call stack so returns match their calls.
 */

#ifndef TPRED_WORKLOADS_EMITTER_HH
#define TPRED_WORKLOADS_EMITTER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hh"
#include "trace/micro_op.hh"

namespace tpred
{

/**
 * Bump allocator for static code addresses.
 *
 * Workloads allocate a fixed block per function / switch handler at
 * construction time so every static instruction keeps a stable PC
 * across the whole run — a prerequisite for any PC-indexed predictor.
 */
class CodeLayout
{
  public:
    explicit CodeLayout(uint64_t base = 0x400000) : nextPc_(base) {}

    /**
     * Reserves a block of @p n_instr word-aligned slots.
     * @return The block's base address.
     */
    uint64_t
    alloc(unsigned n_instr)
    {
        uint64_t base = nextPc_;
        // At least one guard word between blocks, and an odd total
        // word stride.  Deliberately *no* wider alignment: path
        // history records low target-address bits (paper Table 5);
        // coarse alignment — or an even stride across an array of
        // same-sized handler blocks — would make those bits constant,
        // erasing the signal.
        uint64_t stride = uint64_t{n_instr} + 1;
        if ((stride & 1) == 0)
            ++stride;
        nextPc_ += stride * 4;
        return base;
    }

    uint64_t watermark() const { return nextPc_; }

  private:
    uint64_t nextPc_;
};

/**
 * Builds MicroOps at a program counter the workload steers explicitly.
 *
 * Non-branch ops advance the PC by 4; control-flow helpers set the PC
 * to the architectural successor so the next emitted op continues on
 * the taken path, exactly like an execution-driven tracer.
 */
class Emitter
{
  public:
    explicit Emitter(uint64_t seed);

    /** Moves the emission point (use when entering a known block). */
    void setPc(uint64_t pc) { pc_ = pc; }
    uint64_t pc() const { return pc_; }

    /** Emits one non-branch op of class @p cls. */
    void op(InstClass cls, uint64_t mem_addr = 0);

    /** Emits @p n plain integer ALU ops. */
    void intOps(unsigned n);

    /**
     * Emits @p n ops drawn from a typical integer-code mix
     * (Integer/BitField/Mul plus occasional Load/Store into
     * [data_base, data_base + data_span)).
     */
    void aluMix(unsigned n, uint64_t data_base, uint64_t data_span);

    void load(uint64_t addr) { op(InstClass::Load, addr); }
    void store(uint64_t addr) { op(InstClass::Store, addr); }

    /**
     * A spatially-local data address in [data_base, data_base +
     * data_span): random-walk cursor with occasional region jumps.
     */
    uint64_t dataAddr(uint64_t data_base, uint64_t data_span);

    /** Conditional direct branch with outcome @p taken. */
    void condBranch(uint64_t taken_target, bool taken);

    /** Unconditional direct jump. */
    void jump(uint64_t target);

    /** Indirect jump through a register/jump-table. */
    void indirectJump(uint64_t target, uint64_t selector);

    /** Direct call; the return address is kept on an internal stack. */
    void call(uint64_t target);

    /** Indirect call (function pointer / vtable dispatch). */
    void indirectCall(uint64_t target, uint64_t selector);

    /** Return to the address saved by the matching call. */
    void ret();

    /** Depth of the internal call stack. */
    size_t callDepth() const { return callStack_.size(); }

    /** Pops the next queued MicroOp; false when the queue is empty. */
    bool pop(MicroOp &op);

    size_t pending() const { return queue_.size(); }

  private:
    MicroOp makeOp(InstClass cls);
    void finishBranch(MicroOp &op, BranchKind kind, uint64_t next_pc,
                      bool taken);
    RegIndex pickSrc();
    RegIndex pickDst();

    std::deque<MicroOp> queue_;
    std::vector<uint64_t> callStack_;
    uint64_t pc_ = 0x400000;
    Rng rng_;
    /// Ring of recently written registers; sources are drawn from it to
    /// create dependency chains with realistic distances.
    std::array<RegIndex, 16> recentWrites_;
    unsigned recentHead_ = 0;
    RegIndex nextDst_ = 8;
    uint64_t memCursor_ = 0;
};

} // namespace tpred

#endif // TPRED_WORKLOADS_EMITTER_HH
