/**
 * @file
 * Internal: per-benchmark factory functions wired into the registry.
 */

#ifndef TPRED_WORKLOADS_FACTORIES_HH
#define TPRED_WORKLOADS_FACTORIES_HH

#include <cstdint>
#include <memory>

#include "workloads/workload.hh"

namespace tpred
{

std::unique_ptr<Workload> makeCompressWorkload(uint64_t seed);
std::unique_ptr<Workload> makeGccWorkload(uint64_t seed);
std::unique_ptr<Workload> makeGoWorkload(uint64_t seed);
std::unique_ptr<Workload> makeIjpegWorkload(uint64_t seed);
std::unique_ptr<Workload> makeM88ksimWorkload(uint64_t seed);
std::unique_ptr<Workload> makePerlWorkload(uint64_t seed);
std::unique_ptr<Workload> makeVortexWorkload(uint64_t seed);
std::unique_ptr<Workload> makeXlispWorkload(uint64_t seed);
std::unique_ptr<Workload> makeCppVirtualWorkload(uint64_t seed);

} // namespace tpred

#endif // TPRED_WORKLOADS_FACTORIES_HH
