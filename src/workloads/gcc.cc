/**
 * @file
 * gcc analogue: a six-pass compiler pipeline driven over a synthetic IR
 * stream.  Functions are generated fresh from a fixed library of
 * statement templates, so dispatch targets inside a template are
 * history-predictable while template boundaries are not — reproducing
 * gcc's partial-but-substantial target-cache win (paper: 66.0% BTB
 * misprediction reduced to ~30% with a 512-entry target cache).
 *
 * Profile targeted (paper Table 1 / Figure 2):
 *  - many static indirect jump sites (per-pass main switches, per-
 *    category optimizer switches, codegen mode dispatch) with target
 *    counts spread from 5 to 40;
 *  - optimizer switches are selected through compare chains of
 *    conditional branches, the classic SWITCH/CASE lowering of the
 *    paper's Figure 9.
 */

#include "workloads/workload.hh"

#include <array>

namespace tpred
{

namespace
{

class GccWorkload final : public Workload
{
  public:
    explicit GccWorkload(uint64_t seed)
        : Workload("gcc", seed)
    {
        driverPc_ = layout_.alloc(4 + kNumPasses * 2);
        for (unsigned p = 0; p < kNumPasses; ++p) {
            passEntryPc_[p] = layout_.alloc(8);
            passLoopPc_[p] = layout_.alloc(8);
            passExitPc_[p] = layout_.alloc(4);
            for (unsigned h = 0; h < kHandlerCount[p]; ++h)
                handlerPc_[p].push_back(layout_.alloc(24));
        }
        // Optimizer pass (p = 2): compare chain + per-category switches.
        chainPc_ = layout_.alloc(16);
        for (unsigned c = 0; c < kNumCategories; ++c) {
            leafPc_[c] = layout_.alloc(4);
            for (unsigned h = 0; h < kPerCategoryTargets; ++h)
                catHandlerPc_[c][h] = layout_.alloc(16);
        }
        // Codegen mode dispatch (p = 5).
        modeFnPc_ = layout_.alloc(4);
        for (auto &pc : modeHandlerPc_)
            pc = layout_.alloc(8);
        for (auto &pc : helperPc_)
            pc = layout_.alloc(48);

        buildTemplates();
        newFunction();
    }

  private:
    static constexpr unsigned kNumOpcodes = 40;
    static constexpr unsigned kNumPasses = 6;
    static constexpr unsigned kNumCategories = 8;
    static constexpr unsigned kPerCategoryTargets = 5;
    static constexpr unsigned kNumModes = 8;
    static constexpr unsigned kNumHelpers = 4;
    static constexpr unsigned kPassIters = 4;  ///< fixpoint iterations
    static constexpr uint64_t kIrBase = kDataBase + 0x100000;
    // Per-pass main-switch target counts: a spread of granularities so
    // static sites exhibit 8..40 distinct targets (Figure 2's spread).
    static constexpr std::array<unsigned, kNumPasses> kHandlerCount = {
        40, 12, 1, 20, 8, 40,
    };

    /** Fixed library of statement templates (opcode idioms). */
    void
    buildTemplates()
    {
        templates_.resize(60);
        for (auto &tpl : templates_) {
            unsigned len = 4 + static_cast<unsigned>(rng_.below(5));
            tpl.resize(len);
            for (auto &opc : tpl)
                opc = static_cast<uint8_t>(rng_.below(kNumOpcodes));
            // Inject immediate repeats so a last-target BTB is right
            // part of the time (paper: 66% wrong, i.e. 34% right).
            if (len >= 3 && rng_.chance(0.5))
                tpl[len - 1] = tpl[len - 2];
        }
    }

    /** Generates a fresh function from the template library. */
    void
    newFunction()
    {
        fnNodes_.clear();
        std::vector<double> weights;
        for (size_t i = 0; i < templates_.size(); ++i)
            weights.push_back(1.0 / static_cast<double>(1 + i / 4));
        const unsigned stmts = 5 + static_cast<unsigned>(rng_.below(8));
        for (unsigned s = 0; s < stmts; ++s) {
            const auto &tpl = templates_[rng_.weighted(weights)];
            fnNodes_.insert(fnNodes_.end(), tpl.begin(), tpl.end());
        }
        passIdx_ = 0;
        nodeIdx_ = 0;
        enterPass();
    }

    /** Driver call site for the current pass, then the pass prologue. */
    void
    enterPass()
    {
        // Each pass is called from its own static call site in the
        // driver, so direct-call targets never vary per PC.
        emit_.setPc(driverPc_ + 4 + passIdx_ * 8);
        emit_.intOps(1);
        emit_.call(passEntryPc_[passIdx_]);
        emit_.intOps(2);
        emit_.jump(passLoopPc_[passIdx_]);
    }

    void
    step() override
    {
        const unsigned p = passIdx_;
        // Loop head: exit check precedes the dispatch.
        emit_.setPc(passLoopPc_[p]);
        emit_.intOps(1);
        emit_.load(kIrBase + nodeIdx_ * 16);
        // Dataflow-style passes iterate over the IR until "fixpoint"
        // (a fixed iteration count here); the repetition is what makes
        // (site, history) pairs recur and the target cache learn.
        const bool nodes_done = nodeIdx_ >= fnNodes_.size();
        emit_.condBranch(passExitPc_[p], nodes_done);
        if (nodes_done) {
            emit_.intOps(1);
            const bool more_iters = iterIdx_ + 1 < kPassIters;
            emit_.condBranch(passLoopPc_[p], more_iters);
            if (more_iters) {
                ++iterIdx_;
                nodeIdx_ = 0;
                return;
            }
            emit_.ret();  // back to the driver call site
            ++passIdx_;
            iterIdx_ = 0;
            if (passIdx_ >= kNumPasses) {
                newFunction();
            } else {
                nodeIdx_ = 0;
                enterPass();
            }
            return;
        }

        const uint8_t opc = fnNodes_[nodeIdx_];
        emit_.op(InstClass::BitField);
        if (p == 2)
            emitOptimizerNode(opc);
        else
            emitMainSwitchNode(p, opc);
        ++nodeIdx_;
        emit_.jump(passLoopPc_[p]);
    }

    /** Main per-pass switch: jump-table dispatch on the opcode. */
    void
    emitMainSwitchNode(unsigned p, uint8_t opc)
    {
        const unsigned h = opc % kHandlerCount[p];
        emit_.indirectJump(handlerPc_[p][h], opc);
        emit_.aluMix(3 + h % 4, kDataBase, 0x40000);
        // Two opcode-deterministic conditionals: the handler's
        // predicates are what lets a short global pattern history
        // identify the recent opcode sequence.
        emit_.condBranch(emit_.pc() + 12, (opc & 1) != 0);
        if ((opc & 1) == 0)
            emit_.aluMix(2, kDataBase, 0x40000);
        emit_.condBranch(emit_.pc() + 8, (opc & 2) != 0);
        if ((opc & 2) == 0)
            emit_.op(InstClass::BitField);
        emit_.condBranch(emit_.pc() + 8, (opc & 4) != 0);
        if ((opc & 4) == 0)
            emit_.op(InstClass::Integer);
        // A sixth of the handlers call a shared utility routine; rare,
        // so the history window still spans ~3 IR nodes.
        if (h % 6 == 0) {
            const unsigned idx = h % kNumHelpers;
            emit_.call(helperPc_[idx]);
            emitHelper(idx, 1 + opc % 2);
        }
        // Codegen pass: addressing-mode sub-dispatch on some opcodes.
        // The mode is a fixed function of the opcode (operand shapes
        // are part of the template), keeping it history-correlated.
        if (p == 5 && (opc & 4) != 0) {
            emit_.call(modeFnPc_);
            emit_.intOps(1);
            const unsigned mode = (opc * 5 + opc / 7) % kNumModes;
            emit_.indirectJump(modeHandlerPc_[mode], mode);
            emit_.aluMix(2, kDataBase, 0x40000);
            emit_.ret();
        }
    }

    /**
     * Optimizer node: a compare chain over the opcode's category
     * (paper Figure 9's SWITCH/CASE lowering), then a small per-
     * category jump table.
     */
    void
    emitOptimizerNode(uint8_t opc)
    {
        const unsigned cat = opc / kPerCategoryTargets;
        emit_.jump(chainPc_);
        for (unsigned c = 0; c < cat && c + 1 < kNumCategories; ++c)
            emit_.condBranch(leafPc_[c], false);
        if (cat + 1 < kNumCategories)
            emit_.condBranch(leafPc_[cat], true);
        // (cat == kNumCategories-1 falls through the whole chain.)
        emit_.setPc(leafPc_[cat]);
        emit_.op(InstClass::Integer);
        const unsigned h = opc % kPerCategoryTargets;
        emit_.indirectJump(catHandlerPc_[cat][h], opc);
        emit_.aluMix(4, kDataBase + 0x80000, 0x20000);
        emit_.condBranch(emit_.pc() + 8, (opc & 2) != 0);
        if ((opc & 2) == 0)
            emit_.op(InstClass::Mul);
    }

    /** Shared utility routine with an opcode-dependent trip count. */
    void
    emitHelper(unsigned idx, unsigned trips)
    {
        emit_.setPc(helperPc_[idx]);
        emit_.intOps(2);
        const uint64_t loop_head = emit_.pc();
        for (unsigned i = 0; i < trips; ++i) {
            emit_.aluMix(5, kDataBase + idx * 0x4000, 0x4000);
            emit_.condBranch(loop_head, i + 1 < trips);
        }
        emit_.ret();
    }

    std::vector<std::vector<uint8_t>> templates_;
    std::vector<uint8_t> fnNodes_;
    unsigned passIdx_ = 0;
    unsigned iterIdx_ = 0;
    size_t nodeIdx_ = 0;

    uint64_t driverPc_ = 0;
    std::array<uint64_t, kNumPasses> passEntryPc_{};
    std::array<uint64_t, kNumPasses> passLoopPc_{};
    std::array<uint64_t, kNumPasses> passExitPc_{};
    std::array<std::vector<uint64_t>, kNumPasses> handlerPc_{};
    uint64_t chainPc_ = 0;
    std::array<uint64_t, kNumCategories> leafPc_{};
    std::array<std::array<uint64_t, kPerCategoryTargets>, kNumCategories>
        catHandlerPc_{};
    uint64_t modeFnPc_ = 0;
    std::array<uint64_t, kNumModes> modeHandlerPc_{};
    std::array<uint64_t, kNumHelpers> helperPc_{};
};

const detail::WorkloadRegistrar registered{{
    "gcc",
    "six-pass compiler pipeline with many mid-sized dispatch switches",
    0, true,
    [](uint64_t seed) -> std::unique_ptr<Workload> {
        return std::make_unique<GccWorkload>(seed);
    }}};

} // namespace

} // namespace tpred
