/**
 * @file
 * go analogue: game-tree search over a synthetic board.  Heavy on
 * data-dependent conditional branches (board scans, liberty counting),
 * a shallow recursive search, and a moderate-rate move-type dispatch
 * whose Markov structure is only partially history-predictable —
 * matching go's middling BTB and target-cache numbers in the paper.
 */

#include "workloads/workload.hh"

#include <array>

namespace tpred
{

namespace
{

class GoWorkload final : public Workload
{
  public:
    explicit GoWorkload(uint64_t seed)
        : Workload("go", seed)
    {
        searchFnPc_ = layout_.alloc(16);
        scanFnPc_ = layout_.alloc(24);
        moveFnPc_ = layout_.alloc(6);
        for (auto &pc : moveHandlerPc_)
            pc = layout_.alloc(20);
        evalFnPc_ = layout_.alloc(24);
        topLoopPc_ = layout_.alloc(8);

        // Joseki lines: fixed move-type sequences the search replays.
        for (auto &seq : joseki_) {
            seq.resize(6 + rng_.below(5));
            for (auto &m : seq)
                m = static_cast<uint8_t>(rng_.below(kMoveTypes));
            // Immediate repeats: reading out a ladder repeats the
            // same move type, which is what keeps the BTB viable.
            for (size_t i = 1; i + 1 < seq.size(); i += 3)
                seq[i + 1] = seq[i];
        }
        // Sparse board: occupancy tests are biased 4:1, which keeps
        // the conditional misprediction rate era-realistic.
        for (auto &cell : board_)
            cell = rng_.chance(0.05)
                       ? static_cast<uint8_t>(1 + rng_.below(2))
                       : 0;
    }

  private:
    static constexpr unsigned kMoveTypes = 12;
    static constexpr unsigned kBoard = 361;
    static constexpr uint64_t kBoardMem = kDataBase;

    uint8_t
    nextMove()
    {
        // The search mostly reads out known joseki lines (replayed
        // deterministic sequences a history predictor can learn, with
        // internal repeats the BTB can exploit), interleaved with
        // random exploration moves that no predictor can catch.
        if (inSeq_) {
            move_ = joseki_[seqIdx_][seqPos_++];
            if (seqPos_ >= joseki_[seqIdx_].size())
                inSeq_ = false;
            return move_;
        }
        if (rng_.chance(0.8)) {
            seqIdx_ = static_cast<unsigned>(rng_.below(kNumJoseki));
            seqPos_ = 0;
            inSeq_ = true;
            return nextMove();
        }
        move_ = static_cast<uint8_t>(rng_.below(kMoveTypes));
        return move_;
    }

    void
    step() override
    {
        emit_.setPc(topLoopPc_);
        emit_.intOps(2);
        emit_.call(searchFnPc_);
        emitSearch(2);  // depth-2 lookahead
        emit_.intOps(1);
        emit_.jump(topLoopPc_);
    }

    /** Recursive candidate search: scan, dispatch, evaluate, recurse. */
    void
    emitSearch(unsigned depth)
    {
        emit_.setPc(searchFnPc_);
        emit_.intOps(1);

        // Board scan precedes move selection (the search looks before
        // it moves); kept short so the conditional history window at
        // the dispatch still holds the previous move's identity bits.
        emit_.call(scanFnPc_);
        emitScan();

        // Move-type dispatch (the indirect site).
        const uint8_t mv = nextMove();
        emit_.call(moveFnPc_);
        emit_.intOps(1);
        emit_.indirectJump(moveHandlerPc_[mv], mv);
        emit_.aluMix(4 + mv % 3, kBoardMem, kBoard * 8);
        emit_.condBranch(emit_.pc() + 8, (mv & 1) != 0);
        if ((mv & 1) == 0)
            emit_.op(InstClass::Integer);
        emit_.condBranch(emit_.pc() + 8, (mv & 2) != 0);
        if ((mv & 2) == 0)
            emit_.op(InstClass::BitField);
        emit_.ret();

        // Position evaluation; its trip count encodes a third move
        // bit.
        emit_.call(evalFnPc_);
        emitEval(1 + ((mv >> 2) & 1));

        // Recurse on promising moves: alternating exploration pattern,
        // so the recursion branch is predictable.
        ++searchCount_;
        const bool recurse = depth > 0 && (searchCount_ & 1) == 0;
        emit_.condBranch(emit_.pc() + 8, !recurse);
        if (recurse) {
            emit_.call(searchFnPc_);
            emitSearch(depth - 1);
        }
        emit_.ret();
    }

    /** Scan a board segment: liberty-count conditionals. */
    void
    emitScan()
    {
        emit_.setPc(scanFnPc_);
        emit_.intOps(1);
        const uint64_t loop = emit_.pc();
        const unsigned cells = 1;
        for (unsigned i = 0; i < cells; ++i) {
            const unsigned at = (scanPos_ + i) % kBoard;
            emit_.load(kBoardMem + at * 8);
            // Occupancy test: genuinely data dependent.
            const bool occupied = board_[at] != 0;
            emit_.condBranch(emit_.pc() + 12, occupied);
            if (!occupied) {
                emit_.intOps(2);
            }
            emit_.op(InstClass::BitField);
            emit_.condBranch(loop, i + 1 < cells);
        }
        emit_.ret();
        scanPos_ = (scanPos_ + 7) % kBoard;
        // Mutate the board occasionally so patterns drift.
        if (rng_.chance(0.1))
            board_[rng_.below(kBoard)] = rng_.chance(0.25)
                ? static_cast<uint8_t>(1 + rng_.below(2))
                : 0;
    }

    /** Leaf evaluation: a short loop whose trips carry a move bit. */
    void
    emitEval(unsigned trips)
    {
        emit_.setPc(evalFnPc_);
        emit_.intOps(1);
        const uint64_t loop = emit_.pc();
        for (unsigned i = 0; i < trips; ++i) {
            emit_.aluMix(4, kBoardMem, kBoard * 8);
            emit_.condBranch(loop, i + 1 < trips);
        }
        emit_.ret();
    }

    static constexpr unsigned kNumJoseki = 10;

    std::array<std::vector<uint8_t>, kNumJoseki> joseki_{};
    std::array<uint8_t, kBoard> board_{};
    unsigned seqIdx_ = 0;
    size_t seqPos_ = 0;
    bool inSeq_ = false;
    uint8_t move_ = 0;
    unsigned scanPos_ = 0;
    uint64_t searchCount_ = 0;

    uint64_t searchFnPc_ = 0;
    uint64_t scanFnPc_ = 0;
    uint64_t moveFnPc_ = 0;
    std::array<uint64_t, kMoveTypes> moveHandlerPc_{};
    uint64_t evalFnPc_ = 0;
    uint64_t topLoopPc_ = 0;
};

const detail::WorkloadRegistrar registered{{
    "go",
    "game-tree search: branchy board scans, partially-Markov move dispatch",
    0, true,
    [](uint64_t seed) -> std::unique_ptr<Workload> {
        return std::make_unique<GoWorkload>(seed);
    }}};

} // namespace

} // namespace tpred
