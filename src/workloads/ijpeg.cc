/**
 * @file
 * ijpeg analogue: block-based image coding.  Long fixed-trip-count DCT
 * and quantization loops of Integer/Mul work with highly predictable
 * conditionals; indirect jumps are rare and effectively monomorphic —
 * the component dispatch stays on one colour component for a whole scan
 * row (Figure 4's 1-2 target profile, very low BTB misprediction).
 */

#include "workloads/workload.hh"

#include <array>

namespace tpred
{

namespace
{

class IjpegWorkload final : public Workload
{
  public:
    explicit IjpegWorkload(uint64_t seed)
        : Workload("ijpeg", seed)
    {
        blockLoopPc_ = layout_.alloc(8);
        dctFnPc_ = layout_.alloc(32);
        quantFnPc_ = layout_.alloc(24);
        componentFnPc_ = layout_.alloc(4);
        for (auto &pc : componentHandlerPc_)
            pc = layout_.alloc(20);
        for (auto &pc : encodeHandlerPc_)
            pc = layout_.alloc(12);
        encodeFnPc_ = layout_.alloc(6);
    }

  private:
    static constexpr unsigned kComponents = 3;  ///< Y, Cb, Cr
    static constexpr unsigned kEncodePaths = 2; ///< DC / AC path
    static constexpr unsigned kRowBlocks = 80;  ///< blocks per scan row
    static constexpr uint64_t kImage = kDataBase;
    static constexpr uint64_t kCoeff = kDataBase + 0x200000;

    void
    step() override
    {
        // One 8x8 block.
        emit_.setPc(blockLoopPc_);
        emit_.intOps(2);
        emit_.load(kImage + (blockIdx_ % 4096) * 64);

        // Component dispatch: constant within a scan row.
        const unsigned comp = component_;
        emit_.call(componentFnPc_);
        emit_.intOps(1);
        emit_.indirectJump(componentHandlerPc_[comp], comp);
        emit_.aluMix(3, kImage, 0x40000);
        emit_.ret();

        // DCT: 8 rows x fixed 4-op body, then 8 columns.
        emit_.call(dctFnPc_);
        emitDct();

        // Quantization + zig-zag with a data-dependent zero-skip.
        emit_.call(quantFnPc_);
        emitQuant();

        // Entropy encode: a restart-marker path every 8th block, the
        // AC fast path otherwise — periodic, so history-recoverable.
        const unsigned path = (blockIdx_ % 8 == 0) ? 0u : 1u;
        emit_.call(encodeFnPc_);
        emit_.intOps(1);
        emit_.indirectJump(encodeHandlerPc_[path], path);
        emit_.aluMix(3, kCoeff, 0x10000);
        emit_.ret();

        emit_.jump(blockLoopPc_);

        ++blockIdx_;
        if (blockIdx_ % kRowBlocks == 0)
            component_ = (component_ + 1) % kComponents;
    }

    void
    emitDct()
    {
        emit_.setPc(dctFnPc_);
        emit_.intOps(1);
        const uint64_t row_loop = emit_.pc();
        for (unsigned r = 0; r < 8; ++r) {
            emit_.load(kImage + (blockIdx_ % 4096) * 64 + r * 8);
            emit_.op(InstClass::Mul);
            emit_.op(InstClass::Mul);
            emit_.op(InstClass::Integer);
            emit_.condBranch(row_loop, r + 1 < 8);
        }
        const uint64_t col_loop = emit_.pc();
        for (unsigned c = 0; c < 8; ++c) {
            emit_.op(InstClass::Mul);
            emit_.op(InstClass::Integer);
            emit_.op(InstClass::BitField);
            emit_.store(kCoeff + (blockIdx_ % 4096) * 64 + c * 8);
            emit_.condBranch(col_loop, c + 1 < 8);
        }
        emit_.ret();
    }

    void
    emitQuant()
    {
        emit_.setPc(quantFnPc_);
        emit_.intOps(1);
        const uint64_t loop = emit_.pc();
        for (unsigned i = 0; i < 8; ++i) {
            emit_.load(kCoeff + (blockIdx_ % 4096) * 64 + i * 8);
            emit_.op(InstClass::Mul);
            emit_.op(InstClass::BitField);
            // Zero-coefficient skip: follows the quantization table
            // for the low coefficients (periodic, predictable); the
            // highest coefficient depends on the image content.
            const bool skip = i == 7 ? rng_.chance(0.8)
                                     : ((blockIdx_ + i) % 4) != 0;
            emit_.condBranch(emit_.pc() + 12, skip);
            if (!skip) {
                emit_.store(kCoeff + i * 8);
                emit_.op(InstClass::Integer);
            }
            emit_.condBranch(loop, i + 1 < 8);
        }
        emit_.ret();
    }

    uint64_t blockIdx_ = 0;
    unsigned component_ = 0;

    uint64_t blockLoopPc_ = 0;
    uint64_t dctFnPc_ = 0;
    uint64_t quantFnPc_ = 0;
    uint64_t componentFnPc_ = 0;
    std::array<uint64_t, kComponents> componentHandlerPc_{};
    uint64_t encodeFnPc_ = 0;
    std::array<uint64_t, kEncodePaths> encodeHandlerPc_{};
};

const detail::WorkloadRegistrar registered{{
    "ijpeg",
    "block image coder: long DSP loops, near-monomorphic dispatch",
    0, true,
    [](uint64_t seed) -> std::unique_ptr<Workload> {
        return std::make_unique<IjpegWorkload>(seed);
    }}};

} // namespace

} // namespace tpred
