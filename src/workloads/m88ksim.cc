/**
 * @file
 * m88ksim analogue: an instruction-set simulator interpreting a fixed
 * guest program that loops.  The decode switch therefore sees a
 * periodic opcode sequence — strongly history-predictable — while a
 * last-target BTB still mispredicts whenever consecutive guest
 * instructions differ (paper Table 1: 37.3% BTB misprediction).
 */

#include "workloads/workload.hh"

#include <array>

namespace tpred
{

namespace
{

/** Guest opcode classes of the simulated CPU. */
enum GuestOp : uint8_t
{
    kAdd, kSub, kLogic, kShift, kMulG, kDivG,
    kLd, kSt, kBr, kBsr, kRts, kCmp,
    kMovI, kMovR, kNop, kTrap,
    kNumGuestOps,
};

class M88ksimWorkload final : public Workload
{
  public:
    explicit M88ksimWorkload(uint64_t seed)
        : Workload("m88ksim", seed)
    {
        fetchLoopPc_ = layout_.alloc(10);
        decodeFnPc_ = layout_.alloc(6);
        for (auto &pc : opHandlerPc_)
            pc = layout_.alloc(24);
        memFnPc_ = layout_.alloc(4);
        for (auto &pc : memHandlerPc_)
            pc = layout_.alloc(10);
        statsFnPc_ = layout_.alloc(16);

        buildGuestProgram();
    }

  private:
    static constexpr unsigned kMemPaths = 4;  ///< byte/half/word/double
    static constexpr uint64_t kGuestMem = kDataBase;
    static constexpr uint64_t kGuestRegs = kDataBase + 0x100000;

    /**
     * The guest program: an outer body plus a hot inner loop of
     * arithmetic runs — the register-move/ALU bursts that give real
     * m88ksim its moderate (not catastrophic) BTB rate: consecutive
     * guest instructions often share an opcode, so the last-computed
     * target repeats.
     */
    void
    buildGuestProgram()
    {
        const std::array<uint8_t, 20> prologue = {
            kLd, kLd, kAdd, kAdd, kCmp, kBr,
            kMovI, kShift, kLogic, kSt,
            kLd, kMulG, kAdd, kSt,
            kBsr, kAdd, kSub, kRts,
            kLd, kCmp,
        };
        const std::array<uint8_t, 10> hot = {
            kAdd, kAdd, kAdd, kAdd, kAdd,
            kSub, kSub, kSub, kCmp, kBr,
        };
        const std::array<uint8_t, 8> epilogue = {
            kMovR, kLogic, kSt, kSt, kShift, kCmp, kDivG, kBr,
        };
        program_.assign(prologue.begin(), prologue.end());
        hotStart_ = program_.size();
        program_.insert(program_.end(), hot.begin(), hot.end());
        hotEnd_ = program_.size() - 1;
        program_.insert(program_.end(), epilogue.begin(),
                        epilogue.end());
    }

    void
    step() override
    {
        const uint8_t opc = program_[guestPc_];

        // Fetch + decode of one guest instruction.
        emit_.setPc(fetchLoopPc_);
        emit_.intOps(1);
        emit_.load(kGuestMem + guestPc_ * 4);
        emit_.op(InstClass::BitField);
        emit_.op(InstClass::BitField);
        emit_.call(decodeFnPc_);
        emit_.intOps(1);
        emit_.indirectJump(opHandlerPc_[opc], opc);
        emitHandler(opc);
        emit_.ret();

        // Cycle statistics, fixed-shape.
        emit_.call(statsFnPc_);
        emit_.setPc(statsFnPc_);
        emit_.aluMix(4, kGuestRegs + 0x1000, 0x1000);
        emit_.ret();
        emit_.jump(fetchLoopPc_);

        // Guest control flow: the hot inner loop iterates, the rest
        // usually falls through with an occasional data-dependent skip
        // so the simulator is not perfectly periodic.
        if (guestPc_ == hotEnd_ && hotIter_ + 1 < kHotIters) {
            ++hotIter_;
            guestPc_ = hotStart_;
        } else if (opc == kBr && guestPc_ != hotEnd_ &&
                   rng_.chance(0.12)) {
            guestPc_ += 3;
        } else {
            if (guestPc_ == hotEnd_)
                hotIter_ = 0;
            ++guestPc_;
        }
        if (guestPc_ >= program_.size()) {
            guestPc_ = 0;
            hotIter_ = 0;
        }
    }

    void
    emitHandler(uint8_t opc)
    {
        // Simulated register read/modify/write.
        emit_.load(kGuestRegs + (opc % 32) * 8);
        emit_.aluMix(3 + opc % 3, kGuestRegs, 0x100);
        emit_.store(kGuestRegs + ((opc + 7) % 32) * 8);
        // Condition-code update: outcome identifies the opcode.
        emit_.condBranch(emit_.pc() + 12, (opc & 1) != 0);
        if ((opc & 1) == 0)
            emit_.intOps(2);
        // Simulator bookkeeping loop, opcode-dependent trip count
        // (kept short to preserve the pattern-history window).
        const uint64_t book_loop = emit_.pc();
        const unsigned trips = 1 + ((opc >> 1) & 1);
        for (unsigned i = 0; i < trips; ++i) {
            emit_.aluMix(4, kGuestRegs + 0x2000, 0x2000);
            emit_.condBranch(book_loop, i + 1 < trips);
        }
        // Memory ops go through a width sub-switch.
        if (opc == kLd || opc == kSt) {
            emit_.call(memFnPc_);
            emit_.intOps(1);
            const unsigned width = (guestPc_ + opc) % kMemPaths;
            emit_.indirectJump(memHandlerPc_[width], width);
            emit_.load(kGuestMem + 0x8000 + (guestPc_ * 8) % 0x8000);
            emit_.op(InstClass::Integer);
            emit_.ret();
        }
    }

    static constexpr unsigned kHotIters = 12;

    std::vector<uint8_t> program_;
    size_t guestPc_ = 0;
    size_t hotStart_ = 0;
    size_t hotEnd_ = 0;
    unsigned hotIter_ = 0;

    uint64_t fetchLoopPc_ = 0;
    uint64_t decodeFnPc_ = 0;
    std::array<uint64_t, kNumGuestOps> opHandlerPc_{};
    uint64_t memFnPc_ = 0;
    std::array<uint64_t, kMemPaths> memHandlerPc_{};
    uint64_t statsFnPc_ = 0;
};

const detail::WorkloadRegistrar registered{{
    "m88ksim",
    "instruction-set simulator: periodic opcode decode switch",
    0, true,
    [](uint64_t seed) -> std::unique_ptr<Workload> {
        return std::make_unique<M88ksimWorkload>(seed);
    }}};

} // namespace

} // namespace tpred
