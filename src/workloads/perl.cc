/**
 * @file
 * perl analogue: a token interpreter whose main loop parses and then
 * evaluates the same statement sequence for many iterations — the exact
 * structure the paper credits for perl's path-history win (section
 * 4.2.3): "the interpreter will process the same sequence of tokens for
 * many iterations".
 *
 * Control-flow profile targeted (paper Table 1 / Figure 6):
 *  - very few static indirect jump sites (parser dispatch, eval
 *    dispatch, value-type dispatch) with ~30+ targets each, so nearly
 *    all dynamic indirect jumps come from sites with >= 30 targets;
 *  - consecutive dispatch targets rarely repeat, so a last-target BTB
 *    mispredicts most of the time;
 *  - the token sequence is perfectly periodic, so history-based
 *    prediction can approach 100% after warmup.
 *
 * Static-code discipline observed throughout the workloads: a direct
 * jump or call at a given PC always has the same target; only
 * conditional outcomes and indirect targets vary between dynamic
 * instances of a PC.
 */

#include "workloads/workload.hh"

#include <array>

namespace tpred
{

namespace
{

class PerlWorkload final : public Workload
{
  public:
    explicit PerlWorkload(uint64_t seed)
        : Workload("perl", seed)
    {
        // Static code layout: every block gets stable PCs up front.
        parseLoopPc_ = layout_.alloc(8);
        evalLoopPc_ = layout_.alloc(8);
        typeFnPc_ = layout_.alloc(4);
        loopCheckPc_ = layout_.alloc(8);
        for (auto &pc : parseHandlerPc_)
            pc = layout_.alloc(12);
        for (auto &pc : evalHandlerPc_)
            pc = layout_.alloc(48);
        for (auto &pc : typeHandlerPc_)
            pc = layout_.alloc(8);
        for (auto &pc : helperPc_)
            pc = layout_.alloc(64);

        buildScript();
    }

  private:
    static constexpr unsigned kNumTokens = 32;
    static constexpr unsigned kNumCharClasses = 8;
    static constexpr unsigned kNumValueTypes = 4;
    static constexpr unsigned kNumHelpers = 6;
    static constexpr uint64_t kHeap = kDataBase;
    static constexpr uint64_t kHeapSpan = 96 * 1024;

    /**
     * The "script": a sequence of lines; the interpreter executes each
     * line for many iterations before moving on (the paper: "the perl
     * script contains a loop that executes for many iterations").  The
     * short within-line period is what lets a 9-bit history identify
     * the position in the token stream.  All 32 token kinds appear
     * across the lines so the eval site exhibits >= 30 targets.
     */
    void
    buildScript()
    {
        // Statement templates: short fixed token idioms.
        const std::array<std::vector<uint8_t>, 12> templates = {{
            {0, 0, 4, 8, 1},     // my $x = $a + $b (doubled LOAD)
            {0, 5, 9, 9, 1},     // my $x = $a * $b (doubled MUL)
            {2, 6, 10, 3},       // $h{$k} = f($v)
            {0, 7, 11, 1},       // string concat
            {12, 13, 14},        // if (...) {...}
            {15, 15, 16, 17, 17, 18},  // foreach push (runs)
            {19, 20, 21},        // regex match
            {22, 23, 1},         // chained deref
            {24, 24, 25, 26, 27},  // sprintf (doubled)
            {28, 28, 29},        // ++ / -- (doubled)
            {30, 31, 8, 1},      // sort comparator
            {2, 10, 6, 3, 14},   // nested index + call
        }};
        for (unsigned line = 0; line < kNumLines; ++line) {
            auto &tokens = lines_[line];
            // 2-3 statements per line.
            const unsigned stmts = 2 + static_cast<unsigned>(
                rng_.below(2));
            for (unsigned s = 0; s < stmts; ++s) {
                const auto &tpl = templates[rng_.below(templates.size())];
                tokens.insert(tokens.end(), tpl.begin(), tpl.end());
            }
            // Distribute the alphabet across lines for full coverage.
            for (uint8_t t = 0; t < kNumTokens; ++t) {
                if (t % kNumLines == line)
                    tokens.push_back(t);
            }
        }
    }

    void
    step() override
    {
        const auto &line = lines_[lineIdx_];
        const uint8_t tok = line[scriptPos_];

        // ---- Parser phase: dispatch on the token's character class.
        emit_.setPc(parseLoopPc_);
        emit_.intOps(1);
        emit_.load(kDataBase + 0x40000 + (scriptPos_ & 0xfff) * 8);
        emit_.op(InstClass::BitField);
        const uint8_t cls = tok % kNumCharClasses;
        emit_.indirectJump(parseHandlerPc_[cls], cls);
        // Parse handler: small fixed body, one token-deterministic
        // conditional (feeds pattern history with token identity).
        emit_.intOps(3);
        emit_.condBranch(emit_.pc() + 16, (tok & 1) != 0);
        if ((tok & 1) == 0)
            emit_.intOps(3);
        emit_.jump(evalLoopPc_);

        // ---- Eval phase: dispatch on the token kind.
        emit_.intOps(2);
        emit_.load(kDataBase + 0x48000 + tok * 16);
        emit_.indirectJump(evalHandlerPc_[tok], tok);
        emitEvalHandler(tok);

        // ---- Loop tail: shared check block with static targets.
        ++scriptPos_;
        if (scriptPos_ >= line.size()) {
            scriptPos_ = 0;
            ++iteration_;
            if (iteration_ >= kItersPerLine) {
                iteration_ = 0;
                lineIdx_ = (lineIdx_ + 1) % kNumLines;
            }
        }
        emit_.jump(loopCheckPc_);
        emit_.intOps(1);
        const bool more = scriptPos_ != 0;
        emit_.condBranch(parseLoopPc_, more);
        if (!more) {
            // End of one pass over the current line.
            emit_.intOps(2);
            emit_.jump(parseLoopPc_);
        }
    }

    void
    emitEvalHandler(uint8_t tok)
    {
        // Inline part: fixed-shape work + token-deterministic branch.
        emit_.aluMix(4, kHeap, kHeapSpan);
        emit_.condBranch(emit_.pc() + 24, (tok & 2) != 0);
        if ((tok & 2) == 0)
            emit_.aluMix(5, kHeap, kHeapSpan);

        // Value-type dispatch on arithmetic-flavoured tokens: a shared
        // runtime function containing the third indirect site (4
        // targets); each type arm returns to this handler via the RAS.
        if (tok >= 4 && tok < 12) {
            emit_.call(typeFnPc_);
            emit_.intOps(1);
            const uint8_t type = tok % kNumValueTypes;
            emit_.indirectJump(typeHandlerPc_[type], type);
            emit_.aluMix(3, kHeap, kHeapSpan);
            emit_.ret();
        }

        // Runtime helper: bulk of the handler's work; the trip count is
        // a deterministic function of the token, so the conditional
        // history at the next dispatch still identifies the token
        // without flooding the 9-bit register.
        const unsigned idx = tok % kNumHelpers;
        emit_.call(helperPc_[idx]);
        // Trip count encodes a token bit the other conditionals do not
        // (parse uses bit 0, the handler bit 1), while staying short so
        // a 9-bit pattern history window spans ~2 tokens.
        emitHelper(idx, 1 + ((tok >> 2) & 1));
        emit_.aluMix(3, kHeap, kHeapSpan);
    }

    /** Shared runtime routine: prologue, fixed-trip loop, return. */
    void
    emitHelper(unsigned idx, unsigned trips)
    {
        emit_.setPc(helperPc_[idx]);
        emit_.intOps(2);
        const uint64_t loop_head = emit_.pc();
        for (unsigned i = 0; i < trips; ++i) {
            emit_.aluMix(6, kHeap + idx * 0x2000, 0x2000);
            emit_.condBranch(loop_head, i + 1 < trips);
        }
        emit_.op(InstClass::Integer);
        emit_.ret();
    }

    static constexpr unsigned kNumLines = 6;
    static constexpr unsigned kItersPerLine = 16;

    std::array<std::vector<uint8_t>, kNumLines> lines_{};
    unsigned lineIdx_ = 0;
    size_t scriptPos_ = 0;
    uint64_t iteration_ = 0;
    uint64_t parseLoopPc_ = 0;
    uint64_t evalLoopPc_ = 0;
    uint64_t typeFnPc_ = 0;
    uint64_t loopCheckPc_ = 0;
    std::array<uint64_t, kNumCharClasses> parseHandlerPc_{};
    std::array<uint64_t, kNumTokens> evalHandlerPc_{};
    std::array<uint64_t, kNumValueTypes> typeHandlerPc_{};
    std::array<uint64_t, kNumHelpers> helperPc_{};
};

const detail::WorkloadRegistrar registered{{
    "perl",
    "token interpreter re-evaluating the same statement sequence",
    0, true,
    [](uint64_t seed) -> std::unique_ptr<Workload> {
        return std::make_unique<PerlWorkload>(seed);
    }}};

} // namespace

} // namespace tpred
