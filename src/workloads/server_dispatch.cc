/**
 * @file
 * server-dispatch workload: a request-handling server with a static
 * branch footprint far beyond the paper's 1K-entry BTB.
 *
 * Hundreds of distinct request handlers hang off one megamorphic
 * dispatch site, and each handler walks a chain of virtual service
 * calls (routing -> auth -> backend style).  Requests replay a long
 * fixed playlist, so deep-history predictors have signal, but the
 * sheer number of live branch sites overflows a small BTB: this is the
 * front-end regime the two-level BTB hierarchy (docs/btb_hierarchy.md)
 * exists for, where an L1-sized working set no longer holds the code
 * footprint and L2-supplied targets cost fetch bubbles.
 */

#include "workloads/workload.hh"

#include <array>

namespace tpred
{

namespace
{

class ServerDispatchWorkload final : public Workload
{
  public:
    explicit ServerDispatchWorkload(uint64_t seed)
        : Workload("server-dispatch", seed)
    {
        requestLoopPc_ = layout_.alloc(8);
        for (auto &pc : handlerPc_)
            pc = layout_.alloc(16);
        for (auto &pc : servicePc_)
            pc = layout_.alloc(12);

        // Request playlist: handlers arrive in long sessions (a client
        // issues a burst of related requests) so consecutive dispatches
        // correlate, but across the playlist nearly every handler is
        // live — the dispatch site is megamorphic and the static
        // footprint stays hot.
        unsigned handler = 0;
        for (unsigned i = 0; i < kPlaylistLen;) {
            handler = static_cast<unsigned>(rng_.below(kNumHandlers));
            const unsigned burst =
                1 + static_cast<unsigned>(rng_.below(4));
            for (unsigned b = 0; b < burst && i < kPlaylistLen;
                 ++b, ++i) {
                playlist_[i] = {
                    static_cast<uint16_t>((handler + b) % kNumHandlers),
                    static_cast<uint8_t>(rng_.below(kNumServices)),
                    static_cast<uint8_t>(1 + rng_.below(3)),
                };
            }
        }
    }

  private:
    static constexpr unsigned kNumHandlers = 384;
    static constexpr unsigned kNumServices = 48;
    static constexpr unsigned kPlaylistLen = 1024;
    static constexpr uint64_t kHeap = kDataBase;
    static constexpr uint64_t kHeapSpan = 1024 * 1024;

    struct Request
    {
        uint16_t handler;
        uint8_t service;
        uint8_t depth;
    };

    void
    step() override
    {
        const Request req = playlist_[pos_];

        // Request loop: pop the next request and dispatch on its type.
        emit_.setPc(requestLoopPc_);
        emit_.intOps(1);
        emit_.load(kHeap + pos_ * 16);  // request descriptor
        emit_.op(InstClass::BitField);
        emit_.indirectJump(handlerPc_[req.handler], req.handler);

        emitHandler(req);

        pos_ = (pos_ + 1) % kPlaylistLen;
    }

    void
    emitHandler(const Request &req)
    {
        const unsigned h = req.handler;
        emit_.setPc(handlerPc_[h]);
        emit_.aluMix(3 + h % 4, kHeap, kHeapSpan);
        emit_.load(kHeap + h * 64);
        // Fast-path check; the slow path logs the request.
        const bool fast = ((h + pos_) & 1) != 0;
        emit_.condBranch(emit_.pc() + 8, fast);
        if (!fast)
            emit_.store(kHeap + kHeapSpan + h * 8);
        emit_.indirectCall(servicePc_[req.service], req.service);
        emitService(req.service, req.depth);
        emit_.intOps(1);
        emit_.store(kHeap + h * 64);
        emit_.jump(requestLoopPc_);
    }

    /**
     * Virtual service chain: each service may forward to the next one
     * (routing -> auth -> backend), so service call sites see many
     * callees and returns unwind through several frames.
     */
    void
    emitService(unsigned svc, unsigned remaining)
    {
        emit_.setPc(servicePc_[svc]);
        emit_.aluMix(2 + svc % 3, kHeap, kHeapSpan);
        const bool deeper = remaining > 1;
        emit_.condBranch(emit_.pc() + 8, !deeper);
        if (deeper) {
            const unsigned next = (svc + 7 + remaining) % kNumServices;
            emit_.indirectCall(servicePc_[next], next);
            emitService(next, remaining - 1);
        }
        emit_.intOps(1);
        emit_.ret();
    }

    std::array<Request, kPlaylistLen> playlist_{};
    size_t pos_ = 0;

    uint64_t requestLoopPc_ = 0;
    std::array<uint64_t, kNumHandlers> handlerPc_{};
    std::array<uint64_t, kNumServices> servicePc_{};
};

const detail::WorkloadRegistrar registered{{
    "server-dispatch",
    "request server: megamorphic handler dispatch, BTB-overflow footprint",
    2, false,
    [](uint64_t seed) -> std::unique_ptr<Workload> {
        return std::make_unique<ServerDispatchWorkload>(seed);
    }}};

} // namespace

} // namespace tpred
