/**
 * @file
 * server-jit workload: a bytecode interpreter with a tiering JIT, the
 * second server-shaped front end (managed language runtime).
 *
 * Cold bytecodes run through a classic megamorphic dispatch loop; hot
 * regions are periodically "compiled" into stubs whose code addresses
 * come from layout_.alloc at run time, so the indirect dispatch keeps
 * acquiring brand-new targets and old BTB entries go stale — the
 * steady code-footprint churn measured on managed server workloads.
 * Stub slots are recycled once the code cache is full, which retargets
 * live dispatch entries without growing the footprint without bound.
 */

#include "workloads/workload.hh"

#include <array>
#include <vector>

namespace tpred
{

namespace
{

class ServerJitWorkload final : public Workload
{
  public:
    explicit ServerJitWorkload(uint64_t seed)
        : Workload("server-jit", seed)
    {
        dispatchLoopPc_ = layout_.alloc(8);
        helperPc_ = layout_.alloc(8);
        for (auto &pc : handlerPc_)
            pc = layout_.alloc(12);
        regionStub_.fill(kNoStub);

        // Guest program: runs of repeated opcodes (loop bodies) so the
        // decode sequence is periodic and history-predictable, like
        // m88ksim's guest but with a much larger opcode vocabulary.
        unsigned i = 0;
        while (i < kProgramLen) {
            const uint8_t op =
                static_cast<uint8_t>(rng_.below(kNumOpcodes));
            const unsigned run =
                1 + static_cast<unsigned>(rng_.below(3));
            for (unsigned r = 0; r < run && i < kProgramLen; ++r, ++i)
                program_[i] = op;
        }
    }

  private:
    static constexpr unsigned kNumOpcodes = 48;
    static constexpr unsigned kProgramLen = 1024;
    static constexpr unsigned kRegionLen = 16;
    static constexpr unsigned kNumRegions = kProgramLen / kRegionLen;
    static constexpr unsigned kMaxStubs = 128;
    static constexpr unsigned kJitPeriod = 96;
    static constexpr uint16_t kNoStub = 0xffff;
    /** Dispatch selectors: opcode for handlers, this + region for stubs. */
    static constexpr uint64_t kStubSelectorBase = 4096;
    static constexpr uint64_t kHeap = kDataBase;
    static constexpr uint64_t kHeapSpan = 512 * 1024;
    static constexpr uint64_t kBytecodeBase = kDataBase + kHeapSpan;

    /** One code-cache slot; body shape is fixed when first allocated. */
    struct Stub
    {
        uint64_t pc = 0;
        uint16_t region = kNoStub;  ///< region currently mapped here
        uint8_t aluLen = 0;
        uint8_t trips = 0;
    };

    void
    step() override
    {
        maybeJit();

        const unsigned region = ip_ / kRegionLen;
        const uint16_t slot = regionStub_[region];

        // Dispatch loop: fetch the bytecode, decode, indirect jump.
        emit_.setPc(dispatchLoopPc_);
        emit_.intOps(1);
        emit_.load(kBytecodeBase + ip_ * 4);
        emit_.op(InstClass::BitField);
        if (slot != kNoStub && ip_ % kRegionLen == 0) {
            // Hot region: one jump into compiled code covers the whole
            // region's worth of bytecodes.
            const Stub &stub = stubs_[slot];
            emit_.indirectJump(stub.pc, kStubSelectorBase + region);
            emitStub(stub, region);
            ip_ = (ip_ + kRegionLen) % kProgramLen;
        } else {
            const uint8_t opcode = program_[ip_];
            emit_.indirectJump(handlerPc_[opcode], opcode);
            emitHandler(opcode);
            ip_ = (ip_ + 1) % kProgramLen;
        }
        ++steps_;
    }

    void
    emitHandler(uint8_t opcode)
    {
        emit_.setPc(handlerPc_[opcode]);
        emit_.aluMix(2 + opcode % 3, kHeap, kHeapSpan);
        if (opcode % 4 == 0) {
            emit_.call(helperPc_);
            emitHelper();
        }
        if (opcode % 5 == 0)
            emit_.store(kHeap + opcode * 32);
        else
            emit_.load(kHeap + opcode * 32);
        emit_.jump(dispatchLoopPc_);
    }

    /** Shared runtime helper (allocation / profiling counter bump). */
    void
    emitHelper()
    {
        emit_.setPc(helperPc_);
        emit_.op(InstClass::Integer);
        emit_.store(kHeap + kHeapSpan - 64);
        emit_.ret();
    }

    /** Compiled region body: straight-line work plus an unrolled loop. */
    void
    emitStub(const Stub &stub, unsigned region)
    {
        emit_.setPc(stub.pc);
        emit_.aluMix(stub.aluLen, kHeap, kHeapSpan);
        const uint64_t loop = emit_.pc();
        for (unsigned t = 0; t < stub.trips; ++t) {
            emit_.aluMix(2, kHeap, kHeapSpan);
            emit_.condBranch(loop, t + 1 < stub.trips);
        }
        emit_.store(kHeap + region * 128);
        emit_.jump(dispatchLoopPc_);
    }

    /** Every kJitPeriod steps, (re)compile the region under the ip. */
    void
    maybeJit()
    {
        if (steps_ == 0 || steps_ % kJitPeriod != 0)
            return;
        const uint16_t region = static_cast<uint16_t>(
            rng_.below(kNumRegions));
        if (regionStub_[region] != kNoStub)
            return;  // already resident
        uint16_t slot;
        if (stubs_.size() < kMaxStubs) {
            // Fresh code-cache allocation: a brand-new dispatch target
            // address the BTB has never seen.
            slot = static_cast<uint16_t>(stubs_.size());
            Stub stub;
            stub.pc = layout_.alloc(16);
            stub.aluLen = static_cast<uint8_t>(3 + slot % 4);
            stub.trips = static_cast<uint8_t>(1 + slot % 2);
            stubs_.push_back(stub);
        } else {
            // Code cache full: evict the oldest mapping; the slot's
            // body shape is fixed, only its region binding changes.
            slot = nextEvict_;
            nextEvict_ = static_cast<uint16_t>(
                (nextEvict_ + 1) % kMaxStubs);
            if (stubs_[slot].region != kNoStub)
                regionStub_[stubs_[slot].region] = kNoStub;
        }
        stubs_[slot].region = region;
        regionStub_[region] = slot;
    }

    std::array<uint8_t, kProgramLen> program_{};
    std::array<uint16_t, kNumRegions> regionStub_{};
    std::vector<Stub> stubs_;
    unsigned ip_ = 0;
    uint64_t steps_ = 0;
    uint16_t nextEvict_ = 0;

    uint64_t dispatchLoopPc_ = 0;
    uint64_t helperPc_ = 0;
    std::array<uint64_t, kNumOpcodes> handlerPc_{};
};

const detail::WorkloadRegistrar registered{{
    "server-jit",
    "bytecode interpreter + tiering JIT: dispatch targets churn as stubs compile",
    2, false,
    [](uint64_t seed) -> std::unique_ptr<Workload> {
        return std::make_unique<ServerJitWorkload>(seed);
    }}};

} // namespace

} // namespace tpred
