/**
 * @file
 * vortex analogue: an object-oriented database in the C style — method
 * dispatch through per-object function pointers, deep call/return
 * chains, pointer-chasing loads.  Call sites are overwhelmingly
 * monomorphic (each container holds one dominant object kind), so the
 * BTB's last-target scheme already predicts well (paper Table 1 shows
 * one of the lowest indirect misprediction rates).
 */

#include "workloads/workload.hh"

#include <array>

namespace tpred
{

namespace
{

class VortexWorkload final : public Workload
{
  public:
    explicit VortexWorkload(uint64_t seed)
        : Workload("vortex", seed)
    {
        txnLoopPc_ = layout_.alloc(10);
        for (auto &pc : opEntryPc_)
            pc = layout_.alloc(12);
        for (auto &pc : methodPc_)
            pc = layout_.alloc(24);
        chaseFnPc_ = layout_.alloc(16);
        commitFnPc_ = layout_.alloc(12);

        // Containers: each dominated by one class, rare intruders.
        for (auto &c : containerClass_)
            c = static_cast<uint8_t>(rng_.below(kNumClasses));
    }

  private:
    static constexpr unsigned kNumClasses = 6;
    static constexpr unsigned kNumOps = 4;  ///< lookup/insert/del/scan
    static constexpr unsigned kNumContainers = 24;
    static constexpr uint64_t kObjects = kDataBase;
    static constexpr uint64_t kObjSpan = 512 * 1024;

    void
    step() override
    {
        // One transaction: pick an operation and a container.  The
        // container is sticky — work clusters on one table for a run
        // of transactions — so consecutive method dispatches usually
        // repeat the same class (the BTB-friendly behaviour the paper
        // reports for vortex).
        const unsigned op = static_cast<unsigned>(
            rng_.weighted({5.0, 2.0, 1.0, 2.0}));
        if (rng_.chance(0.05))
            curContainer_ = static_cast<unsigned>(
                rng_.below(kNumContainers));
        const unsigned container = curContainer_;

        emit_.setPc(txnLoopPc_);
        emit_.intOps(2);
        emit_.load(kObjects + container * 0x4000);
        // Operation selection: short compare chain (static targets).
        for (unsigned i = 0; i < op; ++i)
            emit_.condBranch(opEntryPc_[i], false);
        if (op + 1 < kNumOps)
            emit_.condBranch(opEntryPc_[op], true);
        else
            emit_.jump(opEntryPc_[op]);

        emitOperation(op, container);
        emit_.jump(txnLoopPc_);
    }

    void
    emitOperation(unsigned op, unsigned container)
    {
        emit_.setPc(opEntryPc_[op]);
        emit_.intOps(1);

        // Walk a short chain of objects, invoking a method on each.
        // The chain length depends on the container's record layout
        // (its class), so branch history carries the phase identity —
        // as real pointer-chasing code's trip counts depend on data.
        const unsigned chain =
            2 + (op + containerClass_[container]) % 3;
        emit_.call(chaseFnPc_);
        emitChase(chain, container);

        // Method dispatch: mostly the container's dominant class.
        const uint8_t cls =
            rng_.chance(0.96)
                ? containerClass_[container]
                : static_cast<uint8_t>(rng_.below(kNumClasses));
        emit_.load(kObjects + (container * 0x4000 + 0x10));
        emit_.indirectCall(methodPc_[cls], cls);
        emitMethod(cls);

        // Commit bookkeeping.
        emit_.call(commitFnPc_);
        emit_.setPc(commitFnPc_);
        emit_.aluMix(3, kObjects + 0x60000, 0x10000);
        emit_.store(kObjects + 0x60000 + (txnCount_ & 0xfff) * 8);
        emit_.ret();
        ++txnCount_;
    }

    /** Pointer-chase loop with a data-dependent early-out. */
    void
    emitChase(unsigned links, unsigned container)
    {
        emit_.setPc(chaseFnPc_);
        emit_.intOps(1);
        const uint64_t loop = emit_.pc();
        for (unsigned i = 0; i < links; ++i) {
            emit_.load(kObjects +
                       (container * 0x4000 + i * 40) % kObjSpan);
            emit_.op(InstClass::Integer);
            emit_.condBranch(loop, i + 1 < links);
        }
        emit_.ret();
    }

    /** Virtual method body: class-dependent amount of field work. */
    void
    emitMethod(uint8_t cls)
    {
        emit_.aluMix(4 + cls % 3, kObjects, kObjSpan);
        emit_.condBranch(emit_.pc() + 8, (cls & 1) != 0);
        if ((cls & 1) == 0)
            emit_.store(kObjects + cls * 0x800);
        emit_.ret();
    }

    std::array<uint8_t, kNumContainers> containerClass_{};
    unsigned curContainer_ = 0;
    uint64_t txnCount_ = 0;

    uint64_t txnLoopPc_ = 0;
    std::array<uint64_t, kNumOps> opEntryPc_{};
    std::array<uint64_t, kNumClasses> methodPc_{};
    uint64_t chaseFnPc_ = 0;
    uint64_t commitFnPc_ = 0;
};

const detail::WorkloadRegistrar registered{{
    "vortex",
    "OO database in C: monomorphic function-pointer method dispatch",
    0, true,
    [](uint64_t seed) -> std::unique_ptr<Workload> {
        return std::make_unique<VortexWorkload>(seed);
    }}};

} // namespace

} // namespace tpred
