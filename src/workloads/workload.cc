#include "workloads/workload.hh"

#include <cassert>
#include <stdexcept>

#include "workloads/factories.hh"

namespace tpred
{

Workload::Workload(std::string name, uint64_t seed)
    : emit_(seed),
      layout_(0x400000),
      rng_(seed),
      name_(std::move(name))
{
}

bool
Workload::next(MicroOp &op)
{
    // Workload streams are unbounded; the consumer bounds the length.
    unsigned attempts = 0;
    while (!emit_.pop(op)) {
        step();
        ++attempts;
        assert(attempts < 16 && "step() emitted no instructions");
        (void)attempts;
    }
    return true;
}

const std::vector<std::string> &
spec95Names()
{
    static const std::vector<std::string> names = {
        "compress", "gcc", "go", "ijpeg",
        "m88ksim", "perl", "vortex", "xlisp",
    };
    return names;
}

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = {
        "compress", "gcc", "go", "ijpeg",
        "m88ksim", "perl", "vortex", "xlisp",
        "cpp-virtual",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, uint64_t seed)
{
    if (name == "compress")
        return makeCompressWorkload(seed);
    if (name == "gcc")
        return makeGccWorkload(seed);
    if (name == "go")
        return makeGoWorkload(seed);
    if (name == "ijpeg")
        return makeIjpegWorkload(seed);
    if (name == "m88ksim")
        return makeM88ksimWorkload(seed);
    if (name == "perl")
        return makePerlWorkload(seed);
    if (name == "vortex")
        return makeVortexWorkload(seed);
    if (name == "xlisp")
        return makeXlispWorkload(seed);
    if (name == "cpp-virtual")
        return makeCppVirtualWorkload(seed);
    throw std::invalid_argument("unknown workload: " + name);
}

} // namespace tpred
