#include "workloads/workload.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tpred
{

namespace
{

/** Construct-on-first-use: registrars run during static init. */
std::vector<WorkloadInfo> &
mutableRegistry()
{
    static std::vector<WorkloadInfo> registry;
    return registry;
}

} // namespace

Workload::Workload(std::string name, uint64_t seed)
    : emit_(seed),
      layout_(0x400000),
      rng_(seed),
      name_(std::move(name))
{
}

bool
Workload::next(MicroOp &op)
{
    // Workload streams are unbounded; the consumer bounds the length.
    unsigned attempts = 0;
    while (!emit_.pop(op)) {
        step();
        ++attempts;
        assert(attempts < 16 && "step() emitted no instructions");
        (void)attempts;
    }
    return true;
}

detail::WorkloadRegistrar::WorkloadRegistrar(WorkloadInfo info)
{
    assert(info.factory != nullptr);
    mutableRegistry().push_back(std::move(info));
}

const std::vector<WorkloadInfo> &
workloadRegistry()
{
    static const std::vector<WorkloadInfo> sorted = [] {
        std::vector<WorkloadInfo> all = mutableRegistry();
        std::sort(all.begin(), all.end(),
                  [](const WorkloadInfo &a, const WorkloadInfo &b) {
                      if (a.rank != b.rank)
                          return a.rank < b.rank;
                      return a.name < b.name;
                  });
        return all;
    }();
    return sorted;
}

bool
isKnownWorkload(const std::string &name)
{
    for (const WorkloadInfo &info : workloadRegistry()) {
        if (info.name == name)
            return true;
    }
    return false;
}

const std::vector<std::string> &
spec95Names()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const WorkloadInfo &info : workloadRegistry()) {
            if (info.spec95)
                out.push_back(info.name);
        }
        return out;
    }();
    return names;
}

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const WorkloadInfo &info : workloadRegistry())
            out.push_back(info.name);
        return out;
    }();
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, uint64_t seed)
{
    for (const WorkloadInfo &info : workloadRegistry()) {
        if (info.name == name)
            return info.factory(seed);
    }
    throw std::invalid_argument("unknown workload: " + name);
}

} // namespace tpred
