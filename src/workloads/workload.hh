/**
 * @file
 * Synthetic benchmark framework standing in for the SPECint95 traces
 * (see DESIGN.md, "Substitutions").
 *
 * Each workload is a small program — an interpreter, a compiler pass
 * pipeline, an LZW coder, a game-tree search — executed step by step;
 * each step emits the dynamic MicroOps of one unit of work.  Streams
 * are unbounded; the consumer decides how many instructions to take.
 */

#ifndef TPRED_WORKLOADS_WORKLOAD_HH
#define TPRED_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "trace/trace_source.hh"
#include "workloads/emitter.hh"

namespace tpred
{

/**
 * Base class: owns the emitter, layout and RNG; subclasses implement
 * step() to advance their program by one unit of work.
 */
class Workload : public TraceSource
{
  public:
    Workload(std::string name, uint64_t seed);

    bool next(MicroOp &op) final;

    std::string name() const override { return name_; }

    /** Base address of this workload's data segment. */
    static constexpr uint64_t kDataBase = 0x10000000;

  protected:
    /** Emits the MicroOps of one unit of work into the emitter. */
    virtual void step() = 0;

    Emitter emit_;
    CodeLayout layout_;
    Rng rng_;

  private:
    std::string name_;
};

/**
 * One registered workload generator.
 *
 * Generators register themselves from their own translation unit via
 * detail::WorkloadRegistrar, so adding a benchmark is one .cc file —
 * no central factory switch to edit.  Listing order is (rank, name):
 * rank 0 = the SPECint95 analogues (alphabetical == the paper's Table 1
 * order), rank 1 = the object-oriented extension, rank 2 = the
 * server-shaped workloads.
 */
struct WorkloadInfo
{
    std::string name;
    std::string description;  ///< one line, shown by --list-workloads
    int rank = 0;
    bool spec95 = false;
    std::unique_ptr<Workload> (*factory)(uint64_t seed) = nullptr;
};

/** Every registered workload, sorted by (rank, name). */
const std::vector<WorkloadInfo> &workloadRegistry();

/** True iff @p name names a registered workload. */
bool isKnownWorkload(const std::string &name);

/**
 * The eight SPECint95 benchmark analogues of the paper's Table 1, in
 * the paper's order.
 */
const std::vector<std::string> &spec95Names();

/** All registered workload names, in registry order. */
const std::vector<std::string> &allWorkloadNames();

/**
 * Factory.
 * @param name One of allWorkloadNames().
 * @param seed Deterministic stream seed.
 * @return The workload; throws std::invalid_argument for unknown names.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       uint64_t seed = 1);

namespace detail
{

/**
 * File-scope static in a generator's .cc; its constructor adds the
 * entry to the registry during static initialization.  The workloads
 * library is an OBJECT library so the linker cannot drop these.
 */
struct WorkloadRegistrar
{
    explicit WorkloadRegistrar(WorkloadInfo info);
};

} // namespace detail

} // namespace tpred

#endif // TPRED_WORKLOADS_WORKLOAD_HH
