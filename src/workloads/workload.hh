/**
 * @file
 * Synthetic benchmark framework standing in for the SPECint95 traces
 * (see DESIGN.md, "Substitutions").
 *
 * Each workload is a small program — an interpreter, a compiler pass
 * pipeline, an LZW coder, a game-tree search — executed step by step;
 * each step emits the dynamic MicroOps of one unit of work.  Streams
 * are unbounded; the consumer decides how many instructions to take.
 */

#ifndef TPRED_WORKLOADS_WORKLOAD_HH
#define TPRED_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "trace/trace_source.hh"
#include "workloads/emitter.hh"

namespace tpred
{

/**
 * Base class: owns the emitter, layout and RNG; subclasses implement
 * step() to advance their program by one unit of work.
 */
class Workload : public TraceSource
{
  public:
    Workload(std::string name, uint64_t seed);

    bool next(MicroOp &op) final;

    std::string name() const override { return name_; }

    /** Base address of this workload's data segment. */
    static constexpr uint64_t kDataBase = 0x10000000;

  protected:
    /** Emits the MicroOps of one unit of work into the emitter. */
    virtual void step() = 0;

    Emitter emit_;
    CodeLayout layout_;
    Rng rng_;

  private:
    std::string name_;
};

/**
 * The eight SPECint95 benchmark analogues of the paper's Table 1, in
 * the paper's order.
 */
const std::vector<std::string> &spec95Names();

/** All workloads, including the C++-virtual-dispatch extension. */
const std::vector<std::string> &allWorkloadNames();

/**
 * Factory.
 * @param name One of allWorkloadNames().
 * @param seed Deterministic stream seed.
 * @return The workload; throws std::invalid_argument for unknown names.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       uint64_t seed = 1);

} // namespace tpred

#endif // TPRED_WORKLOADS_WORKLOAD_HH
