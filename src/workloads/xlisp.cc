/**
 * @file
 * xlisp analogue: a recursive s-expression evaluator over a fixed pool
 * of expression trees, plus a periodic mark/sweep garbage collection
 * phase.  The eval dispatch sees the trees' DFS node-type sequences —
 * periodic, hence history-predictable — with node-type runs that let a
 * last-target BTB do moderately well (paper Table 1: 20.7%).
 */

#include "workloads/workload.hh"

#include <array>

namespace tpred
{

namespace
{

/** Node types of the interpreted language. */
enum NodeType : uint8_t
{
    kNum, kSym, kStr, kCons, kIf, kLambda, kSetq, kCar, kCdr, kArith,
    kNumNodeTypes,
};

struct Node
{
    uint8_t type = kNum;
    std::vector<int> kids;  ///< child node indices, evaluated in order
};

class XlispWorkload final : public Workload
{
  public:
    explicit XlispWorkload(uint64_t seed)
        : Workload("xlisp", seed)
    {
        replLoopPc_ = layout_.alloc(8);
        evalFnPc_ = layout_.alloc(24);
        for (auto &pc : typeHandlerPc_)
            pc = layout_.alloc(28);
        gcMarkPc_ = layout_.alloc(16);
        gcSweepPc_ = layout_.alloc(16);
        consFnPc_ = layout_.alloc(12);

        buildTrees();
    }

  private:
    static constexpr unsigned kNumTrees = 8;
    static constexpr unsigned kGcPeriod = 40;  ///< evals between GCs
    static constexpr uint64_t kHeap = kDataBase;
    static constexpr uint64_t kHeapSpan = 128 * 1024;

    /** Builds the fixed expression-tree pool. */
    void
    buildTrees()
    {
        for (auto &tree : trees_) {
            tree.clear();
            // Each tree prefers a small set of inner node types, so
            // the eval dispatch sees type runs (the BTB-friendly
            // behaviour behind xlisp's moderate Table 1 rate).
            preferred_[0] = kArith;  // argument lists => leaf runs
            preferred_[1] = static_cast<uint8_t>(kCons + rng_.below(7));
            buildNode(tree, 0, 4);
        }
    }

    /**
     * Recursively builds one subtree (children first, so the root ends
     * up last); returns the subtree's node index.
     */
    int
    buildNode(std::vector<Node> &tree, unsigned depth, unsigned max_depth)
    {
        Node node;
        if (depth >= max_depth || rng_.chance(0.3)) {
            // Leaves: NUM-heavy so type runs occur (BTB-friendly runs).
            node.type = rng_.chance(0.9)
                            ? static_cast<uint8_t>(kNum)
                            : static_cast<uint8_t>(
                                  rng_.chance(0.5) ? kSym : kStr);
        } else {
            static constexpr std::array<uint8_t, 7> inner = {
                kCons, kIf, kLambda, kSetq, kCar, kCdr, kArith,
            };
            node.type = rng_.chance(0.7)
                            ? preferred_[rng_.below(2)]
                            : inner[rng_.below(inner.size())];
            unsigned kid_count;
            if (node.type == kCar || node.type == kCdr) {
                kid_count = 1;
            } else if (node.type == kArith || node.type == kSetq) {
                // Argument lists: runs of (mostly NUM) leaves, the
                // source of the type runs a last-target BTB exploits.
                kid_count = 4 + static_cast<unsigned>(rng_.below(4));
            } else {
                kid_count = 2;
            }
            for (unsigned k = 0; k < kid_count; ++k) {
                const unsigned kid_depth =
                    (node.type == kArith || node.type == kSetq)
                        ? max_depth  // argument lists hold leaves
                        : depth + 1;
                node.kids.push_back(
                    buildNode(tree, kid_depth, max_depth));
            }
        }
        tree.push_back(node);
        return static_cast<int>(tree.size()) - 1;
    }

    void
    step() override
    {
        // REPL loop: evaluate one expression tree.
        emit_.setPc(replLoopPc_);
        emit_.intOps(2);
        emit_.load(kHeap + treeIdx_ * 0x1000);
        emit_.call(evalFnPc_);
        const auto &tree = trees_[treeIdx_];
        emitEval(tree, static_cast<int>(tree.size()) - 1);

        // GC check: periodic, entered through a real branch.
        ++evalCount_;
        emit_.intOps(1);
        const bool gc = evalCount_ % kGcPeriod == 0;
        emit_.condBranch(gcMarkPc_, gc);
        if (gc)
            emitGc();  // ends with a jump back to the REPL loop
        else
            emit_.jump(replLoopPc_);

        // Mostly cycle through the pool; occasional random pick.
        if (rng_.chance(0.9))
            treeIdx_ = (treeIdx_ + 1) % kNumTrees;
        else
            treeIdx_ = static_cast<unsigned>(rng_.below(kNumTrees));
    }

    /** Recursive eval: dispatch on the node type, then children. */
    void
    emitEval(const std::vector<Node> &tree, int idx)
    {
        const Node &node = tree[static_cast<size_t>(idx)];
        emit_.setPc(evalFnPc_);
        emit_.intOps(1);
        emit_.load(kHeap + (static_cast<uint64_t>(idx) * 24) %
                               kHeapSpan);
        emit_.indirectJump(typeHandlerPc_[node.type], node.type);

        // Handler body.
        emit_.aluMix(3, kHeap, kHeapSpan);
        emit_.condBranch(emit_.pc() + 8, (node.type & 1) != 0);
        if ((node.type & 1) == 0)
            emit_.op(InstClass::Integer);

        // Inner nodes evaluate children recursively.  All children go
        // through one loop whose recursive call site is static per
        // handler; the loop-closing branch count varies with arity.
        if (!node.kids.empty()) {
            const uint64_t kid_loop = emit_.pc();
            for (size_t k = 0; k < node.kids.size(); ++k) {
                emit_.call(evalFnPc_);
                emitEval(tree, node.kids[k]);
                emit_.condBranch(kid_loop, k + 1 < node.kids.size());
            }
        }
        // CONS allocates.
        if (node.type == kCons) {
            emit_.call(consFnPc_);
            emit_.intOps(2);
            emit_.store(kHeap + (allocPtr_ % kHeapSpan));
            emit_.store(kHeap + ((allocPtr_ + 8) % kHeapSpan));
            emit_.ret();
            allocPtr_ += 16;
        }
        emit_.ret();
    }

    /** Mark/sweep GC: branchy loops, no indirect jumps. */
    void
    emitGc()
    {
        emit_.setPc(gcMarkPc_);
        emit_.intOps(1);
        const uint64_t mark_loop = emit_.pc();
        for (unsigned i = 0; i < 12; ++i) {
            emit_.load(kHeap + ((allocPtr_ + i * 16) % kHeapSpan));
            const bool live = rng_.chance(0.7);
            emit_.condBranch(emit_.pc() + 12, !live);
            if (live) {
                emit_.store(kHeap + ((allocPtr_ + i * 16) % kHeapSpan));
                emit_.op(InstClass::BitField);
            }
            emit_.condBranch(mark_loop, i + 1 < 12);
        }
        emit_.jump(gcSweepPc_);
        emit_.intOps(1);
        const uint64_t sweep_loop = emit_.pc();
        for (unsigned i = 0; i < 8; ++i) {
            emit_.load(kHeap + (i * 64) % kHeapSpan);
            emit_.op(InstClass::Integer);
            emit_.condBranch(sweep_loop, i + 1 < 8);
        }
        emit_.jump(replLoopPc_);
    }

    std::array<std::vector<Node>, kNumTrees> trees_{};
    std::array<uint8_t, 2> preferred_{};
    unsigned treeIdx_ = 0;
    uint64_t evalCount_ = 0;
    uint64_t allocPtr_ = 0;

    uint64_t replLoopPc_ = 0;
    uint64_t evalFnPc_ = 0;
    std::array<uint64_t, kNumNodeTypes> typeHandlerPc_{};
    uint64_t gcMarkPc_ = 0;
    uint64_t gcSweepPc_ = 0;
    uint64_t consFnPc_ = 0;
};

const detail::WorkloadRegistrar registered{{
    "xlisp",
    "recursive s-expression evaluator with periodic mark/sweep GC",
    0, true,
    [](uint64_t seed) -> std::unique_ptr<Workload> {
        return std::make_unique<XlispWorkload>(seed);
    }}};

} // namespace

} // namespace tpred
