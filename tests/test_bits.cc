/** @file Unit tests for the bit-manipulation helpers. */

#include <gtest/gtest.h>

#include "common/bits.hh"

namespace tpred
{
namespace
{

TEST(Bits, MaskBasics)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(32), 0xffffffffull);
    EXPECT_EQ(mask(64), ~uint64_t{0});
}

TEST(Bits, MaskAbove64IsSaturated)
{
    EXPECT_EQ(mask(65), ~uint64_t{0});
    EXPECT_EQ(mask(255), ~uint64_t{0});
}

TEST(Bits, BitsExtractsField)
{
    EXPECT_EQ(bits(0xabcd, 0, 4), 0xdu);
    EXPECT_EQ(bits(0xabcd, 4, 4), 0xcu);
    EXPECT_EQ(bits(0xabcd, 8, 8), 0xabu);
    EXPECT_EQ(bits(0xffffffffffffffffull, 60, 4), 0xfu);
}

TEST(Bits, BitsZeroWidth)
{
    EXPECT_EQ(bits(0xffff, 3, 0), 0u);
}

TEST(Bits, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
    EXPECT_FALSE(isPowerOfTwo((1ull << 63) + 1));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(Bits, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1023), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bits, FoldXorPreservesLowBitsWhenNarrow)
{
    // Value fits in n bits: folding is the identity.
    EXPECT_EQ(foldXor(0x1f, 5), 0x1fu);
    EXPECT_EQ(foldXor(0, 8), 0u);
}

TEST(Bits, FoldXorReducesWideValues)
{
    // 0xab ^ 0xcd for an 8-bit fold of 0xabcd.
    EXPECT_EQ(foldXor(0xabcd, 8), uint64_t{0xab ^ 0xcd});
    EXPECT_EQ(foldXor(0xffff, 8), 0u);
    // Zero-width fold collapses everything to 0.
    EXPECT_EQ(foldXor(0x1234, 0), 0u);
}

TEST(Bits, FoldXorDistinguishesHighBitChanges)
{
    // Two values differing only above bit n must fold differently
    // (that is the point of folding instead of truncating).
    EXPECT_NE(foldXor(0x100, 8), foldXor(0x200, 8));
}

} // namespace
} // namespace tpred
