/** @file Unit tests for the branch target buffer. */

#include <gtest/gtest.h>

#include "bpred/btb.hh"
#include "test_util.hh"

namespace tpred
{
namespace
{

BtbConfig
smallBtb(BtbUpdateStrategy strategy = BtbUpdateStrategy::Default)
{
    BtbConfig config;
    config.sets = 4;
    config.ways = 2;
    config.strategy = strategy;
    return config;
}

TEST(Btb, MissOnEmpty)
{
    Btb btb(smallBtb());
    EXPECT_FALSE(btb.lookup(0x100).has_value());
    EXPECT_EQ(btb.validEntries(), 0u);
}

TEST(Btb, HitAfterUpdate)
{
    Btb btb(smallBtb());
    btb.update(test::indirectOp(0x100, 0x2000));
    auto pred = btb.lookup(0x100);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->target, 0x2000u);
    EXPECT_EQ(pred->kind, BranchKind::IndirectJump);
    EXPECT_EQ(pred->fallthrough, 0x104u);
}

TEST(Btb, LastComputedTargetForIndirect)
{
    // The paper's baseline behaviour: the stored target is whatever
    // the jump last went to.
    Btb btb(smallBtb());
    btb.update(test::indirectOp(0x100, 0x2000));
    btb.update(test::indirectOp(0x100, 0x3000));
    EXPECT_EQ(btb.lookup(0x100)->target, 0x3000u);
}

TEST(Btb, NotTakenCondKeepsTarget)
{
    Btb btb(smallBtb());
    btb.update(test::branchOp(0x100, BranchKind::CondDirect, 0x2000));
    btb.update(test::branchOp(0x100, BranchKind::CondDirect, 0x2000,
                              /*taken=*/false));
    EXPECT_EQ(btb.lookup(0x100)->target, 0x2000u);
}

TEST(Btb, AllocatingNotTakenBranchStoresNoTarget)
{
    Btb btb(smallBtb());
    btb.update(test::branchOp(0x100, BranchKind::CondDirect, 0x2000,
                              /*taken=*/false));
    auto pred = btb.lookup(0x100);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->target, 0u);
}

TEST(Btb, TwoBitStrategyNeedsTwoConsecutiveMisses)
{
    // Calder/Grunwald: replace the target only after two consecutive
    // mispredictions with that target.
    Btb btb(smallBtb(BtbUpdateStrategy::TwoBit));
    btb.update(test::indirectOp(0x100, 0x2000));
    // First disagreement: target kept.
    btb.update(test::indirectOp(0x100, 0x3000));
    EXPECT_EQ(btb.lookup(0x100)->target, 0x2000u);
    // Second consecutive disagreement: target replaced.
    btb.update(test::indirectOp(0x100, 0x3000));
    EXPECT_EQ(btb.lookup(0x100)->target, 0x3000u);
}

TEST(Btb, TwoBitStrategyStreakResetsOnAgreement)
{
    Btb btb(smallBtb(BtbUpdateStrategy::TwoBit));
    btb.update(test::indirectOp(0x100, 0x2000));
    btb.update(test::indirectOp(0x100, 0x3000));  // streak 1
    btb.update(test::indirectOp(0x100, 0x2000));  // agreement resets
    btb.update(test::indirectOp(0x100, 0x3000));  // streak 1 again
    EXPECT_EQ(btb.lookup(0x100)->target, 0x2000u);
}

TEST(Btb, SetConflictEvictsLru)
{
    // 4 sets x 2 ways; pcs 0x100, 0x140, 0x180 share set index
    // ((pc>>2) & 3): 0x100 -> 0, 0x110 -> 0 ... use stride 0x40.
    Btb btb(smallBtb());
    btb.update(test::indirectOp(0x100, 0x1));
    btb.update(test::indirectOp(0x140, 0x2));
    // Touch 0x100 so 0x140 becomes LRU.
    EXPECT_TRUE(btb.lookup(0x100).has_value());
    btb.update(test::indirectOp(0x180, 0x3));
    EXPECT_TRUE(btb.lookup(0x100).has_value());
    EXPECT_FALSE(btb.lookup(0x140).has_value());
    EXPECT_TRUE(btb.lookup(0x180).has_value());
}

TEST(Btb, DistinctSetsDoNotConflict)
{
    Btb btb(smallBtb());
    for (uint64_t pc = 0x100; pc < 0x120; pc += 4)
        btb.update(test::indirectOp(pc, pc + 0x1000));
    // 8 branches over 4 sets x 2 ways: all should fit.
    EXPECT_EQ(btb.validEntries(), 8u);
    for (uint64_t pc = 0x100; pc < 0x120; pc += 4)
        EXPECT_TRUE(btb.lookup(pc).has_value()) << std::hex << pc;
}

TEST(Btb, KindIsRefreshed)
{
    Btb btb(smallBtb());
    btb.update(test::branchOp(0x100, BranchKind::Call, 0x2000));
    EXPECT_EQ(btb.lookup(0x100)->kind, BranchKind::Call);
}

TEST(Btb, PaperConfigHolds1KEntries)
{
    BtbConfig config;  // 256 sets x 4 ways
    EXPECT_EQ(config.entries(), 1024u);
}

} // namespace
} // namespace tpred
