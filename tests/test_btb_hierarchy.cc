/**
 * @file
 * BTB hierarchy tests: the single-level adapter's bit-identity with
 * the raw Btb, two-level prefetch/victim/exclusivity mechanics, the
 * peek==lookup contract, save/restore round-trips, and the explicit
 * counter-crediting discipline.
 */

#include <gtest/gtest.h>

#include "bpred/btb_hierarchy.hh"
#include "common/rng.hh"
#include "common/state_io.hh"
#include "obs/metrics.hh"
#include "test_util.hh"

namespace tpred
{
namespace
{

/** Tiny two-level geometry: 2x2 L1 in front of a 4x2 L2. */
BtbHierarchyConfig
tinyTwoLevel(unsigned penalty = 3)
{
    BtbHierarchyConfig config;
    config.l1 = {2, 2, BtbUpdateStrategy::Default};
    config.twoLevel = true;
    config.l2 = {4, 2, BtbUpdateStrategy::Default};
    config.missPenalty = penalty;
    return config;
}

TEST(BtbHierarchy, DescribeNamesBothShapes)
{
    EXPECT_EQ(BtbHierarchyConfig{}.describe(), "btb256x4");
    BtbHierarchyConfig two_bit;
    two_bit.l1.strategy = BtbUpdateStrategy::TwoBit;
    EXPECT_EQ(two_bit.describe(), "btb256x4-2bit");
    EXPECT_EQ(tinyTwoLevel().describe(), "l1-2x2+l2-4x2p3");
}

TEST(BtbHierarchy, StorageBitsSumsLevels)
{
    BtbHierarchyConfig single;
    const uint64_t one_level = single.storageBits();
    EXPECT_GT(one_level, 0u);
    BtbHierarchyConfig two = single;
    two.twoLevel = true;
    EXPECT_GT(two.storageBits(), one_level);
}

TEST(BtbHierarchy, FactorySelectsImplementation)
{
    auto single = makeBtbHierarchy({});
    EXPECT_FALSE(single->config().twoLevel);
    auto two = makeBtbHierarchy(tinyTwoLevel());
    EXPECT_TRUE(two->config().twoLevel);
    EXPECT_EQ(two->config().missPenalty, 3u);
}

TEST(BtbHierarchy, SingleLevelMissHasNoBubble)
{
    auto btb = makeBtbHierarchy({});
    const BtbProbe probe = btb->lookup(0x100);
    EXPECT_FALSE(probe.pred.has_value());
    EXPECT_EQ(probe.bubbleCycles, 0u);
    EXPECT_EQ(btb->hstats().l1Misses, 1u);
    EXPECT_EQ(btb->hstats().l1Hits, 0u);
}

/**
 * The adapter must be a transparent wrapper: same predictions on the
 * same probe/update stream as the raw Btb, and byte-identical
 * checkpoints (PR-6 checkpoint archives predate the hierarchy API).
 */
TEST(BtbHierarchy, SingleLevelMatchesRawBtbBitForBit)
{
    BtbHierarchyConfig config;
    config.l1 = {8, 2, BtbUpdateStrategy::TwoBit};
    auto hier = makeBtbHierarchy(config);
    Btb raw(config.l1);

    Rng rng(42);
    for (unsigned i = 0; i < 4000; ++i) {
        const uint64_t pc = 0x1000 + rng.below(256) * 4;
        const uint64_t target = 0x8000 + rng.below(16) * 0x40;
        const BtbProbe probe = hier->lookup(pc);
        const auto expect = raw.lookup(pc);
        ASSERT_EQ(probe.pred.has_value(), expect.has_value()) << i;
        if (expect) {
            EXPECT_EQ(probe.pred->target, expect->target);
            EXPECT_EQ(probe.pred->kind, expect->kind);
        }
        EXPECT_EQ(probe.bubbleCycles, 0u);
        const MicroOp op = test::indirectOp(pc, target);
        hier->update(op);
        raw.update(op);
    }
    EXPECT_EQ(hier->validEntries(), raw.validEntries());

    StateWriter hier_bytes, raw_bytes;
    hier->saveState(hier_bytes);
    raw.saveState(raw_bytes);
    EXPECT_EQ(hier_bytes.bytes(), raw_bytes.bytes());
}

TEST(BtbHierarchy, AllocationGoesToL1)
{
    auto btb = makeBtbHierarchy(tinyTwoLevel());
    btb->update(test::indirectOp(0x100, 0x2000));
    const BtbProbe probe = btb->lookup(0x100);
    ASSERT_TRUE(probe.pred.has_value());
    EXPECT_EQ(probe.pred->target, 0x2000u);
    EXPECT_EQ(probe.bubbleCycles, 0u);  // L1 hit: no fetch bubble
    EXPECT_EQ(btb->hstats().l1Hits, 1u);
}

TEST(BtbHierarchy, VictimMovesToL2AndPrefetchesBack)
{
    // L1 set 0 holds 2 ways; pcs 0x100/0x108/0x110 all map to it
    // ((pc >> 2) & 1 == 0).
    auto btb = makeBtbHierarchy(tinyTwoLevel());
    btb->update(test::indirectOp(0x100, 0x1000));
    btb->update(test::indirectOp(0x108, 0x2000));
    btb->update(test::indirectOp(0x110, 0x3000));  // evicts LRU 0x100
    EXPECT_EQ(btb->hstats().victims, 1u);
    EXPECT_EQ(btb->validEntries(), 3u);  // nothing was lost

    // The victim is still predictable — from L2, missPenalty late.
    const BtbProbe demoted = btb->lookup(0x100);
    ASSERT_TRUE(demoted.pred.has_value());
    EXPECT_EQ(demoted.pred->target, 0x1000u);
    EXPECT_EQ(demoted.bubbleCycles, 3u);
    EXPECT_EQ(btb->hstats().l2Hits, 1u);
    EXPECT_EQ(btb->hstats().prefetches, 1u);

    // The L2 hit promoted it: the re-probe is a zero-bubble L1 hit,
    // and the hierarchy stayed exclusive (still one copy per entry).
    const BtbProbe promoted = btb->lookup(0x100);
    ASSERT_TRUE(promoted.pred.has_value());
    EXPECT_EQ(promoted.bubbleCycles, 0u);
    EXPECT_EQ(btb->validEntries(), 3u);
}

TEST(BtbHierarchy, PromotionDemotesTheDisplacedL1Entry)
{
    auto btb = makeBtbHierarchy(tinyTwoLevel());
    btb->update(test::indirectOp(0x100, 0x1000));
    btb->update(test::indirectOp(0x108, 0x2000));
    btb->update(test::indirectOp(0x110, 0x3000));  // 0x100 -> L2
    (void)btb->lookup(0x100);  // promote back; displaces an L1 entry
    EXPECT_EQ(btb->hstats().victims, 2u);
    // Every one of the three entries must still resolve somewhere.
    for (uint64_t pc : {0x100ull, 0x108ull, 0x110ull})
        EXPECT_TRUE(btb->lookup(pc).pred.has_value())
            << std::hex << pc;
    EXPECT_EQ(btb->validEntries(), 3u);
}

TEST(BtbHierarchy, UpdateTrainsInPlaceInL2)
{
    auto btb = makeBtbHierarchy(tinyTwoLevel());
    btb->update(test::indirectOp(0x100, 0x1000));
    btb->update(test::indirectOp(0x108, 0x2000));
    btb->update(test::indirectOp(0x110, 0x3000));  // 0x100 -> L2
    // Resolution-time retrain without a fetch-time probe: the entry
    // must be updated where it lives, not duplicated into L1.
    btb->update(test::indirectOp(0x100, 0x4000));
    EXPECT_EQ(btb->validEntries(), 3u);
    const BtbProbe probe = btb->lookup(0x100);
    ASSERT_TRUE(probe.pred.has_value());
    EXPECT_EQ(probe.pred->target, 0x4000u);
    EXPECT_EQ(probe.bubbleCycles, 3u);  // it was still L2-resident
}

TEST(BtbHierarchy, PeekMatchesLookupWithoutSideEffects)
{
    auto btb = makeBtbHierarchy(tinyTwoLevel());
    Rng rng(7);
    for (unsigned i = 0; i < 2000; ++i) {
        const uint64_t pc = 0x100 + rng.below(32) * 4;
        const BtbProbe peeked = btb->peek(pc);
        const BtbProbe again = btb->peek(pc);  // peek is idempotent
        EXPECT_EQ(peeked.pred.has_value(), again.pred.has_value());
        EXPECT_EQ(peeked.bubbleCycles, again.bubbleCycles);
        const BtbProbe probed = btb->lookup(pc);
        ASSERT_EQ(peeked.pred.has_value(), probed.pred.has_value())
            << "probe " << i;
        if (probed.pred) {
            EXPECT_EQ(peeked.pred->target, probed.pred->target);
            EXPECT_EQ(peeked.pred->kind, probed.pred->kind);
        }
        EXPECT_EQ(peeked.bubbleCycles, probed.bubbleCycles);
        if (rng.chance(0.7))
            btb->update(test::indirectOp(pc, 0x8000 + rng.below(8) *
                                                      0x40));
    }
}

TEST(BtbHierarchy, TwoLevelSaveRestoreRoundTrips)
{
    auto btb = makeBtbHierarchy(tinyTwoLevel());
    Rng rng(11);
    for (unsigned i = 0; i < 500; ++i) {
        const uint64_t pc = 0x100 + rng.below(24) * 4;
        (void)btb->lookup(pc);
        btb->update(test::indirectOp(pc, 0x8000 + rng.below(8) * 0x40));
    }
    StateWriter w;
    btb->saveState(w);
    const std::vector<uint8_t> bytes = w.bytes();

    auto restored = makeBtbHierarchy(tinyTwoLevel());
    StateReader r(bytes);
    restored->restoreState(r);
    EXPECT_EQ(restored->validEntries(), btb->validEntries());
    for (uint64_t pc = 0x100; pc < 0x100 + 24 * 4; pc += 4) {
        const BtbProbe a = btb->peek(pc);
        const BtbProbe b = restored->peek(pc);
        ASSERT_EQ(a.pred.has_value(), b.pred.has_value())
            << std::hex << pc;
        if (a.pred) {
            EXPECT_EQ(a.pred->target, b.pred->target);
            EXPECT_EQ(a.pred->kind, b.pred->kind);
        }
        EXPECT_EQ(a.bubbleCycles, b.bubbleCycles);
    }

    // The restored copy must also evolve identically.
    StateWriter w2, w3;
    btb->update(test::indirectOp(0x100, 0x9000));
    restored->update(test::indirectOp(0x100, 0x9000));
    btb->saveState(w2);
    restored->saveState(w3);
    EXPECT_EQ(w2.bytes(), w3.bytes());
}

TEST(BtbHierarchy, RestoreDoesNotInheritProbeAccounting)
{
    auto btb = makeBtbHierarchy(tinyTwoLevel());
    (void)btb->lookup(0x100);
    StateWriter w;
    btb->saveState(w);
    auto restored = makeBtbHierarchy(tinyTwoLevel());
    StateReader r(w.bytes());
    restored->restoreState(r);
    // hstats describe work done by *this* instance, not architectural
    // state: a restored fork must not re-report its parent's probes.
    EXPECT_EQ(restored->hstats().l1Misses, 0u);
    EXPECT_EQ(restored->hstats().l1Hits, 0u);
}

TEST(BtbHierarchy, CreditBtbCountersIsExplicitAndAdditive)
{
    auto btb = makeBtbHierarchy(tinyTwoLevel());
    const obs::MetricsSnapshot before = obs::globalMetrics().snapshot();
    (void)btb->lookup(0x100);  // miss
    btb->update(test::indirectOp(0x100, 0x1000));
    (void)btb->lookup(0x100);  // hit
    // No registry traffic until the experiment layer credits.
    const obs::MetricsSnapshot mid = obs::globalMetrics().snapshot();
    EXPECT_EQ(obs::snapshotDelta(before, mid).counters.count("btb.l1_hits"),
              0u);
    creditBtbCounters(btb->hstats());
    const obs::MetricsSnapshot after = obs::globalMetrics().snapshot();
    const auto delta = obs::snapshotDelta(before, after).counters;
    EXPECT_EQ(delta.at("btb.l1_hits"), 1u);
    EXPECT_EQ(delta.at("btb.l1_misses"), 1u);
}

} // namespace
} // namespace tpred
