/** @file Unit tests for the cascaded predictor extension. */

#include <gtest/gtest.h>

#include "core/cascaded.hh"

namespace tpred
{
namespace
{

CascadedConfig
smallCascade()
{
    CascadedConfig config;
    config.stage1Entries = 16;
    config.stage2.entries = 64;
    config.stage2.ways = 4;
    return config;
}

TEST(Cascaded, MissOnEmpty)
{
    CascadedPredictor pred(smallCascade());
    EXPECT_FALSE(pred.predict(0x100, 0).has_value());
}

TEST(Cascaded, MonomorphicServedByStage1)
{
    CascadedPredictor pred(smallCascade());
    pred.update(0x100, 0b01, 0x2000);
    // Different history, same target: stage 1 covers it.
    EXPECT_EQ(pred.predict(0x100, 0b10).value(), 0x2000u);
}

TEST(Cascaded, PolymorphicEscalatesToStage2)
{
    CascadedPredictor pred(smallCascade());
    // Alternating targets keyed by history.
    for (int i = 0; i < 4; ++i) {
        pred.update(0x100, 0b01, 0x2000);
        pred.update(0x100, 0b10, 0x3000);
    }
    EXPECT_EQ(pred.predict(0x100, 0b01).value(), 0x2000u);
    EXPECT_EQ(pred.predict(0x100, 0b10).value(), 0x3000u);
}

TEST(Cascaded, FilteredAllocationKeepsMonomorphicOutOfStage2)
{
    CascadedPredictor pred(smallCascade());
    // A stable jump trained repeatedly with many histories...
    for (uint64_t h = 0; h < 16; ++h)
        pred.update(0x100, h, 0x2000);
    // ...should be covered without consuming stage-2 share.
    (void)pred.predict(0x100, 99);
    EXPECT_LT(pred.stage2Share(), 0.5);
}

TEST(Cascaded, Stage1Conflict)
{
    // Two jumps aliasing the same stage-1 slot: the tag rejects the
    // stale entry rather than cross-predicting.
    CascadedConfig config = smallCascade();
    config.stage1Entries = 1;
    CascadedPredictor pred(config);
    pred.update(0x100, 0, 0x2000);
    pred.update(0x900, 0, 0x3000);
    // 0x100's stage-1 slot was stolen; prediction must not be 0x3000
    // unless it came from a correct structure.
    auto p = pred.predict(0x100, 0);
    if (p.has_value()) {
        EXPECT_NE(*p, 0x3000u);
    }
}

TEST(Cascaded, DescribeAndCost)
{
    CascadedPredictor pred(smallCascade());
    EXPECT_NE(pred.describe().find("cascaded"), std::string::npos);
    EXPECT_GT(pred.costBits(), 0u);
}

} // namespace
} // namespace tpred
