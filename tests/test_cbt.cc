/** @file Unit tests for the case block table (related work, paper §2). */

#include <gtest/gtest.h>

#include "bpred/cbt.hh"

namespace tpred
{
namespace
{

TEST(Cbt, MissOnEmpty)
{
    CaseBlockTable cbt({16, 2});
    EXPECT_FALSE(cbt.lookup(0x100, 3).has_value());
}

TEST(Cbt, RecordsPerSelectorMapping)
{
    CaseBlockTable cbt({16, 2});
    cbt.update(0x100, 1, 0x1000);
    cbt.update(0x100, 2, 0x2000);
    EXPECT_EQ(cbt.lookup(0x100, 1).value(), 0x1000u);
    EXPECT_EQ(cbt.lookup(0x100, 2).value(), 0x2000u);
    EXPECT_FALSE(cbt.lookup(0x100, 3).has_value());
}

TEST(Cbt, DistinguishesSites)
{
    CaseBlockTable cbt({16, 2});
    cbt.update(0x100, 1, 0x1000);
    cbt.update(0x200, 1, 0x2000);
    EXPECT_EQ(cbt.lookup(0x100, 1).value(), 0x1000u);
    EXPECT_EQ(cbt.lookup(0x200, 1).value(), 0x2000u);
}

TEST(Cbt, UpdateOverwritesExisting)
{
    CaseBlockTable cbt({16, 2});
    cbt.update(0x100, 1, 0x1000);
    cbt.update(0x100, 1, 0x3000);
    EXPECT_EQ(cbt.lookup(0x100, 1).value(), 0x3000u);
}

TEST(Cbt, FetchProbeAbstainsWhenValueUnknown)
{
    // The out-of-order limitation the paper describes: the case-block
    // variable's value usually is not available at fetch.
    CaseBlockTable cbt({16, 2});
    cbt.update(0x100, 1, 0x1000);
    EXPECT_FALSE(cbt.lookupAtFetch(0x100, 1, false).has_value());
    EXPECT_EQ(cbt.lookupAtFetch(0x100, 1, true).value(), 0x1000u);
}

TEST(Cbt, EvictsLruWithinSet)
{
    // 1 set x 2 ways: any third (pc, selector) pair evicts the LRU.
    CaseBlockTable cbt({1, 2});
    cbt.update(0x100, 1, 0x1000);
    cbt.update(0x100, 2, 0x2000);
    EXPECT_TRUE(cbt.lookup(0x100, 1).has_value());  // refresh LRU
    cbt.update(0x100, 3, 0x3000);
    EXPECT_TRUE(cbt.lookup(0x100, 1).has_value());
    EXPECT_FALSE(cbt.lookup(0x100, 2).has_value());
    EXPECT_TRUE(cbt.lookup(0x100, 3).has_value());
}

/** An oracle CBT perfectly predicts a jump-table switch once each case
 *  has been seen — the Kaeli & Emma result. */
TEST(Cbt, OracleBehaviourOnSwitchStream)
{
    CaseBlockTable cbt({64, 4});
    const uint64_t site = 0x400;
    auto target_of = [](uint64_t sel) { return 0x1000 + sel * 0x40; };

    int misses = 0;
    for (int i = 0; i < 1000; ++i) {
        uint64_t sel = static_cast<uint64_t>(i * 7) % 8;
        auto pred = cbt.lookup(site, sel);
        if (!pred || *pred != target_of(sel))
            ++misses;
        cbt.update(site, sel, target_of(sel));
    }
    // Only the 8 compulsory misses.
    EXPECT_EQ(misses, 8);
}

} // namespace
} // namespace tpred
