/**
 * @file
 * Checkpoint round-trip property tests.
 *
 * The sharded-replay machinery (harness/shard_replay.hh) rests on one
 * property: serializing the complete replay state at an arbitrary op
 * boundary, restoring it into a fresh rig, and replaying the rest of
 * the trace is bit-identical to never having stopped.  These tests
 * fuzz that property directly — boundary positions are drawn the way
 * test_core_model_fuzz.cc draws trace shapes — for every predictor
 * family (BTB baseline, tagless, tagged with pattern / path / per-
 * address histories, cascaded, ITTAGE, oracle), both direction
 * schemes (gshare and tournament, which also exercises the RAS and
 * BTB snapshots), and the out-of-order core model.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/state_io.hh"
#include "harness/experiment.hh"
#include "harness/paper_tables.hh"
#include "test_util.hh"
#include "trace/trace_source.hh"
#include "uarch/core_model.hh"

namespace tpred
{
namespace
{

std::vector<MicroOp>
randomTrace(uint64_t seed, size_t length)
{
    Rng rng(seed);
    std::vector<MicroOp> ops;
    ops.reserve(length);
    uint64_t pc = 0x1000;
    std::vector<uint64_t> call_stack;
    for (size_t i = 0; i < length; ++i) {
        const double draw = rng.uniform();
        if (draw < 0.45) {
            MicroOp op = test::plainOp(
                pc, static_cast<InstClass>(rng.below(7)));
            if (op.cls == InstClass::Load ||
                op.cls == InstClass::Store)
                op.memAddr = rng.below(1 << 22);
            op.srcRegs[0] = static_cast<RegIndex>(rng.below(64));
            if (op.cls != InstClass::Store)
                op.dstReg = static_cast<RegIndex>(rng.below(64));
            ops.push_back(op);
            pc += 4;
        } else if (draw < 0.65) {
            const bool taken = rng.chance(0.6);
            const uint64_t target = 0x1000 + rng.below(4096) * 4;
            ops.push_back(test::branchOp(pc, BranchKind::CondDirect,
                                         target, taken));
            pc = taken ? target : pc + 4;
        } else if (draw < 0.80) {
            const uint64_t target = 0x1000 + rng.below(512) * 4;
            ops.push_back(test::indirectOp(pc, target, rng.below(16)));
            pc = target;
        } else if (draw < 0.92 || call_stack.empty()) {
            const uint64_t target = 0x1000 + rng.below(4096) * 4;
            ops.push_back(
                test::branchOp(pc, BranchKind::Call, target));
            call_stack.push_back(pc + 4);
            pc = target;
        } else {
            const uint64_t ret_to = call_stack.back();
            call_stack.pop_back();
            ops.push_back(
                test::branchOp(pc, BranchKind::Return, ret_to));
            pc = ret_to;
        }
    }
    return ops;
}

/** Every predictor family the paper evaluates, by name. */
std::vector<std::pair<std::string, IndirectConfig>>
checkpointConfigs()
{
    return {
        {"btb", baselineConfig()},
        {"tagless-pattern", taglessGshare(patternHistory(9))},
        {"tagless-peraddr", taglessGshare(pathPerAddress(9, 2))},
        {"tagged-xor",
         taggedConfig(TaggedIndexScheme::HistoryXor, 4,
                      patternHistory(9))},
        {"cascaded", cascadedConfig(128, 4)},
        {"ittage", ittageConfig()},
        {"oracle", oracleConfig()},
    };
}

/** Full accuracy-path replay state (mirrors the shard rig). */
struct Rig
{
    PredictorStack stack;
    FrontendPredictor frontend;

    Rig(const IndirectConfig &config, const FrontendConfig &fe)
        : stack(buildStack(config)),
          frontend(fe, stack.predictor.get(), stack.tracker.get())
    {
    }

    std::vector<uint8_t>
    snapshot() const
    {
        StateWriter w;
        frontend.saveState(w);
        if (stack.predictor) {
            stack.predictor->saveState(w);
            stack.tracker->saveState(w);
        }
        return w.take();
    }

    void
    restore(const std::vector<uint8_t> &blob)
    {
        StateReader r(blob);
        frontend.restoreState(r);
        if (stack.predictor) {
            stack.predictor->restoreState(r);
            stack.tracker->restoreState(r);
        }
        r.expectEnd();
    }
};

void
expectStatsEqual(const FrontendStats &a, const FrontendStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.indirectJumps.hits(), b.indirectJumps.hits());
    EXPECT_EQ(a.indirectJumps.total(), b.indirectJumps.total());
    EXPECT_EQ(a.condDirection.hits(), b.condDirection.hits());
    EXPECT_EQ(a.returns.hits(), b.returns.hits());
    EXPECT_EQ(a.btbHits.hits(), b.btbHits.hits());
    EXPECT_EQ(a.allBranches.hits(), b.allBranches.hits());
    EXPECT_EQ(a.allBranches.total(), b.allBranches.total());
}

/** Boundary positions: fixed edges plus fuzzed interior points. */
std::vector<size_t>
fuzzBoundaries(uint64_t seed, size_t n)
{
    Rng rng(seed ^ 0x5eed5eedULL);
    std::vector<size_t> bounds = {0, 1, n - 1, n};
    for (int i = 0; i < 3; ++i)
        bounds.push_back(rng.below(n + 1));
    return bounds;
}

class CheckpointRoundTrip : public ::testing::TestWithParam<uint64_t>
{
};

/**
 * For every family and fuzzed boundary B: replaying [0, B), saving,
 * restoring into a fresh rig and replaying [B, N) must equal one
 * uninterrupted replay — byte-identical final state, equal stats.
 */
TEST_P(CheckpointRoundTrip, AccuracyStateSurvivesSaveRestore)
{
    const uint64_t seed = GetParam();
    const auto ops = randomTrace(seed, 8000);
    for (const auto &[name, config] : checkpointConfigs()) {
        for (const FrontendConfig &fe :
             {FrontendConfig{},
              [] {
                  FrontendConfig t;
                  t.direction = DirectionScheme::Tournament;
                  return t;
              }()}) {
            Rig base(config, fe);
            for (const MicroOp &op : ops)
                base.frontend.onInstruction(op);
            const auto final_state = base.snapshot();

            for (const size_t b : fuzzBoundaries(seed, ops.size())) {
                Rig head(config, fe);
                for (size_t i = 0; i < b; ++i)
                    head.frontend.onInstruction(ops[i]);

                Rig tail(config, fe);
                tail.restore(head.snapshot());
                for (size_t i = b; i < ops.size(); ++i)
                    tail.frontend.onInstruction(ops[i]);

                EXPECT_EQ(tail.snapshot(), final_state)
                    << name << " boundary " << b << " seed " << seed;
                expectStatsEqual(tail.frontend.stats(),
                                 base.frontend.stats());
            }
        }
    }
}

/** Restore must reproduce the exact serialized image (no asymmetric
 *  save/restore drift), at an arbitrary mid-trace point. */
TEST_P(CheckpointRoundTrip, SerializationIsStable)
{
    const uint64_t seed = GetParam();
    const auto ops = randomTrace(seed ^ 0xf00d, 4000);
    for (const auto &[name, config] : checkpointConfigs()) {
        Rig rig(config, FrontendConfig{});
        for (size_t i = 0; i < ops.size() / 2; ++i)
            rig.frontend.onInstruction(ops[i]);
        const auto blob = rig.snapshot();

        Rig copy(config, FrontendConfig{});
        copy.restore(blob);
        EXPECT_EQ(copy.snapshot(), blob) << name << " seed " << seed;
    }
}

/**
 * Core-model analogue: suspend a session at fetched == B, serialize
 * core + front end + predictor + tracker, restore into a fresh rig,
 * resume from the suspension point.  Final state and CoreResult must
 * match an uninterrupted session.
 */
TEST_P(CheckpointRoundTrip, CoreModelStateSurvivesSaveRestore)
{
    const uint64_t seed = GetParam();
    const auto ops = randomTrace(seed ^ 0xc0de, 6000);
    const IndirectConfig config =
        taggedConfig(TaggedIndexScheme::HistoryXor, 4,
                     patternHistory(9));
    CoreParams params;

    struct TRig
    {
        PredictorStack stack;
        FrontendPredictor frontend;
        CoreModel core;

        TRig(const IndirectConfig &c, const CoreParams &p)
            : stack(buildStack(c)),
              frontend(FrontendConfig{}, stack.predictor.get(),
                       stack.tracker.get()),
              core(p)
        {
        }

        std::vector<uint8_t>
        snapshot() const
        {
            StateWriter w;
            core.saveState(w);
            frontend.saveState(w);
            stack.predictor->saveState(w);
            stack.tracker->saveState(w);
            return w.take();
        }

        void
        restore(const std::vector<uint8_t> &blob)
        {
            StateReader r(blob);
            core.restoreState(r);
            frontend.restoreState(r);
            stack.predictor->restoreState(r);
            stack.tracker->restoreState(r);
            r.expectEnd();
        }
    };

    TRig base(config, params);
    {
        VectorTraceSource src(ops);
        base.core.beginSession();
        base.core.runSession(src, base.frontend, 1u << 30,
                             UINT64_MAX);
    }
    const CoreResult expected =
        base.core.endSession(base.frontend);
    const auto final_state = base.snapshot();

    for (const size_t b : fuzzBoundaries(seed, ops.size())) {
        TRig head(config, params);
        VectorTraceSource src(ops);
        head.core.beginSession();
        const bool suspended = head.core.runSession(
            src, head.frontend, 1u << 30, b);
        ASSERT_TRUE(suspended) << "boundary " << b;
        ASSERT_EQ(head.core.totalFetched(), b);

        TRig tail(config, params);
        tail.restore(head.snapshot());
        std::vector<MicroOp> rest(ops.begin() +
                                      static_cast<ptrdiff_t>(b),
                                  ops.end());
        VectorTraceSource rest_src(rest);
        tail.core.runSession(rest_src, tail.frontend, 1u << 30,
                             UINT64_MAX);
        const CoreResult got = tail.core.endSession(tail.frontend);

        EXPECT_EQ(tail.snapshot(), final_state)
            << "boundary " << b << " seed " << seed;
        EXPECT_EQ(got.cycles, expected.cycles) << "boundary " << b;
        EXPECT_EQ(got.instructions, expected.instructions);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u,
                                           12345u));

} // namespace
} // namespace tpred
