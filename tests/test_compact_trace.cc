/**
 * @file
 * CompactTrace tests: lossless round-trip of arbitrary op sequences,
 * the differential suite asserting compact replay is op-for-op
 * identical to legacy vector replay across all 8 workloads x 2 seeds,
 * trace_io byte-identical file round-trips through the columnar form,
 * the branch-index invariant, and the compression-ratio floor.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <sstream>

#include "harness/paper_tables.hh"
#include "trace/compact_trace.hh"
#include "trace/trace_io.hh"
#include "workloads/workload.hh"

namespace tpred
{
namespace
{

/** Field-by-field equality with a readable failure message. */
void
expectOpEq(const MicroOp &a, const MicroOp &b, size_t i)
{
    ASSERT_EQ(a.pc, b.pc) << "op " << i;
    ASSERT_EQ(a.nextPc, b.nextPc) << "op " << i;
    ASSERT_EQ(a.fallthrough, b.fallthrough) << "op " << i;
    ASSERT_EQ(a.memAddr, b.memAddr) << "op " << i;
    ASSERT_EQ(a.selector, b.selector) << "op " << i;
    ASSERT_EQ(a.cls, b.cls) << "op " << i;
    ASSERT_EQ(a.branch, b.branch) << "op " << i;
    ASSERT_EQ(a.taken, b.taken) << "op " << i;
    ASSERT_EQ(a.dstReg, b.dstReg) << "op " << i;
    ASSERT_EQ(a.srcRegs[0], b.srcRegs[0]) << "op " << i;
    ASSERT_EQ(a.srcRegs[1], b.srcRegs[1]) << "op " << i;
}

void
expectRoundTrip(const std::vector<MicroOp> &ops)
{
    const CompactTrace trace = CompactTrace::encode(ops);
    ASSERT_EQ(trace.size(), ops.size());
    const std::vector<MicroOp> decoded = trace.decodeAll();
    ASSERT_EQ(decoded.size(), ops.size());
    for (size_t i = 0; i < ops.size(); ++i)
        expectOpEq(decoded[i], ops[i], i);
}

TEST(CompactTrace, EmptyTrace)
{
    const CompactTrace trace = CompactTrace::encode({});
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_TRUE(trace.decodeAll().empty());
    EXPECT_TRUE(trace.branchPositions().empty());
    MicroOp buf[4];
    CompactTrace::Cursor cur = trace.cursor();
    EXPECT_EQ(cur.fill(buf, 4), 0u);
}

TEST(CompactTrace, RoundTripsCoherentStream)
{
    std::vector<MicroOp> ops;
    uint64_t pc = 0x1000;
    for (int i = 0; i < 1000; ++i) {
        MicroOp op;
        op.pc = pc;
        op.fallthrough = pc + 4;
        if (i % 7 == 3) {
            op.cls = InstClass::Branch;
            op.branch = BranchKind::CondDirect;
            op.taken = i % 2 == 0;
            op.nextPc = op.taken ? pc + 400 : op.fallthrough;
        } else if (i % 31 == 5) {
            op.cls = InstClass::Branch;
            op.branch = BranchKind::IndirectJump;
            op.taken = true;
            op.nextPc = 0x9000 + static_cast<uint64_t>(i % 3) * 64;
            op.selector = static_cast<uint64_t>(i % 3);
        } else {
            op.cls = i % 5 == 0 ? InstClass::Load : InstClass::Integer;
            op.nextPc = op.fallthrough;
            if (op.cls == InstClass::Load)
                op.memAddr = 0x200000 + static_cast<uint64_t>(i) * 8;
            op.dstReg = static_cast<RegIndex>(i % 64);
        }
        op.srcRegs[0] = static_cast<RegIndex>((i * 3) % 64);
        ops.push_back(op);
        pc = op.nextPc;
    }
    expectRoundTrip(ops);
}

TEST(CompactTrace, RoundTripsHostileOps)
{
    // Violate every invariant the encoder optimizes for: incoherent
    // pcs, fallthrough != pc+4, huge deltas, out-of-range registers,
    // memAddr on a non-memory op, selector on a non-branch.
    std::vector<MicroOp> ops;
    MicroOp a;
    a.pc = 0xfffffffffffffff0ull;
    a.nextPc = 8;  // wraps past 2^64
    a.fallthrough = 0x1234;
    a.memAddr = 0xdeadbeefcafeull;
    a.selector = UINT64_MAX;
    a.cls = InstClass::Div;
    a.branch = BranchKind::Return;
    a.taken = false;  // unusual for a CTI
    a.dstReg = -1;
    a.srcRegs = {static_cast<RegIndex>(-300),
                 static_cast<RegIndex>(32767)};
    ops.push_back(a);

    MicroOp b;  // pc does not chain from a.nextPc
    b.pc = 0x40;
    b.nextPc = 0x44;
    b.fallthrough = 0x44;
    b.dstReg = 254;  // escape boundary
    ops.push_back(b);

    MicroOp c;  // all defaults, pc 0 after nonzero stream
    ops.push_back(c);

    expectRoundTrip(ops);
}

TEST(CompactTrace, RegisterEscapeBoundaries)
{
    std::vector<MicroOp> ops;
    for (int reg : {-1, 0, 1, 63, 252, 253, 254, 255, -2, -32768}) {
        MicroOp op;
        op.pc = 0;
        op.nextPc = 4;
        op.fallthrough = 4;
        op.dstReg = static_cast<RegIndex>(reg);
        op.srcRegs[1] = static_cast<RegIndex>(-reg);
        ops.push_back(op);
    }
    expectRoundTrip(ops);
}

TEST(CompactTrace, BranchIndexMatchesOps)
{
    const SharedTrace trace = recordWorkload("perl", 30000);
    const std::vector<MicroOp> ops = trace.decodeOps();
    std::vector<uint32_t> expected;
    for (size_t i = 0; i < ops.size(); ++i)
        if (ops[i].isBranch())
            expected.push_back(static_cast<uint32_t>(i));
    const std::span<const uint32_t> positions =
        trace.compact().branchPositions();
    EXPECT_TRUE(std::equal(positions.begin(), positions.end(),
                           expected.begin(), expected.end()));
}

TEST(CompactTrace, ForEachBranchVisitsExactlyTheBranches)
{
    const SharedTrace trace = recordWorkload("gcc", 25000);
    const std::vector<MicroOp> ops = trace.decodeOps();
    size_t idx = 0;
    trace.compact().forEachBranch([&](const MicroOp &op, size_t pos) {
        while (idx < ops.size() && !ops[idx].isBranch())
            ++idx;
        ASSERT_LT(idx, ops.size());
        ASSERT_EQ(pos, idx);
        expectOpEq(op, ops[idx], pos);
        ++idx;
    });
    while (idx < ops.size() && !ops[idx].isBranch())
        ++idx;
    EXPECT_EQ(idx, ops.size()) << "a branch was never visited";
}

/** forEachBranch must equal a decodeAll filter on any trace. */
void
expectBranchScanMatchesDecode(const std::vector<MicroOp> &ops)
{
    const CompactTrace trace = CompactTrace::encode(ops);
    const std::vector<MicroOp> decoded = trace.decodeAll();
    std::vector<size_t> expected;
    for (size_t i = 0; i < decoded.size(); ++i)
        if (decoded[i].isBranch())
            expected.push_back(i);
    size_t visit = 0;
    trace.forEachBranch([&](const MicroOp &op, size_t pos) {
        ASSERT_LT(visit, expected.size());
        ASSERT_EQ(pos, expected[visit]);
        expectOpEq(op, decoded[pos], pos);
        ++visit;
    });
    EXPECT_EQ(visit, expected.size());
}

TEST(CompactTrace, ForEachBranchFallsBackOnHostileTraces)
{
    // Each violates one precondition of the O(branches) fast scan,
    // forcing the block-decode fallback; results must be identical.
    std::vector<MicroOp> ops;
    uint64_t pc = 0x100;
    auto plain = [&]() {
        MicroOp op;
        op.pc = pc;
        op.nextPc = op.fallthrough = pc + 4;
        pc += 4;
        return op;
    };
    auto branch = [&](BranchKind kind, uint64_t target) {
        MicroOp op;
        op.pc = pc;
        op.fallthrough = pc + 4;
        op.cls = InstClass::Branch;
        op.branch = kind;
        op.taken = true;
        op.nextPc = target;
        pc = target;
        return op;
    };

    // (a) redirect on a non-branch op
    ops = {plain(), plain()};
    ops[0].nextPc = 0x9000;  // redirect, BranchKind::None
    ops[1].pc = 0x9000;
    ops[1].nextPc = ops[1].fallthrough = 0x9004;
    MicroOp tail;
    tail.pc = 0x9004;
    tail.fallthrough = 0x9008;
    tail.cls = InstClass::Branch;
    tail.branch = BranchKind::UncondDirect;
    tail.taken = true;
    tail.nextPc = 0x9100;
    ops.push_back(tail);
    expectBranchScanMatchesDecode(ops);

    // (b) memAddr on a branch
    pc = 0x100;
    ops = {plain(), branch(BranchKind::IndirectJump, 0x4000), plain()};
    ops[1].memAddr = 0xbeef;
    ops[1].selector = 3;
    ops[2].pc = 0x4000;
    ops[2].nextPc = ops[2].fallthrough = 0x4004;
    expectBranchScanMatchesDecode(ops);

    // (c) register escape
    pc = 0x100;
    ops = {plain(), branch(BranchKind::Return, 0x500), plain()};
    ops[0].dstReg = 300;
    ops[2].pc = 0x500;
    ops[2].nextPc = ops[2].fallthrough = 0x504;
    expectBranchScanMatchesDecode(ops);

    // (d) fallthrough override on a branch
    pc = 0x100;
    ops = {branch(BranchKind::CondDirect, 0x300), plain()};
    ops[0].fallthrough = 0x777;
    ops[1].pc = 0x300;
    ops[1].nextPc = ops[1].fallthrough = 0x304;
    expectBranchScanMatchesDecode(ops);

    // (e) fast-scan-eligible but with selector on a non-branch-free
    // mix and a mid-stream discontinuity: exercises the gap formula.
    pc = 0x100;
    ops.clear();
    for (int i = 0; i < 600; ++i)
        ops.push_back(plain());
    ops.push_back(branch(BranchKind::IndirectJump, 0x8000));
    ops.back().selector = 42;
    ops.push_back(plain());
    ops.back().pc = 0x8000;
    ops.back().nextPc = ops.back().fallthrough = 0x8004;
    MicroOp jump;  // discontinuity: pc does not chain
    jump.pc = 0x20000;
    jump.nextPc = jump.fallthrough = 0x20004;
    ops.push_back(jump);
    ops.push_back(branch(BranchKind::CondDirect, 0x20100));
    ops.back().pc = 0x20004;
    ops.back().fallthrough = 0x20008;
    expectBranchScanMatchesDecode(ops);
}

TEST(CompactTrace, CompactReplayMatchesDecodeAll)
{
    const SharedTrace trace = recordWorkload("xlisp", 20000);
    const std::vector<MicroOp> ops = trace.decodeOps();
    CompactReplay replay = trace.replay();
    MicroOp op;
    size_t i = 0;
    while (replay.next(op)) {
        ASSERT_LT(i, ops.size());
        expectOpEq(op, ops[i], i);
        ++i;
    }
    EXPECT_EQ(i, ops.size());
    EXPECT_FALSE(replay.next(op));
}

TEST(CompactTrace, CompressionRatioAtLeast4x)
{
    for (const auto &name : spec95Names()) {
        const SharedTrace trace = recordWorkload(name, 100000);
        const double ratio =
            static_cast<double>(
                CompactTrace::legacyBytes(trace.size())) /
            static_cast<double>(trace.compact().residentBytes());
        EXPECT_GE(ratio, 4.0) << name << " compresses only " << ratio
                              << "x";
    }
}

// --- Differential: compact replay vs legacy vector replay ----------

TEST(CompactDifferential, OpForOpIdenticalAcrossWorkloadsAndSeeds)
{
    constexpr size_t kOps = 20000;
    for (const auto &name : spec95Names()) {
        for (uint64_t seed : {1ull, 2ull}) {
            // Legacy ground truth: drain the generator directly into
            // a vector, bypassing CompactTrace entirely.
            auto workload = makeWorkload(name, seed);
            const std::vector<MicroOp> legacy =
                drainTrace(*workload, kOps);

            const SharedTrace trace = recordWorkload(name, kOps, seed);
            ASSERT_EQ(trace.size(), legacy.size())
                << name << " seed " << seed;

            // Via the virtual shim...
            auto src = trace.open();
            MicroOp op;
            size_t i = 0;
            while (src->next(op)) {
                expectOpEq(op, legacy[i], i);
                ++i;
            }
            ASSERT_EQ(i, legacy.size()) << name << " seed " << seed;

            // ...and via the batch kernel.
            i = 0;
            trace.forEachOp([&](const MicroOp &batch_op) {
                expectOpEq(batch_op, legacy[i], i);
                ++i;
            });
            ASSERT_EQ(i, legacy.size()) << name << " seed " << seed;
        }
    }
}

TEST(CompactDifferential, AccuracyFastPathMatchesVirtualReplay)
{
    for (const auto &name : {"perl", "gcc", "cpp-virtual"}) {
        const SharedTrace trace = recordWorkload(name, 30000);
        for (const IndirectConfig &config :
             {baselineConfig(), taglessGshare(),
              taggedConfig(TaggedIndexScheme::HistoryXor, 4),
              ittageConfig()}) {
            // Ground truth: per-op virtual replay through the shim.
            PredictorStack stack = buildStack(config);
            FrontendPredictor frontend(FrontendConfig{},
                                       stack.predictor.get(),
                                       stack.tracker.get());
            auto src = trace.open();
            MicroOp op;
            while (src->next(op))
                frontend.onInstruction(op);
            const FrontendStats legacy = frontend.stats();

            // Shipped branch-index fast path.
            const FrontendStats fast = runAccuracy(trace, config);
            EXPECT_EQ(fast.instructions, legacy.instructions);
            EXPECT_EQ(fast.allBranches.misses(),
                      legacy.allBranches.misses());
            EXPECT_EQ(fast.allBranches.total(),
                      legacy.allBranches.total());
            EXPECT_EQ(fast.indirectJumps.misses(),
                      legacy.indirectJumps.misses());
            EXPECT_EQ(fast.condDirection.misses(),
                      legacy.condDirection.misses());
            EXPECT_EQ(fast.returns.misses(), legacy.returns.misses());
            EXPECT_EQ(fast.btbHits.hits(), legacy.btbHits.hits());
        }
    }
}

TEST(CompactDifferential, TimingIdenticalThroughBlockReplay)
{
    const SharedTrace trace = recordWorkload("m88ksim", 20000);
    const IndirectConfig config = taglessGshare();

    PredictorStack stack = buildStack(config);
    FrontendPredictor frontend(FrontendConfig{}, stack.predictor.get(),
                               stack.tracker.get());
    CoreModel core({});
    auto src = trace.open();
    const CoreResult legacy = core.run(*src, frontend, trace.size());

    const CoreResult block = runTiming(trace, config);
    EXPECT_EQ(block.cycles, legacy.cycles);
    EXPECT_EQ(block.instructions, legacy.instructions);
    EXPECT_EQ(block.frontend.allBranches.misses(),
              legacy.frontend.allBranches.misses());
    EXPECT_EQ(block.stallCyclesByKind, legacy.stallCyclesByKind);
}

// --- trace_io round-trips through the columnar form ----------------

TEST(CompactTraceIo, FileRoundTripIsByteIdentical)
{
    const SharedTrace trace = recordWorkload("vortex", 15000);

    // file bytes from the original ops...
    std::ostringstream first;
    writeTrace(first, trace.decodeOps(), trace.name());

    // ...reload, re-encode columnar, decode, rewrite.
    std::istringstream in(first.str());
    std::string name;
    const std::vector<MicroOp> loaded = readTrace(in, name);
    EXPECT_EQ(name, trace.name());
    const CompactTrace compact = CompactTrace::encode(loaded);
    std::ostringstream second;
    writeTrace(second, compact.decodeAll(), name);

    EXPECT_EQ(first.str(), second.str());
}

} // namespace
} // namespace tpred
