/** @file Unit tests for the out-of-order timing model. */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "uarch/core_model.hh"

namespace tpred
{
namespace
{

CoreParams
smallCore()
{
    CoreParams params;
    params.width = 4;
    params.window = 32;
    params.fuCount = 4;
    return params;
}

CoreResult
run(std::vector<MicroOp> ops, const CoreParams &params = smallCore())
{
    VectorTraceSource trace(std::move(ops));
    FrontendPredictor frontend{FrontendConfig{}};
    CoreModel core(params);
    return core.run(trace, frontend, 1u << 30);
}

/** Independent single-cycle ops retire at the machine width. */
TEST(CoreModel, IdealThroughputBoundedByWidth)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 4000; ++i) {
        MicroOp op = test::plainOp(0x1000 + i * 4);
        op.srcRegs = {kNoReg, kNoReg};
        op.dstReg = static_cast<RegIndex>(8 + (i % 40));
        ops.push_back(op);
    }
    CoreResult result = run(ops);
    EXPECT_EQ(result.instructions, 4000u);
    EXPECT_GT(result.ipc(), 3.0);
    EXPECT_LE(result.ipc(), 4.0 + 1e-9);
}

/** A serial dependence chain of 1-cycle ops runs at IPC ~1. */
TEST(CoreModel, DependenceChainSerializes)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 2000; ++i) {
        MicroOp op = test::plainOp(0x1000 + i * 4);
        op.srcRegs = {10, kNoReg};
        op.dstReg = 10;  // every op depends on the previous one
        ops.push_back(op);
    }
    CoreResult result = run(ops);
    EXPECT_NEAR(result.ipc(), 1.0, 0.1);
}

/** A chain of divides runs at IPC ~ 1/8. */
TEST(CoreModel, LongLatencyChain)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 500; ++i) {
        MicroOp op = test::plainOp(0x1000 + i * 4, InstClass::Div);
        op.srcRegs = {10, kNoReg};
        op.dstReg = 10;
        ops.push_back(op);
    }
    CoreResult result = run(ops);
    EXPECT_NEAR(result.ipc(), 1.0 / 8.0, 0.02);
}

/** Correctly predicted branches cost nothing beyond the taken-branch
 *  fetch break. */
TEST(CoreModel, PredictedLoopIsCheap)
{
    // A tight loop: 3 ops + backward branch, 200 iterations; gshare
    // learns the all-taken pattern immediately.
    std::vector<MicroOp> ops;
    for (int iter = 0; iter < 200; ++iter) {
        for (int i = 0; i < 3; ++i) {
            MicroOp op = test::plainOp(0x1000 + i * 4);
            op.srcRegs = {kNoReg, kNoReg};
            op.dstReg = static_cast<RegIndex>(8 + i);
            ops.push_back(op);
        }
        ops.push_back(test::branchOp(0x100c, BranchKind::CondDirect,
                                     0x1000, iter + 1 < 200));
    }
    CoreResult result = run(ops);
    // 4 instructions per iteration, 1 fetch group per iteration
    // (taken branch ends the group): IPC approaches 4.
    EXPECT_GT(result.ipc(), 2.5);
}

/** Mispredicted branches cost fetch bubbles. */
TEST(CoreModel, MispredictionsSlowExecution)
{
    auto make_jumps = [](bool alternate) {
        std::vector<MicroOp> ops;
        for (int i = 0; i < 2000; ++i) {
            // Pad so the BTB is warm but targets alternate.
            MicroOp pad = test::plainOp(0x100);
            pad.srcRegs = {kNoReg, kNoReg};
            ops.push_back(pad);
            uint64_t target = alternate && (i & 1) ? 0x5000 : 0x4000;
            ops.push_back(test::indirectOp(0x200, target));
        }
        return ops;
    };
    CoreResult stable = run(make_jumps(false));
    CoreResult alternating = run(make_jumps(true));
    EXPECT_GT(alternating.cycles, stable.cycles * 3 / 2);
}

/** Cache-missing loads cost memory latency. */
TEST(CoreModel, CacheMissesSlowExecution)
{
    auto make_loads = [](uint64_t stride) {
        std::vector<MicroOp> ops;
        for (int i = 0; i < 1000; ++i) {
            MicroOp op = test::plainOp(0x1000 + (i % 8) * 4,
                                       InstClass::Load);
            op.memAddr = 0x100000 + i * stride;
            op.srcRegs = {10, kNoReg};
            op.dstReg = 10;  // serialize on the load results
            ops.push_back(op);
        }
        return ops;
    };
    CoreResult hits = run(make_loads(0));      // same line every time
    CoreResult misses = run(make_loads(4096)); // new set every time
    EXPECT_GT(misses.cycles, hits.cycles * 5);
}

TEST(CoreModel, DrainCompletesAllInstructions)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 37; ++i)
        ops.push_back(test::plainOp(0x1000 + i * 4));
    CoreResult result = run(ops);
    EXPECT_EQ(result.instructions, 37u);
    EXPECT_GT(result.cycles, 0u);
}

TEST(CoreModel, RespectsMaxInstrs)
{
    std::vector<MicroOp> ops(500, test::plainOp(0x100));
    VectorTraceSource trace(ops);
    FrontendPredictor frontend{FrontendConfig{}};
    CoreModel core(smallCore());
    CoreResult result = core.run(trace, frontend, 100);
    EXPECT_GE(result.instructions, 100u);
    EXPECT_LT(result.instructions, 150u);
}

TEST(CoreModel, WindowLimitsInFlight)
{
    // With window 4 and a long-latency head, throughput collapses.
    CoreParams tiny = smallCore();
    tiny.window = 4;
    std::vector<MicroOp> ops;
    for (int i = 0; i < 400; ++i) {
        MicroOp op = test::plainOp(
            0x1000 + i * 4,
            i % 4 == 0 ? InstClass::Div : InstClass::Integer);
        op.srcRegs = {kNoReg, kNoReg};
        op.dstReg = static_cast<RegIndex>(8 + i % 40);
        ops.push_back(op);
    }
    CoreResult small = run(ops, tiny);
    CoreResult big = run(ops);
    EXPECT_GT(big.ipc(), small.ipc() * 1.5);
}

} // namespace
} // namespace tpred
