/**
 * @file
 * Fuzz tests: the timing model must terminate and retire every
 * instruction for arbitrary well-formed traces, including degenerate
 * shapes no workload generator produces.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "test_util.hh"
#include "uarch/core_model.hh"

namespace tpred
{
namespace
{

std::vector<MicroOp>
randomTrace(uint64_t seed, size_t length)
{
    Rng rng(seed);
    std::vector<MicroOp> ops;
    ops.reserve(length);
    uint64_t pc = 0x1000;
    std::vector<uint64_t> call_stack;
    for (size_t i = 0; i < length; ++i) {
        const double draw = rng.uniform();
        if (draw < 0.55) {
            MicroOp op = test::plainOp(
                pc, static_cast<InstClass>(rng.below(7)));
            if (op.cls == InstClass::Load ||
                op.cls == InstClass::Store)
                op.memAddr = rng.below(1 << 22);
            op.srcRegs[0] = static_cast<RegIndex>(rng.below(64));
            op.srcRegs[1] = rng.chance(0.5)
                                ? static_cast<RegIndex>(rng.below(64))
                                : kNoReg;
            if (op.cls != InstClass::Store)
                op.dstReg = static_cast<RegIndex>(rng.below(64));
            ops.push_back(op);
            pc += 4;
        } else if (draw < 0.75) {
            const bool taken = rng.chance(0.6);
            const uint64_t target = 0x1000 + rng.below(4096) * 4;
            ops.push_back(test::branchOp(pc, BranchKind::CondDirect,
                                         target, taken));
            pc = taken ? target : pc + 4;
        } else if (draw < 0.85) {
            const uint64_t target = 0x1000 + rng.below(4096) * 4;
            ops.push_back(test::indirectOp(pc, target, rng.below(16)));
            pc = target;
        } else if (draw < 0.93 || call_stack.empty()) {
            const uint64_t target = 0x1000 + rng.below(4096) * 4;
            ops.push_back(
                test::branchOp(pc, BranchKind::Call, target));
            call_stack.push_back(pc + 4);
            pc = target;
        } else {
            const uint64_t ret_to = call_stack.back();
            call_stack.pop_back();
            ops.push_back(
                test::branchOp(pc, BranchKind::Return, ret_to));
            pc = ret_to;
        }
    }
    return ops;
}

class CoreFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CoreFuzz, TerminatesAndRetiresEverything)
{
    auto ops = randomTrace(GetParam(), 20000);
    VectorTraceSource trace(ops);
    FrontendPredictor frontend{FrontendConfig{}};
    CoreParams params;
    params.width = 4;
    params.window = 32;
    params.fuCount = 4;
    CoreModel core(params);
    CoreResult result = core.run(trace, frontend, 1u << 30);
    EXPECT_EQ(result.instructions, ops.size());
    EXPECT_GT(result.cycles, ops.size() / 4);
    // Sanity ceiling: even all-miss traces finish within a generous
    // per-instruction cycle bound (no livelock).
    EXPECT_LT(result.cycles, ops.size() * 64);
}

TEST_P(CoreFuzz, AccuracyHarnessHandlesArbitraryTraces)
{
    auto ops = randomTrace(GetParam() ^ 0xabcdef, 20000);
    VectorTraceSource trace(ops);
    FrontendPredictor frontend{FrontendConfig{}};
    MicroOp op;
    while (trace.next(op))
        frontend.onInstruction(op);
    const FrontendStats &stats = frontend.stats();
    EXPECT_EQ(stats.instructions, ops.size());
    EXPECT_LE(stats.allBranches.hits(), stats.allBranches.total());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreFuzz,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u,
                                           12345u));

/** Degenerate traces: all branches, deep nesting, single instr. */
TEST(CoreFuzzEdge, AllTakenBranches)
{
    std::vector<MicroOp> ops;
    uint64_t pc = 0x1000;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t target = 0x1000 + ((i * 7919) % 1024) * 4;
        ops.push_back(test::indirectOp(pc, target));
        pc = target;
    }
    VectorTraceSource trace(ops);
    FrontendPredictor frontend{FrontendConfig{}};
    CoreModel core(CoreParams{});
    CoreResult result = core.run(trace, frontend, 1u << 30);
    EXPECT_EQ(result.instructions, 5000u);
}

TEST(CoreFuzzEdge, SingleInstruction)
{
    VectorTraceSource trace({test::plainOp(0x100)});
    FrontendPredictor frontend{FrontendConfig{}};
    CoreModel core(CoreParams{});
    CoreResult result = core.run(trace, frontend, 10);
    EXPECT_EQ(result.instructions, 1u);
    EXPECT_GE(result.cycles, 1u);
}

TEST(CoreFuzzEdge, EmptyTrace)
{
    VectorTraceSource trace(std::vector<MicroOp>{});
    FrontendPredictor frontend{FrontendConfig{}};
    CoreModel core(CoreParams{});
    CoreResult result = core.run(trace, frontend, 10);
    EXPECT_EQ(result.instructions, 0u);
}

} // namespace
} // namespace tpred
