/**
 * @file
 * Parameterized property sweeps of the timing model: invariants that
 * must hold for any (width, window) machine on any workload.
 */

#include <gtest/gtest.h>

#include "harness/paper_tables.hh"
#include "uarch/core_model.hh"

namespace tpred
{
namespace
{

class CoreSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
  protected:
    static const SharedTrace &
    trace()
    {
        static const SharedTrace t = recordWorkload("xlisp", 40000);
        return t;
    }
};

TEST_P(CoreSweep, RetiresEverythingAndRespectsWidthBound)
{
    auto [width, window] = GetParam();
    CoreParams params;
    params.width = width;
    params.window = window;
    params.fuCount = width;

    CoreResult result = runTiming(trace(), baselineConfig(), params);
    EXPECT_EQ(result.instructions, trace().size());
    // IPC can never exceed the retire width.
    EXPECT_LE(result.ipc(), static_cast<double>(width) + 1e-9);
    EXPECT_GT(result.ipc(), 0.05);
}

TEST_P(CoreSweep, OraclePredictionNeverSlower)
{
    auto [width, window] = GetParam();
    CoreParams params;
    params.width = width;
    params.window = window;
    params.fuCount = width;

    uint64_t base = runTiming(trace(), baselineConfig(), params).cycles;
    uint64_t oracle = runTiming(trace(), oracleConfig(), params).cycles;
    EXPECT_LE(oracle, base);
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndWindows, CoreSweep,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(16u, 64u, 128u)));

/** Wider machines are (weakly) faster on the same trace. */
TEST(CoreScaling, WidthMonotonicity)
{
    const SharedTrace trace = recordWorkload("ijpeg", 40000);
    uint64_t prev = UINT64_MAX;
    for (unsigned width : {1u, 2u, 4u, 8u}) {
        CoreParams params;
        params.width = width;
        params.fuCount = width;
        uint64_t cycles =
            runTiming(trace, baselineConfig(), params).cycles;
        EXPECT_LE(cycles, prev + prev / 50) << "width " << width;
        prev = cycles;
    }
}

/** Bigger windows are (weakly) faster on the same trace. */
TEST(CoreScaling, WindowMonotonicity)
{
    const SharedTrace trace = recordWorkload("go", 40000);
    uint64_t prev = UINT64_MAX;
    for (unsigned window : {8u, 32u, 128u}) {
        CoreParams params;
        params.window = window;
        uint64_t cycles =
            runTiming(trace, baselineConfig(), params).cycles;
        EXPECT_LE(cycles, prev + prev / 50) << "window " << window;
        prev = cycles;
    }
}

/** Slower memory can only cost cycles. */
TEST(CoreScaling, MemoryLatencyMonotonicity)
{
    const SharedTrace trace = recordWorkload("compress", 40000);
    uint64_t prev = 0;
    for (unsigned latency : {0u, 20u, 100u}) {
        CoreParams params;
        params.dcache.missLatency = latency;
        uint64_t cycles =
            runTiming(trace, baselineConfig(), params).cycles;
        EXPECT_GE(cycles, prev);
        prev = cycles;
    }
}

} // namespace
} // namespace tpred
