/**
 * @file
 * Persistent corpus tests: container round-trips, zero-copy mmap
 * equality, cache layering (a warm corpus means zero trace
 * generation), and the corruption suite — bit flips, truncation and
 * header skew must quarantine the file and regenerate bit-identical
 * results, never crash or silently serve damaged data.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include <unistd.h>

#include "corpus/corpus.hh"
#include "corpus/mapped_file.hh"
#include "corpus/segmented_trace.hh"
#include "harness/paper_tables.hh"
#include "harness/trace_cache.hh"
#include "obs/metrics.hh"
#include "test_util.hh"
#include "trace/compact_io.hh"
#include "workloads/workload.hh"

namespace fs = std::filesystem;

namespace tpred
{
namespace
{

/** Fresh empty directory under the system temp dir. */
std::string
makeTempDir(const std::string &tag)
{
    static int counter = 0;
    const fs::path dir = fs::temp_directory_path() /
                         ("tpred_corpus_" + tag + "_" +
                          std::to_string(::getpid()) + "_" +
                          std::to_string(counter++));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

struct TempDir
{
    explicit TempDir(const std::string &tag) : path(makeTempDir(tag)) {}
    ~TempDir() { fs::remove_all(path); }
    std::string path;
};

/** Registry counter value; every counter is registered at 0. */
uint64_t
counterOf(const obs::MetricsRegistry &reg, const std::string &name)
{
    return reg.snapshot().counters.at(name);
}

CompactTrace
sampleTrace(size_t ops = 5000)
{
    auto workload = makeWorkload("perl", 7);
    return CompactTrace::encode(drainTrace(*workload, ops));
}

bool
sameOp(const MicroOp &a, const MicroOp &b)
{
    return a.pc == b.pc && a.nextPc == b.nextPc &&
           a.memAddr == b.memAddr && a.selector == b.selector &&
           a.fallthrough == b.fallthrough && a.cls == b.cls &&
           a.branch == b.branch && a.taken == b.taken &&
           a.dstReg == b.dstReg && a.srcRegs == b.srcRegs;
}

bool
sameOps(const CompactTrace &a, const CompactTrace &b)
{
    const std::vector<MicroOp> da = a.decodeAll();
    const std::vector<MicroOp> db = b.decodeAll();
    if (da.size() != db.size())
        return false;
    for (size_t i = 0; i < da.size(); ++i)
        if (!sameOp(da[i], db[i]))
            return false;
    return true;
}

bool
sameStats(const FrontendStats &a, const FrontendStats &b)
{
    auto ratio_eq = [](const RatioStat &x, const RatioStat &y) {
        return x.hits() == y.hits() && x.total() == y.total();
    };
    return a.instructions == b.instructions &&
           ratio_eq(a.allBranches, b.allBranches) &&
           ratio_eq(a.condDirection, b.condDirection) &&
           ratio_eq(a.indirectJumps, b.indirectJumps) &&
           ratio_eq(a.returns, b.returns) &&
           ratio_eq(a.btbHits, b.btbHits);
}

// ---------------------------------------------------------------
// Container codec
// ---------------------------------------------------------------

TEST(CompactContainer, RoundTripIsLossless)
{
    const CompactTrace trace = sampleTrace();
    const std::vector<uint8_t> image =
        serializeCompactTrace(trace, "perl");

    std::string name;
    const CompactTrace back =
        openCompactContainer(image, nullptr, name, "image");
    EXPECT_EQ(name, "perl");
    EXPECT_EQ(back.size(), trace.size());
    EXPECT_EQ(back.fastBranchScan(), trace.fastBranchScan());
    EXPECT_TRUE(sameOps(trace, back));
}

TEST(CompactContainer, SerializationIsDeterministic)
{
    const CompactTrace trace = sampleTrace();
    EXPECT_EQ(serializeCompactTrace(trace, "perl"),
              serializeCompactTrace(trace, "perl"));
}

TEST(CompactContainer, EmptyTraceRoundTrips)
{
    const CompactTrace trace = CompactTrace::encode({});
    const std::vector<uint8_t> image =
        serializeCompactTrace(trace, "");
    std::string name;
    const CompactTrace back =
        openCompactContainer(image, nullptr, name, "image");
    EXPECT_EQ(back.size(), 0u);
    EXPECT_TRUE(name.empty());
}

TEST(CompactContainer, PeekReportsCountsWithoutFullVerify)
{
    const CompactTrace trace = sampleTrace();
    const std::vector<uint8_t> image =
        serializeCompactTrace(trace, "perl");
    const CompactContainerInfo info =
        peekCompactContainer(image, "image");
    EXPECT_EQ(info.name, "perl");
    EXPECT_EQ(info.opCount, trace.size());
    EXPECT_EQ(info.branchCount, trace.branchPositions().size());
    EXPECT_EQ(info.version, kCompactVersion);
    EXPECT_EQ(info.fileBytes, image.size());
}

TEST(CompactContainer, ErrorsNameTheSource)
{
    const std::vector<uint8_t> junk(64, 0xAB);
    std::string name;
    try {
        openCompactContainer(junk, nullptr, name, "/some/file.tpct");
        FAIL() << "expected CompactFormatError";
    } catch (const CompactFormatError &e) {
        EXPECT_NE(std::string(e.what()).find("/some/file.tpct"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------
// CorpusManager basics
// ---------------------------------------------------------------

TEST(Corpus, StoreThenLoadIsIdenticalAndZeroCopy)
{
    const TempDir dir("roundtrip");
    CorpusManager corpus(dir.path);
    const CompactTrace trace = sampleTrace();
    const CorpusKey key{"perl", 7, 5000};

    corpus.store(key, trace, "perl");
    std::string name;
    const auto loaded = corpus.load(key, &name);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(name, "perl");
    EXPECT_TRUE(sameOps(trace, *loaded));

    // Counters read straight off the metrics registry.
    const obs::MetricsSnapshot snap =
        corpus.metricsRegistry().snapshot();
    EXPECT_EQ(snap.counters.at("corpus.stores"), 1u);
    EXPECT_EQ(snap.counters.at("corpus.hits"), 1u);
    EXPECT_EQ(snap.counters.at("corpus.misses"), 0u);
    EXPECT_GT(snap.counters.at("corpus.bytes_stored"), 0u);
    EXPECT_EQ(snap.counters.at("corpus.bytes_loaded"),
              snap.counters.at("corpus.bytes_stored"));
}

TEST(Corpus, MissingEntryIsAMiss)
{
    const TempDir dir("miss");
    CorpusManager corpus(dir.path);
    EXPECT_EQ(corpus.load(CorpusKey{"perl", 1, 1000}), nullptr);
    EXPECT_EQ(counterOf(corpus.metricsRegistry(), "corpus.misses"),
              1u);
}

TEST(Corpus, KeysWithDashesInWorkloadNamesAreDistinct)
{
    const TempDir dir("dashes");
    CorpusManager corpus(dir.path);
    const CompactTrace trace = sampleTrace(500);
    corpus.store(CorpusKey{"cpp-virtual", 1, 500}, trace, "cpp-virtual");
    corpus.store(CorpusKey{"cpp-virtual", 2, 500}, trace, "cpp-virtual");

    const auto entries = corpus.list(true);
    ASSERT_EQ(entries.size(), 2u);
    for (const CorpusEntry &e : entries) {
        EXPECT_TRUE(e.ok) << e.error;
        EXPECT_EQ(e.key.workload, "cpp-virtual");
        EXPECT_EQ(e.key.ops, 500u);
    }
    EXPECT_EQ(entries[0].key.seed + entries[1].key.seed, 3u);
}

TEST(Corpus, ManifestIsRegeneratedFromHeaders)
{
    const TempDir dir("manifest");
    CorpusManager corpus(dir.path);
    corpus.store(CorpusKey{"perl", 7, 5000}, sampleTrace(), "perl");

    std::ifstream in(corpus.manifestPath());
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"tpred-corpus-manifest\""), std::string::npos);
    EXPECT_NE(text.find("\"workload\": \"perl\""), std::string::npos);
    EXPECT_NE(text.find("\"crc32c\": "), std::string::npos);
    EXPECT_NE(text.find(CorpusManager::kGeneratorVersion),
              std::string::npos);
}

TEST(Corpus, GcRemovesQuarantinedAndTempFiles)
{
    const TempDir dir("gc");
    CorpusManager corpus(dir.path);
    corpus.store(CorpusKey{"perl", 7, 5000}, sampleTrace(), "perl");

    std::ofstream(fs::path(dir.path) / "stale.tpct.quarantined")
        << "junk";
    std::ofstream(fs::path(dir.path) / "x.tpct.tmp123") << "junk";
    EXPECT_EQ(corpus.gc(), 2u);
    ASSERT_EQ(corpus.list(true).size(), 1u);
    EXPECT_TRUE(corpus.list(true)[0].ok);
}

// ---------------------------------------------------------------
// Cache layering: warm corpus => zero trace generation
// ---------------------------------------------------------------

TEST(Corpus, TraceCacheUsesCorpusSecondLevel)
{
    const TempDir dir("cache");
    const std::string workload = "xlisp";
    const size_t ops = 20000;

    // First process (simulated): cold corpus — the trace is
    // generated once and persisted.
    FrontendStats first_stats;
    {
        TraceCache cache;
        cache.attachCorpus(std::make_shared<CorpusManager>(dir.path));
        const SharedTrace trace = cache.get(workload, ops);
        first_stats = runAccuracy(trace, taglessGshare());
        EXPECT_EQ(cache.recordings(), 1u);
        EXPECT_EQ(counterOf(cache.metricsRegistry(),
                            "trace_cache.corpus_hits"), 0u);
        EXPECT_EQ(counterOf(cache.corpus()->metricsRegistry(),
                            "corpus.stores"), 1u);
    }

    // Second process (simulated): warm corpus — zero generation,
    // served entirely from disk, identical results.
    {
        TraceCache cache;
        cache.attachCorpus(std::make_shared<CorpusManager>(dir.path));
        const SharedTrace trace = cache.get(workload, ops);
        EXPECT_EQ(cache.recordings(), 0u) <<
            "warm corpus must not regenerate the trace";
        EXPECT_EQ(counterOf(cache.metricsRegistry(),
                            "trace_cache.corpus_hits"), 1u);
        EXPECT_EQ(counterOf(cache.metricsRegistry(),
                            "trace_cache.misses"), 1u);
        EXPECT_EQ(counterOf(cache.corpus()->metricsRegistry(),
                            "corpus.hits"), 1u);

        // Memo hit on re-request: no second corpus load either.
        cache.get(workload, ops);
        EXPECT_EQ(counterOf(cache.metricsRegistry(),
                            "trace_cache.hits"), 1u);
        EXPECT_EQ(counterOf(cache.corpus()->metricsRegistry(),
                            "corpus.hits"), 1u);

        EXPECT_TRUE(sameStats(first_stats,
                              runAccuracy(trace, taglessGshare())));
    }
}

TEST(Corpus, CacheWithoutCorpusStillWorks)
{
    TraceCache cache;
    const SharedTrace trace = cache.get("compress", 5000);
    EXPECT_EQ(trace.size(), 5000u);
    EXPECT_EQ(cache.recordings(), 1u);
    EXPECT_EQ(counterOf(cache.metricsRegistry(),
                        "trace_cache.misses"), 1u);
}

// ---------------------------------------------------------------
// Corruption suite
// ---------------------------------------------------------------

/** Damages one stored corpus file in place via @p mutate. */
template <typename Mutate>
void
corruptionCase(const char *tag, Mutate &&mutate)
{
    const TempDir dir(tag);
    const std::string workload = "m88ksim";
    const size_t ops = 20000;

    FrontendStats clean_stats;
    {
        TraceCache cache;
        cache.attachCorpus(std::make_shared<CorpusManager>(dir.path));
        clean_stats =
            runAccuracy(cache.get(workload, ops), taglessGshare());
    }

    // Damage the file the store produced.
    const CorpusKey key{workload, 1, ops};
    const fs::path path =
        fs::path(dir.path) / CorpusManager::fileName(key);
    ASSERT_TRUE(fs::exists(path));
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good());
        std::vector<char> bytes(
            (std::istreambuf_iterator<char>(f)),
            std::istreambuf_iterator<char>());
        mutate(bytes);
        f.close();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    // The damaged file must be quarantined — never trusted — and the
    // regenerated trace must reproduce the clean statistics exactly.
    TraceCache cache;
    cache.attachCorpus(std::make_shared<CorpusManager>(dir.path));
    const SharedTrace trace = cache.get(workload, ops);
    EXPECT_EQ(cache.recordings(), 1u)
        << "damaged corpus entry must force regeneration";
    EXPECT_EQ(counterOf(cache.corpus()->metricsRegistry(),
                        "corpus.quarantined"), 1u);
    EXPECT_TRUE(fs::exists(path.string() + ".quarantined"))
        << "damaged file must be moved aside";
    // The entry now back under the original name is the freshly
    // regenerated store, not the damaged bytes: it must fully verify.
    {
        bool verified = false;
        for (const CorpusEntry &e : cache.corpus()->list(true))
            if (e.file == CorpusManager::fileName(key))
                verified = e.ok;
        EXPECT_TRUE(verified);
    }
    EXPECT_TRUE(sameStats(clean_stats,
                          runAccuracy(trace, taglessGshare())));

    // The regeneration re-stored a good file: next cache is warm.
    TraceCache warm;
    warm.attachCorpus(std::make_shared<CorpusManager>(dir.path));
    warm.get(workload, ops);
    EXPECT_EQ(warm.recordings(), 0u);
}

TEST(CorpusCorruption, PayloadBitFlipIsQuarantined)
{
    corruptionCase("bitflip", [](std::vector<char> &bytes) {
        ASSERT_GT(bytes.size(), 300u);
        bytes[bytes.size() / 2] ^= 0x10;  // flip one payload bit
    });
}

TEST(CorpusCorruption, TruncationIsQuarantined)
{
    corruptionCase("truncate", [](std::vector<char> &bytes) {
        ASSERT_GT(bytes.size(), 100u);
        bytes.resize(bytes.size() / 2);
    });
}

TEST(CorpusCorruption, HeaderVersionSkewIsQuarantined)
{
    corruptionCase("skew", [](std::vector<char> &bytes) {
        ASSERT_GT(bytes.size(), 8u);
        bytes[4] = 99;  // FileHeader.version (header CRC now stale
                        // too; either check may fire — both reject)
    });
}

TEST(CorpusCorruption, ZeroLengthFileIsQuarantined)
{
    corruptionCase("empty", [](std::vector<char> &bytes) {
        bytes.clear();
    });
}

// ---------------------------------------------------------------
// MappedFile
// ---------------------------------------------------------------

TEST(MappedFile, MissingFileErrorNamesThePath)
{
    try {
        MappedFile::open("/nonexistent/dir/corpus.tpct");
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("/nonexistent/dir"),
                  std::string::npos);
    }
}

TEST(MappedFile, MapsWrittenBytesBack)
{
    const TempDir dir("map");
    const fs::path path = fs::path(dir.path) / "blob";
    const std::string payload = "forty-two bytes of corpus payload";
    std::ofstream(path, std::ios::binary) << payload;

    const auto mapping = MappedFile::open(path.string());
    ASSERT_EQ(mapping->size(), payload.size());
    EXPECT_EQ(std::string(reinterpret_cast<const char *>(
                              mapping->bytes().data()),
                          mapping->size()),
              payload);
}

TEST(MappedFile, RangeViewsReturnExactWindows)
{
    const TempDir dir("range");
    const fs::path path = fs::path(dir.path) / "blob";
    std::string payload(100000, '\0');
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>(i * 31);
    std::ofstream(path, std::ios::binary) << payload;

    // Unaligned offsets (straddling page boundaries) must still
    // yield exactly the requested bytes.
    for (const uint64_t offset : {0u, 1u, 4095u, 4096u, 65537u}) {
        const size_t len = 1000;
        const auto view =
            MappedFile::openRange(path.string(), offset, len);
        ASSERT_EQ(view->size(), len) << "offset " << offset;
        EXPECT_EQ(std::string(reinterpret_cast<const char *>(
                                  view->bytes().data()),
                              len),
                  payload.substr(offset, len))
            << "offset " << offset;
    }
    EXPECT_THROW(
        MappedFile::openRange(path.string(), payload.size() - 10, 11),
        std::runtime_error);
}

// ---------------------------------------------------------------
// Segmented containers
// ---------------------------------------------------------------

/** Accuracy stats of a segmented entry via streaming replay. */
FrontendStats
segmentedStats(const std::shared_ptr<const SegmentedTrace> &trace)
{
    PredictorStack stack = buildStack(taglessGshare());
    FrontendPredictor frontend(FrontendConfig{}, stack.predictor.get(),
                               stack.tracker.get());
    SegmentedReplay replay(trace);
    MicroOp op;
    while (replay.next(op))
        frontend.onInstruction(op);
    return frontend.stats();
}

TEST(SegmentedCorpus, StreamingStoreMatchesWholeTraceStore)
{
    const TempDir dir("seg_store");
    CorpusManager corpus(dir.path);
    const std::string workload = "ijpeg";
    const size_t ops = 20000, seg_ops = 3000;

    // Same trace three ways: plain container, storeSegmented on the
    // resident trace, and the streaming storeSegmentedFromSource.
    const SharedTrace resident = recordWorkload(workload, ops, 1);
    corpus.storeSegmented(CorpusKey{workload, 1, ops},
                          resident.compact(), workload, seg_ops);
    auto from_trace =
        corpus.loadSegmented(CorpusKey{workload, 1, ops}, seg_ops);
    ASSERT_NE(from_trace, nullptr);

    auto source = makeWorkload(workload, 2);
    corpus.storeSegmentedFromSource(CorpusKey{workload, 2, ops},
                                    *source, workload, seg_ops);
    auto from_source =
        corpus.loadSegmented(CorpusKey{workload, 2, ops}, seg_ops);
    ASSERT_NE(from_source, nullptr);

    EXPECT_EQ(from_trace->totalOps(), ops);
    EXPECT_EQ(from_trace->segmentCount(), 7u);  // ceil(20000/3000)
    EXPECT_EQ(from_source->totalOps(), ops);
    EXPECT_EQ(from_source->segmentCount(), 7u);

    // Decoding every segment reproduces the resident op sequence.
    std::vector<MicroOp> decoded;
    for (size_t i = 0; i < from_trace->segmentCount(); ++i) {
        const auto segment = from_trace->openSegment(i);
        const std::vector<MicroOp> part = segment->decodeAll();
        decoded.insert(decoded.end(), part.begin(), part.end());
    }
    const std::vector<MicroOp> expected =
        resident.compact().decodeAll();
    ASSERT_EQ(decoded.size(), expected.size());
    for (size_t i = 0; i < decoded.size(); ++i)
        ASSERT_TRUE(sameOp(decoded[i], expected[i])) << "op " << i;

    // Same workload generator, same seed => identical stats whether
    // the container was built resident or streamed.
    const SharedTrace resident2 = recordWorkload(workload, ops, 2);
    EXPECT_TRUE(sameStats(segmentedStats(from_source),
                          runAccuracy(resident2, taglessGshare())));
}

TEST(SegmentedCorpus, PlainV2ContainersAreUnaffected)
{
    const TempDir dir("seg_plain");
    CorpusManager corpus(dir.path);
    const CompactTrace trace = sampleTrace();
    const CorpusKey key{"perl", 7, 5000};
    corpus.store(key, trace, "perl");

    // The plain (unsegmented) v2 container loads exactly as before.
    const auto loaded = corpus.load(key);
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(sameOps(trace, *loaded));

    // And the two layouts reject each other with telling errors.
    EXPECT_THROW(SegmentedTrace::open(corpus.pathFor(key)),
                 CompactFormatError);
    corpus.storeSegmented(CorpusKey{"perl", 8, 5000}, trace, "perl",
                          1000);
    const auto mapping = MappedFile::open(
        corpus.segmentedPathFor(CorpusKey{"perl", 8, 5000}, 1000));
    std::string name;
    EXPECT_THROW(openCompactContainer(mapping->bytes(), nullptr, name,
                                      "segmented"),
                 CompactFormatError);
}

/** Damages one segmented corpus file in place via @p mutate, then
 *  checks quarantine + bit-identical regeneration. */
template <typename Mutate>
void
segmentedCorruptionCase(const char *tag, Mutate &&mutate)
{
    const TempDir dir(tag);
    const std::string workload = "m88ksim";
    const size_t ops = 20000, seg_ops = 3000;
    const CorpusKey key{workload, 1, ops};

    FrontendStats clean_stats;
    {
        CorpusManager corpus(dir.path);
        auto source = makeWorkload(workload, 1);
        corpus.storeSegmentedFromSource(key, *source, workload,
                                        seg_ops);
        const auto trace = corpus.loadSegmented(key, seg_ops);
        ASSERT_NE(trace, nullptr);
        clean_stats = segmentedStats(trace);
    }

    // Damage the stored file.
    CorpusManager corpus(dir.path);
    const fs::path path = corpus.segmentedPathFor(key, seg_ops);
    ASSERT_TRUE(fs::exists(path));
    {
        std::ifstream in(path, std::ios::binary);
        std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
        in.close();
        mutate(bytes);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    // The damaged file must be quarantined, never trusted.
    EXPECT_EQ(corpus.loadSegmented(key, seg_ops), nullptr);
    EXPECT_EQ(counterOf(corpus.metricsRegistry(),
                        "corpus.quarantined"), 1u);
    EXPECT_TRUE(fs::exists(path.string() + ".quarantined"));

    // Regeneration reproduces the clean statistics exactly.
    auto source = makeWorkload(workload, 1);
    corpus.storeSegmentedFromSource(key, *source, workload, seg_ops);
    const auto trace = corpus.loadSegmented(key, seg_ops);
    ASSERT_NE(trace, nullptr);
    EXPECT_TRUE(sameStats(clean_stats, segmentedStats(trace)));
}

TEST(SegmentedCorruption, SegmentPayloadBitFlipIsQuarantined)
{
    segmentedCorruptionCase("seg_bitflip", [](std::vector<char> &bytes) {
        // Mid-file lands inside a segment payload: only that
        // segment's CRC breaks, which verifyAllSegments must catch.
        ASSERT_GT(bytes.size(), 1000u);
        bytes[bytes.size() / 2] ^= 0x04;
    });
}

TEST(SegmentedCorruption, MidSegmentTruncationIsQuarantined)
{
    segmentedCorruptionCase("seg_truncate", [](std::vector<char> &bytes) {
        ASSERT_GT(bytes.size(), 1000u);
        bytes.resize(bytes.size() * 3 / 5);  // cut inside a segment
    });
}

TEST(SegmentedCorruption, IndexRecordCorruptionIsQuarantined)
{
    segmentedCorruptionCase("seg_index", [](std::vector<char> &bytes) {
        // The index sits between the last segment and the 24-byte
        // footer; flip a byte inside the last record.
        ASSERT_GT(bytes.size(), 24u + 56u);
        bytes[bytes.size() - 24 - 28] ^= 0xFF;
    });
}

TEST(SegmentedCorruption, FooterCorruptionIsQuarantined)
{
    segmentedCorruptionCase("seg_footer", [](std::vector<char> &bytes) {
        ASSERT_GT(bytes.size(), 24u);
        bytes[bytes.size() - 1] ^= 0x01;
    });
}

TEST(SegmentedCorpus, GcKeepsHealthySegmentedEntries)
{
    const TempDir dir("seg_gc");
    CorpusManager corpus(dir.path);
    auto source = makeWorkload("go", 1);
    corpus.storeSegmentedFromSource(CorpusKey{"go", 1, 9000}, *source,
                                    "go", 2000);

    std::ofstream(fs::path(dir.path) / "stale.tpcs.quarantined")
        << "junk";
    EXPECT_EQ(corpus.gc(), 1u);
    const auto entries = corpus.list(true);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_TRUE(entries[0].ok) << entries[0].error;
    EXPECT_EQ(entries[0].segmentCount, 5u);  // ceil(9000/2000)
    EXPECT_EQ(entries[0].opCount, 9000u);
}

} // namespace
} // namespace tpred
