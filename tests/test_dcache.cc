/** @file Unit tests for the data cache model. */

#include <gtest/gtest.h>

#include "uarch/dcache.hh"

namespace tpred
{
namespace
{

DCacheConfig
tiny()
{
    DCacheConfig config;
    config.sizeBytes = 1024;
    config.lineBytes = 32;
    config.ways = 2;
    return config;  // 16 sets
}

TEST(DCache, PaperGeometry)
{
    DCacheConfig config;
    EXPECT_EQ(config.sizeBytes, 16u * 1024);
    EXPECT_EQ(config.missLatency, 20u);
    EXPECT_EQ(config.sets(), 128u);
}

TEST(DCache, ColdMissThenHit)
{
    DCache cache(tiny());
    EXPECT_EQ(cache.access(0x1000, false), 21u);
    EXPECT_EQ(cache.access(0x1000, false), 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DCache, SameLineHits)
{
    DCache cache(tiny());
    cache.access(0x1000, false);
    EXPECT_EQ(cache.access(0x101f, false), 1u);  // same 32B line
    EXPECT_EQ(cache.access(0x1020, false), 21u); // next line
}

TEST(DCache, StoresAllocate)
{
    DCache cache(tiny());
    cache.access(0x2000, true);
    EXPECT_EQ(cache.access(0x2000, false), 1u);
}

TEST(DCache, ConflictEviction)
{
    // 16 sets x 32B lines: addresses 0x200 apart share a set.
    DCache cache(tiny());
    cache.access(0x0, false);
    cache.access(0x200, false);
    cache.access(0x0, false);    // refresh LRU
    cache.access(0x400, false);  // evicts 0x200
    EXPECT_EQ(cache.access(0x0, false), 1u);
    EXPECT_EQ(cache.access(0x200, false), 21u);
}

TEST(DCache, MissRateOverWorkingSetLargerThanCache)
{
    DCache cache(tiny());
    // Cycle a 4 KB working set through a 1 KB cache: ~all misses.
    for (int round = 0; round < 4; ++round)
        for (uint64_t a = 0; a < 4096; a += 32)
            cache.access(a, false);
    EXPECT_GT(cache.stats().missRate(), 0.9);
}

TEST(DCache, HitRateOverSmallWorkingSet)
{
    DCache cache(tiny());
    for (int round = 0; round < 16; ++round)
        for (uint64_t a = 0; a < 512; a += 32)
            cache.access(a, false);
    EXPECT_GT(1.0 - cache.stats().missRate(), 0.9);
}

} // namespace
} // namespace tpred
