/**
 * @file
 * Differential tests: each hardware structure is checked against a
 * simple, obviously-correct software reference model under randomized
 * stimulus.  These catch indexing/LRU/tag bugs that example-based
 * tests miss.
 */

#include <list>
#include <map>
#include <optional>

#include <gtest/gtest.h>

#include "bpred/btb.hh"
#include "common/rng.hh"
#include "core/tagged_target_cache.hh"
#include "core/tagless_target_cache.hh"
#include "test_util.hh"
#include "uarch/dcache.hh"

namespace tpred
{
namespace
{

/** Reference fully-mapped "BTB": last-taken-target per pc. */
TEST(Differential, BtbMatchesReferenceWhenNoCapacityPressure)
{
    // 64 branches into a 1K-entry BTB: no evictions possible, so the
    // BTB must agree exactly with an unbounded map.
    Btb btb(BtbConfig{});
    std::map<uint64_t, uint64_t> reference;
    Rng rng(42);
    for (int i = 0; i < 20000; ++i) {
        const uint64_t pc = 0x1000 + rng.below(64) * 4;
        const uint64_t target = 0x40000 + rng.below(16) * 8;

        auto pred = btb.lookup(pc);
        auto ref = reference.find(pc);
        if (ref == reference.end()) {
            EXPECT_FALSE(pred.has_value());
        } else {
            ASSERT_TRUE(pred.has_value());
            EXPECT_EQ(pred->target, ref->second);
        }
        btb.update(test::indirectOp(pc, target));
        reference[pc] = target;
    }
}

/** Reference LRU cache model. */
class RefLru
{
  public:
    RefLru(unsigned sets, unsigned ways, unsigned offset_bits)
        : sets_(sets), ways_(ways), offsetBits_(offset_bits),
          setLists_(sets)
    {
    }

    bool
    access(uint64_t addr)
    {
        const uint64_t line = addr >> offsetBits_;
        const uint64_t set = line % sets_;
        auto &list = setLists_[set];
        for (auto it = list.begin(); it != list.end(); ++it) {
            if (*it == line) {
                list.erase(it);
                list.push_front(line);
                return true;
            }
        }
        list.push_front(line);
        if (list.size() > ways_)
            list.pop_back();
        return false;
    }

  private:
    unsigned sets_, ways_, offsetBits_;
    std::vector<std::list<uint64_t>> setLists_;
};

TEST(Differential, DCacheMatchesReferenceLru)
{
    DCacheConfig config;
    config.sizeBytes = 2048;
    config.lineBytes = 32;
    config.ways = 4;  // 16 sets
    DCache cache(config);
    RefLru ref(config.sets(), config.ways, 5);

    Rng rng(7);
    for (int i = 0; i < 50000; ++i) {
        // Addresses concentrated so sets see real eviction pressure.
        const uint64_t addr = rng.below(16 * 1024);
        const bool ref_hit = ref.access(addr);
        const unsigned latency = cache.access(addr, rng.chance(0.3));
        const bool cache_hit = latency == config.hitLatency;
        ASSERT_EQ(cache_hit, ref_hit) << "at access " << i;
    }
}

TEST(Differential, TaglessMatchesDirectArrayModel)
{
    TaglessConfig config;
    config.scheme = TaglessIndexScheme::Gshare;
    config.entryBits = 8;
    TaglessTargetCache cache(config);
    std::vector<uint64_t> reference(256, 0);

    Rng rng(11);
    for (int i = 0; i < 30000; ++i) {
        const uint64_t pc = 0x1000 + rng.below(512) * 4;
        const uint64_t hist = rng.below(512);
        const uint64_t idx = cache.indexOf(pc, hist);
        EXPECT_EQ(cache.predict(pc, hist).value(), reference[idx]);
        if (rng.chance(0.5)) {
            const uint64_t target = 0x9000 + rng.below(64) * 4;
            cache.update(pc, hist, target);
            reference[idx] = target;
        }
    }
}

/** Reference tagged model: per-set LRU list of (tag, target). */
TEST(Differential, TaggedMatchesReferenceSetAssocModel)
{
    TaggedConfig config;
    config.scheme = TaggedIndexScheme::HistoryXor;
    config.entries = 64;
    config.ways = 4;  // 16 sets
    TaggedTargetCache cache(config);

    struct RefEntry
    {
        uint64_t tag;
        uint64_t target;
    };
    std::vector<std::list<RefEntry>> ref_sets(config.sets());

    Rng rng(13);
    for (int i = 0; i < 40000; ++i) {
        const uint64_t pc = 0x1000 + rng.below(64) * 4;
        const uint64_t hist = rng.below(64);
        auto [set, tag] = cache.indexOf(pc, hist);
        auto &list = ref_sets[set];

        // Reference probe (refreshes LRU like the real structure).
        std::optional<uint64_t> ref_target;
        for (auto it = list.begin(); it != list.end(); ++it) {
            if (it->tag == tag) {
                ref_target = it->target;
                RefEntry entry = *it;
                list.erase(it);
                list.push_front(entry);
                break;
            }
        }
        auto pred = cache.predict(pc, hist);
        ASSERT_EQ(pred.has_value(), ref_target.has_value())
            << "probe " << i;
        if (pred) {
            ASSERT_EQ(*pred, *ref_target) << "probe " << i;
        }

        if (rng.chance(0.6)) {
            const uint64_t target = 0x9000 + rng.below(64) * 4;
            cache.update(pc, hist, target);
            bool found = false;
            for (auto it = list.begin(); it != list.end(); ++it) {
                if (it->tag == tag) {
                    it->target = target;
                    RefEntry entry = *it;
                    list.erase(it);
                    list.push_front(entry);
                    found = true;
                    break;
                }
            }
            if (!found) {
                list.push_front({tag, target});
                if (list.size() > config.ways)
                    list.pop_back();
            }
        }
    }
}

} // namespace
} // namespace tpred
