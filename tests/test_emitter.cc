/** @file Unit tests for the workload emitter and code layout. */

#include <gtest/gtest.h>

#include "workloads/emitter.hh"

namespace tpred
{
namespace
{

TEST(CodeLayout, AllocatesDisjointBlocks)
{
    CodeLayout layout(0x1000);
    uint64_t a = layout.alloc(4);
    uint64_t b = layout.alloc(4);
    EXPECT_EQ(a, 0x1000u);
    EXPECT_GE(b, a + 4 * 4);
    EXPECT_EQ(a % 4, 0u);
    EXPECT_EQ(b % 4, 0u);
}

TEST(CodeLayout, LowAddressBitsVaryAcrossBlocks)
{
    // Path history records low target-address bits; block bases must
    // not all share them (see the alloc() comment).
    CodeLayout layout(0x1000);
    bool bit2_zero = false, bit2_one = false;
    for (int i = 0; i < 16; ++i) {
        uint64_t base = layout.alloc(3);
        ((base >> 2) & 1 ? bit2_one : bit2_zero) = true;
    }
    EXPECT_TRUE(bit2_zero);
    EXPECT_TRUE(bit2_one);
}

TEST(Emitter, PlainOpsAdvancePc)
{
    Emitter emit(1);
    emit.setPc(0x1000);
    emit.intOps(3);
    MicroOp op;
    for (uint64_t expected = 0x1000; expected < 0x100c; expected += 4) {
        ASSERT_TRUE(emit.pop(op));
        EXPECT_EQ(op.pc, expected);
        EXPECT_EQ(op.nextPc, expected + 4);
        EXPECT_FALSE(op.isBranch());
    }
    EXPECT_FALSE(emit.pop(op));
}

TEST(Emitter, CondBranchTakenRedirects)
{
    Emitter emit(1);
    emit.setPc(0x1000);
    emit.condBranch(0x2000, true);
    EXPECT_EQ(emit.pc(), 0x2000u);
    MicroOp op;
    ASSERT_TRUE(emit.pop(op));
    EXPECT_EQ(op.branch, BranchKind::CondDirect);
    EXPECT_TRUE(op.taken);
    EXPECT_EQ(op.nextPc, 0x2000u);
    EXPECT_EQ(op.fallthrough, 0x1004u);
}

TEST(Emitter, CondBranchNotTakenFallsThrough)
{
    Emitter emit(1);
    emit.setPc(0x1000);
    emit.condBranch(0x2000, false);
    EXPECT_EQ(emit.pc(), 0x1004u);
    MicroOp op;
    ASSERT_TRUE(emit.pop(op));
    EXPECT_FALSE(op.taken);
    EXPECT_EQ(op.nextPc, 0x1004u);
}

TEST(Emitter, CallAndRetMatch)
{
    Emitter emit(1);
    emit.setPc(0x1000);
    emit.call(0x5000);
    EXPECT_EQ(emit.callDepth(), 1u);
    emit.intOps(2);
    emit.ret();
    EXPECT_EQ(emit.callDepth(), 0u);
    EXPECT_EQ(emit.pc(), 0x1004u);  // resumed after the call

    MicroOp op;
    emit.pop(op);
    EXPECT_EQ(op.branch, BranchKind::Call);
    emit.pop(op);
    emit.pop(op);
    emit.pop(op);
    EXPECT_EQ(op.branch, BranchKind::Return);
    EXPECT_EQ(op.nextPc, 0x1004u);
}

TEST(Emitter, IndirectCallAlsoPushesReturnAddress)
{
    Emitter emit(1);
    emit.setPc(0x1000);
    emit.indirectCall(0x5000, 7);
    emit.ret();
    MicroOp op;
    emit.pop(op);
    EXPECT_EQ(op.branch, BranchKind::IndirectCall);
    EXPECT_EQ(op.selector, 7u);
    emit.pop(op);
    EXPECT_EQ(op.nextPc, 0x1004u);
}

TEST(Emitter, IndirectJumpCarriesSelector)
{
    Emitter emit(1);
    emit.setPc(0x1000);
    emit.indirectJump(0x7000, 42);
    MicroOp op;
    emit.pop(op);
    EXPECT_EQ(op.branch, BranchKind::IndirectJump);
    EXPECT_EQ(op.selector, 42u);
    EXPECT_EQ(op.nextPc, 0x7000u);
}

TEST(Emitter, LoadStoreCarryAddresses)
{
    Emitter emit(1);
    emit.setPc(0x1000);
    emit.load(0xbeef0);
    emit.store(0xfeed8);
    MicroOp op;
    emit.pop(op);
    EXPECT_EQ(op.cls, InstClass::Load);
    EXPECT_EQ(op.memAddr, 0xbeef0u);
    EXPECT_NE(op.dstReg, kNoReg);
    emit.pop(op);
    EXPECT_EQ(op.cls, InstClass::Store);
    EXPECT_EQ(op.dstReg, kNoReg);
}

TEST(Emitter, SourceRegistersComeFromRecentWrites)
{
    Emitter emit(1);
    emit.setPc(0x1000);
    emit.intOps(64);
    MicroOp op;
    while (emit.pop(op)) {
        ASSERT_NE(op.srcRegs[0], kNoReg);
        EXPECT_LT(op.srcRegs[0],
                  static_cast<RegIndex>(kNumArchRegs));
        EXPECT_GE(op.srcRegs[0], 0);
    }
}

TEST(Emitter, DataAddrStaysInRegion)
{
    Emitter emit(1);
    for (int i = 0; i < 1000; ++i) {
        uint64_t addr = emit.dataAddr(0x10000, 0x4000);
        EXPECT_GE(addr, 0x10000u);
        EXPECT_LT(addr, 0x14000u);
        EXPECT_EQ(addr % 8, 0u);
    }
}

TEST(Emitter, DataAddrIsSpatiallyLocal)
{
    Emitter emit(1);
    uint64_t prev = emit.dataAddr(0, 1 << 20);
    int near = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        uint64_t addr = emit.dataAddr(0, 1 << 20);
        uint64_t delta = addr > prev ? addr - prev : prev - addr;
        near += delta <= 128;
        prev = addr;
    }
    EXPECT_GT(near, n / 2);
}

TEST(Emitter, AluMixEmitsRequestedCount)
{
    Emitter emit(1);
    emit.setPc(0x1000);
    emit.aluMix(20, 0x10000, 0x1000);
    EXPECT_EQ(emit.pending(), 20u);
    EXPECT_EQ(emit.pc(), 0x1000u + 20 * 4);
}

} // namespace
} // namespace tpred
