/** @file Unit tests for the composite front-end predictor. */

#include <gtest/gtest.h>

#include "core/frontend_predictor.hh"
#include "core/oracle.hh"
#include "core/tagless_target_cache.hh"
#include "test_util.hh"

namespace tpred
{
namespace
{

HistorySpec
pattern9()
{
    HistorySpec spec;
    spec.kind = HistoryKind::Pattern;
    spec.lengthBits = 9;
    return spec;
}

TEST(Frontend, NonBranchesAlwaysCorrect)
{
    FrontendPredictor fe{FrontendConfig{}};
    auto outcome = fe.onInstruction(test::plainOp(0x100));
    EXPECT_TRUE(outcome.correct);
    EXPECT_EQ(outcome.predictedNext, 0x104u);
    EXPECT_EQ(fe.stats().allBranches.total(), 0u);
    EXPECT_EQ(fe.stats().instructions, 1u);
}

TEST(Frontend, FirstSightOfTakenBranchMispredicts)
{
    FrontendPredictor fe{FrontendConfig{}};
    auto outcome = fe.onInstruction(
        test::branchOp(0x100, BranchKind::UncondDirect, 0x2000));
    EXPECT_FALSE(outcome.correct);
}

TEST(Frontend, LearnsDirectJump)
{
    FrontendPredictor fe{FrontendConfig{}};
    MicroOp op = test::branchOp(0x100, BranchKind::UncondDirect, 0x2000);
    fe.onInstruction(op);
    EXPECT_TRUE(fe.onInstruction(op).correct);
}

TEST(Frontend, ReturnsPredictedByRas)
{
    FrontendPredictor fe{FrontendConfig{}};
    fe.onInstruction(test::branchOp(0x100, BranchKind::Call, 0x2000));
    auto outcome = fe.onInstruction(
        test::branchOp(0x2010, BranchKind::Return, 0x104));
    EXPECT_TRUE(outcome.correct);
    EXPECT_EQ(fe.stats().returns.hits(), 1u);
}

TEST(Frontend, NestedCallsReturnInOrder)
{
    FrontendPredictor fe{FrontendConfig{}};
    fe.onInstruction(test::branchOp(0x100, BranchKind::Call, 0x2000));
    fe.onInstruction(test::branchOp(0x2000, BranchKind::IndirectCall,
                                    0x3000));
    EXPECT_TRUE(fe.onInstruction(
                      test::branchOp(0x3010, BranchKind::Return, 0x2004))
                    .correct);
    EXPECT_TRUE(fe.onInstruction(
                      test::branchOp(0x2010, BranchKind::Return, 0x104))
                    .correct);
}

TEST(Frontend, BtbOnlyIndirectUsesLastTarget)
{
    FrontendPredictor fe{FrontendConfig{}};
    fe.onInstruction(test::indirectOp(0x100, 0x2000));
    // Same target again: correct.
    EXPECT_TRUE(fe.onInstruction(test::indirectOp(0x100, 0x2000))
                    .correct);
    // Target changes: the BTB-only machine mispredicts.
    EXPECT_FALSE(fe.onInstruction(test::indirectOp(0x100, 0x3000))
                     .correct);
    EXPECT_EQ(fe.stats().indirectJumps.total(), 3u);
}

TEST(Frontend, TargetCacheDisambiguatesWithHistory)
{
    // An indirect jump whose target is determined by the previous
    // conditional branch outcome: BTB-only flounders, the target cache
    // learns it (the paper's core claim).
    TaglessConfig tc_config;
    TaglessTargetCache cache(tc_config);
    HistoryTracker tracker(pattern9());
    FrontendPredictor fe{FrontendConfig{}, &cache, &tracker};

    auto run = [&](int rounds) {
        int wrong = 0;
        bool dir = false;
        for (int i = 0; i < rounds; ++i) {
            dir = !dir;
            fe.onInstruction(
                test::branchOp(0x100, BranchKind::CondDirect, 0x200,
                               dir));
            MicroOp jump = test::indirectOp(0x300,
                                            dir ? 0x4000 : 0x5000);
            wrong += !fe.onInstruction(jump).correct;
        }
        return wrong;
    };
    run(50);                   // warmup
    EXPECT_LE(run(100), 2);    // steady state: nearly perfect
}

TEST(Frontend, BtbOnlyCannotLearnAlternatingTargets)
{
    FrontendPredictor fe{FrontendConfig{}};
    int wrong = 0;
    for (int i = 0; i < 100; ++i) {
        MicroOp jump = test::indirectOp(0x300,
                                        (i & 1) ? 0x4000 : 0x5000);
        wrong += !fe.onInstruction(jump).correct;
    }
    EXPECT_GT(wrong, 90);
}

TEST(Frontend, OracleNeverMissesIndirectAfterBtbWarm)
{
    OraclePredictor oracle;
    HistoryTracker tracker(pattern9());
    FrontendPredictor fe{FrontendConfig{}, &oracle, &tracker};
    // First sight: BTB has not detected the branch yet, so even an
    // oracle target cache cannot be consulted (paper's structure).
    EXPECT_FALSE(fe.onInstruction(test::indirectOp(0x100, 0x2000))
                     .correct);
    for (uint64_t t = 0x3000; t < 0x3100; t += 8) {
        EXPECT_TRUE(fe.onInstruction(test::indirectOp(0x100, t))
                        .correct);
    }
}

TEST(Frontend, CondDirectionStatsTracked)
{
    FrontendPredictor fe{FrontendConfig{}};
    // The global history register shifts on every outcome, so an
    // always-taken branch walks through PHT entries until the history
    // saturates; allow that warmup before expecting correctness.
    for (int i = 0; i < 40; ++i)
        fe.onInstruction(
            test::branchOp(0x100, BranchKind::CondDirect, 0x200, true));
    EXPECT_EQ(fe.stats().condDirection.total(), 40u);
    EXPECT_GE(fe.stats().condDirection.hits(), 20u);
}

TEST(Frontend, MpkiComputed)
{
    FrontendPredictor fe{FrontendConfig{}};
    for (int i = 0; i < 999; ++i)
        fe.onInstruction(test::plainOp(0x100 + i * 4));
    fe.onInstruction(test::indirectOp(0x4000, 0x5000));  // miss
    EXPECT_NEAR(fe.stats().mpki(), 1.0, 0.01);
}

TEST(Frontend, ResetStats)
{
    FrontendPredictor fe{FrontendConfig{}};
    fe.onInstruction(test::indirectOp(0x100, 0x2000));
    fe.resetStats();
    EXPECT_EQ(fe.stats().instructions, 0u);
    EXPECT_EQ(fe.stats().allBranches.total(), 0u);
}

} // namespace
} // namespace tpred
