/**
 * @file
 * Differential test of the composite front end: an independent
 * straight-line reference reimplementation of the prediction rules
 * (BTB detection, gshare direction, RAS, tagless target cache
 * override) is run beside FrontendPredictor on random traces; per-op
 * predicted next-PCs must agree exactly.
 */

#include <map>
#include <optional>

#include <gtest/gtest.h>

#include "bpred/history.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "core/frontend_predictor.hh"
#include "core/tagless_target_cache.hh"
#include "test_util.hh"

namespace tpred
{
namespace
{

/** The reference machine, written for clarity over speed. */
class ReferenceFrontend
{
  public:
    uint64_t
    onInstruction(const MicroOp &op)
    {
        if (!op.isBranch())
            return op.fallthrough;

        const auto btb = btbLookup(op.pc);
        uint64_t predicted = op.fallthrough;

        switch (op.branch) {
          case BranchKind::CondDirect:
            if (gsharePredict(op.pc) && btb)
                predicted = btb->target;
            break;
          case BranchKind::UncondDirect:
          case BranchKind::Call:
            predicted = btb ? btb->target : op.fallthrough;
            break;
          case BranchKind::Return:
            predicted = ras_.empty() ? 0 : ras_.back();
            if (!ras_.empty())
                ras_.pop_back();
            break;
          case BranchKind::IndirectJump:
          case BranchKind::IndirectCall:
            if (btb) {
                // The tagless cache ALWAYS provides the prediction
                // when the BTB detects the branch — a cold entry
                // predicts 0 (a guaranteed miss), it does not fall
                // back to the BTB.  (Only a *tagged* miss falls back.)
                const uint64_t idx = cacheIndex(op.pc);
                predicted = cache_.count(idx) ? cache_[idx] : 0;
            }
            break;
          case BranchKind::None:
            break;
        }

        if (op.branch == BranchKind::Call ||
            op.branch == BranchKind::IndirectCall) {
            ras_.push_back(op.fallthrough);
            if (ras_.size() > 16)
                ras_.erase(ras_.begin());
        }

        // Train.
        if (op.branch == BranchKind::CondDirect) {
            // Counters initialize to 1 (weakly not-taken), matching
            // GShare's SatCounter(2, 1) construction.
            int &ctr = pht_.try_emplace(phtIndex(op.pc), 1)
                           .first->second;
            ctr = op.taken ? std::min(ctr + 1, 3)
                           : std::max(ctr - 1, 0);
            ghr_ = ((ghr_ << 1) | (op.taken ? 1 : 0)) & 0xfff;
        }
        btbUpdate(op);
        if (isIndirectNonReturn(op.branch))
            cache_[cacheIndex(op.pc)] = op.nextPc;
        return predicted;
    }

  private:
    struct BtbEntry
    {
        uint64_t target = 0;
        BranchKind kind = BranchKind::None;
    };

    // Unbounded BTB: valid as long as the trace touches fewer
    // branches than the real 1024-entry BTB can hold per set.
    std::optional<BtbEntry>
    btbLookup(uint64_t pc)
    {
        auto it = btb_.find(pc);
        if (it == btb_.end())
            return std::nullopt;
        return it->second;
    }

    void
    btbUpdate(const MicroOp &op)
    {
        BtbEntry &entry = btb_[op.pc];
        entry.kind = op.branch;
        if (op.taken)
            entry.target = op.nextPc;
        else if (btb_.count(op.pc) == 0)
            entry.target = 0;
    }

    uint64_t phtIndex(uint64_t pc) const
    {
        return ((pc >> 2) ^ ghr_) & 0xfff;
    }
    bool gsharePredict(uint64_t pc)
    {
        auto it = pht_.find(phtIndex(pc));
        const int ctr = it == pht_.end() ? 1 : it->second;
        return ctr > 1;
    }
    uint64_t cacheIndex(uint64_t pc) const
    {
        // 512-entry gshare-indexed tagless cache over 9 history bits.
        return ((pc >> 2) ^ foldXor(ghr_ & 0x1ff, 9)) & 0x1ff;
    }

    std::map<uint64_t, BtbEntry> btb_;
    std::map<uint64_t, int> pht_;
    std::map<uint64_t, uint64_t> cache_;
    std::vector<uint64_t> ras_;
    uint64_t ghr_ = 0;
};

std::vector<MicroOp>
randomTrace(uint64_t seed, size_t length)
{
    // Few static branches so the real BTB never evicts (the reference
    // BTB is unbounded) and GHR length (12) exceeds the cache's 9.
    Rng rng(seed);
    std::vector<MicroOp> ops;
    std::vector<uint64_t> ras;
    uint64_t pc = 0x1000;
    for (size_t i = 0; i < length; ++i) {
        const double draw = rng.uniform();
        // Branch pcs drawn from a small pool that maps to distinct
        // BTB sets (stride 0x40 over 64 slots < 256 sets).
        const uint64_t branch_pc = 0x8000 + rng.below(64) * 0x40;
        if (draw < 0.5) {
            ops.push_back(test::plainOp(pc));
            pc += 4;
        } else if (draw < 0.72) {
            const bool taken = rng.chance(0.5);
            MicroOp op = test::branchOp(branch_pc,
                                        BranchKind::CondDirect,
                                        0x20000 + rng.below(32) * 4,
                                        taken);
            ops.push_back(op);
            pc = op.nextPc;
        } else if (draw < 0.86) {
            MicroOp op = test::indirectOp(branch_pc,
                                          0x30000 + rng.below(8) * 4);
            ops.push_back(op);
            pc = op.nextPc;
        } else if (draw < 0.94 || ras.empty()) {
            MicroOp op = test::branchOp(branch_pc, BranchKind::Call,
                                        0x40000 + rng.below(16) * 4);
            ops.push_back(op);
            ras.push_back(branch_pc + 4);
            if (ras.size() > 16)
                ras.erase(ras.begin());
            pc = op.nextPc;
        } else {
            MicroOp op = test::branchOp(branch_pc, BranchKind::Return,
                                        ras.back());
            ras.pop_back();
            ops.push_back(op);
            pc = op.nextPc;
        }
    }
    return ops;
}

class FrontendDifferential : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FrontendDifferential, PredictionsMatchReference)
{
    auto ops = randomTrace(GetParam(), 15000);

    TaglessTargetCache cache(TaglessConfig{});
    HistorySpec spec;
    spec.kind = HistoryKind::Pattern;
    spec.lengthBits = 9;
    HistoryTracker tracker(spec);
    FrontendPredictor real{FrontendConfig{}, &cache, &tracker};
    ReferenceFrontend reference;

    for (size_t i = 0; i < ops.size(); ++i) {
        const uint64_t expected = reference.onInstruction(ops[i]);
        const PredictionOutcome outcome = real.onInstruction(ops[i]);
        ASSERT_EQ(outcome.predictedNext, expected)
            << "op " << i << " pc 0x" << std::hex << ops[i].pc;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontendDifferential,
                         ::testing::Values(1u, 7u, 23u, 1234u));

} // namespace
} // namespace tpred
